//! Self-profiling: wall-clock attribution of the simulator's own phases.
//!
//! When profiling is armed, `System::step` timestamps each phase of the
//! cycle loop and charges the elapsed wall-clock to a [`SimPhase`]
//! bucket. The result answers "where does sim time go" — cores vs caches
//! vs NoC vs DRAM vs engine bookkeeping — so a perf PR can see what it
//! actually moved. Entirely off the simulated-results path: wall-clock
//! never feeds back into simulation, and the whole profile is excluded
//! from `same_simulated_results`.

use std::time::Duration;

/// A phase of the simulator's cycle loop that wall-clock is charged to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SimPhase {
    /// Core issue/retire ticks (including L1 access attempts they drive).
    Core,
    /// L1 cache ticks and response handling.
    L1,
    /// L2 bank ticks and request handling.
    L2,
    /// Request/response network delivery and injection.
    Noc,
    /// DRAM channel ticks and fill handling.
    Dram,
    /// Timestamp-rollover drain/flush bookkeeping.
    Rollover,
    /// Fast-forward planning and jump bookkeeping.
    FastForward,
    /// Observer sampling and trace emission.
    Sample,
}

impl SimPhase {
    /// Every phase, in reporting order.
    pub const ALL: [SimPhase; 8] = [
        SimPhase::Core,
        SimPhase::L1,
        SimPhase::L2,
        SimPhase::Noc,
        SimPhase::Dram,
        SimPhase::Rollover,
        SimPhase::FastForward,
        SimPhase::Sample,
    ];

    /// Stable label used in reports and BENCH_sim.json.
    pub fn label(self) -> &'static str {
        match self {
            SimPhase::Core => "core",
            SimPhase::L1 => "l1",
            SimPhase::L2 => "l2",
            SimPhase::Noc => "noc",
            SimPhase::Dram => "dram",
            SimPhase::Rollover => "rollover",
            SimPhase::FastForward => "fast_forward",
            SimPhase::Sample => "sample",
        }
    }

    fn idx(self) -> usize {
        match self {
            SimPhase::Core => 0,
            SimPhase::L1 => 1,
            SimPhase::L2 => 2,
            SimPhase::Noc => 3,
            SimPhase::Dram => 4,
            SimPhase::Rollover => 5,
            SimPhase::FastForward => 6,
            SimPhase::Sample => 7,
        }
    }
}

/// Accumulated wall-clock per simulator phase.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SimProfile {
    nanos: [u64; 8],
    /// Number of `step()` calls profiled.
    pub steps: u64,
}

impl SimProfile {
    /// Creates an empty profile.
    pub fn new() -> Self {
        SimProfile::default()
    }

    /// Charges `d` of wall-clock to `phase`.
    pub fn charge(&mut self, phase: SimPhase, d: Duration) {
        self.nanos[phase.idx()] = self.nanos[phase.idx()].saturating_add(d.as_nanos() as u64);
    }

    /// Wall-clock charged to `phase`, in nanoseconds.
    pub fn nanos(&self, phase: SimPhase) -> u64 {
        self.nanos[phase.idx()]
    }

    /// Total wall-clock across all phases, in nanoseconds.
    pub fn total_nanos(&self) -> u64 {
        self.nanos.iter().sum()
    }

    /// Fraction of the profiled total spent in `phase` (0 when nothing
    /// was profiled).
    pub fn share(&self, phase: SimPhase) -> f64 {
        let total = self.total_nanos();
        if total == 0 {
            0.0
        } else {
            self.nanos(phase) as f64 / total as f64
        }
    }

    /// Merges another profile into this one (used when aggregating across
    /// runs in perfsmoke).
    pub fn merge(&mut self, other: &SimProfile) {
        for (a, b) in self.nanos.iter_mut().zip(&other.nanos) {
            *a = a.saturating_add(*b);
        }
        self.steps += other.steps;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate_and_share_sums() {
        let mut p = SimProfile::new();
        p.charge(SimPhase::Core, Duration::from_nanos(300));
        p.charge(SimPhase::Core, Duration::from_nanos(200));
        p.charge(SimPhase::Dram, Duration::from_nanos(500));
        assert_eq!(p.nanos(SimPhase::Core), 500);
        assert_eq!(p.total_nanos(), 1000);
        assert!((p.share(SimPhase::Dram) - 0.5).abs() < 1e-12);
        assert_eq!(p.share(SimPhase::Noc), 0.0);
    }

    #[test]
    fn empty_profile_has_zero_shares() {
        let p = SimProfile::new();
        for ph in SimPhase::ALL {
            assert_eq!(p.share(ph), 0.0);
        }
    }

    #[test]
    fn merge_adds_everything() {
        let mut a = SimProfile::new();
        a.charge(SimPhase::L2, Duration::from_nanos(10));
        a.steps = 3;
        let mut b = SimProfile::new();
        b.charge(SimPhase::L2, Duration::from_nanos(5));
        b.charge(SimPhase::Sample, Duration::from_nanos(7));
        b.steps = 2;
        a.merge(&b);
        assert_eq!(a.nanos(SimPhase::L2), 15);
        assert_eq!(a.nanos(SimPhase::Sample), 7);
        assert_eq!(a.steps, 5);
    }

    #[test]
    fn labels_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for ph in SimPhase::ALL {
            assert!(seen.insert(ph.label()));
        }
    }
}
