//! A small dependency-free JSON parser.
//!
//! The workspace deliberately has no registry dependencies, so the schema
//! tests and the trace/series validators parse JSON with this module
//! instead of serde. It implements the full JSON grammar (RFC 8259) minus
//! `\u` surrogate-pair pedantry, which none of our artifacts use; numbers
//! are kept as `f64` plus an exact `u64` view when the text was a
//! non-negative integer.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number; `u64` view preserved when the literal was a
    /// non-negative integer that fits.
    Num {
        /// The value as a float (always set).
        f: f64,
        /// Exact integer view, when representable.
        u: Option<u64>,
    },
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<JsonValue>),
    /// Object; `BTreeMap` keeps iteration deterministic.
    Obj(BTreeMap<String, JsonValue>),
}

impl JsonValue {
    /// Member lookup on objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The value as `u64` if it was a non-negative integer literal.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::Num { u, .. } => *u,
            _ => None,
        }
    }

    /// The value as a float (integers included).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num { f, .. } => Some(*f),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            JsonValue::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// The value as an object map.
    pub fn as_object(&self) -> Option<&BTreeMap<String, JsonValue>> {
        match self {
            JsonValue::Obj(m) => Some(m),
            _ => None,
        }
    }

    /// JSON type name, used in validation errors.
    pub fn type_name(&self) -> &'static str {
        match self {
            JsonValue::Null => "null",
            JsonValue::Bool(_) => "boolean",
            JsonValue::Num { .. } => "number",
            JsonValue::Str(_) => "string",
            JsonValue::Arr(_) => "array",
            JsonValue::Obj(_) => "object",
        }
    }
}

/// Parses a complete JSON document; trailing garbage is an error.
pub fn parse(text: &str) -> Result<JsonValue, String> {
    let bytes = text.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(p.err("trailing characters after JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("JSON parse error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.bump() == Some(b) {
            Ok(())
        } else {
            self.pos = self.pos.saturating_sub(1);
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: JsonValue) -> Result<JsonValue, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", JsonValue::Null),
            Some(b't') => self.literal("true", JsonValue::Bool(true)),
            Some(b'f') => self.literal("false", JsonValue::Bool(false)),
            Some(b'"') => Ok(JsonValue::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character '{}'", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let mut code: u32 = 0;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                    }
                    _ => return Err(self.err("bad escape")),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Re-decode the multi-byte UTF-8 sequence that starts
                    // at the byte we just consumed.
                    let start = self.pos - 1;
                    let width = match b {
                        0xC0..=0xDF => 2,
                        0xE0..=0xEF => 3,
                        _ => 4,
                    };
                    let end = (start + width).min(self.bytes.len());
                    let s = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let int_end = self.pos;
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let f: f64 = text.parse().map_err(|_| self.err("bad number"))?;
        let u = if int_end == self.pos {
            text.parse::<u64>().ok()
        } else {
            None
        };
        Ok(JsonValue::Num { f, u })
    }

    fn array(&mut self) -> Result<JsonValue, String> {
        self.expect(b'[')?;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(JsonValue::Arr(out)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or ']'"));
                }
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, String> {
        self.expect(b'{')?;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            out.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(JsonValue::Obj(out)),
                _ => {
                    self.pos = self.pos.saturating_sub(1);
                    return Err(self.err("expected ',' or '}'"));
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null").unwrap(), JsonValue::Null);
        assert_eq!(parse("true").unwrap().as_bool(), Some(true));
        assert_eq!(parse(" 42 ").unwrap().as_u64(), Some(42));
        assert_eq!(parse("-1.5").unwrap().as_f64(), Some(-1.5));
        assert_eq!(parse("-3").unwrap().as_u64(), None);
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(
            parse("1e3").unwrap().as_u64(),
            None,
            "exponent form is not exact-int"
        );
        assert_eq!(parse("\"hi\"").unwrap().as_str(), Some("hi"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a": [1, {"b": "x"}], "c": {"d": false}}"#).unwrap();
        let a = v.get("a").and_then(JsonValue::as_array).unwrap();
        assert_eq!(a[0].as_u64(), Some(1));
        assert_eq!(a[1].get("b").and_then(JsonValue::as_str), Some("x"));
        assert_eq!(
            v.get("c")
                .and_then(|c| c.get("d"))
                .and_then(JsonValue::as_bool),
            Some(false)
        );
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            parse(r#""a\"b\\c\ndA""#).unwrap().as_str(),
            Some("a\"b\\c\ndA")
        );
    }

    #[test]
    fn utf8_passthrough() {
        assert_eq!(parse("\"héllo ✓\"").unwrap().as_str(), Some("héllo ✓"));
    }

    #[test]
    fn rejects_malformed() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("12 34").is_err());
        assert!(parse("\"unterminated").is_err());
        assert!(parse("nul").is_err());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(parse("[]").unwrap(), JsonValue::Arr(vec![]));
        assert_eq!(parse("{}").unwrap(), JsonValue::Obj(BTreeMap::new()));
        assert_eq!(parse("[ ]").unwrap(), JsonValue::Arr(vec![]));
    }
}
