//! A JSON-Schema-subset validator for exported artifacts.
//!
//! Supports the keywords the in-repo schemas under `schemas/` use:
//! `type` (string or array of strings), `properties`, `required`,
//! `additionalProperties` (boolean form), `items` (single schema),
//! `minItems`, `enum`, `minimum`, `maximum`. Schemas are themselves JSON
//! documents parsed with [`crate::json`], so the bench artifact tests can
//! validate `BENCH_sim.json` against `schemas/bench_sim.schema.json`
//! without any registry dependency.

use crate::json::JsonValue;

/// Validates `value` against `schema`, returning every violation with a
/// JSON-pointer-ish path. Empty result means the document conforms.
pub fn validate(schema: &JsonValue, value: &JsonValue) -> Vec<String> {
    let mut errors = Vec::new();
    check(schema, value, "$", &mut errors);
    errors
}

/// Parses both schema and document texts and validates.
pub fn validate_text(schema_text: &str, doc_text: &str) -> Result<Vec<String>, String> {
    let schema = crate::json::parse(schema_text).map_err(|e| format!("schema: {e}"))?;
    let doc = crate::json::parse(doc_text).map_err(|e| format!("document: {e}"))?;
    Ok(validate(&schema, &doc))
}

fn check(schema: &JsonValue, value: &JsonValue, path: &str, errors: &mut Vec<String>) {
    if let Some(ty) = schema.get("type") {
        if !type_matches(ty, value) {
            errors.push(format!(
                "{path}: expected type {}, got {}",
                type_label(ty),
                value.type_name()
            ));
            // Structural keywords below would only cascade noise.
            return;
        }
    }

    if let Some(allowed) = schema.get("enum").and_then(JsonValue::as_array) {
        if !allowed.iter().any(|a| a == value) {
            errors.push(format!("{path}: value not in enum"));
        }
    }

    if let Some(min) = schema.get("minimum").and_then(JsonValue::as_f64) {
        if let Some(v) = value.as_f64() {
            if v < min {
                errors.push(format!("{path}: {v} below minimum {min}"));
            }
        }
    }
    if let Some(max) = schema.get("maximum").and_then(JsonValue::as_f64) {
        if let Some(v) = value.as_f64() {
            if v > max {
                errors.push(format!("{path}: {v} above maximum {max}"));
            }
        }
    }

    if let JsonValue::Obj(map) = value {
        if let Some(req) = schema.get("required").and_then(JsonValue::as_array) {
            for r in req {
                if let Some(name) = r.as_str() {
                    if !map.contains_key(name) {
                        errors.push(format!("{path}: missing required property \"{name}\""));
                    }
                }
            }
        }
        let props = schema.get("properties").and_then(JsonValue::as_object);
        if let Some(props) = props {
            for (k, sub) in props {
                if let Some(v) = map.get(k) {
                    check(sub, v, &format!("{path}.{k}"), errors);
                }
            }
        }
        if schema
            .get("additionalProperties")
            .and_then(JsonValue::as_bool)
            == Some(false)
        {
            for k in map.keys() {
                let declared = props.map(|p| p.contains_key(k)).unwrap_or(false);
                if !declared {
                    errors.push(format!("{path}: unexpected property \"{k}\""));
                }
            }
        }
    }

    if let JsonValue::Arr(items) = value {
        if let Some(min) = schema.get("minItems").and_then(JsonValue::as_u64) {
            if (items.len() as u64) < min {
                errors.push(format!(
                    "{path}: {} items, fewer than minItems {min}",
                    items.len()
                ));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                check(item_schema, item, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

fn type_matches(ty: &JsonValue, value: &JsonValue) -> bool {
    match ty {
        JsonValue::Str(s) => one_type_matches(s, value),
        JsonValue::Arr(opts) => opts
            .iter()
            .filter_map(JsonValue::as_str)
            .any(|s| one_type_matches(s, value)),
        _ => true,
    }
}

fn one_type_matches(name: &str, value: &JsonValue) -> bool {
    match name {
        "null" => matches!(value, JsonValue::Null),
        "boolean" => matches!(value, JsonValue::Bool(_)),
        "number" => matches!(value, JsonValue::Num { .. }),
        "integer" => matches!(value, JsonValue::Num { f, .. } if f.fract() == 0.0),
        "string" => matches!(value, JsonValue::Str(_)),
        "array" => matches!(value, JsonValue::Arr(_)),
        "object" => matches!(value, JsonValue::Obj(_)),
        _ => true,
    }
}

fn type_label(ty: &JsonValue) -> String {
    match ty {
        JsonValue::Str(s) => s.clone(),
        JsonValue::Arr(opts) => opts
            .iter()
            .filter_map(JsonValue::as_str)
            .collect::<Vec<_>>()
            .join("|"),
        _ => "?".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCHEMA: &str = r#"{
        "type": "object",
        "required": ["name", "runs"],
        "additionalProperties": false,
        "properties": {
            "name": {"type": "string"},
            "runs": {
                "type": "array",
                "minItems": 1,
                "items": {
                    "type": "object",
                    "required": ["cycles"],
                    "properties": {
                        "cycles": {"type": "integer", "minimum": 0},
                        "speedup": {"type": "number"},
                        "mode": {"enum": ["fast", "checked"]}
                    }
                }
            },
            "note": {"type": ["string", "null"]}
        }
    }"#;

    #[test]
    fn conforming_document_passes() {
        let doc = r#"{"name": "x", "runs": [{"cycles": 10, "speedup": 1.5, "mode": "fast"}],
                      "note": null}"#;
        assert_eq!(validate_text(SCHEMA, doc).unwrap(), Vec::<String>::new());
    }

    #[test]
    fn violations_are_reported_with_paths() {
        let doc = r#"{"runs": [{"cycles": -1, "mode": "warp"}], "extra": 1}"#;
        let errs = validate_text(SCHEMA, doc).unwrap();
        let joined = errs.join("\n");
        assert!(
            joined.contains("missing required property \"name\""),
            "{joined}"
        );
        assert!(joined.contains("$.runs[0].cycles"), "{joined}");
        assert!(joined.contains("not in enum"), "{joined}");
        assert!(joined.contains("unexpected property \"extra\""), "{joined}");
    }

    #[test]
    fn type_mismatch_short_circuits() {
        let errs = validate_text(SCHEMA, r#"{"name": 5, "runs": "nope"}"#).unwrap();
        assert!(errs
            .iter()
            .any(|e| e.contains("$.name: expected type string")));
        assert!(errs
            .iter()
            .any(|e| e.contains("$.runs: expected type array")));
    }

    #[test]
    fn min_items_and_union_types() {
        let errs = validate_text(SCHEMA, r#"{"name": "x", "runs": [], "note": 3}"#).unwrap();
        assert!(errs.iter().any(|e| e.contains("fewer than minItems")));
        assert!(errs
            .iter()
            .any(|e| e.contains("$.note: expected type string|null")));
    }

    #[test]
    fn integer_accepts_whole_floats_only() {
        let s = r#"{"type": "integer"}"#;
        assert!(validate_text(s, "3").unwrap().is_empty());
        assert!(validate_text(s, "3.0").unwrap().is_empty());
        assert!(!validate_text(s, "3.5").unwrap().is_empty());
    }

    #[test]
    fn bad_schema_or_doc_is_an_error() {
        assert!(validate_text("{", "3").is_err());
        assert!(validate_text("{}", "{").is_err());
    }
}
