//! Columnar time-series buffer for per-interval metrics.
//!
//! The sampler records one row per sample interval. Each column is either
//! a **delta** — the caller supplies a cumulative counter and the buffer
//! stores the per-interval difference (IPC numerators, hit/miss counts,
//! flits by class, lease extensions) — or a **gauge**, stored as-is
//! (queue depths, MSHR occupancy, logical clocks). Columns are plain
//! `u64` so digests are exact; rates like IPC or hit ratios are derived
//! by the consumer from the raw numerators and the interval length.

use crate::digest::DigestWriter;
use std::fmt::Write as _;

/// How a column's values are derived from what the sampler supplies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColKind {
    /// Caller supplies a cumulative counter; the stored value is the
    /// difference since the previous sample.
    Delta,
    /// Caller supplies an instantaneous value; stored verbatim.
    Gauge,
}

impl ColKind {
    /// Label used in the JSON dump.
    pub fn label(self) -> &'static str {
        match self {
            ColKind::Delta => "delta",
            ColKind::Gauge => "gauge",
        }
    }
}

/// A fixed-schema columnar buffer of sampled rows.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    names: Vec<String>,
    kinds: Vec<ColKind>,
    /// Previous cumulative snapshot (delta columns only; gauge slots
    /// unused).
    prev: Vec<u64>,
    /// End cycle of each sampled interval.
    cycles: Vec<u64>,
    /// `cols[c][row]`.
    cols: Vec<Vec<u64>>,
}

impl TimeSeries {
    /// Creates an empty series with the given column schema.
    pub fn new(schema: Vec<(String, ColKind)>) -> Self {
        let (names, kinds): (Vec<_>, Vec<_>) = schema.into_iter().unzip();
        let n = names.len();
        TimeSeries {
            names,
            kinds,
            prev: vec![0; n],
            cycles: Vec::new(),
            cols: vec![Vec::new(); n],
        }
    }

    /// Records one row. `values[i]` is the cumulative count for delta
    /// columns and the instantaneous value for gauges, in schema order.
    ///
    /// # Panics
    ///
    /// Panics if `values` does not match the schema width.
    pub fn push(&mut self, cycle: u64, values: &[u64]) {
        assert_eq!(values.len(), self.names.len(), "schema width mismatch");
        self.cycles.push(cycle);
        for (i, &v) in values.iter().enumerate() {
            let stored = match self.kinds[i] {
                ColKind::Delta => {
                    let d = v.wrapping_sub(self.prev[i]);
                    self.prev[i] = v;
                    d
                }
                ColKind::Gauge => v,
            };
            self.cols[i].push(stored);
        }
    }

    /// Number of sampled rows.
    pub fn rows(&self) -> usize {
        self.cycles.len()
    }

    /// Number of columns (excluding the implicit cycle column).
    pub fn width(&self) -> usize {
        self.names.len()
    }

    /// Column names in schema order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.names.iter().map(String::as_str)
    }

    /// The sampled end cycles.
    pub fn cycles(&self) -> &[u64] {
        &self.cycles
    }

    /// A column's stored values by name.
    pub fn col(&self, name: &str) -> Option<&[u64]> {
        self.names
            .iter()
            .position(|n| n == name)
            .map(|i| self.cols[i].as_slice())
    }

    /// CSV dump: `cycle,<name>,...` header then one line per row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("cycle");
        for n in &self.names {
            out.push(',');
            out.push_str(n);
        }
        out.push('\n');
        for r in 0..self.rows() {
            let _ = write!(out, "{}", self.cycles[r]);
            for c in &self.cols {
                let _ = write!(out, ",{}", c[r]);
            }
            out.push('\n');
        }
        out
    }

    /// JSON dump: schema (name + kind), cycles, and columns by name.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"schema\": [");
        for (i, (n, k)) in self.names.iter().zip(&self.kinds).enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            let _ = write!(out, "{{\"name\": \"{n}\", \"kind\": \"{}\"}}", k.label());
        }
        out.push_str("],\n  \"rows\": ");
        let _ = write!(out, "{}", self.rows());
        out.push_str(",\n  \"cycles\": ");
        push_u64_array(&mut out, &self.cycles);
        out.push_str(",\n  \"columns\": {");
        for (i, n) in self.names.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n    \"{n}\": ");
            push_u64_array(&mut out, &self.cols[i]);
        }
        out.push_str("\n  }\n}\n");
        out
    }

    /// Seeded digest over the schema and every stored value — what the
    /// golden-snapshot tests pin instead of raw floats.
    pub fn digest(&self, seed: u64) -> u64 {
        let mut w = DigestWriter::new(seed);
        w.write_u64(self.names.len() as u64);
        for (n, k) in self.names.iter().zip(&self.kinds) {
            w.write_str(n);
            w.write_str(k.label());
        }
        w.write_u64s(&self.cycles);
        for c in &self.cols {
            w.write_u64s(c);
        }
        w.finish()
    }
}

fn push_u64_array(out: &mut String, vs: &[u64]) {
    out.push('[');
    for (i, v) in vs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
}

#[cfg(test)]
mod tests {
    use super::*;

    fn series() -> TimeSeries {
        TimeSeries::new(vec![
            ("issued".to_string(), ColKind::Delta),
            ("mshr".to_string(), ColKind::Gauge),
        ])
    }

    #[test]
    fn deltas_and_gauges() {
        let mut s = series();
        s.push(100, &[50, 3]);
        s.push(200, &[80, 1]);
        s.push(300, &[80, 0]);
        assert_eq!(s.rows(), 3);
        assert_eq!(s.col("issued"), Some(&[50, 30, 0][..]));
        assert_eq!(s.col("mshr"), Some(&[3, 1, 0][..]));
        assert_eq!(s.cycles(), &[100, 200, 300]);
        assert_eq!(s.col("nope"), None);
    }

    #[test]
    fn csv_round_shape() {
        let mut s = series();
        s.push(64, &[10, 2]);
        let csv = s.to_csv();
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("cycle,issued,mshr"));
        assert_eq!(lines.next(), Some("64,10,2"));
        assert_eq!(lines.next(), None);
    }

    #[test]
    fn json_parses_and_matches() {
        let mut s = series();
        s.push(64, &[10, 2]);
        s.push(128, &[25, 7]);
        let v = crate::json::parse(&s.to_json()).expect("series JSON must parse");
        assert_eq!(
            v.get("rows").and_then(crate::json::JsonValue::as_u64),
            Some(2)
        );
        let cols = v.get("columns").expect("columns");
        let issued = cols
            .get("issued")
            .and_then(crate::json::JsonValue::as_array)
            .unwrap();
        assert_eq!(issued.len(), 2);
        assert_eq!(issued[1].as_u64(), Some(15));
    }

    #[test]
    fn digest_tracks_content() {
        let mut a = series();
        a.push(64, &[10, 2]);
        let mut b = series();
        b.push(64, &[10, 2]);
        assert_eq!(a.digest(1), b.digest(1));
        assert_ne!(a.digest(1), a.digest(2), "seed must matter");
        b.push(128, &[10, 2]);
        assert_ne!(a.digest(1), b.digest(1), "content must matter");
    }
}
