//! Seeded, stable digests for golden-snapshot tests.
//!
//! Golden tests pin *hashes* of run artifacts rather than the artifacts
//! themselves: a digest line survives in a table where a 40-column
//! time-series would not, and an intentional behaviour change regenerates
//! one constant instead of a wall of floats. The hash must therefore be
//! stable across platforms and releases — so it is written out here
//! (an FNV-1a/64 variant with a seed fold) rather than borrowed from
//! `std`, whose `Hasher` implementations are explicitly unstable.

/// Streaming 64-bit digest with a caller-chosen seed.
///
/// Not a cryptographic hash; it only needs to make accidental collisions
/// between "metrics changed" and "metrics unchanged" implausible.
#[derive(Debug, Clone)]
pub struct DigestWriter {
    state: u64,
}

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl DigestWriter {
    /// Creates a digest stream folding in `seed` first.
    pub fn new(seed: u64) -> Self {
        let mut w = DigestWriter { state: OFFSET };
        w.write_u64(seed);
        w
    }

    /// Folds one byte into the state.
    #[inline]
    pub fn write_u8(&mut self, b: u8) {
        self.state ^= u64::from(b);
        self.state = self.state.wrapping_mul(PRIME);
    }

    /// Folds a 64-bit word (little-endian byte order).
    pub fn write_u64(&mut self, v: u64) {
        for b in v.to_le_bytes() {
            self.write_u8(b);
        }
    }

    /// Folds a float by bit pattern — exact, so bit-identical runs digest
    /// identically and nothing else does.
    pub fn write_f64(&mut self, v: f64) {
        self.write_u64(v.to_bits());
    }

    /// Folds a string, length-prefixed so concatenations can't collide.
    pub fn write_str(&mut self, s: &str) {
        self.write_u64(s.len() as u64);
        for b in s.bytes() {
            self.write_u8(b);
        }
    }

    /// Folds a slice of words, length-prefixed.
    pub fn write_u64s(&mut self, vs: &[u64]) {
        self.write_u64(vs.len() as u64);
        for &v in vs {
            self.write_u64(v);
        }
    }

    /// Final digest value.
    pub fn finish(&self) -> u64 {
        // One extra scramble so short inputs still diffuse into the top
        // bits (plain FNV leaves them weak).
        let mut x = self.state;
        x ^= x >> 33;
        x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
        x ^= x >> 33;
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn digest_of(f: impl Fn(&mut DigestWriter)) -> u64 {
        let mut w = DigestWriter::new(7);
        f(&mut w);
        w.finish()
    }

    #[test]
    fn deterministic_and_seeded() {
        let a = digest_of(|w| w.write_u64(42));
        let b = digest_of(|w| w.write_u64(42));
        assert_eq!(a, b);
        let mut other_seed = DigestWriter::new(8);
        other_seed.write_u64(42);
        assert_ne!(a, other_seed.finish());
    }

    #[test]
    fn order_and_content_sensitive() {
        let ab = digest_of(|w| {
            w.write_u64(1);
            w.write_u64(2);
        });
        let ba = digest_of(|w| {
            w.write_u64(2);
            w.write_u64(1);
        });
        assert_ne!(ab, ba);
        assert_ne!(
            digest_of(|w| w.write_str("ab")),
            digest_of(|w| w.write_str("ba"))
        );
    }

    #[test]
    fn length_prefix_prevents_concat_collisions() {
        let a = digest_of(|w| {
            w.write_str("ab");
            w.write_str("c");
        });
        let b = digest_of(|w| {
            w.write_str("a");
            w.write_str("bc");
        });
        assert_ne!(a, b);
    }

    #[test]
    fn floats_digest_by_bits() {
        let z = digest_of(|w| w.write_f64(0.0));
        let nz = digest_of(|w| w.write_f64(-0.0));
        assert_ne!(z, nz, "distinct bit patterns must digest differently");
        assert_eq!(
            digest_of(|w| w.write_f64(1.5)),
            digest_of(|w| w.write_f64(1.5))
        );
    }

    #[test]
    fn pinned_value() {
        // The digest is part of the golden-test contract: changing the
        // mixing breaks every pinned snapshot, so pin the function here.
        assert_eq!(
            digest_of(|w| w.write_u64s(&[1, 2, 3])),
            0x1c2f_c559_94e5_0464
        );
    }
}
