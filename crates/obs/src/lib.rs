#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Observability for the RCC simulator: per-interval time-series
//! sampling, Perfetto/Chrome-trace export, simulator self-profiling, and
//! schema validation for every artifact the harness exports.
//!
//! The paper's figures are all end-of-run aggregates; this crate is what
//! lets a run explain itself *in time*: where MESI's invalidation storms
//! land, when RCC's logical-clock rollover bunches up, which phase of the
//! simulator the wall-clock goes to. Everything here is passive — armed
//! observers never feed back into simulated behaviour, and the sim crate
//! enforces that with a determinism test (`same_simulated_results` with
//! observation on vs off).
//!
//! * [`series`] — a compact columnar time-series buffer
//!   ([`TimeSeries`]): cumulative counters are recorded as per-interval
//!   deltas, instantaneous quantities as gauges; dumps as CSV or JSON and
//!   produces a seeded [`digest`] for golden-snapshot tests.
//! * [`trace`] — a [`TraceBuffer`] of structured spans / instant events /
//!   counters with stable per-component track ids, serialized as Chrome
//!   trace JSON that loads directly in [Perfetto](https://ui.perfetto.dev).
//! * [`profile`] — [`SimProfile`], per-component wall-clock attribution
//!   of the simulator itself (cores vs caches vs NoC vs DRAM vs engine
//!   bookkeeping).
//! * [`json`] / [`schema`] — a dependency-free JSON parser and a
//!   JSON-Schema-subset validator, used to pin the shape of
//!   `BENCH_sim.json`, `BENCH_chaos.json`, traces and time-series dumps
//!   against the schemas committed under `schemas/`.

pub mod digest;
pub mod json;
pub mod profile;
pub mod schema;
pub mod series;
pub mod trace;

pub use digest::DigestWriter;
pub use json::JsonValue;
pub use profile::{SimPhase, SimProfile};
pub use series::{ColKind, TimeSeries};
pub use trace::{track, ArgValue, TraceBuffer};

/// Configuration for an attached observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsConfig {
    /// Sample the time-series every this many cycles (0 disables
    /// sampling).
    pub sample_every: u64,
    /// Record structured trace events.
    pub trace: bool,
    /// Hard cap on buffered trace events; once reached, further events
    /// are counted as dropped rather than stored (never silently).
    pub max_trace_events: usize,
}

impl ObsConfig {
    /// Sampling at `every` cycles plus tracing — the full observer.
    pub fn full(every: u64) -> Self {
        ObsConfig {
            sample_every: every,
            trace: true,
            max_trace_events: 1_000_000,
        }
    }

    /// Sampling only, no trace buffer.
    pub fn sampled(every: u64) -> Self {
        ObsConfig {
            sample_every: every,
            trace: false,
            max_trace_events: 0,
        }
    }

    /// Whether anything is actually observed.
    pub fn is_armed(&self) -> bool {
        self.sample_every > 0 || self.trace
    }
}

/// What an observed run produced: the sampled series and the trace.
/// Carried on `RunMetrics` but excluded from result comparison — it is
/// observation, not simulation.
#[derive(Debug, Clone, Default)]
pub struct ObsReport {
    /// Sampled time-series (empty when sampling was off).
    pub series: TimeSeries,
    /// Structured trace events (empty when tracing was off).
    pub trace: TraceBuffer,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_arming() {
        assert!(ObsConfig::full(64).is_armed());
        assert!(ObsConfig::sampled(1).is_armed());
        assert!(!ObsConfig::sampled(0).is_armed());
        let trace_only = ObsConfig {
            sample_every: 0,
            trace: true,
            max_trace_events: 10,
        };
        assert!(trace_only.is_armed());
    }
}
