//! Structured trace events serialized as Chrome trace JSON.
//!
//! Events use the Chrome trace event format (`ph` = `B`/`E`/`i`/`C`/`M`)
//! with the simulated cycle as the timestamp, so a dump loads directly in
//! [Perfetto](https://ui.perfetto.dev) or `chrome://tracing` and the time
//! axis reads in cycles (rendered as microseconds). Components get stable
//! track ids via [`track`] so traces from different runs line up, and
//! RCC's logical clocks appear as counter tracks per L2 bank.

use std::fmt::Write as _;

/// Stable track-id (tid) layout. One process (`pid` 1) with one thread
/// per component keeps Perfetto's grouping flat and deterministic.
pub mod track {
    /// System-wide events (rollover spans, watchdog).
    pub const SYSTEM: u64 = 1;
    /// Core `i` gets `CORE_BASE + i`.
    pub const CORE_BASE: u64 = 100;
    /// L1 `i` gets `L1_BASE + i`.
    pub const L1_BASE: u64 = 300;
    /// L2 bank `i` gets `L2_BASE + i`.
    pub const L2_BASE: u64 = 500;
    /// DRAM channel `i` gets `DRAM_BASE + i`.
    pub const DRAM_BASE: u64 = 700;
    /// Request network.
    pub const NOC_REQ: u64 = 900;
    /// Response network.
    pub const NOC_RESP: u64 = 901;
}

/// An event argument value (rendered into the `args` object).
#[derive(Debug, Clone, PartialEq)]
pub enum ArgValue {
    /// Unsigned integer argument.
    U(u64),
    /// Float argument.
    F(f64),
    /// String argument.
    S(String),
}

#[derive(Debug, Clone)]
enum Ev {
    /// Span begin (`ph: "B"`).
    Begin {
        ts: u64,
        tid: u64,
        name: &'static str,
    },
    /// Span end (`ph: "E"`).
    End { ts: u64, tid: u64 },
    /// Instant event (`ph: "i"`, thread scope).
    Instant {
        ts: u64,
        tid: u64,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    },
    /// Counter sample (`ph: "C"`).
    Counter {
        ts: u64,
        tid: u64,
        name: &'static str,
        value: u64,
    },
}

/// Buffer of structured trace events with a hard cap.
///
/// Once `max_events` is reached further events are *counted* as dropped,
/// never silently discarded — the dropped count is surfaced both via
/// [`TraceBuffer::dropped`] and as a final instant event in the dump.
#[derive(Debug, Clone, Default)]
pub struct TraceBuffer {
    events: Vec<Ev>,
    names: Vec<(u64, String)>,
    max_events: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Creates a buffer holding at most `max_events` events.
    pub fn new(max_events: usize) -> Self {
        TraceBuffer {
            events: Vec::new(),
            names: Vec::new(),
            max_events,
            dropped: 0,
        }
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Events rejected because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Registers a human-readable name for a track (emitted as a
    /// `thread_name` metadata event).
    pub fn thread_name(&mut self, tid: u64, name: String) {
        self.names.push((tid, name));
    }

    fn push(&mut self, ev: Ev) {
        if self.events.len() < self.max_events {
            self.events.push(ev);
        } else {
            self.dropped += 1;
        }
    }

    /// Opens a span on `tid` at cycle `ts`.
    pub fn begin(&mut self, ts: u64, tid: u64, name: &'static str) {
        self.push(Ev::Begin { ts, tid, name });
    }

    /// Closes the innermost open span on `tid` at cycle `ts`.
    pub fn end(&mut self, ts: u64, tid: u64) {
        self.push(Ev::End { ts, tid });
    }

    /// Records an instant event with arguments.
    pub fn instant(
        &mut self,
        ts: u64,
        tid: u64,
        name: &'static str,
        args: Vec<(&'static str, ArgValue)>,
    ) {
        self.push(Ev::Instant {
            ts,
            tid,
            name,
            args,
        });
    }

    /// Records a counter sample (rendered as a counter track).
    pub fn counter(&mut self, ts: u64, tid: u64, name: &'static str, value: u64) {
        self.push(Ev::Counter {
            ts,
            tid,
            name,
            value,
        });
    }

    /// Number of instant events with the given name (test helper).
    pub fn count_instants(&self, name: &str) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e, Ev::Instant { name: n, .. } if *n == name))
            .count()
    }

    /// Track ids that carry an instant event with the given name
    /// (test helper; deduplicated, sorted).
    pub fn instant_tids(&self, name: &str) -> Vec<u64> {
        let mut tids: Vec<u64> = self
            .events
            .iter()
            .filter_map(|e| match e {
                Ev::Instant { name: n, tid, .. } if *n == name => Some(*tid),
                _ => None,
            })
            .collect();
        tids.sort_unstable();
        tids.dedup();
        tids
    }

    /// Serializes as Chrome trace JSON (`{"traceEvents": [...]}`).
    ///
    /// Timestamps are simulated cycles written to the `ts` field, so
    /// Perfetto's time axis reads directly in cycles.
    pub fn to_chrome_json(&self) -> String {
        let mut out = String::from("{\"traceEvents\": [\n");
        let mut first = true;
        let emit = |s: String, out: &mut String, first: &mut bool| {
            if !*first {
                out.push_str(",\n");
            }
            *first = false;
            out.push_str("  ");
            out.push_str(&s);
        };
        emit(
            "{\"ph\": \"M\", \"pid\": 1, \"name\": \"process_name\", \
             \"args\": {\"name\": \"rcc-sim\"}}"
                .to_string(),
            &mut out,
            &mut first,
        );
        for (tid, name) in &self.names {
            emit(
                format!(
                    "{{\"ph\": \"M\", \"pid\": 1, \"tid\": {tid}, \
                     \"name\": \"thread_name\", \"args\": {{\"name\": \"{}\"}}}}",
                    escape(name)
                ),
                &mut out,
                &mut first,
            );
        }
        for ev in &self.events {
            let s = match ev {
                Ev::Begin { ts, tid, name } => format!(
                    "{{\"ph\": \"B\", \"pid\": 1, \"tid\": {tid}, \"ts\": {ts}, \
                     \"name\": \"{name}\"}}"
                ),
                Ev::End { ts, tid } => {
                    format!("{{\"ph\": \"E\", \"pid\": 1, \"tid\": {tid}, \"ts\": {ts}}}")
                }
                Ev::Instant {
                    ts,
                    tid,
                    name,
                    args,
                } => {
                    let mut a = String::new();
                    for (i, (k, v)) in args.iter().enumerate() {
                        if i > 0 {
                            a.push_str(", ");
                        }
                        let _ = match v {
                            ArgValue::U(u) => write!(a, "\"{k}\": {u}"),
                            ArgValue::F(f) => write!(a, "\"{k}\": {}", fmt_f64(*f)),
                            ArgValue::S(s) => write!(a, "\"{k}\": \"{}\"", escape(s)),
                        };
                    }
                    format!(
                        "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {tid}, \"ts\": {ts}, \
                         \"s\": \"t\", \"name\": \"{name}\", \"args\": {{{a}}}}}"
                    )
                }
                Ev::Counter {
                    ts,
                    tid,
                    name,
                    value,
                } => format!(
                    "{{\"ph\": \"C\", \"pid\": 1, \"tid\": {tid}, \"ts\": {ts}, \
                     \"name\": \"{name}\", \"args\": {{\"value\": {value}}}}}"
                ),
            };
            emit(s, &mut out, &mut first);
        }
        if self.dropped > 0 {
            emit(
                format!(
                    "{{\"ph\": \"i\", \"pid\": 1, \"tid\": {}, \"ts\": 0, \"s\": \"t\", \
                     \"name\": \"trace-events-dropped\", \
                     \"args\": {{\"count\": {}}}}}",
                    track::SYSTEM,
                    self.dropped
                ),
                &mut out,
                &mut first,
            );
        }
        out.push_str("\n]}\n");
        out
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on a whole f64 prints no decimal point; keep it JSON-number
        // compatible either way (it already is), but force a fraction so
        // consumers treat the field as float-typed consistently.
        if s.contains('.') || s.contains('e') {
            s
        } else {
            format!("{s}.0")
        }
    } else {
        "0.0".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn events_serialize_to_parseable_chrome_json() {
        let mut t = TraceBuffer::new(100);
        t.thread_name(track::SYSTEM, "system".to_string());
        t.begin(10, track::SYSTEM, "rollover");
        t.instant(
            12,
            track::L2_BASE,
            "lease",
            vec![
                ("exp", ArgValue::U(77)),
                ("who", ArgValue::S("l2-0".into())),
            ],
        );
        t.counter(16, track::L2_BASE, "logical-time", 42);
        t.end(20, track::SYSTEM);
        let v = json::parse(&t.to_chrome_json()).expect("trace JSON must parse");
        let evs = v
            .get("traceEvents")
            .and_then(json::JsonValue::as_array)
            .expect("traceEvents array");
        // 2 metadata + 4 events.
        assert_eq!(evs.len(), 6);
        let phases: Vec<_> = evs
            .iter()
            .map(|e| {
                e.get("ph")
                    .and_then(json::JsonValue::as_str)
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(phases, ["M", "M", "B", "i", "C", "E"]);
        assert_eq!(
            evs[3]
                .get("args")
                .and_then(|a| a.get("exp"))
                .and_then(json::JsonValue::as_u64),
            Some(77)
        );
    }

    #[test]
    fn cap_counts_drops_and_reports_them() {
        let mut t = TraceBuffer::new(2);
        for i in 0..5 {
            t.instant(i, track::SYSTEM, "x", vec![]);
        }
        assert_eq!(t.len(), 2);
        assert_eq!(t.dropped(), 3);
        let dump = t.to_chrome_json();
        assert!(dump.contains("trace-events-dropped"));
        let v = json::parse(&dump).unwrap();
        let evs = v
            .get("traceEvents")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        let last = evs.last().unwrap();
        assert_eq!(
            last.get("args")
                .and_then(|a| a.get("count"))
                .and_then(json::JsonValue::as_u64),
            Some(3)
        );
    }

    #[test]
    fn strings_are_escaped() {
        let mut t = TraceBuffer::new(10);
        t.instant(
            0,
            track::SYSTEM,
            "note",
            vec![("msg", ArgValue::S("a\"b\\c\nd".into()))],
        );
        let v = json::parse(&t.to_chrome_json()).expect("escaped JSON must parse");
        let evs = v
            .get("traceEvents")
            .and_then(json::JsonValue::as_array)
            .unwrap();
        assert_eq!(
            evs.last()
                .unwrap()
                .get("args")
                .and_then(|a| a.get("msg"))
                .and_then(json::JsonValue::as_str),
            Some("a\"b\\c\nd")
        );
    }

    #[test]
    fn instant_helpers_find_tracks() {
        let mut t = TraceBuffer::new(10);
        t.instant(1, track::L2_BASE, "lease", vec![]);
        t.instant(2, track::L2_BASE + 1, "lease", vec![]);
        t.instant(3, track::L2_BASE, "lease", vec![]);
        assert_eq!(t.count_instants("lease"), 3);
        assert_eq!(
            t.instant_tids("lease"),
            vec![track::L2_BASE, track::L2_BASE + 1]
        );
        assert_eq!(t.count_instants("none"), 0);
    }
}
