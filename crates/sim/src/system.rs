//! The cycle-driven full system.

use crate::error::{BlockedWarp, ComponentState, HangDump, SimError};
use crate::metrics::{RunMetrics, SchedStats};
use crate::observe::Observer;
use crate::sched::EventQueue;
use rcc_chaos::{stream, ChaosSpec, PerturbPoint, Perturber, Site};
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, WarpId};
use rcc_common::snap::StateDigest;
use rcc_common::stats::TrafficStats;
use rcc_common::time::{Cycle, Timestamp};
use rcc_common::FxHashMap;
use rcc_core::msg::{
    flits_for, Access, AccessKind, AccessOutcome, Completion, CompletionKind, RejectReason, ReqMsg,
    ReqPayload, RespMsg, RespPayload,
};
use rcc_core::protocol::{L1Cache, L1Outbox, L1Stats, L2Bank, L2Outbox, L2Stats, Protocol};
use rcc_core::scoreboard::Scoreboard;
use rcc_dram::DramChannel;
use rcc_gpu::{Core, CoreParams, CoreStats, FencePolicy};
use rcc_mem::LineData;
use rcc_noc::{Network, NocEnergyModel};
use rcc_obs::{track, ArgValue, ObsConfig, ObsReport, SimPhase, SimProfile};
use rcc_verify::sanitizer::{SanReport, Sanitizer};
use rcc_workloads::Workload;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// What a store/atomic will write (for the scoreboard).
#[derive(Debug, Clone, Copy)]
enum PendingValue {
    Store(u64),
    Atomic(rcc_core::msg::AtomicOp),
}

type PendingVals = FxHashMap<(usize, WarpId, WordAddr), VecDeque<PendingValue>>;
type LoadLog = FxHashMap<(usize, usize, WordAddr), Vec<u64>>;

/// Self-profiling sampling stride: wall-clock phase marks are taken on
/// every N-th executed step and each charge is scaled by N (see
/// `System::charge`). Sampling is keyed off the deterministic step
/// counter, so it is reproducible and never touches simulated state.
const PROFILE_STRIDE: u64 = 16;

/// Rollover coordination (Section III-D), simulator-orchestrated: on
/// threshold crossing the cores pause, the system drains, the L2s reset
/// their timestamps, and every L1 is flushed over the network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum RolloverState {
    Idle,
    Draining,
    Flushing { acks_outstanding: usize },
}

/// Reject-spin tracking for one core (see `Core::stall_horizon`): the
/// engine's license to sleep through cycles that provably repeat the
/// same structurally rejected issue attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SpinState {
    /// The core's last tick did not end in a replayable reject.
    Idle,
    /// The last tick ended in a structural reject (chaos disarmed, no
    /// same-cycle completion). A controller's reject path may carry a
    /// one-time side effect — TC self-invalidates the expired line it
    /// probes — so the spin engages only if the next retry repeats the
    /// exact same stat delta, by which point the path is pure.
    Candidate,
    /// Two consecutive retries produced identical stat deltas: the
    /// reject path is in its pure steady state, every further cycle
    /// repeats it bit-exactly, and gap cycles replay as `spin_delta`
    /// copies.
    Active,
}

/// Shared bookkeeping the per-cycle closures need mutable access to.
struct Recorder {
    scoreboard: Option<Scoreboard>,
    sanitizer: Option<Sanitizer>,
    pending_vals: PendingVals,
    load_log: LoadLog,
    epoch_base: u64,
    max_ts_seen: u64,
    completions: u64,
    /// Golden final value per word: the `(shifted_ts, seq)`-latest write
    /// each word has completed, independent of where the line currently
    /// lives (dirty lines never written back stay out of
    /// `System::memory`). This is what "final memory state" means for
    /// differential trace replay: the logical contents after every write
    /// has logically landed.
    final_vals: FxHashMap<WordAddr, (u64, u64, u64)>,
    /// First engine-invariant failure observed this cycle. Completion
    /// bookkeeping runs inside `Core::tick`'s access closure, where no
    /// `Result` can escape, so the failure is latched here and surfaced
    /// as a typed [`SimError::ProtocolInvariant`] at the end of the step.
    invariant_failure: Option<String>,
}

impl Recorder {
    fn flag_invariant(&mut self, detail: String) {
        if self.invariant_failure.is_none() {
            self.invariant_failure = Some(detail);
        }
    }

    fn note_issue(&mut self, core: usize, access: Access) {
        let key = (core, access.warp, access.addr);
        match access.kind {
            AccessKind::Store { value } => self
                .pending_vals
                .entry(key)
                .or_default()
                .push_back(PendingValue::Store(value)),
            AccessKind::Atomic { op } => self
                .pending_vals
                .entry(key)
                .or_default()
                .push_back(PendingValue::Atomic(op)),
            AccessKind::Load => {}
        }
        if let Some(san) = &mut self.sanitizer {
            san.on_issue(core, &access);
        }
    }

    /// The L1 rejected the access: forget what `note_issue` registered
    /// (the warp retries from scratch).
    fn note_reject(&mut self, core: usize, access: Access) {
        if !matches!(access.kind, AccessKind::Load) {
            self.pending_vals
                .get_mut(&(core, access.warp, access.addr))
                .and_then(VecDeque::pop_back);
        }
        if let Some(san) = &mut self.sanitizer {
            san.on_reject(core, &access);
        }
    }

    fn note_completion(&mut self, core: usize, c: &Completion) {
        self.completions += 1;
        let key = (core, c.warp, c.addr);
        let mut pop = || {
            self.pending_vals
                .get_mut(&key)
                .and_then(VecDeque::pop_front)
        };
        let store_value = match c.kind {
            CompletionKind::LoadDone { value } => {
                self.load_log
                    .entry((core, c.warp.index(), c.addr))
                    .or_default()
                    .push(value);
                None
            }
            CompletionKind::StoreDone => match pop() {
                Some(PendingValue::Store(v)) => Some(v),
                other => {
                    self.flag_invariant(format!(
                        "store completion without value: {other:?} ({key:?}, {c:?})"
                    ));
                    None
                }
            },
            CompletionKind::AtomicDone { old } => match pop() {
                Some(PendingValue::Atomic(op)) => Some(op.apply(old)),
                other => {
                    self.flag_invariant(format!(
                        "atomic completion without op: {other:?} ({key:?}, {c:?})"
                    ));
                    None
                }
            },
        };
        // Offset logical timestamps by the rollover epoch so the global
        // order is preserved across timestamp resets.
        let shifted_ts = self.epoch_base + c.ts.raw();
        self.max_ts_seen = self.max_ts_seen.max(shifted_ts);
        if let Some(value) = store_value {
            let slot = self.final_vals.entry(c.addr).or_insert((0, 0, 0));
            if (shifted_ts, c.seq) >= (slot.0, slot.1) {
                *slot = (shifted_ts, c.seq, value);
            }
        }
        if let Some(sb) = &mut self.scoreboard {
            let shifted = Completion {
                ts: Timestamp(shifted_ts),
                ..*c
            };
            sb.record(CoreId(core), &shifted, store_value);
        }
        if let Some(san) = &mut self.sanitizer {
            san.on_complete(core, c, shifted_ts);
        }
    }
}

/// A full simulated GPU running one workload under one protocol.
pub struct System<P: Protocol> {
    cfg: GpuConfig,
    workload_name: String,
    cores: Vec<Core>,
    l1s: Vec<P::L1>,
    req_net: Network<ReqMsg>,
    resp_net: Network<RespMsg>,
    l2s: Vec<P::L2>,
    l2_inbox: Vec<VecDeque<ReqMsg>>,
    l2_delay: Vec<VecDeque<(u64, RespMsg)>>,
    drams: Vec<DramChannel>,
    memory: FxHashMap<LineAddr, LineData>,
    cycle: Cycle,
    recorder: Recorder,
    traffic: TrafficStats,
    energy_model: NocEnergyModel,
    rollover: RolloverState,
    rollovers: u64,
    last_progress: u64,
    kind: rcc_core::ProtocolKind,
    /// Incremental mirror of [`System::memory_system_pending_scan`]:
    /// updated with before/after deltas at every controller call site so
    /// the per-cycle drain checks are O(1).
    mem_pending: usize,
    /// Whether `run` uses the event-driven engine (calendar queue with
    /// exact wake events) instead of stepping every cycle.
    ff_enabled: bool,
    /// Cycles skipped by the event-driven engine (simulated results are
    /// unaffected; this only measures how much stepping was avoided).
    skipped_cycles: u64,
    /// Number of scheduler jumps that skipped at least one cycle.
    ff_jumps: u64,
    /// Calendar queue of exact per-component wake cycles (the
    /// event-driven engine's core; see [`crate::sched`]).
    sched: EventQueue,
    /// True while `run_until` is driving the event-driven engine. Gates
    /// queue arming and lazy core replay inside helpers shared with the
    /// legacy stepped engine.
    scheduled_mode: bool,
    /// Per-core cycle through which per-cycle stall bookkeeping has been
    /// accounted (by a real tick or a `Core::fast_forward` replay). The
    /// event-driven engine leaves un-woken cores untouched and replays
    /// the gap lazily right before the next tick, completion delivery,
    /// or digest/metrics read.
    synced_to: Vec<u64>,
    /// Per-core reject-spin tracker: once `Active`, every cycle until
    /// the core's next wake repeats the same structurally rejected
    /// retry (the fixed point of [`Core::stall_horizon`]), and gap
    /// cycles replayed for it additionally charge one structural stall
    /// (core) and one copy of [`System::spin_delta`] (L1) each.
    spin_state: Vec<SpinState>,
    /// The exact per-retry L1 stat delta observed on each core's last
    /// executed reject (e.g. RCC bumps `expired_loads` alongside
    /// `rejects` when the spinning load keeps probing a stale resident
    /// line). Only meaningful while the matching `spin_state` is not
    /// `Idle`.
    spin_delta: Vec<L1Stats>,
    /// Wake-slack telemetry: accumulated |queue wake − conservative
    /// min-scan bound| and sample count (sampled every 64th jump).
    wake_slack_sum: u64,
    wake_slack_samples: u64,
    /// Reusable outbox buffers (capacity persists across cycles).
    scratch_l1: L1Outbox,
    scratch_l2: L2Outbox,
    /// Chaos hook for the L2 delay pipes (the pipes live in the system,
    /// not in a component crate, so the system samples for them).
    chaos_pipe: Option<Perturber>,
    /// Chaos hook that bounces otherwise-issuable L1 accesses.
    chaos_access: Option<Perturber>,
    /// Total perturbations fired across every hook (shared counter).
    chaos_fired: Arc<AtomicU64>,
    /// Attached observer (sampler + trace); `None` — the default — keeps
    /// the hot path at one branch per site, like chaos.
    obs: Option<Observer>,
    /// Self-profiling wall-clock attribution; `None` disables timing.
    profile: Option<SimProfile>,
    /// Trace capture: annotates each program op with its first-issue
    /// cycle, fed from the cores' ephemeral per-tick output. `None` —
    /// the default — keeps the hot path at one branch per core tick;
    /// armed or not, simulated state never observes it (the passivity
    /// tests pin this).
    trace_rec: Option<rcc_trace::TraceRecorder>,
}

impl<P: Protocol> System<P> {
    /// Builds a system for `protocol` running `workload`.
    pub fn new(protocol: &P, cfg: &GpuConfig, workload: &Workload, check_sc: bool) -> Self {
        let kind = protocol.kind();
        let fence_policy = match kind {
            rcc_core::ProtocolKind::TcWeak => FencePolicy::DrainGwct,
            rcc_core::ProtocolKind::RccWo => FencePolicy::Drain,
            _ => FencePolicy::Free,
        };
        let weak = !matches!(
            kind.consistency(),
            rcc_core::kind::ConsistencyModel::SequentialConsistency
        );
        let warps_per_core = workload
            .programs
            .iter()
            .map(Vec::len)
            .max()
            .unwrap_or(0)
            .max(1);
        let params = if weak {
            CoreParams::weakly_ordered(warps_per_core, workload.warps_per_workgroup, fence_policy)
        } else {
            CoreParams::sequential(warps_per_core, workload.warps_per_workgroup)
        };
        let cores: Vec<Core> = (0..cfg.num_cores)
            .map(|c| {
                let programs = workload.programs.get(c).cloned().unwrap_or_default();
                Core::new(CoreId(c), params.clone(), programs)
            })
            .collect();
        let nparts = cfg.l2.num_partitions;
        System {
            workload_name: workload.name.to_string(),
            cores,
            l1s: (0..cfg.num_cores)
                .map(|c| protocol.make_l1(CoreId(c), cfg))
                .collect(),
            req_net: Network::new(&cfg.noc, cfg.num_cores, nparts, kind.num_vcs()),
            resp_net: Network::new(&cfg.noc, nparts, cfg.num_cores, kind.num_vcs()),
            l2s: (0..nparts)
                .map(|p| protocol.make_l2(rcc_common::ids::PartitionId(p), cfg))
                .collect(),
            l2_inbox: (0..nparts).map(|_| VecDeque::new()).collect(),
            l2_delay: (0..nparts).map(|_| VecDeque::new()).collect(),
            drams: (0..nparts).map(|_| DramChannel::new(&cfg.dram)).collect(),
            memory: FxHashMap::default(),
            cycle: Cycle::ZERO,
            recorder: Recorder {
                scoreboard: check_sc.then(Scoreboard::new),
                sanitizer: None,
                pending_vals: FxHashMap::default(),
                load_log: FxHashMap::default(),
                epoch_base: 0,
                max_ts_seen: 0,
                completions: 0,
                final_vals: FxHashMap::default(),
                invariant_failure: None,
            },
            traffic: TrafficStats::new(),
            energy_model: NocEnergyModel::default(),
            rollover: RolloverState::Idle,
            rollovers: 0,
            last_progress: 0,
            kind,
            cfg: cfg.clone(),
            mem_pending: 0,
            ff_enabled: true,
            skipped_cycles: 0,
            ff_jumps: 0,
            // cores | l1s | req net | resp net | banks | inboxes |
            // pipes | drams | rollover coordinator.
            sched: EventQueue::new(2 * cfg.num_cores + 2 + 4 * nparts + 1),
            scheduled_mode: false,
            synced_to: vec![0; cfg.num_cores],
            spin_state: vec![SpinState::Idle; cfg.num_cores],
            spin_delta: vec![L1Stats::default(); cfg.num_cores],
            wake_slack_sum: 0,
            wake_slack_samples: 0,
            scratch_l1: L1Outbox::new(),
            scratch_l2: L2Outbox::new(),
            chaos_pipe: None,
            chaos_access: None,
            chaos_fired: Arc::new(AtomicU64::new(0)),
            obs: None,
            profile: None,
            trace_rec: None,
        }
    }

    /// Arms trace capture for this run: every program op gets annotated
    /// with its first-issue cycle. Call before the run starts; retrieve
    /// the capture with [`System::take_trace_recorder`] when it ends.
    pub fn set_trace_recorder(&mut self, rec: rcc_trace::TraceRecorder) {
        self.trace_rec = Some(rec);
    }

    /// Detaches the trace recorder (if one was armed), ending capture.
    pub fn take_trace_recorder(&mut self) -> Option<rcc_trace::TraceRecorder> {
        self.trace_rec.take()
    }

    /// Arms deterministic perturbation injection for this run: every
    /// timing-bearing component gets a [`Perturber`] on its own fixed rng
    /// stream (see [`rcc_chaos::stream`]), all sharing one fired-event
    /// counter (surfaced as [`RunMetrics::chaos_events`]). Call before
    /// the run starts; off by default.
    pub fn set_chaos(&mut self, spec: &ChaosSpec) {
        let fired = &self.chaos_fired;
        let hook =
            |s: u64| Box::new(Perturber::new(spec, s, Arc::clone(fired))) as Box<dyn PerturbPoint>;
        self.req_net.set_chaos(hook(stream::REQ_NET));
        self.resp_net.set_chaos(hook(stream::RESP_NET));
        for (p, dram) in self.drams.iter_mut().enumerate() {
            dram.set_chaos(hook(stream::DRAM_BASE + p as u64));
        }
        for (i, l1) in self.l1s.iter_mut().enumerate() {
            l1.set_chaos(hook(stream::L1_BASE + i as u64));
        }
        for (p, l2) in self.l2s.iter_mut().enumerate() {
            l2.set_chaos(hook(stream::L2_BASE + p as u64));
        }
        self.chaos_pipe = Some(Perturber::new(spec, stream::L2_PIPE, Arc::clone(fired)));
        self.chaos_access = Some(Perturber::new(spec, stream::L1_ACCESS, Arc::clone(fired)));
    }

    /// Perturbations fired so far (0 unless [`System::set_chaos`] armed).
    pub fn chaos_events(&self) -> u64 {
        self.chaos_fired.load(Ordering::Relaxed)
    }

    /// Attaches an observer (time-series sampler and/or trace recorder;
    /// see `rcc-obs`). Call before the run starts; off by default.
    /// Observation is passive — simulated results are bit-identical with
    /// or without it (the determinism tests enforce this).
    pub fn set_observer(&mut self, cfg: ObsConfig) {
        if cfg.is_armed() {
            self.obs = Some(Observer::new(cfg, &self.cfg));
        }
    }

    /// Enables self-profiling: per-phase wall-clock attribution of the
    /// simulator itself, surfaced as [`RunMetrics::profile`]. Purely
    /// diagnostic; never feeds back into simulation.
    pub fn set_profiling(&mut self, enabled: bool) {
        self.profile = enabled.then(SimProfile::new);
    }

    /// Detaches the observer and returns what it recorded, pushing a
    /// final tail sample for the partial interval at the current cycle.
    /// `None` if no observer was armed.
    pub fn take_observation(&mut self) -> Option<ObsReport> {
        let now = self.cycle.raw();
        let obs = self.obs.as_ref()?;
        if obs.next_sample_cycle().is_some() && !obs.sampled_at(now) {
            self.take_sample();
        }
        self.obs.take().map(Observer::into_report)
    }

    /// Records one time-series row (and the logical-time counter tracks)
    /// at the current cycle.
    fn take_sample(&mut self) {
        // Samples read counters that reject-spin gaps replay lazily
        // (L1 `expired_loads`, core stall totals): settle them so the
        // boundary row matches a stepped run bit-exactly.
        self.sync_cores_to_now();
        let Some(mut obs) = self.obs.take() else {
            return;
        };
        let now = self.cycle.raw();
        let row = obs.row_mut();
        row.push(self.cores.iter().map(|c| c.stats().issued).sum());
        row.push(self.cores.iter().map(|c| c.stats().mem_ops).sum());
        row.push(self.l1s.iter().map(|c| c.stats().loads).sum());
        row.push(self.l1s.iter().map(|c| c.stats().load_hits).sum());
        row.push(self.l1s.iter().map(|c| c.stats().expired_loads).sum());
        row.push(self.l1s.iter().map(|c| c.stats().renewed_loads).sum());
        row.push(self.l2s.iter().map(|b| b.stats().gets).sum());
        row.push(self.l2s.iter().map(|b| b.stats().dram_fetches).sum());
        row.push(self.l2s.iter().map(|b| b.stats().renews_granted).sum());
        row.push(self.drams.iter().map(DramChannel::row_hits).sum());
        row.push(self.drams.iter().map(DramChannel::row_misses).sum());
        row.push(self.rollovers);
        row.push(self.l1s.iter().map(L1Cache::pending).sum::<usize>() as u64);
        row.push(self.l2s.iter().map(L2Bank::pending).sum::<usize>() as u64);
        row.push(self.req_net.in_flight() as u64);
        row.push(self.resp_net.in_flight() as u64);
        row.push(self.req_net.peak_in_flight() as u64);
        row.push(self.resp_net.peak_in_flight() as u64);
        for core in &self.cores {
            row.push(core.active_warps() as u64);
        }
        for class in rcc_common::stats::MsgClass::ALL {
            row.push(self.traffic.flits(class));
        }
        obs.commit_sample(now);
        if obs.tracing() {
            // RCC tracks: each bank's logical clock as a counter track.
            for (p, l2) in self.l2s.iter().enumerate() {
                if let Some(ts) = l2.logical_time() {
                    obs.trace_mut().counter(
                        now,
                        track::L2_BASE + p as u64,
                        "logical-time",
                        ts.raw(),
                    );
                }
            }
        }
        self.obs = Some(obs);
    }

    /// Charges the wall-clock since `*mark` to `phase` and re-arms the
    /// mark (no-op when profiling is off or this step is unsampled).
    ///
    /// Profiling is *sampled*: only every [`PROFILE_STRIDE`]-th step
    /// carries marks, and each charge is scaled by the stride, so the
    /// per-phase totals stay unbiased estimates while the clock reads —
    /// which otherwise dominate short runs at ~10 per executed cycle —
    /// drop to a sixteenth. The stride is keyed off the deterministic
    /// step counter, so the sampling pattern is reproducible and never
    /// feeds simulated state.
    #[inline]
    fn charge(&mut self, mark: &mut Option<std::time::Instant>, phase: SimPhase) {
        if let Some(m) = mark {
            // rcc-lint: allow(wall-clock, self-profiling overhead measurement; never feeds simulated state)
            let now = std::time::Instant::now();
            if let Some(p) = &mut self.profile {
                p.charge(phase, now.duration_since(*m) * PROFILE_STRIDE as u32);
            }
            *m = now;
        }
    }

    /// Enables or disables idle-cycle fast-forwarding (on by default).
    /// Results are bit-identical either way; disabling forces the run to
    /// step through every cycle (the reference behaviour the determinism
    /// tests compare against).
    pub fn set_fast_forward(&mut self, enabled: bool) {
        self.ff_enabled = enabled;
    }

    /// Cycles skipped by fast-forwarding so far.
    pub fn skipped_cycles(&self) -> u64 {
        self.skipped_cycles
    }

    /// Attaches the runtime SC sanitizer (off by default; recording adds
    /// two hash-map operations per access and the check itself runs only
    /// in [`System::sanitizer_report`]). Call before the run starts.
    pub fn enable_sanitizer(&mut self) {
        if self.recorder.sanitizer.is_none() {
            let mut san = Sanitizer::new();
            for (&line, data) in &self.memory {
                for (idx, value) in data.nonzero_words() {
                    san.seed(line.word(idx), value);
                }
            }
            self.recorder.sanitizer = Some(san);
        }
    }

    /// Runs the SC check over everything recorded so far. `None` if the
    /// sanitizer was never enabled.
    pub fn sanitizer_report(&self) -> Option<SanReport> {
        self.recorder.sanitizer.as_ref().map(Sanitizer::check)
    }

    /// Pre-seeds memory with a value (records it as a position-0 write).
    pub fn seed_memory(&mut self, addr: WordAddr, value: u64) {
        self.memory
            .entry(addr.line())
            .or_insert_with(LineData::zeroed)
            .set_word_at(addr, value);
        if let Some(san) = &mut self.recorder.sanitizer {
            san.seed(addr, value);
        }
        // Seeds sort before every simulated write: (ts, seq) = (0, 0).
        self.recorder.final_vals.insert(addr, (0, 0, value));
        if let Some(sb) = &mut self.recorder.scoreboard {
            sb.record(
                CoreId(usize::MAX % 251),
                &Completion {
                    warp: WarpId(0),
                    addr,
                    kind: CompletionKind::StoreDone,
                    ts: Timestamp::ZERO,
                    seq: 0,
                },
                Some(value),
            );
        }
    }

    /// Current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Whether every warp on every core has retired.
    pub fn done(&self) -> bool {
        self.cores.iter().all(Core::done)
    }

    /// All values each `(core, warp)` loaded from `addr`, in program
    /// order — used by the litmus harness.
    pub fn loads_of(&self, core: usize, warp: usize, addr: WordAddr) -> &[u64] {
        self.recorder
            .load_log
            .get(&(core, warp, addr))
            .map_or(&[], Vec::as_slice)
    }

    fn bill_req(traffic: &mut TrafficStats, cfg: &GpuConfig, msg: &ReqMsg) -> u64 {
        let class = msg.payload.class();
        let flits = flits_for(class, cfg.noc.flit_bytes, cfg.noc.control_bytes);
        traffic.record(class, flits);
        flits
    }

    fn bill_resp(traffic: &mut TrafficStats, cfg: &GpuConfig, msg: &RespMsg) -> u64 {
        let class = msg.payload.class();
        let flits = flits_for(class, cfg.noc.flit_bytes, cfg.noc.control_bytes);
        traffic.record(class, flits);
        flits
    }

    /// Routes one L1 outbox (drained in place so its buffers can be
    /// reused): requests onto the request network, completions into the
    /// core and recorder. `core_wake_floor` is the earliest cycle the
    /// core can still act on a completion delivered here — the current
    /// cycle for callers that precede the core phase, the next cycle for
    /// the core phase itself.
    fn process_l1_out(&mut self, core: usize, out: &mut L1Outbox, core_wake_floor: u64) {
        self.mem_pending += out.to_l2.len();
        let injected = !out.to_l2.is_empty();
        for req in out.to_l2.drain(..) {
            let part = req.line.partition(self.cfg.l2.num_partitions);
            let flits = Self::bill_req(&mut self.traffic, &self.cfg, &req);
            self.req_net.inject(self.cycle, core, part, 0, flits, req);
        }
        if injected && self.scheduled_mode {
            self.arm_req_from_state();
        }
        if self.scheduled_mode
            && !out.completions.is_empty()
            && self.rollover == RolloverState::Idle
        {
            // A completion is an *input* to the core: replay the idle gap
            // before delivering it, and make sure the core wakes for it
            // (its own wake hint could not have foreseen this input).
            self.sync_core_through(core, self.cycle.raw().saturating_sub(1));
            self.sched.arm_min(self.comp_core(core), core_wake_floor);
        }
        for c in out.completions.drain(..) {
            if let Some(obs) = &mut self.obs {
                if obs.tracing() {
                    let name = match c.kind {
                        CompletionKind::LoadDone { .. } => "load-done",
                        CompletionKind::StoreDone => "store-done",
                        CompletionKind::AtomicDone { .. } => "atomic-done",
                    };
                    obs.trace_mut().instant(
                        self.cycle.raw(),
                        track::CORE_BASE + core as u64,
                        name,
                        vec![
                            ("warp", ArgValue::U(c.warp.index() as u64)),
                            ("addr", ArgValue::U(c.addr.0)),
                        ],
                    );
                }
            }
            self.recorder.note_completion(core, &c);
            self.cores[core].complete(self.cycle, &c);
            self.last_progress = self.cycle.raw();
        }
    }

    /// Routes one L2 outbox (drained in place): responses into the
    /// bank's delay pipe, DRAM commands into the channel, magic
    /// coherence actions straight to L1s. `wake_floor` is the earliest
    /// cycle the pipe/DRAM phases can still observe the new work (the
    /// current cycle for callers that precede those phases, the next
    /// cycle for callers that follow them).
    fn process_l2_out(&mut self, part: usize, out: &mut L2Outbox, wake_floor: u64) {
        let ready = self.cycle.raw() + self.cfg.l2.partition.latency;
        self.mem_pending += out.to_l1.len() + out.dram_fetch.len() + out.dram_writeback.len();
        for resp in out.to_l1.drain(..) {
            if let Some(obs) = &mut self.obs {
                if obs.tracing() {
                    let tid = track::L2_BASE + part as u64;
                    let ts = self.cycle.raw();
                    match &resp.payload {
                        // A `u64::MAX` expiration is the permission-based
                        // protocols' "no lease" sentinel — only finite
                        // grants are lease events.
                        RespPayload::Data { ver, exp, .. } if exp.raw() != u64::MAX => {
                            obs.trace_mut().instant(
                                ts,
                                tid,
                                "lease",
                                vec![
                                    ("line", ArgValue::U(resp.line.0)),
                                    ("ver", ArgValue::U(ver.raw())),
                                    ("exp", ArgValue::U(exp.raw())),
                                ],
                            );
                        }
                        RespPayload::Renew { exp } => obs.trace_mut().instant(
                            ts,
                            tid,
                            "lease-renew",
                            vec![
                                ("line", ArgValue::U(resp.line.0)),
                                ("exp", ArgValue::U(exp.raw())),
                            ],
                        ),
                        _ => {}
                    }
                }
            }
            let ready = match &mut self.chaos_pipe {
                Some(chaos) => {
                    // Clamp to the partition's last queued readiness: the
                    // pipe must stay sorted so its front remains the
                    // earliest entry (both the drain loop in `step` and
                    // the fast-forward hint rely on that).
                    let floor = self.l2_delay[part].back().map_or(0, |(r, _)| *r);
                    (ready + chaos.jitter(Site::L2Pipe)).max(floor)
                }
                None => ready,
            };
            self.l2_delay[part].push_back((ready, resp));
        }
        for line in out.dram_fetch.drain(..) {
            if let Some(obs) = &mut self.obs {
                if obs.tracing() {
                    obs.trace_mut().instant(
                        self.cycle.raw(),
                        track::DRAM_BASE + part as u64,
                        "dram-fetch",
                        vec![("line", ArgValue::U(line.0))],
                    );
                }
            }
            self.drams[part].enqueue(self.cycle, line, false);
        }
        for (line, data) in out.dram_writeback.drain(..) {
            // Data is applied functionally at once; the channel models
            // the bandwidth/occupancy cost.
            self.traffic.record(
                rcc_common::stats::MsgClass::Writeback,
                flits_for(
                    rcc_common::stats::MsgClass::Writeback,
                    self.cfg.noc.flit_bytes,
                    self.cfg.noc.control_bytes,
                ),
            );
            if let Some(obs) = &mut self.obs {
                if obs.tracing() {
                    obs.trace_mut().instant(
                        self.cycle.raw(),
                        track::DRAM_BASE + part as u64,
                        "dram-writeback",
                        vec![("line", ArgValue::U(line.0))],
                    );
                }
            }
            self.memory.insert(line, data);
            self.drams[part].enqueue(self.cycle, line, true);
        }
        for (core, line, action) in out.magic_inv.drain(..) {
            // SC-IDEAL: zero-cost, zero-latency coherence action.
            let before = self.l1s[core.index()].pending();
            self.l1s[core.index()].magic(self.cycle, line, action);
            self.mem_pending += self.l1s[core.index()].pending();
            self.mem_pending -= before;
            if self.scheduled_mode {
                self.sched
                    .arm_min(self.comp_l1(core.index()), self.cycle.raw());
                if self.spin_state[core.index()] == SpinState::Active {
                    // The magic action mutated L1 state: the reject
                    // fixed point may no longer hold.
                    self.sched
                        .arm_min(self.comp_core(core.index()), self.cycle.raw());
                }
            }
        }
        if self.scheduled_mode {
            self.arm_pipe_from_state(part, wake_floor);
            self.arm_dram_from_state(part, wake_floor);
        }
    }

    /// Total outstanding work anywhere in the memory system — the
    /// incrementally maintained counter ([`System::step`] cross-checks
    /// it against the full scan in debug builds).
    fn memory_system_pending(&self) -> usize {
        self.mem_pending
    }

    /// Reference implementation of [`System::memory_system_pending`]:
    /// re-sums every component. O(components); kept for validation.
    fn memory_system_pending_scan(&self) -> usize {
        self.l1s.iter().map(L1Cache::pending).sum::<usize>()
            + self.l2s.iter().map(L2Bank::pending).sum::<usize>()
            + self.l2_inbox.iter().map(VecDeque::len).sum::<usize>()
            + self.l2_delay.iter().map(VecDeque::len).sum::<usize>()
            + self.drams.iter().map(DramChannel::pending).sum::<usize>()
            + self.req_net.in_flight()
            + self.resp_net.in_flight()
    }

    // ------------------------------------------------------------------
    // Event-driven engine: calendar-queue component slots.
    //
    // Fixed id layout (also the tie-break order inside the queue):
    // cores | L1s | req net | resp net | L2 banks | bank inboxes |
    // L2 delay pipes | DRAM channels | rollover coordinator. Execution
    // order within a scheduled cycle is the fixed phase order of
    // `step_scheduled`, so the layout only has to be *stable*, not
    // meaningful.
    // ------------------------------------------------------------------

    #[inline]
    fn comp_core(&self, i: usize) -> usize {
        i
    }

    #[inline]
    fn comp_l1(&self, i: usize) -> usize {
        self.cores.len() + i
    }

    #[inline]
    fn comp_req(&self) -> usize {
        2 * self.cores.len()
    }

    #[inline]
    fn comp_resp(&self) -> usize {
        2 * self.cores.len() + 1
    }

    #[inline]
    fn comp_bank(&self, p: usize) -> usize {
        2 * self.cores.len() + 2 + p
    }

    #[inline]
    fn comp_inbox(&self, p: usize) -> usize {
        2 * self.cores.len() + 2 + self.l2s.len() + p
    }

    #[inline]
    fn comp_pipe(&self, p: usize) -> usize {
        2 * self.cores.len() + 2 + 2 * self.l2s.len() + p
    }

    #[inline]
    fn comp_dram(&self, p: usize) -> usize {
        2 * self.cores.len() + 2 + 3 * self.l2s.len() + p
    }

    #[inline]
    fn comp_rollover(&self) -> usize {
        2 * self.cores.len() + 2 + 4 * self.l2s.len()
    }

    /// Re-arms core `i` from its own exact wake hint. `floor` clamps the
    /// wake to the earliest cycle the core's phase can still run.
    fn arm_core_from_state(&mut self, i: usize, floor: u64) {
        let comp = self.comp_core(i);
        if self.cores[i].done() {
            self.sched.disarm(comp);
            return;
        }
        match self.cores[i].next_event(self.cycle) {
            Some(c) => self.sched.arm_at(comp, c.raw().max(floor)),
            None => self.sched.disarm(comp),
        }
    }

    /// Re-arms L1 `i` from its spontaneous-action hint.
    fn arm_l1_from_state(&mut self, i: usize, floor: u64) {
        let comp = self.comp_l1(i);
        match self.l1s[i].next_event(self.cycle) {
            Some(c) => self.sched.arm_at(comp, c.raw().max(floor)),
            None => self.sched.disarm(comp),
        }
    }

    /// Re-arms L2 bank `p` from its spontaneous-action hint.
    fn arm_bank_from_state(&mut self, p: usize, floor: u64) {
        let comp = self.comp_bank(p);
        match self.l2s[p].next_event(self.cycle) {
            Some(c) => self.sched.arm_at(comp, c.raw().max(floor)),
            None => self.sched.disarm(comp),
        }
    }

    /// Re-arms bank inbox `p`: a non-empty inbox serves one request per
    /// cycle, so it is due every cycle until drained.
    fn arm_inbox_from_state(&mut self, p: usize, floor: u64) {
        let comp = self.comp_inbox(p);
        if self.l2_inbox[p].is_empty() {
            self.sched.disarm(comp);
        } else {
            self.sched.arm_at(comp, floor);
        }
    }

    /// Re-arms delay pipe `p` from its front entry (the pipe is FIFO
    /// with monotone readiness, so the front is the earliest).
    fn arm_pipe_from_state(&mut self, p: usize, floor: u64) {
        let comp = self.comp_pipe(p);
        match self.l2_delay[p].front() {
            Some((ready, _)) => self.sched.arm_at(comp, (*ready).max(floor)),
            None => self.sched.disarm(comp),
        }
    }

    /// Re-arms DRAM channel `p`. Its hint is `Cycle(0)` ("poll me every
    /// cycle") while commands are queued, so the clamp makes that the
    /// next serviceable cycle.
    fn arm_dram_from_state(&mut self, p: usize, floor: u64) {
        let comp = self.comp_dram(p);
        match self.drams[p].next_event() {
            Some(c) => self.sched.arm_at(comp, c.raw().max(floor)),
            None => self.sched.disarm(comp),
        }
    }

    /// Re-arms the request network from its earliest in-flight delivery.
    fn arm_req_from_state(&mut self) {
        let comp = self.comp_req();
        match self.req_net.next_event() {
            Some(c) => self.sched.arm_at(comp, c.raw()),
            None => self.sched.disarm(comp),
        }
    }

    /// Re-arms the response network from its earliest in-flight delivery.
    fn arm_resp_from_state(&mut self) {
        let comp = self.comp_resp();
        match self.resp_net.next_event() {
            Some(c) => self.sched.arm_at(comp, c.raw()),
            None => self.sched.disarm(comp),
        }
    }

    /// Re-arms the rollover coordinator when its FSM would transition at
    /// the next cycle. Transitions normally happen in the same scheduled
    /// cycle as the event that enables them (phases 1–5 precede phase
    /// 6), so this only fires for the entry corner: the cycle the
    /// threshold crossing is noticed on an already-drained machine.
    fn arm_rollover_from_state(&mut self, floor: u64) {
        let due = match self.rollover {
            RolloverState::Idle => self.l2s.iter().any(L2Bank::needs_rollover),
            RolloverState::Draining => {
                let outstanding: usize = self.cores.iter().map(Core::outstanding).sum();
                outstanding == 0 && self.memory_system_pending() == 0
            }
            RolloverState::Flushing { acks_outstanding } => acks_outstanding == 0,
        };
        let comp = self.comp_rollover();
        if due {
            self.sched.arm_min(comp, floor);
        } else {
            self.sched.disarm(comp);
        }
    }

    /// Replays core `i`'s per-cycle stall bookkeeping through cycle
    /// `through` (inclusive). Exact by [`Core::fast_forward`]'s
    /// contract: every cycle in the gap was proven action-free (the
    /// core's wake was not due and no completion arrived).
    fn sync_core_through(&mut self, i: usize, through: u64) {
        let from = self.synced_to[i];
        if through > from {
            let gap = through - from;
            self.cores[i].fast_forward(Cycle(from), gap);
            if self.spin_state[i] == SpinState::Active && !self.cores[i].done() {
                // Every gap cycle was a skipped retry of the same
                // structurally rejected access: charge the counters the
                // per-cycle retry would have bumped.
                self.cores[i].replay_structural_stalls(gap);
                let delta = self.spin_delta[i].clone();
                self.l1s[i].replay_rejected_access(&delta, gap);
            }
            self.synced_to[i] = through;
        }
    }

    /// Brings every core's lazy stall bookkeeping up to the current
    /// cycle. Called whenever core state escapes the engine — at
    /// `run_until` exit (metrics / state digests / checkpoints read
    /// `&self`) and before building a hang dump or typed error.
    fn sync_cores_to_now(&mut self) {
        if !self.scheduled_mode {
            return;
        }
        let now = self.cycle.raw();
        if self.rollover == RolloverState::Idle {
            for i in 0..self.cores.len() {
                self.sync_core_through(i, now);
            }
        } else {
            // Cores are paused mid-rollover: the gap cycles carry no
            // bookkeeping, so they are accounted as empty.
            for s in &mut self.synced_to {
                *s = (*s).max(now);
            }
        }
    }

    /// Derives every queue slot from component state, discarding any
    /// previous arms. Called when the event-driven engine (re)gains
    /// control of the system, making the queue exact regardless of what
    /// ran before (construction, legacy stepping, checkpoint restore).
    fn prime_sched(&mut self) {
        self.scheduled_mode = true;
        let now = self.cycle.raw();
        let floor = now + 1;
        self.sched.reset();
        self.spin_state.fill(SpinState::Idle);
        for i in 0..self.cores.len() {
            self.synced_to[i] = now;
            if self.rollover == RolloverState::Idle {
                self.arm_core_from_state(i, floor);
            }
        }
        for i in 0..self.l1s.len() {
            self.arm_l1_from_state(i, floor);
        }
        self.arm_req_from_state();
        self.arm_resp_from_state();
        for p in 0..self.l2s.len() {
            self.arm_bank_from_state(p, floor);
            self.arm_inbox_from_state(p, floor);
            self.arm_pipe_from_state(p, floor);
            self.arm_dram_from_state(p, floor);
        }
        self.arm_rollover_from_state(floor);
    }

    /// Advances the system by one cycle.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] (with a full forensic
    /// [`HangDump`]) when the watchdog detects no forward progress, and
    /// [`SimError::ProtocolInvariant`] when completion bookkeeping broke
    /// an engine invariant this cycle. The system is left intact either
    /// way, so callers can still read metrics or dump state.
    pub fn step(&mut self) -> Result<(), SimError> {
        // Manual stepping invalidates the event queue (it does not keep
        // arms current); the next scheduled run re-primes from state.
        self.scheduled_mode = false;
        self.cycle += 1;
        let cycle = self.cycle;
        let mut mark = None;
        if let Some(p) = &mut self.profile {
            p.steps += 1;
            if p.steps.is_multiple_of(PROFILE_STRIDE) {
                // rcc-lint: allow(wall-clock, self-profiling phase mark; never feeds simulated state)
                mark = Some(std::time::Instant::now());
            }
        }

        // 1. Response network → L1s.
        let delivered = self.resp_net.deliver(cycle);
        self.mem_pending -= delivered.len();
        for (dst, resp) in delivered {
            let mut out = std::mem::take(&mut self.scratch_l1);
            let before = self.l1s[dst].pending();
            self.l1s[dst].handle_resp(cycle, resp, &mut out);
            self.mem_pending += self.l1s[dst].pending();
            self.mem_pending -= before;
            self.process_l1_out(dst, &mut out, cycle.raw());
            self.scratch_l1 = out;
        }
        self.charge(&mut mark, SimPhase::L1);

        // 2. Request network → bank inboxes (flush acks are intercepted
        //    by the rollover coordinator).
        let delivered = self.req_net.deliver(cycle);
        self.mem_pending -= delivered.len();
        for (dst, req) in delivered {
            if matches!(req.payload, ReqPayload::FlushAck) {
                if let RolloverState::Flushing { acks_outstanding } = &mut self.rollover {
                    *acks_outstanding -= 1;
                }
                continue;
            }
            self.l2_inbox[dst].push_back(req);
            self.mem_pending += 1;
        }
        self.charge(&mut mark, SimPhase::Noc);

        // 3. L2 banks: tick, then serve one request per cycle.
        for p in 0..self.l2s.len() {
            let mut out = std::mem::take(&mut self.scratch_l2);
            let before = self.l2s[p].pending();
            self.l2s[p].tick(cycle, &mut out);
            self.mem_pending += self.l2s[p].pending();
            self.mem_pending -= before;
            if !out.is_empty() {
                self.process_l2_out(p, &mut out, cycle.raw());
            }
            if let Some(req) = self.l2_inbox[p].pop_front() {
                self.mem_pending -= 1;
                let before = self.l2s[p].pending();
                match self.l2s[p].handle_req(cycle, req, &mut out) {
                    Ok(()) => {
                        self.mem_pending += self.l2s[p].pending();
                        self.mem_pending -= before;
                        self.process_l2_out(p, &mut out, cycle.raw());
                    }
                    Err(req) => {
                        self.mem_pending += self.l2s[p].pending();
                        self.mem_pending -= before;
                        out.clear(); // discard any partial output
                        self.l2_inbox[p].push_front(req);
                        self.mem_pending += 1;
                    }
                }
            }
            self.scratch_l2 = out;
        }
        self.charge(&mut mark, SimPhase::L2);

        // 4. L2 delay pipes → response network (one message leaves the
        //    pipe, one enters the network: pending is unchanged).
        for p in 0..self.l2_delay.len() {
            while let Some((ready, _)) = self.l2_delay[p].front() {
                if *ready > cycle.raw() {
                    break;
                }
                let Some((_, resp)) = self.l2_delay[p].pop_front() else {
                    break;
                };
                let dst = resp.dst.index();
                let flits = Self::bill_resp(&mut self.traffic, &self.cfg, &resp);
                self.resp_net.inject(cycle, p, dst, 1, flits, resp);
            }
        }
        self.charge(&mut mark, SimPhase::Noc);

        // 5. DRAM.
        for p in 0..self.drams.len() {
            let before = self.drams[p].pending();
            let lines = self.drams[p].tick(cycle);
            self.mem_pending += self.drams[p].pending();
            self.mem_pending -= before;
            for line in lines {
                let data = self.memory.get(&line).cloned().unwrap_or_default();
                let mut out = std::mem::take(&mut self.scratch_l2);
                let before = self.l2s[p].pending();
                self.l2s[p].handle_dram(cycle, line, data, &mut out);
                self.mem_pending += self.l2s[p].pending();
                self.mem_pending -= before;
                self.process_l2_out(p, &mut out, cycle.raw() + 1);
                self.scratch_l2 = out;
            }
        }
        self.charge(&mut mark, SimPhase::Dram);

        // 6. Rollover coordination.
        self.advance_rollover();
        self.charge(&mut mark, SimPhase::Rollover);

        // 7. Cores + L1 ticks (paused while a rollover is in progress).
        let issuing = self.rollover == RolloverState::Idle;
        for i in 0..self.cores.len() {
            let mut out = std::mem::take(&mut self.scratch_l1);
            let before = self.l1s[i].pending();
            self.l1s[i].tick(cycle, &mut out);
            if issuing && !self.cores[i].done() {
                let l1 = &mut self.l1s[i];
                let recorder = &mut self.recorder;
                let chaos = &mut self.chaos_access;
                let mut issued_any = false;
                let core_out = self.cores[i].tick(cycle, |access| {
                    if let Some(c) = chaos.as_mut() {
                        if c.fires(Site::L1Access) {
                            // Bounce before the access reaches the L1 (or
                            // the recorder): the warp retries next cycle,
                            // modelling a variable L1 service latency.
                            return AccessOutcome::Reject(RejectReason::ChaosStall);
                        }
                    }
                    recorder.note_issue(i, access);
                    let outcome = l1.access(cycle, access, &mut out);
                    match &outcome {
                        AccessOutcome::Done(c) => {
                            recorder.note_completion(i, c);
                            issued_any = true;
                        }
                        AccessOutcome::Pending => issued_any = true,
                        AccessOutcome::Reject(_) => {
                            // The access never started; forget what the
                            // recorder registered for it.
                            recorder.note_reject(i, access);
                        }
                    }
                    outcome
                });
                if issued_any {
                    self.last_progress = cycle.raw();
                }
                // Trace capture: one branch when unarmed, and the tap
                // reads only the tick's ephemeral output, so recording
                // cannot perturb the simulated machine.
                if let Some(tr) = &mut self.trace_rec {
                    if let Some((w, pc)) = core_out.issued_op {
                        tr.note_issue(i, w, pc, cycle.raw());
                    }
                }
                for _warp in core_out.fences_retired {
                    // RCC-WO: joining the views is a core-level action.
                    self.l1s[i].fence();
                    self.last_progress = cycle.raw();
                }
            }
            self.mem_pending += self.l1s[i].pending();
            self.mem_pending -= before;
            self.process_l1_out(i, &mut out, cycle.raw() + 1);
            self.scratch_l1 = out;
        }
        self.charge(&mut mark, SimPhase::Core);

        // 8. Observation (one branch when no observer is armed; sample
        //    boundaries are always stepped because fast-forward caps its
        //    jumps at the next boundary).
        if let Some(obs) = &self.obs {
            if obs.sample_due(cycle.raw()) {
                self.take_sample();
            }
            self.charge(&mut mark, SimPhase::Sample);
        }

        debug_assert_eq!(
            self.mem_pending,
            self.memory_system_pending_scan(),
            "incremental pending counter diverged at {cycle}"
        );

        if let Some(detail) = self.recorder.invariant_failure.take() {
            return Err(SimError::ProtocolInvariant {
                kind: self.kind,
                workload: self.workload_name.clone(),
                cycle: cycle.raw(),
                detail,
            });
        }

        // Watchdog: no forward progress for a full threshold window is a
        // deadlock. Emit the forensic dump instead of aborting.
        if cycle.raw() - self.last_progress > self.cfg.watchdog_cycles {
            return Err(SimError::Deadlock(Box::new(self.hang_dump())));
        }
        Ok(())
    }

    /// Assembles the forensic dump of the (presumed hung) machine: every
    /// component's occupancy and `next_event` horizon, every non-retired
    /// warp with the access it is stalled on, and the components that
    /// hold work but schedule no event (the prime suspects).
    pub fn hang_dump(&self) -> HangDump {
        let now = self.cycle;
        let mut components = Vec::new();
        for (i, core) in self.cores.iter().enumerate() {
            components.push(ComponentState {
                name: format!("core{i}"),
                pending: core.active_warps() as u64,
                next_event: core.next_event(now).map(Cycle::raw),
            });
        }
        for (i, l1) in self.l1s.iter().enumerate() {
            components.push(ComponentState {
                name: format!("l1-{i}"),
                pending: l1.pending() as u64,
                next_event: l1.next_event(now).map(Cycle::raw),
            });
        }
        components.push(ComponentState {
            name: "noc-req".to_string(),
            pending: self.req_net.in_flight() as u64,
            next_event: self.req_net.next_event().map(Cycle::raw),
        });
        components.push(ComponentState {
            name: "noc-resp".to_string(),
            pending: self.resp_net.in_flight() as u64,
            next_event: self.resp_net.next_event().map(Cycle::raw),
        });
        for (p, l2) in self.l2s.iter().enumerate() {
            components.push(ComponentState {
                name: format!("l2-bank{p}"),
                pending: l2.pending() as u64,
                next_event: l2.next_event(now).map(Cycle::raw),
            });
            components.push(ComponentState {
                name: format!("l2-inbox{p}"),
                pending: self.l2_inbox[p].len() as u64,
                next_event: (!self.l2_inbox[p].is_empty()).then(|| now.raw() + 1),
            });
            components.push(ComponentState {
                name: format!("l2-pipe{p}"),
                pending: self.l2_delay[p].len() as u64,
                next_event: self.l2_delay[p]
                    .front()
                    .map(|(r, _)| (*r).max(now.raw() + 1)),
            });
        }
        for (p, dram) in self.drams.iter().enumerate() {
            components.push(ComponentState {
                name: format!("dram{p}"),
                pending: dram.pending() as u64,
                next_event: dram.next_event().map(Cycle::raw),
            });
        }
        let suspects = components
            .iter()
            .filter(|c| c.pending > 0 && c.next_event.is_none())
            .map(|c| c.name.clone())
            .collect();
        let blocked_warps = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.done())
            .flat_map(|(i, c)| {
                c.blocked_warps()
                    .into_iter()
                    .map(move |state| BlockedWarp { core: i, state })
            })
            .collect();
        HangDump {
            protocol: self.kind.label().to_string(),
            workload: self.workload_name.clone(),
            cycle: now.raw(),
            last_progress: self.last_progress,
            watchdog_cycles: self.cfg.watchdog_cycles,
            mem_pending: self.memory_system_pending() as u64,
            rollover: format!("{:?}", self.rollover),
            state_digest: self.state_digest(),
            components,
            blocked_warps,
            suspects,
            checkpoint: None,
        }
    }

    /// Cross-component digest of the machine's full architectural state
    /// at the current cycle: cores (warp contexts), L1/L2 controllers
    /// (tag arrays, MSHRs, leases), both network directions (in-flight
    /// packets), bank inboxes and delay pipes, DRAM channels, backing
    /// memory, the rollover FSM, and the chaos PRNG streams. Two systems
    /// built from the same inputs and advanced to the same cycle produce
    /// the same digest — checkpoint restore verifies this before
    /// continuing a run.
    pub fn state_digest(&self) -> u64 {
        let mut d = StateDigest::new();
        d.write_str(self.kind.label());
        d.write_str(&self.workload_name);
        d.write_u64(self.cycle.raw());
        for core in &self.cores {
            core.digest_state(&mut d);
        }
        for l1 in &self.l1s {
            l1.digest_state(&mut d);
        }
        for l2 in &self.l2s {
            l2.digest_state(&mut d);
        }
        self.req_net.digest_state(&mut d);
        self.resp_net.digest_state(&mut d);
        for inbox in &self.l2_inbox {
            d.write_debug(inbox);
        }
        for delay in &self.l2_delay {
            d.write_debug(delay);
        }
        for dram in &self.drams {
            dram.digest_state(&mut d);
        }
        // Backing memory is a hash map: fold lines order-independently
        // so the digest reflects contents, not iteration order.
        let mut mem_acc: u64 = 0;
        for (line, data) in &self.memory {
            let mut e = StateDigest::new();
            e.write_u64(line.0);
            data.digest_state(&mut e);
            mem_acc ^= e.finish();
        }
        d.write_u64(mem_acc);
        d.write_debug(&self.rollover);
        d.write_u64(self.rollovers);
        d.write_u64(self.last_progress);
        d.write_u64(self.mem_pending as u64);
        d.write_u64(self.recorder.epoch_base);
        d.write_u64(self.recorder.max_ts_seen);
        d.write_u64(self.recorder.completions);
        if let Some(p) = &self.chaos_pipe {
            d.write_debug(p);
        }
        if let Some(p) = &self.chaos_access {
            d.write_debug(p);
        }
        d.write_u64(self.chaos_fired.load(Ordering::Relaxed));
        d.finish()
    }

    /// Test-only corruption hook: drops every pending store/atomic value
    /// the recorder is tracking, so the next store or atomic completion
    /// trips the engine's completion invariant. Exists to prove the
    /// typed-error path (`SimError::ProtocolInvariant`) end to end.
    #[doc(hidden)]
    pub fn corrupt_pending_values_for_test(&mut self) {
        self.recorder.pending_vals.clear();
    }

    fn advance_rollover(&mut self) {
        match self.rollover {
            RolloverState::Idle => {
                if self.l2s.iter().any(|l2| l2.needs_rollover()) {
                    self.rollover = RolloverState::Draining;
                    if self.scheduled_mode {
                        // Cores pause from this cycle on: settle their
                        // lazy bookkeeping (through the last cycle they
                        // ran) and park their wake slots until the
                        // rollover completes.
                        let now = self.cycle.raw();
                        for i in 0..self.cores.len() {
                            self.sync_core_through(i, now.saturating_sub(1));
                            self.synced_to[i] = now;
                            self.sched.disarm(self.comp_core(i));
                        }
                    }
                    if let Some(obs) = &mut self.obs {
                        if obs.tracing() {
                            obs.trace_mut()
                                .begin(self.cycle.raw(), track::SYSTEM, "rollover");
                        }
                    }
                }
            }
            RolloverState::Draining => {
                let outstanding: usize = self.cores.iter().map(Core::outstanding).sum();
                if outstanding == 0 && self.memory_system_pending() == 0 {
                    rcc_common::trace!("rollover: system drained at {}, resetting", self.cycle);
                    for (p, l2) in self.l2s.iter_mut().enumerate() {
                        if let Some(obs) = &mut self.obs {
                            if obs.tracing() {
                                let mnow = l2.logical_time().map_or(0, |t| t.raw());
                                obs.trace_mut().instant(
                                    self.cycle.raw(),
                                    track::L2_BASE + p as u64,
                                    "rollover-reset",
                                    vec![("mnow", ArgValue::U(mnow))],
                                );
                            }
                        }
                        l2.rollover_reset();
                    }
                    // Partition 0 flushes every L1 over the response
                    // network (billed as Flush traffic).
                    for core in 0..self.cores.len() {
                        let resp = RespMsg {
                            dst: CoreId(core),
                            line: LineAddr(0),
                            id: rcc_core::msg::ReqId(0),
                            payload: RespPayload::Flush,
                        };
                        let flits = Self::bill_resp(&mut self.traffic, &self.cfg, &resp);
                        self.resp_net.inject(self.cycle, 0, core, 1, flits, resp);
                        self.mem_pending += 1;
                    }
                    self.rollover = RolloverState::Flushing {
                        acks_outstanding: self.cores.len(),
                    };
                    self.last_progress = self.cycle.raw();
                    if self.scheduled_mode {
                        self.arm_resp_from_state();
                    }
                }
            }
            RolloverState::Flushing { acks_outstanding } => {
                if acks_outstanding == 0 {
                    self.rollovers += 1;
                    self.recorder.epoch_base = self.recorder.max_ts_seen + 1;
                    self.rollover = RolloverState::Idle;
                    self.last_progress = self.cycle.raw();
                    if self.scheduled_mode {
                        // Cores resume *this* cycle (the core phase runs
                        // after this one): their first tick covers the
                        // current cycle's bookkeeping itself.
                        let now = self.cycle.raw();
                        for i in 0..self.cores.len() {
                            self.synced_to[i] = now.saturating_sub(1);
                            if !self.cores[i].done() {
                                self.sched.arm_min(self.comp_core(i), now);
                            }
                        }
                    }
                    if let Some(obs) = &mut self.obs {
                        if obs.tracing() {
                            obs.trace_mut().end(self.cycle.raw(), track::SYSTEM);
                        }
                    }
                }
            }
        }
    }

    /// The earliest cycle strictly after `self.cycle` at which *any*
    /// component acts, assuming nothing new happens first. `None` means
    /// the machine is fully quiescent (only the watchdog would fire).
    ///
    /// The skip invariant: a fast-forward may never cross a cycle where
    /// any component would act. Each component's hint is therefore an
    /// upper bound on how far we may jump, and the minimum over all of
    /// them is the next cycle that must actually be stepped.
    fn next_event_cycle(&self) -> Option<u64> {
        let now = self.cycle;
        let floor = now.raw() + 1;
        // `floor` is the earliest answer possible, so the scan bails the
        // moment any component reports it — the common case in busy
        // phases, where this runs every cycle and must cost ~nothing.
        // Checks are ordered cheapest-first.
        if self.l2_inbox.iter().any(|inbox| !inbox.is_empty()) {
            return Some(floor);
        }
        let mut best: u64 = u64::MAX;
        for delay in &self.l2_delay {
            // The pipe is FIFO with a fixed latency, so the front is the
            // earliest entry.
            if let Some((ready, _)) = delay.front() {
                best = best.min((*ready).max(floor));
            }
        }
        if best == floor {
            return Some(floor);
        }
        let nets = [self.req_net.next_event(), self.resp_net.next_event()];
        for c in nets.into_iter().flatten() {
            best = best.min(c.raw().max(floor));
            if best == floor {
                return Some(floor);
            }
        }
        for dram in &self.drams {
            if let Some(c) = dram.next_event() {
                best = best.min(c.raw().max(floor));
                if best == floor {
                    return Some(floor);
                }
            }
        }
        for l2 in &self.l2s {
            if let Some(c) = l2.next_event(now) {
                best = best.min(c.raw().max(floor));
                if best == floor {
                    return Some(floor);
                }
            }
        }
        // L1 ticks run every cycle even while a rollover pauses issue.
        for l1 in &self.l1s {
            if let Some(c) = l1.next_event(now) {
                best = best.min(c.raw().max(floor));
                if best == floor {
                    return Some(floor);
                }
            }
        }
        match self.rollover {
            RolloverState::Idle => {
                if self.l2s.iter().any(L2Bank::needs_rollover) {
                    return Some(floor);
                }
                for core in &self.cores {
                    if let Some(c) = core.next_event(now) {
                        best = best.min(c.raw().max(floor));
                        if best == floor {
                            return Some(floor);
                        }
                    }
                }
            }
            RolloverState::Draining => {
                // Cores are paused; the coordinator acts the cycle the
                // drain completes, and both terms only fall when
                // messages move (which are events of their own).
                let outstanding: usize = self.cores.iter().map(Core::outstanding).sum();
                if outstanding == 0 && self.memory_system_pending() == 0 {
                    return Some(floor);
                }
            }
            RolloverState::Flushing { acks_outstanding } => {
                if acks_outstanding == 0 {
                    return Some(floor);
                }
            }
        }
        (best != u64::MAX).then_some(best)
    }

    /// One scheduled cycle of the event-driven engine. `self.cycle` has
    /// already been set to the popped wake cycle; this executes the
    /// *due* components in exactly the legacy phase order (and fixed
    /// component order within each phase), consuming each due wake and
    /// re-arming from fresh component state. A due wake is always
    /// consumed even when its action is skipped (e.g. a core wake while
    /// a rollover pauses issue) so the queue never reports a wake at or
    /// before the current cycle.
    ///
    /// # Errors
    ///
    /// Same contract as [`System::step`].
    fn step_scheduled(&mut self) -> Result<(), SimError> {
        let cycle = self.cycle;
        let n = cycle.raw();
        let mut mark = None;
        if let Some(p) = &mut self.profile {
            p.steps += 1;
            if p.steps.is_multiple_of(PROFILE_STRIDE) {
                // rcc-lint: allow(wall-clock, self-profiling phase mark; never feeds simulated state)
                mark = Some(std::time::Instant::now());
            }
        }

        // 1. Response network → L1s.
        if self.sched.is_due(self.comp_resp(), n) {
            self.sched.disarm(self.comp_resp());
            let delivered = self.resp_net.deliver(cycle);
            self.mem_pending -= delivered.len();
            for (dst, resp) in delivered {
                let mut out = std::mem::take(&mut self.scratch_l1);
                let before = self.l1s[dst].pending();
                self.l1s[dst].handle_resp(cycle, resp, &mut out);
                self.mem_pending += self.l1s[dst].pending();
                self.mem_pending -= before;
                self.process_l1_out(dst, &mut out, n);
                if self.spin_state[dst] == SpinState::Active {
                    // Any response can change L1 state (free an MSHR,
                    // resolve a transient line) and break the reject
                    // fixed point even when it completes nothing — make
                    // sure the spinning core re-evaluates this cycle.
                    self.sched.arm_min(self.comp_core(dst), n);
                }
                self.scratch_l1 = out;
                // Min-arm, not set-arm: the L1's own tick runs later in
                // this same cycle (phase 7), and `next_event(n)` reports
                // the wake *after* it — a set-arm here would wipe a
                // due-at-`n` wake (e.g. the RCC livelock bump at an
                // interval boundary) before it executes. Responses can
                // only move the spontaneous horizon earlier (a new lease
                // expiry); an early wake is a wasted tick, never a skip.
                if let Some(c) = self.l1s[dst].next_event(cycle) {
                    self.sched.arm_min(self.comp_l1(dst), c.raw().max(n));
                }
            }
            self.arm_resp_from_state();
        }
        self.charge(&mut mark, SimPhase::L1);

        // 2. Request network → bank inboxes (flush acks are intercepted
        //    by the rollover coordinator).
        if self.sched.is_due(self.comp_req(), n) {
            self.sched.disarm(self.comp_req());
            let delivered = self.req_net.deliver(cycle);
            self.mem_pending -= delivered.len();
            for (dst, req) in delivered {
                if matches!(req.payload, ReqPayload::FlushAck) {
                    if let RolloverState::Flushing { acks_outstanding } = &mut self.rollover {
                        *acks_outstanding -= 1;
                    }
                    continue;
                }
                self.l2_inbox[dst].push_back(req);
                self.mem_pending += 1;
                self.sched.arm_min(self.comp_inbox(dst), n);
            }
            self.arm_req_from_state();
        }
        self.charge(&mut mark, SimPhase::Noc);

        // 3. L2 banks: tick, then serve one request per cycle.
        for p in 0..self.l2s.len() {
            let bank_due = self.sched.is_due(self.comp_bank(p), n);
            let inbox_due = self.sched.is_due(self.comp_inbox(p), n);
            if !bank_due && !inbox_due {
                continue;
            }
            let mut out = std::mem::take(&mut self.scratch_l2);
            if bank_due {
                self.sched.disarm(self.comp_bank(p));
                let before = self.l2s[p].pending();
                self.l2s[p].tick(cycle, &mut out);
                self.mem_pending += self.l2s[p].pending();
                self.mem_pending -= before;
                if !out.is_empty() {
                    self.process_l2_out(p, &mut out, n);
                }
            }
            if inbox_due {
                self.sched.disarm(self.comp_inbox(p));
                if let Some(req) = self.l2_inbox[p].pop_front() {
                    self.mem_pending -= 1;
                    let before = self.l2s[p].pending();
                    match self.l2s[p].handle_req(cycle, req, &mut out) {
                        Ok(()) => {
                            self.mem_pending += self.l2s[p].pending();
                            self.mem_pending -= before;
                            self.process_l2_out(p, &mut out, n);
                        }
                        Err(req) => {
                            self.mem_pending += self.l2s[p].pending();
                            self.mem_pending -= before;
                            out.clear(); // discard any partial output
                            self.l2_inbox[p].push_front(req);
                            self.mem_pending += 1;
                        }
                    }
                }
                self.arm_inbox_from_state(p, n + 1);
            }
            self.arm_bank_from_state(p, n + 1);
            self.scratch_l2 = out;
        }
        self.charge(&mut mark, SimPhase::L2);

        // 4. L2 delay pipes → response network.
        let mut resp_injected = false;
        for p in 0..self.l2_delay.len() {
            if !self.sched.is_due(self.comp_pipe(p), n) {
                continue;
            }
            self.sched.disarm(self.comp_pipe(p));
            while let Some((ready, _)) = self.l2_delay[p].front() {
                if *ready > n {
                    break;
                }
                let Some((_, resp)) = self.l2_delay[p].pop_front() else {
                    break;
                };
                let dst = resp.dst.index();
                let flits = Self::bill_resp(&mut self.traffic, &self.cfg, &resp);
                self.resp_net.inject(cycle, p, dst, 1, flits, resp);
                resp_injected = true;
            }
            self.arm_pipe_from_state(p, n + 1);
        }
        if resp_injected {
            self.arm_resp_from_state();
        }
        self.charge(&mut mark, SimPhase::Noc);

        // 5. DRAM.
        for p in 0..self.drams.len() {
            if !self.sched.is_due(self.comp_dram(p), n) {
                continue;
            }
            self.sched.disarm(self.comp_dram(p));
            let before = self.drams[p].pending();
            let lines = self.drams[p].tick(cycle);
            self.mem_pending += self.drams[p].pending();
            self.mem_pending -= before;
            let touched = !lines.is_empty();
            for line in lines {
                let data = self.memory.get(&line).cloned().unwrap_or_default();
                let mut out = std::mem::take(&mut self.scratch_l2);
                let before = self.l2s[p].pending();
                self.l2s[p].handle_dram(cycle, line, data, &mut out);
                self.mem_pending += self.l2s[p].pending();
                self.mem_pending -= before;
                self.process_l2_out(p, &mut out, n + 1);
                self.scratch_l2 = out;
            }
            if touched {
                self.arm_bank_from_state(p, n + 1);
            }
            self.arm_dram_from_state(p, n + 1);
        }
        self.charge(&mut mark, SimPhase::Dram);

        // 6. Rollover coordination (every scheduled cycle: transitions
        //    are enabled by same-cycle events from the phases above, and
        //    the coordinator's own queue slot covers the one case where
        //    a transition is due with nothing else armed).
        self.sched.disarm(self.comp_rollover());
        self.advance_rollover();
        self.arm_rollover_from_state(n + 1);
        self.charge(&mut mark, SimPhase::Rollover);

        // 7. Cores + L1 ticks (paused while a rollover is in progress).
        let issuing = self.rollover == RolloverState::Idle;
        for i in 0..self.cores.len() {
            let l1_due = self.sched.is_due(self.comp_l1(i), n);
            let core_due = self.sched.is_due(self.comp_core(i), n);
            if !l1_due && !core_due {
                continue;
            }
            let mut out = std::mem::take(&mut self.scratch_l1);
            let before = self.l1s[i].pending();
            if l1_due {
                self.sched.disarm(self.comp_l1(i));
                self.l1s[i].tick(cycle, &mut out);
            }
            let mut ticked = false;
            if core_due {
                self.sched.disarm(self.comp_core(i));
                if issuing && !self.cores[i].done() {
                    // Replay the stall bookkeeping of the skipped gap,
                    // then run the real tick for this cycle.
                    self.sync_core_through(i, n.saturating_sub(1));
                    let l1 = &mut self.l1s[i];
                    let recorder = &mut self.recorder;
                    let chaos = &mut self.chaos_access;
                    let mut issued_any = false;
                    let mut reject_delta: Option<L1Stats> = None;
                    let core_out = self.cores[i].tick(cycle, |access| {
                        if let Some(c) = chaos.as_mut() {
                            if c.fires(Site::L1Access) {
                                // Bounce before the access reaches the L1
                                // (or the recorder): the warp retries next
                                // cycle, modelling a variable L1 service
                                // latency.
                                return AccessOutcome::Reject(RejectReason::ChaosStall);
                            }
                        }
                        recorder.note_issue(i, access);
                        let stats_before = l1.stats().clone();
                        let outcome = l1.access(cycle, access, &mut out);
                        match &outcome {
                            AccessOutcome::Done(c) => {
                                recorder.note_completion(i, c);
                                issued_any = true;
                            }
                            AccessOutcome::Pending => issued_any = true,
                            AccessOutcome::Reject(_) => {
                                // The access never started; forget what
                                // the recorder registered for it.
                                recorder.note_reject(i, access);
                                reject_delta = Some(l1.stats().delta_since(&stats_before));
                            }
                        }
                        outcome
                    });
                    // A structural reject with chaos disarmed is a fixed
                    // point (see `Core::stall_horizon`): the retry can be
                    // slept through and replayed — unless a completion
                    // delivered below already changed warp state. Spin
                    // engages on the second consecutive retry with an
                    // identical stat delta (the first may carry one-time
                    // side effects like TC's expiry self-invalidation).
                    self.spin_state[i] = match reject_delta {
                        Some(delta)
                            if self.chaos_access.is_none() && out.completions.is_empty() =>
                        {
                            if self.spin_state[i] != SpinState::Idle && self.spin_delta[i] == delta
                            {
                                SpinState::Active
                            } else {
                                self.spin_delta[i] = delta;
                                SpinState::Candidate
                            }
                        }
                        _ => SpinState::Idle,
                    };
                    if issued_any {
                        self.last_progress = n;
                    }
                    // Trace capture (see the stepped engine's tap): the
                    // same ephemeral per-tick output feeds the recorder,
                    // so both engines record identical traces.
                    if let Some(tr) = &mut self.trace_rec {
                        if let Some((w, pc)) = core_out.issued_op {
                            tr.note_issue(i, w, pc, n);
                        }
                    }
                    for _warp in core_out.fences_retired {
                        // RCC-WO: joining the views is a core-level action.
                        self.l1s[i].fence();
                        self.last_progress = n;
                    }
                    self.synced_to[i] = n;
                    ticked = true;
                }
            }
            self.mem_pending += self.l1s[i].pending();
            self.mem_pending -= before;
            self.process_l1_out(i, &mut out, n + 1);
            if ticked {
                // After the outbox: a synchronous completion's touch arm
                // must be superseded by the post-tick exact hint.
                if self.spin_state[i] == SpinState::Active {
                    // Reject-spin: sleep to the earliest cycle the core
                    // could act differently; the skipped retries are
                    // replayed on the next sync. External inputs
                    // (responses, completions, magic actions) touch-arm
                    // the core earlier and re-evaluate.
                    match self.cores[i].stall_horizon(cycle) {
                        Some(c) => self.sched.arm_at(self.comp_core(i), c.raw().max(n + 1)),
                        None => self.sched.disarm(self.comp_core(i)),
                    }
                } else {
                    self.arm_core_from_state(i, n + 1);
                }
            }
            self.arm_l1_from_state(i, n + 1);
            self.scratch_l1 = out;
        }
        self.charge(&mut mark, SimPhase::Core);

        // 8. Observation (sample boundaries are always scheduled because
        //    the engine caps its jumps at the next boundary).
        if let Some(obs) = &self.obs {
            if obs.sample_due(n) {
                self.take_sample();
            }
            self.charge(&mut mark, SimPhase::Sample);
        }

        debug_assert_eq!(
            self.mem_pending,
            self.memory_system_pending_scan(),
            "incremental pending counter diverged at {cycle}"
        );

        if let Some(detail) = self.recorder.invariant_failure.take() {
            self.sync_cores_to_now();
            return Err(SimError::ProtocolInvariant {
                kind: self.kind,
                workload: self.workload_name.clone(),
                cycle: n,
                detail,
            });
        }

        // Watchdog: no forward progress for a full threshold window is a
        // deadlock. Emit the forensic dump instead of aborting.
        if n - self.last_progress > self.cfg.watchdog_cycles {
            self.sync_cores_to_now();
            return Err(SimError::Deadlock(Box::new(self.hang_dump())));
        }
        Ok(())
    }

    /// The event-driven engine loop: pop the earliest armed wake, jump
    /// straight to it, execute the due components, repeat. Gap cycles
    /// are proven action-free by the components' exact wake events, so
    /// results are bit-identical to the stepped loop; per-core stall
    /// bookkeeping over gaps is replayed lazily ([`Core::fast_forward`])
    /// the next time each core runs.
    fn run_scheduled(&mut self, target: u64) -> Result<(), SimError> {
        // Derive every wake from component state: cheap, and makes the
        // engine correct regardless of what ran before (construction,
        // manual `step` calls, checkpoint restore).
        self.prime_sched();
        while !self.done() && self.cycle.raw() < target {
            // This mark covers the queue pop + jump that precede the
            // step; it samples the same steps as `step_scheduled` (which
            // increments the counter this predicate anticipates).
            let mut mark = None;
            if let Some(p) = &self.profile {
                if (p.steps + 1).is_multiple_of(PROFILE_STRIDE) {
                    // rcc-lint: allow(wall-clock, self-profiling phase mark; never feeds simulated state)
                    mark = Some(std::time::Instant::now());
                }
            }
            let now = self.cycle.raw();
            // The watchdog must observe the threshold crossing exactly
            // where a stepped run would report it.
            let deadline = self.last_progress + self.cfg.watchdog_cycles + 1;
            let wake = self.sched.next_wake();
            #[cfg(debug_assertions)]
            if !self.spin_state.contains(&SpinState::Active) {
                if let Some(scan) = self.next_event_cycle() {
                    // Oracle: the legacy conservative min-scan may never
                    // see an event the queue missed. (The queue may be
                    // earlier: touch arms are consumed even when the
                    // action is skipped. During a reject-spin the queue
                    // is legitimately *later* — the scan treats the
                    // spinning core's retry as an event — so the oracle
                    // only runs with no spin active.)
                    let w = wake.unwrap_or(u64::MAX);
                    debug_assert!(
                        w <= scan,
                        "event queue missed a wake at {now}: queue={w} scan={scan}"
                    );
                }
            }
            let mut next = wake.unwrap_or(deadline).min(deadline).min(target);
            if let Some(obs) = &self.obs {
                // Never jump over a sample boundary: the boundary cycle
                // must be executed so the sampler reads state exactly
                // there.
                if let Some(boundary) = obs.next_sample_cycle() {
                    if boundary > now {
                        next = next.min(boundary);
                    }
                }
            }
            debug_assert!(next > now, "scheduled cycle must advance past {now}");
            let next = next.max(now + 1);
            let skipped = next - now - 1;
            if skipped > 0 {
                self.skipped_cycles += skipped;
                self.ff_jumps += 1;
                if self.ff_jumps % 64 == 1 {
                    // Exact-vs-hint slack telemetry: how far the queue's
                    // wake sits from the conservative min-scan. Sampled
                    // so the O(components) scan stays off the hot path.
                    if let (Some(w), Some(scan)) = (wake, self.next_event_cycle()) {
                        self.wake_slack_sum += w.abs_diff(scan);
                        self.wake_slack_samples += 1;
                    }
                }
            }
            self.cycle = Cycle(next);
            self.charge(&mut mark, SimPhase::FastForward);
            self.step_scheduled()?;
        }
        // Core state escapes here (metrics, digests, checkpoints): settle
        // the lazy bookkeeping.
        self.sync_cores_to_now();
        Ok(())
    }

    /// Advances the system until it finishes or reaches cycle `target`
    /// (whichever comes first). The event-driven engine caps its jumps
    /// at `target`, so the boundary cycle is executed exactly — the
    /// checkpoint writer relies on that to snapshot bit-reproducible
    /// states.
    ///
    /// # Errors
    ///
    /// Propagates any [`SimError`] from [`System::step`] /
    /// [`System::step_scheduled`].
    pub fn run_until(&mut self, target: u64) -> Result<(), SimError> {
        if self.ff_enabled {
            return self.run_scheduled(target);
        }
        self.scheduled_mode = false;
        while !self.done() && self.cycle.raw() < target {
            self.step()?;
        }
        Ok(())
    }

    /// Runs to completion (or `max_cycles`) and returns the metrics.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Deadlock`] / [`SimError::ProtocolInvariant`]
    /// from [`System::step`], or [`SimError::CyclesExceeded`] when the
    /// budget runs out before every warp retires.
    pub fn run(&mut self, max_cycles: u64) -> Result<RunMetrics, SimError> {
        self.run_until(max_cycles)?;
        if !self.done() {
            return Err(SimError::CyclesExceeded {
                kind: self.kind,
                workload: self.workload_name.clone(),
                max_cycles,
            });
        }
        Ok(self.metrics())
    }

    /// Prints every scoreboard violation (diagnostic aid).
    pub fn dump_violations(&self) {
        if let Some(sb) = &self.recorder.scoreboard {
            for v in sb.check() {
                eprintln!("SC violation: {v}");
            }
            for ((c, w), (addr, prev, ts)) in sb
                .program_order_violations()
                .iter()
                .zip(sb.program_order_detail())
            {
                eprintln!("program order violation: {c}/{w} at {addr}: {prev} -> {ts}");
            }
        }
    }

    /// Collects the metrics of the run so far.
    pub fn metrics(&self) -> RunMetrics {
        let mut core = CoreStats::default();
        for c in &self.cores {
            core.merge(c.stats());
        }
        let mut l1 = L1Stats::default();
        for c in &self.l1s {
            let s = c.stats();
            l1.loads += s.loads;
            l1.load_hits += s.load_hits;
            l1.expired_loads += s.expired_loads;
            l1.renewed_loads += s.renewed_loads;
            l1.stores += s.stores;
            l1.atomics += s.atomics;
            l1.self_invalidations += s.self_invalidations;
            l1.rejects += s.rejects;
            l1.invs_received += s.invs_received;
        }
        let mut l2 = L2Stats::default();
        for b in &self.l2s {
            let s = b.stats();
            l2.gets += s.gets;
            l2.renews_granted += s.renews_granted;
            l2.writes += s.writes;
            l2.atomics += s.atomics;
            l2.dram_fetches += s.dram_fetches;
            l2.writebacks += s.writebacks;
            l2.invs_sent += s.invs_sent;
            l2.stalled_stores += s.stalled_stores;
            l2.store_stall_cycles += s.store_stall_cycles;
        }
        let ports = self.cfg.num_cores + self.cfg.l2.num_partitions;
        // Dynamic energy scales with flit×hops (= flits on the crossbar;
        // larger on the mesh).
        let flit_hops = self.req_net.flit_hops() + self.resp_net.flit_hops();
        let energy =
            self.energy_model
                .energy(flit_hops, self.cycle.raw(), ports, self.kind.num_vcs());
        let dram_reads: u64 = self.drams.iter().map(DramChannel::reads).sum();
        let dram_writes: u64 = self.drams.iter().map(DramChannel::writes).sum();
        let lat_sum: f64 = self
            .drams
            .iter()
            .map(|d| d.mean_read_latency() * d.reads() as f64)
            .sum();
        let sc_violations = self.recorder.scoreboard.as_ref().map_or(0, |sb| {
            sb.check().len() + sb.program_order_violations().len()
        });
        RunMetrics {
            kind: self.kind,
            workload: self.workload_name.clone(),
            cycles: self.cycle.raw(),
            core,
            l1,
            l2,
            traffic: self.traffic.clone(),
            energy,
            dram_reads,
            dram_writes,
            dram_read_latency: if dram_reads == 0 {
                0.0
            } else {
                lat_sum / dram_reads as f64
            },
            sc_violations,
            sanitizer_sc: self.recorder.sanitizer.as_ref().map(|san| san.check().sc),
            rollovers: self.rollovers,
            chaos_events: self.chaos_fired.load(Ordering::Relaxed),
            skipped_cycles: self.skipped_cycles,
            ff_jumps: self.ff_jumps,
            sched: SchedStats {
                events_posted: self.sched.posted(),
                events_cancelled: self.sched.cancelled(),
                queue_depth_p50: self.sched.depth_p50(),
                queue_depth_max: self.sched.depth_max(),
                wake_slack_mean: if self.wake_slack_samples == 0 {
                    0.0
                } else {
                    self.wake_slack_sum as f64 / self.wake_slack_samples as f64
                },
            },
            profile: self.profile.clone(),
            obs: None,
            final_mem_digest: self.final_mem_digest(),
        }
    }

    /// Logical final memory: the winning write per word, ordered by
    /// `(timestamp, sequence)` across the whole run — independent of
    /// which cache a dirty line happens to live in when the run ends.
    /// This is what differential trace replay compares across protocols.
    pub fn final_memory(&self) -> Vec<(WordAddr, u64)> {
        let mut words: Vec<(WordAddr, u64)> = self
            .recorder
            .final_vals
            .iter()
            .map(|(&addr, &(_, _, value))| (addr, value))
            .collect();
        words.sort_unstable_by_key(|&(addr, _)| addr);
        words
    }

    /// FNV digest of [`Self::final_memory`] (order-independent by
    /// construction: the fold runs over the sorted word list).
    pub fn final_mem_digest(&self) -> u64 {
        RunMetrics::digest_words(&self.final_memory())
    }
}

impl<P: Protocol> System<P> {
    /// Dumps a word's scoreboard history (debugging aid).
    pub fn dump_word(&self, addr: WordAddr) {
        if let Some(sb) = &self.recorder.scoreboard {
            sb.dump_word(addr);
        }
    }
}
