//! Protocol dispatch and run options.

use crate::metrics::RunMetrics;
use crate::system::System;
use rcc_common::config::GpuConfig;
use rcc_core::ideal::IdealProtocol;
use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
use rcc_core::rcc::RccProtocol;
use rcc_core::tc::TcProtocol;
use rcc_core::ProtocolKind;
use rcc_workloads::Workload;

/// Options for a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Verify the execution with the SC scoreboard. Only applied to
    /// protocols that claim SC support — TC-Weak and RCC-WO are weakly
    /// ordered by design and SC-IDEAL is a performance idealization.
    pub check_sc: bool,
    /// Abort if the run exceeds this many cycles.
    pub max_cycles: u64,
}

impl SimOptions {
    /// Default options: no checking, generous cycle budget.
    pub fn fast() -> Self {
        SimOptions {
            check_sc: false,
            max_cycles: 200_000_000,
        }
    }

    /// Checked options for tests.
    pub fn checked() -> Self {
        SimOptions {
            check_sc: true,
            ..SimOptions::fast()
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::fast()
    }
}

/// Runs `workload` on the machine `cfg` under `kind`, returning the run's
/// metrics.
///
/// # Panics
///
/// Panics if the run deadlocks, exceeds `max_cycles`, or — with
/// `check_sc` and an SC-capable protocol — violates sequential
/// consistency.
pub fn simulate(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
) -> RunMetrics {
    let check = opts.check_sc && kind.supports_sc();
    let metrics = match kind {
        ProtocolKind::Mesi => {
            let p = MesiProtocol::new(cfg);
            System::new(&p, cfg, workload, check).run(opts.max_cycles)
        }
        ProtocolKind::MesiWb => {
            let p = MesiWbProtocol::new(cfg);
            System::new(&p, cfg, workload, check).run(opts.max_cycles)
        }
        ProtocolKind::TcStrong => {
            let p = TcProtocol::strong(cfg);
            System::new(&p, cfg, workload, check).run(opts.max_cycles)
        }
        ProtocolKind::TcWeak => {
            let p = TcProtocol::weak(cfg);
            System::new(&p, cfg, workload, check).run(opts.max_cycles)
        }
        ProtocolKind::RccSc => {
            let p = RccProtocol::sequential(cfg);
            System::new(&p, cfg, workload, check).run(opts.max_cycles)
        }
        ProtocolKind::RccWo => {
            let p = RccProtocol::weakly_ordered(cfg);
            System::new(&p, cfg, workload, check).run(opts.max_cycles)
        }
        ProtocolKind::IdealSc => {
            let p = IdealProtocol::new(cfg);
            System::new(&p, cfg, workload, check).run(opts.max_cycles)
        }
    };
    if check {
        assert_eq!(
            metrics.sc_violations, 0,
            "{kind} violated SC on {}",
            workload.name
        );
    }
    metrics
}
