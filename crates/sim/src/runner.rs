//! Protocol dispatch and run options.

use crate::metrics::RunMetrics;
use crate::system::System;
use rcc_common::config::GpuConfig;
use rcc_core::ideal::IdealProtocol;
use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
use rcc_core::protocol::Protocol;
use rcc_core::rcc::RccProtocol;
use rcc_core::tc::TcProtocol;
use rcc_core::ProtocolKind;
use rcc_workloads::Workload;

/// Options for a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Verify the execution with the SC scoreboard. Only applied to
    /// protocols that claim SC support — TC-Weak and RCC-WO are weakly
    /// ordered by design and SC-IDEAL is a performance idealization.
    pub check_sc: bool,
    /// Attach the runtime SC sanitizer (`rcc-verify`): record every
    /// access and, at the end of the run, check that an SC total order
    /// explains the observed values (po ∪ rf ∪ co ∪ fr acyclicity). The
    /// verdict lands in [`RunMetrics::sanitizer_sc`]; for SC-capable
    /// protocols a non-SC verdict is a panic.
    pub sanitize: bool,
    /// Abort if the run exceeds this many cycles.
    pub max_cycles: u64,
    /// Fast-forward over provably idle cycles (on by default; results
    /// are bit-identical either way — see DESIGN.md, "Simulation
    /// performance").
    pub fast_forward: bool,
    /// Deterministic perturbation injection (see `rcc-chaos` and
    /// DESIGN.md, "Perturbation testing"). `None` — the default — arms
    /// nothing and leaves the run bit-identical to a build without the
    /// chaos subsystem.
    pub chaos: Option<rcc_chaos::ChaosSpec>,
    /// Record a time-series sample every this many cycles (0 — the
    /// default — disables sampling). The sampled series lands in
    /// [`RunMetrics::obs`]. Observation is passive: simulated results
    /// are bit-identical with sampling on or off.
    pub sample_every: u64,
    /// Record structured trace events (Chrome-trace/Perfetto export; see
    /// `rcc-obs`). The trace lands in [`RunMetrics::obs`].
    pub trace: bool,
    /// Profile the simulator itself: per-phase wall-clock attribution in
    /// [`RunMetrics::profile`]. Host-machine measurement only.
    pub profile: bool,
}

impl SimOptions {
    /// Default options: no checking, generous cycle budget.
    pub fn fast() -> Self {
        SimOptions {
            check_sc: false,
            sanitize: false,
            max_cycles: 200_000_000,
            fast_forward: true,
            chaos: None,
            sample_every: 0,
            trace: false,
            profile: false,
        }
    }

    /// Fast options plus full observation (sampling at `every` cycles,
    /// trace recording, self-profiling).
    pub fn observed(every: u64) -> Self {
        SimOptions {
            sample_every: every,
            trace: true,
            profile: true,
            ..SimOptions::fast()
        }
    }

    /// Checked options for tests.
    pub fn checked() -> Self {
        SimOptions {
            check_sc: true,
            ..SimOptions::fast()
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::fast()
    }
}

fn run_system<P: Protocol>(
    protocol: &P,
    cfg: &GpuConfig,
    workload: &Workload,
    check: bool,
    opts: &SimOptions,
) -> RunMetrics {
    let mut system = System::new(protocol, cfg, workload, check);
    system.set_fast_forward(opts.fast_forward);
    if let Some(spec) = &opts.chaos {
        system.set_chaos(spec);
    }
    if opts.sanitize {
        system.enable_sanitizer();
    }
    if opts.sample_every > 0 || opts.trace {
        system.set_observer(rcc_obs::ObsConfig {
            sample_every: opts.sample_every,
            trace: opts.trace,
            max_trace_events: 1_000_000,
        });
    }
    system.set_profiling(opts.profile);
    let mut metrics = system.run(opts.max_cycles);
    metrics.obs = system.take_observation();
    metrics
}

/// Runs `workload` on the machine `cfg` under `kind`, returning the run's
/// metrics.
///
/// # Panics
///
/// Panics if the run deadlocks, exceeds `max_cycles`, or — with
/// `check_sc` or `sanitize` and an SC-capable protocol — violates
/// sequential consistency.
pub fn simulate(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
) -> RunMetrics {
    let check = opts.check_sc && kind.supports_sc();
    let metrics = match kind {
        ProtocolKind::Mesi => {
            let p = MesiProtocol::new(cfg);
            run_system(&p, cfg, workload, check, opts)
        }
        ProtocolKind::MesiWb => {
            let p = MesiWbProtocol::new(cfg);
            run_system(&p, cfg, workload, check, opts)
        }
        ProtocolKind::TcStrong => {
            let p = TcProtocol::strong(cfg);
            run_system(&p, cfg, workload, check, opts)
        }
        ProtocolKind::TcWeak => {
            let p = TcProtocol::weak(cfg);
            run_system(&p, cfg, workload, check, opts)
        }
        ProtocolKind::RccSc => {
            let p = RccProtocol::sequential(cfg);
            run_system(&p, cfg, workload, check, opts)
        }
        ProtocolKind::RccWo => {
            let p = RccProtocol::weakly_ordered(cfg);
            run_system(&p, cfg, workload, check, opts)
        }
        ProtocolKind::IdealSc => {
            let p = IdealProtocol::new(cfg);
            run_system(&p, cfg, workload, check, opts)
        }
    };
    // An unsound chaos profile (the canary) is *expected* to break SC;
    // the caller inspects the verdicts instead of the harness panicking.
    let chaos_sound = opts.chaos.as_ref().is_none_or(|c| c.profile.is_sound());
    if check && chaos_sound {
        assert_eq!(
            metrics.sc_violations, 0,
            "{kind} violated SC on {}",
            workload.name
        );
    }
    if opts.sanitize && kind.supports_sc() && chaos_sound {
        assert_eq!(
            metrics.sanitizer_sc,
            Some(true),
            "{kind} failed the SC sanitizer on {}",
            workload.name
        );
    }
    metrics
}
