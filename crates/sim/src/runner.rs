//! Protocol dispatch, run options, and checkpoint/resume orchestration.

use crate::checkpoint::Checkpoint;
use crate::error::SimError;
use crate::metrics::RunMetrics;
use crate::system::System;
use rcc_common::config::GpuConfig;
use rcc_core::ideal::IdealProtocol;
use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
use rcc_core::protocol::Protocol;
use rcc_core::rcc::RccProtocol;
use rcc_core::tc::TcProtocol;
use rcc_core::ProtocolKind;
use rcc_workloads::Workload;

/// Options for a simulation run.
#[derive(Debug, Clone)]
pub struct SimOptions {
    /// Verify the execution with the SC scoreboard. Only applied to
    /// protocols that claim SC support — TC-Weak and RCC-WO are weakly
    /// ordered by design and SC-IDEAL is a performance idealization.
    pub check_sc: bool,
    /// Attach the runtime SC sanitizer (`rcc-verify`): record every
    /// access and, at the end of the run, check that an SC total order
    /// explains the observed values (po ∪ rf ∪ co ∪ fr acyclicity). The
    /// verdict lands in [`RunMetrics::sanitizer_sc`]; for SC-capable
    /// protocols a non-SC verdict is a [`SimError::SanitizerViolation`].
    pub sanitize: bool,
    /// Abort with [`SimError::CyclesExceeded`] if the run exceeds this
    /// many cycles.
    pub max_cycles: u64,
    /// Fast-forward over provably idle cycles (on by default; results
    /// are bit-identical either way — see DESIGN.md, "Simulation
    /// performance").
    pub fast_forward: bool,
    /// Deterministic perturbation injection (see `rcc-chaos` and
    /// DESIGN.md, "Perturbation testing"). `None` — the default — arms
    /// nothing and leaves the run bit-identical to a build without the
    /// chaos subsystem.
    pub chaos: Option<rcc_chaos::ChaosSpec>,
    /// Record a time-series sample every this many cycles (0 — the
    /// default — disables sampling). The sampled series lands in
    /// [`RunMetrics::obs`]. Observation is passive: simulated results
    /// are bit-identical with sampling on or off.
    pub sample_every: u64,
    /// Record structured trace events (Chrome-trace/Perfetto export; see
    /// `rcc-obs`). The trace lands in [`RunMetrics::obs`].
    pub trace: bool,
    /// Profile the simulator itself: per-phase wall-clock attribution in
    /// [`RunMetrics::profile`]. Host-machine measurement only.
    pub profile: bool,
    /// Write a checkpoint every this many cycles (0 — the default —
    /// disables periodic checkpointing). Requires [`SimOptions::checkpoint`]
    /// to name the file; each boundary overwrites the previous snapshot,
    /// so the file always holds the latest one. Checkpointing is passive:
    /// results are bit-identical with it on or off.
    pub checkpoint_every: u64,
    /// Checkpoint file path. Periodic snapshots (see
    /// [`SimOptions::checkpoint_every`]) land here, and if the watchdog
    /// fires an auto-checkpoint of the hung state is written next to it
    /// (`<path>.hang`) for forensic replay. A JSON manifest sidecar
    /// (`<path>.manifest.json`) accompanies every snapshot.
    pub checkpoint: Option<String>,
    /// Record the run's per-warp memory-access trace (issue cycles at
    /// program-op granularity) and write it to this path as an RCCT
    /// binary, with a JSON manifest sidecar (`<path>.manifest.json`).
    /// Recording is passive: simulated results are bit-identical with it
    /// on or off, and — like [`SimOptions::checkpoint`] — the path is
    /// host-local state that checkpoints do not carry (a resumed run
    /// does not re-record).
    pub record_trace: Option<String>,
    /// Cooperative-preemption quantum in cycles for the slice entry
    /// points ([`try_simulate_slice`] / [`resume_slice`]): a slice runs
    /// at most this many cycles past its starting point, then yields an
    /// in-memory [`Checkpoint`] instead of finishing. `0` — the default —
    /// runs to completion. Like `checkpoint_every`, this is host-side
    /// scheduling state: it cannot affect simulated results (the resumed
    /// run is digest-verified bit-identical by construction) and is not
    /// serialized into on-disk checkpoints.
    pub quantum: u64,
}

impl SimOptions {
    /// Default options: no checking, generous cycle budget.
    pub fn fast() -> Self {
        SimOptions {
            check_sc: false,
            sanitize: false,
            max_cycles: 200_000_000,
            fast_forward: true,
            chaos: None,
            sample_every: 0,
            trace: false,
            profile: false,
            checkpoint_every: 0,
            checkpoint: None,
            record_trace: None,
            quantum: 0,
        }
    }

    /// Fast options plus full observation (sampling at `every` cycles,
    /// trace recording, self-profiling).
    pub fn observed(every: u64) -> Self {
        SimOptions {
            sample_every: every,
            trace: true,
            profile: true,
            ..SimOptions::fast()
        }
    }

    /// Checked options for tests.
    pub fn checked() -> Self {
        SimOptions {
            check_sc: true,
            ..SimOptions::fast()
        }
    }
}

impl Default for SimOptions {
    fn default() -> Self {
        SimOptions::fast()
    }
}

/// Replay target for a resumed run: the checkpointed cycle and the state
/// digest the replayed machine must match bit-for-bit.
#[derive(Debug, Clone, Copy)]
struct ReplayTo {
    cycle: u64,
    state_digest: u64,
}

fn run_system<P: Protocol>(
    protocol: &P,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
    replay: Option<ReplayTo>,
) -> Result<RunMetrics, SimError> {
    let kind = protocol.kind();
    let check = opts.check_sc && kind.supports_sc();
    let mut system = System::new(protocol, cfg, workload, check);
    system.set_fast_forward(opts.fast_forward);
    if let Some(spec) = &opts.chaos {
        system.set_chaos(spec);
    }
    if opts.sanitize {
        system.enable_sanitizer();
    }
    if opts.sample_every > 0 || opts.trace {
        system.set_observer(rcc_obs::ObsConfig {
            sample_every: opts.sample_every,
            trace: opts.trace,
            max_trace_events: 1_000_000,
        });
    }
    system.set_profiling(opts.profile);
    if opts.record_trace.is_some() && replay.is_none() {
        system.set_trace_recorder(rcc_trace::TraceRecorder::new(workload));
    }

    let outcome = (|| {
        if let Some(target) = replay {
            // Resume: replay to the checkpointed cycle, then prove the
            // rebuilt machine is the checkpointed machine before running
            // on. A mismatch means the binary, config, or workload no
            // longer reproduces the original history — continuing would
            // silently diverge, so it is a typed error instead.
            system.run_until(target.cycle)?;
            let digest = system.state_digest();
            if digest != target.state_digest {
                return Err(SimError::Checkpoint(format!(
                    "state digest mismatch after replay to cycle {}: \
                     checkpoint has {:016x}, replay produced {digest:016x}",
                    target.cycle, target.state_digest
                )));
            }
        }
        if opts.checkpoint_every > 0 {
            if let Some(path) = &opts.checkpoint {
                let mut boundary = opts.checkpoint_every.max(system.cycle().raw() + 1);
                while !system.done() && boundary < opts.max_cycles {
                    system.run_until(boundary)?;
                    if system.done() {
                        break;
                    }
                    checkpoint_now(&system, kind, cfg, workload, opts).save(path)?;
                    boundary += opts.checkpoint_every;
                }
            }
        }
        system.run(opts.max_cycles)
    })();

    match outcome {
        Ok(mut metrics) => {
            metrics.obs = system.take_observation();
            if let (Some(path), Some(rec)) = (&opts.record_trace, system.take_trace_recorder()) {
                let trace = rec.finish(&kind.to_string(), metrics.cycles);
                trace
                    .save(path)
                    .map_err(|e| SimError::Trace(e.to_string()))?;
                let manifest = format!("{path}.manifest.json");
                std::fs::write(&manifest, trace.manifest_json())
                    .map_err(|e| SimError::Trace(format!("{manifest}: {e}")))?;
            }
            Ok(metrics)
        }
        Err(SimError::Deadlock(mut dump)) => {
            // Watchdog fired: attach an auto-checkpoint of the hung
            // state so the hang can be replayed offline. Replaying it
            // deterministically re-reaches the deadlock.
            if let Some(path) = &opts.checkpoint {
                let hang_path = format!("{path}.hang");
                if checkpoint_now(&system, kind, cfg, workload, opts)
                    .save(&hang_path)
                    .is_ok()
                {
                    dump.checkpoint = Some(hang_path);
                }
            }
            Err(SimError::Deadlock(dump))
        }
        Err(e) => Err(e),
    }
}

fn checkpoint_now<P: Protocol>(
    system: &System<P>,
    kind: ProtocolKind,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
) -> Checkpoint {
    Checkpoint {
        kind,
        cfg: cfg.clone(),
        workload: workload.clone(),
        opts: opts.clone(),
        cycle: system.cycle().raw(),
        state_digest: system.state_digest(),
    }
}

/// Mid-run progress attached to a preempted slice: partial engine
/// counters plus whatever the observer sampled so far. The observation is
/// consumed here (the next slice replays from cycle 0 and regenerates it
/// in full), so carrying it off is free.
#[derive(Debug)]
pub struct SliceProgress {
    /// Cycle the slice was preempted at (== the checkpoint's cycle).
    pub cycle: u64,
    /// Instructions issued so far.
    pub issued: u64,
    /// Memory operations issued so far.
    pub mem_ops: u64,
    /// Partial observation (time-series rows sampled up to the
    /// preemption point), when the run was armed with sampling/tracing.
    pub obs: Option<rcc_obs::ObsReport>,
}

/// What one cooperative slice of a run produced: either the run finished
/// inside the quantum, or it was preempted at the quantum boundary and
/// hands back the checkpoint that resumes it bit-identically.
#[derive(Debug)]
pub enum SliceOutcome {
    /// The run completed; full metrics, exactly as [`try_simulate`]
    /// would have returned them.
    Finished(Box<RunMetrics>),
    /// The quantum expired mid-run. `ck` resumes the run (pass it to
    /// [`resume_slice`]); `progress` reports how far it got.
    Preempted {
        /// Checkpoint at the quantum boundary (digest-verified on resume).
        ck: Box<Checkpoint>,
        /// Partial counters and observation at the boundary (boxed: the
        /// observation dwarfs the `Finished` variant otherwise).
        progress: Box<SliceProgress>,
    },
}

fn run_slice<P: Protocol>(
    protocol: &P,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
    replay: Option<ReplayTo>,
) -> Result<SliceOutcome, SimError> {
    let kind = protocol.kind();
    let check = opts.check_sc && kind.supports_sc();
    let mut system = System::new(protocol, cfg, workload, check);
    system.set_fast_forward(opts.fast_forward);
    if let Some(spec) = &opts.chaos {
        system.set_chaos(spec);
    }
    if opts.sanitize {
        system.enable_sanitizer();
    }
    if opts.sample_every > 0 || opts.trace {
        system.set_observer(rcc_obs::ObsConfig {
            sample_every: opts.sample_every,
            trace: opts.trace,
            max_trace_events: 1_000_000,
        });
    }
    // Slice mode arms no trace recorder and writes no periodic disk
    // snapshots: the checkpoint it yields lives in memory, owned by the
    // caller (e.g. the rcc-serve job table). Trace-recording jobs run
    // through `try_simulate` in a single slice instead.
    if let Some(target) = replay {
        system.run_until(target.cycle)?;
        let digest = system.state_digest();
        if digest != target.state_digest {
            return Err(SimError::Checkpoint(format!(
                "state digest mismatch after replay to cycle {}: \
                 checkpoint has {:016x}, replay produced {digest:016x}",
                target.cycle, target.state_digest
            )));
        }
    }
    let boundary = system.cycle().raw().saturating_add(opts.quantum);
    if opts.quantum > 0 && boundary < opts.max_cycles {
        system.run_until(boundary)?;
        if !system.done() {
            let ck = checkpoint_now(&system, kind, cfg, workload, opts);
            let partial = system.metrics();
            return Ok(SliceOutcome::Preempted {
                ck: Box::new(ck),
                progress: Box::new(SliceProgress {
                    cycle: partial.cycles,
                    issued: partial.core.issued,
                    mem_ops: partial.core.mem_ops,
                    obs: system.take_observation(),
                }),
            });
        }
    }
    let mut metrics = system.run(opts.max_cycles)?;
    metrics.obs = system.take_observation();
    Ok(SliceOutcome::Finished(Box::new(metrics)))
}

fn dispatch_slice(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
    replay: Option<ReplayTo>,
) -> Result<SliceOutcome, SimError> {
    match kind {
        ProtocolKind::Mesi => run_slice(&MesiProtocol::new(cfg), cfg, workload, opts, replay),
        ProtocolKind::MesiWb => run_slice(&MesiWbProtocol::new(cfg), cfg, workload, opts, replay),
        ProtocolKind::TcStrong => run_slice(&TcProtocol::strong(cfg), cfg, workload, opts, replay),
        ProtocolKind::TcWeak => run_slice(&TcProtocol::weak(cfg), cfg, workload, opts, replay),
        ProtocolKind::RccSc => {
            run_slice(&RccProtocol::sequential(cfg), cfg, workload, opts, replay)
        }
        ProtocolKind::RccWo => run_slice(
            &RccProtocol::weakly_ordered(cfg),
            cfg,
            workload,
            opts,
            replay,
        ),
        ProtocolKind::IdealSc => run_slice(&IdealProtocol::new(cfg), cfg, workload, opts, replay),
    }
}

/// Runs at most one quantum ([`SimOptions::quantum`]) of `workload` under
/// `kind`, from the beginning of the run. Returns
/// [`SliceOutcome::Finished`] with full metrics when the run completes
/// inside the quantum, or [`SliceOutcome::Preempted`] with the in-memory
/// checkpoint that continues it ([`resume_slice`]). With `quantum == 0`
/// this is [`try_simulate`] with a boxed result.
///
/// The slice chain is bit-identical to an uninterrupted run by
/// construction: every resume replays to the checkpointed cycle and
/// verifies the architectural state digest before continuing.
///
/// # Errors
///
/// Everything [`try_simulate`] can return; the checked-verdict errors
/// (SC scoreboard / sanitizer) apply only to a finished run.
pub fn try_simulate_slice(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
) -> Result<SliceOutcome, SimError> {
    let out = dispatch_slice(kind, cfg, workload, opts, None)?;
    if let SliceOutcome::Finished(metrics) = &out {
        verify_metrics(kind, workload.name, opts, metrics)?;
    }
    Ok(out)
}

/// Continues a run preempted by [`try_simulate_slice`]: replays to the
/// checkpointed cycle, verifies the state digest bit-for-bit, then runs
/// at most one more quantum (the checkpoint's `opts.quantum`).
///
/// # Errors
///
/// [`SimError::Checkpoint`] when the replayed state digest does not match
/// the checkpointed one (a corrupted or inapplicable snapshot), plus
/// everything [`try_simulate_slice`] can return.
pub fn resume_slice(ck: &Checkpoint) -> Result<SliceOutcome, SimError> {
    let replay = ReplayTo {
        cycle: ck.cycle,
        state_digest: ck.state_digest,
    };
    let out = dispatch_slice(ck.kind, &ck.cfg, &ck.workload, &ck.opts, Some(replay))?;
    if let SliceOutcome::Finished(metrics) = &out {
        verify_metrics(ck.kind, ck.workload.name, &ck.opts, metrics)?;
    }
    Ok(out)
}

fn dispatch(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
    replay: Option<ReplayTo>,
) -> Result<RunMetrics, SimError> {
    match kind {
        ProtocolKind::Mesi => run_system(&MesiProtocol::new(cfg), cfg, workload, opts, replay),
        ProtocolKind::MesiWb => run_system(&MesiWbProtocol::new(cfg), cfg, workload, opts, replay),
        ProtocolKind::TcStrong => run_system(&TcProtocol::strong(cfg), cfg, workload, opts, replay),
        ProtocolKind::TcWeak => run_system(&TcProtocol::weak(cfg), cfg, workload, opts, replay),
        ProtocolKind::RccSc => {
            run_system(&RccProtocol::sequential(cfg), cfg, workload, opts, replay)
        }
        ProtocolKind::RccWo => run_system(
            &RccProtocol::weakly_ordered(cfg),
            cfg,
            workload,
            opts,
            replay,
        ),
        ProtocolKind::IdealSc => run_system(&IdealProtocol::new(cfg), cfg, workload, opts, replay),
    }
}

fn verify_metrics(
    kind: ProtocolKind,
    workload: &str,
    opts: &SimOptions,
    metrics: &RunMetrics,
) -> Result<(), SimError> {
    // An unsound chaos profile (the canary) is *expected* to break SC;
    // the caller inspects the verdicts instead of the run failing.
    let chaos_sound = opts.chaos.as_ref().is_none_or(|c| c.profile.is_sound());
    let check = opts.check_sc && kind.supports_sc();
    if check && chaos_sound && metrics.sc_violations > 0 {
        return Err(SimError::ScViolation {
            kind,
            workload: workload.to_string(),
            violations: metrics.sc_violations as u64,
        });
    }
    if opts.sanitize && kind.supports_sc() && chaos_sound && metrics.sanitizer_sc != Some(true) {
        return Err(SimError::SanitizerViolation {
            kind,
            workload: workload.to_string(),
        });
    }
    Ok(())
}

/// Runs `workload` on the machine `cfg` under `kind`, returning the run's
/// metrics.
///
/// # Errors
///
/// [`SimError::Deadlock`] (with a forensic hang-dump) if the watchdog
/// fires, [`SimError::CyclesExceeded`] past `max_cycles`,
/// [`SimError::ProtocolInvariant`] on completion-bookkeeping corruption,
/// [`SimError::ScViolation`] / [`SimError::SanitizerViolation`] when the
/// requested checks fail on an SC-capable protocol, and
/// [`SimError::Checkpoint`] when a requested snapshot cannot be written.
pub fn try_simulate(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
) -> Result<RunMetrics, SimError> {
    let metrics = dispatch(kind, cfg, workload, opts, None)?;
    verify_metrics(kind, workload.name, opts, &metrics)?;
    Ok(metrics)
}

/// Runs `workload` on the machine `cfg` under `kind`, returning the run's
/// metrics. Convenience wrapper over [`try_simulate`] for tests and
/// callers that treat any failure as fatal.
///
/// # Panics
///
/// Panics on any [`SimError`] — deadlock, cycle-budget exhaustion,
/// protocol-invariant breakage, or SC/sanitizer violations.
pub fn simulate(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    workload: &Workload,
    opts: &SimOptions,
) -> RunMetrics {
    match try_simulate(kind, cfg, workload, opts) {
        Ok(metrics) => metrics,
        Err(e) => panic!("{e}"), // rcc-lint: allow(sim-panic, documented panicking wrapper; fallible callers use try_simulate)
    }
}

/// Resumes the run recorded in the checkpoint at `path`: rebuilds the
/// system from the checkpointed input closure, replays to the
/// checkpointed cycle, verifies the state digest bit-for-bit, and runs to
/// completion. The returned metrics (and observation digests) are
/// bit-identical to an uninterrupted run of the same inputs.
///
/// # Errors
///
/// [`SimError::Checkpoint`] if the file is unreadable or corrupt, or if
/// the replayed state digest does not match the checkpointed one; plus
/// anything [`try_simulate`] can return for the continued run.
pub fn resume(path: &str) -> Result<RunMetrics, SimError> {
    let ck = Checkpoint::load(path)?;
    resume_checkpoint(&ck)
}

/// [`resume`] for an already-decoded checkpoint.
///
/// # Errors
///
/// See [`resume`].
pub fn resume_checkpoint(ck: &Checkpoint) -> Result<RunMetrics, SimError> {
    let replay = ReplayTo {
        cycle: ck.cycle,
        state_digest: ck.state_digest,
    };
    let metrics = dispatch(ck.kind, &ck.cfg, &ck.workload, &ck.opts, Some(replay))?;
    verify_metrics(ck.kind, ck.workload.name, &ck.opts, &metrics)?;
    Ok(metrics)
}
