//! Litmus-test harness: runs a litmus program under a protocol and
//! reports the observed outcome.
//!
//! Every litmus run executes with the `rcc-verify` runtime SC sanitizer
//! attached: each access is recorded and, after the run, the sanitizer
//! checks whether an SC total order explains the observed values. All
//! entry points return `Result` and share one non-panicking core
//! ([`run_litmus_observed`]): for SC-capable protocols a non-SC verdict
//! is a [`SimError::SanitizerViolation`] from [`run_litmus`]; the chaos
//! and observer variants surface the verdict in
//! [`LitmusOutcome::sanitizer_sc`] so sweeps can decide what a violation
//! means for the (protocol, profile) pair at hand.

use crate::error::SimError;
use crate::system::System;
use rcc_chaos::ChaosSpec;
use rcc_common::config::GpuConfig;
use rcc_core::ideal::IdealProtocol;
use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
use rcc_core::rcc::RccProtocol;
use rcc_core::tc::TcProtocol;
use rcc_core::ProtocolKind;
use rcc_obs::{ObsConfig, ObsReport};
use rcc_workloads::litmus::Litmus;
use rcc_workloads::Workload;

/// Cycle budget for a litmus run — they finish in thousands of cycles,
/// so ten million means something is wedged.
const LITMUS_MAX_CYCLES: u64 = 10_000_000;

/// One observed litmus outcome.
#[derive(Debug, Clone)]
pub struct LitmusOutcome {
    /// Values read by the probes, in probe order.
    pub values: Vec<u64>,
    /// Whether the SC-forbidden outcome was observed.
    pub forbidden: bool,
    /// Runtime sanitizer verdict: does an SC total order explain the
    /// whole execution (not just the probed values)?
    pub sanitizer_sc: bool,
}

/// The workload a litmus test runs as (one warp per program, forced
/// inter-workgroup sharing). Public so observers and golden tests can run
/// litmus programs through the regular [`crate::runner::simulate`] path.
pub fn litmus_workload(litmus: &Litmus) -> Workload {
    Workload {
        name: litmus.name,
        category: rcc_workloads::Sharing::InterWorkgroup,
        programs: litmus.programs.clone(),
        warps_per_workgroup: 1,
    }
}

fn run_one<P: rcc_core::protocol::Protocol>(
    protocol: &P,
    cfg: &GpuConfig,
    litmus: &Litmus,
    chaos: Option<&ChaosSpec>,
    obs: Option<&ObsConfig>,
) -> Result<(LitmusOutcome, Option<ObsReport>), SimError> {
    let workload = litmus_workload(litmus);
    let mut sys = System::new(protocol, cfg, &workload, false);
    if let Some(spec) = chaos {
        sys.set_chaos(spec);
    }
    if let Some(cfg) = obs {
        sys.set_observer(cfg.clone());
    }
    sys.enable_sanitizer();
    sys.run_until(LITMUS_MAX_CYCLES)?;
    if !sys.done() {
        return Err(SimError::CyclesExceeded {
            kind: protocol.kind(),
            workload: litmus.name.to_string(),
            max_cycles: LITMUS_MAX_CYCLES,
        });
    }
    let mut values = Vec::with_capacity(litmus.probes.len());
    for p in &litmus.probes {
        let loads = sys.loads_of(p.core.index(), p.warp.index(), p.addr);
        match loads.get(p.nth) {
            Some(&v) => values.push(v),
            None => {
                return Err(SimError::ProbeMissing {
                    litmus: litmus.name.to_string(),
                    probe: format!("{p:?}"),
                })
            }
        }
    }
    let forbidden = (litmus.forbidden)(&values);
    let sanitizer_sc =
        sys.sanitizer_report()
            .map(|r| r.sc)
            .ok_or_else(|| SimError::ProbeMissing {
                litmus: litmus.name.to_string(),
                probe: "sanitizer report".to_string(),
            })?;
    let report = sys.take_observation();
    Ok((
        LitmusOutcome {
            values,
            forbidden,
            sanitizer_sc,
        },
        report,
    ))
}

/// Runs one litmus test under `kind`.
///
/// # Errors
///
/// [`SimError::SanitizerViolation`] for an SC-capable protocol whose
/// execution the sanitizer cannot explain with any SC total order — that
/// is a protocol bug, not an interesting outcome — plus anything the
/// underlying run can produce (deadlock, cycle budget, missing probe).
pub fn run_litmus(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    litmus: &Litmus,
) -> Result<LitmusOutcome, SimError> {
    let out = run_litmus_chaos(kind, cfg, litmus, None)?;
    if kind.supports_sc() && !out.sanitizer_sc {
        return Err(SimError::SanitizerViolation {
            kind,
            workload: litmus.name.to_string(),
        });
    }
    Ok(out)
}

/// Runs one litmus test under `kind` with optional chaos injection.
///
/// Unlike [`run_litmus`] this never fails on the sanitizer verdict: the
/// chaos sweep *wants* to observe failed verdicts (that is how the canary
/// profile proves the sanitizer catches unsound protocols), so the caller
/// inspects [`LitmusOutcome::sanitizer_sc`] and decides what a violation
/// means for the (protocol, profile) pair at hand.
///
/// # Errors
///
/// Run failures only: deadlock, cycle budget, missing probe.
pub fn run_litmus_chaos(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    litmus: &Litmus,
    chaos: Option<&ChaosSpec>,
) -> Result<LitmusOutcome, SimError> {
    Ok(run_litmus_observed(kind, cfg, litmus, chaos, None)?.0)
}

/// Runs one litmus test with optional chaos injection and an optional
/// observer attached, returning the outcome together with whatever the
/// observer recorded (`None` when no observer was requested).
///
/// Like [`run_litmus_chaos`], this never fails on the sanitizer verdict.
///
/// # Errors
///
/// Run failures only: deadlock, cycle budget, missing probe.
pub fn run_litmus_observed(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    litmus: &Litmus,
    chaos: Option<&ChaosSpec>,
    obs: Option<&ObsConfig>,
) -> Result<(LitmusOutcome, Option<ObsReport>), SimError> {
    match kind {
        ProtocolKind::Mesi => run_one(&MesiProtocol::new(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::MesiWb => run_one(&MesiWbProtocol::new(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::TcStrong => run_one(&TcProtocol::strong(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::TcWeak => run_one(&TcProtocol::weak(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::RccSc => run_one(&RccProtocol::sequential(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::RccWo => run_one(&RccProtocol::weakly_ordered(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::IdealSc => run_one(&IdealProtocol::new(cfg), cfg, litmus, chaos, obs),
    }
}

/// Runs `make_litmus(seed)` for every seed in `0..runs`, counting how
/// often the forbidden outcome appeared.
///
/// # Panics
///
/// Panics if any run fails — the callers are matrix tests where a failed
/// run is a harness bug, not a countable outcome.
pub fn count_forbidden(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    runs: u64,
    make_litmus: impl Fn(u64) -> Litmus,
) -> u64 {
    (0..runs)
        .filter(|&seed| {
            let litmus = make_litmus(seed);
            run_litmus(kind, cfg, &litmus)
                // rcc-lint: allow(sim-panic, documented panicking helper mirroring simulate(); tests want the abort)
                .unwrap_or_else(|e| panic!("{e}"))
                .forbidden
        })
        .count() as u64
}
