//! Litmus-test harness: runs a litmus program under a protocol and
//! reports the observed outcome.
//!
//! Every litmus run executes with the `rcc-verify` runtime SC sanitizer
//! attached: each access is recorded and, after the run, the sanitizer
//! checks whether an SC total order explains the observed values. For
//! SC-capable protocols a non-SC verdict is a harness panic; for weakly
//! ordered protocols (TC-Weak, RCC-WO) the verdict is surfaced in
//! [`LitmusOutcome::sanitizer_sc`] so tests can assert that a forbidden
//! outcome really is non-SC rather than merely unusual.

use crate::system::System;
use rcc_chaos::ChaosSpec;
use rcc_common::config::GpuConfig;
use rcc_core::ideal::IdealProtocol;
use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
use rcc_core::rcc::RccProtocol;
use rcc_core::tc::TcProtocol;
use rcc_core::ProtocolKind;
use rcc_obs::{ObsConfig, ObsReport};
use rcc_workloads::litmus::Litmus;
use rcc_workloads::Workload;

/// One observed litmus outcome.
#[derive(Debug, Clone)]
pub struct LitmusOutcome {
    /// Values read by the probes, in probe order.
    pub values: Vec<u64>,
    /// Whether the SC-forbidden outcome was observed.
    pub forbidden: bool,
    /// Runtime sanitizer verdict: does an SC total order explain the
    /// whole execution (not just the probed values)?
    pub sanitizer_sc: bool,
}

/// The workload a litmus test runs as (one warp per program, forced
/// inter-workgroup sharing). Public so observers and golden tests can run
/// litmus programs through the regular [`crate::runner::simulate`] path.
pub fn litmus_workload(litmus: &Litmus) -> Workload {
    Workload {
        name: litmus.name,
        category: rcc_workloads::Sharing::InterWorkgroup,
        programs: litmus.programs.clone(),
        warps_per_workgroup: 1,
    }
}

fn run_one<P: rcc_core::protocol::Protocol>(
    protocol: &P,
    cfg: &GpuConfig,
    litmus: &Litmus,
    chaos: Option<&ChaosSpec>,
    obs: Option<&ObsConfig>,
) -> (LitmusOutcome, Option<ObsReport>) {
    let workload = litmus_workload(litmus);
    let mut sys = System::new(protocol, cfg, &workload, false);
    if let Some(spec) = chaos {
        sys.set_chaos(spec);
    }
    if let Some(cfg) = obs {
        sys.set_observer(cfg.clone());
    }
    sys.enable_sanitizer();
    sys_run(&mut sys);
    let values: Vec<u64> = litmus
        .probes
        .iter()
        .map(|p| {
            let loads = sys.loads_of(p.core.index(), p.warp.index(), p.addr);
            *loads
                .get(p.nth)
                .unwrap_or_else(|| panic!("{}: probe {p:?} did not execute", litmus.name))
        })
        .collect();
    let forbidden = (litmus.forbidden)(&values);
    let sanitizer_sc = sys
        .sanitizer_report()
        .map(|r| r.sc)
        .expect("sanitizer was enabled");
    let report = sys.take_observation();
    (
        LitmusOutcome {
            values,
            forbidden,
            sanitizer_sc,
        },
        report,
    )
}

fn sys_run<P: rcc_core::protocol::Protocol>(sys: &mut System<P>) -> u64 {
    while !sys.done() {
        sys.step();
        assert!(sys.cycle().raw() < 10_000_000, "litmus run too long");
    }
    sys.cycle().raw()
}

/// Runs one litmus test under `kind`.
///
/// # Panics
///
/// Panics for an SC-capable protocol whose execution the sanitizer
/// cannot explain with any SC total order — that is a protocol bug, not
/// an interesting outcome.
pub fn run_litmus(kind: ProtocolKind, cfg: &GpuConfig, litmus: &Litmus) -> LitmusOutcome {
    let out = run_litmus_chaos(kind, cfg, litmus, None);
    if kind.supports_sc() {
        assert!(
            out.sanitizer_sc,
            "{kind} on {}: sanitizer found no SC order for the execution",
            litmus.name
        );
    }
    out
}

/// Runs one litmus test under `kind` with optional chaos injection.
///
/// Unlike [`run_litmus`] this never panics on the sanitizer verdict: the
/// chaos sweep *wants* to observe failed verdicts (that is how the canary
/// profile proves the sanitizer catches unsound protocols), so the caller
/// inspects [`LitmusOutcome::sanitizer_sc`] and decides what a violation
/// means for the (protocol, profile) pair at hand.
pub fn run_litmus_chaos(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    litmus: &Litmus,
    chaos: Option<&ChaosSpec>,
) -> LitmusOutcome {
    run_litmus_observed(kind, cfg, litmus, chaos, None).0
}

/// Runs one litmus test with optional chaos injection and an optional
/// observer attached, returning the outcome together with whatever the
/// observer recorded (`None` when no observer was requested).
///
/// Like [`run_litmus_chaos`], this never panics on the sanitizer verdict.
pub fn run_litmus_observed(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    litmus: &Litmus,
    chaos: Option<&ChaosSpec>,
    obs: Option<&ObsConfig>,
) -> (LitmusOutcome, Option<ObsReport>) {
    match kind {
        ProtocolKind::Mesi => run_one(&MesiProtocol::new(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::MesiWb => run_one(&MesiWbProtocol::new(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::TcStrong => run_one(&TcProtocol::strong(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::TcWeak => run_one(&TcProtocol::weak(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::RccSc => run_one(&RccProtocol::sequential(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::RccWo => run_one(&RccProtocol::weakly_ordered(cfg), cfg, litmus, chaos, obs),
        ProtocolKind::IdealSc => run_one(&IdealProtocol::new(cfg), cfg, litmus, chaos, obs),
    }
}

/// Runs `make_litmus(seed)` for every seed in `0..runs`, counting how
/// often the forbidden outcome appeared.
pub fn count_forbidden(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    runs: u64,
    make_litmus: impl Fn(u64) -> Litmus,
) -> u64 {
    (0..runs)
        .filter(|&seed| run_litmus(kind, cfg, &make_litmus(seed)).forbidden)
        .count() as u64
}
