//! The system's attached observer: owns the time-series sampler and the
//! trace buffer while a run is in flight.
//!
//! Everything here is passive. The observer reads simulator state at
//! sample boundaries and records trace events as messages move, but
//! nothing on the simulated path ever reads it back — the determinism
//! test (`obs_is_invisible_in_simulated_results`) holds the simulator to
//! that. The only engine-visible effect of arming an observer is that
//! fast-forward jumps are capped at sample boundaries so every boundary
//! cycle is actually stepped; that changes engine telemetry
//! (`skipped_cycles`/`ff_jumps`) only, which `same_simulated_results`
//! already excludes.

use rcc_common::config::GpuConfig;
use rcc_common::stats::MsgClass;
use rcc_obs::{track, ColKind, ObsConfig, ObsReport, TimeSeries, TraceBuffer};

/// Sampler + trace buffer attached to a running [`crate::System`].
pub struct Observer {
    cfg: ObsConfig,
    series: TimeSeries,
    /// Scratch row reused across samples (schema order).
    row: Vec<u64>,
    trace: TraceBuffer,
    /// Next cycle at which a sample is due (multiple of `sample_every`).
    next_sample: u64,
}

impl Observer {
    /// Builds an observer for a machine shaped like `gpu`. The series
    /// schema and the trace track names are fixed here, up front, so
    /// every dump of the same configuration has the same shape.
    pub fn new(cfg: ObsConfig, gpu: &GpuConfig) -> Self {
        let mut schema: Vec<(String, ColKind)> = vec![
            ("issued".into(), ColKind::Delta),
            ("mem_ops".into(), ColKind::Delta),
            ("l1.loads".into(), ColKind::Delta),
            ("l1.load_hits".into(), ColKind::Delta),
            ("l1.expired_loads".into(), ColKind::Delta),
            ("l1.renewed_loads".into(), ColKind::Delta),
            ("l2.gets".into(), ColKind::Delta),
            ("l2.dram_fetches".into(), ColKind::Delta),
            ("l2.renews_granted".into(), ColKind::Delta),
            ("dram.row_hits".into(), ColKind::Delta),
            ("dram.row_misses".into(), ColKind::Delta),
            ("rollovers".into(), ColKind::Delta),
            ("mshr.l1".into(), ColKind::Gauge),
            ("mshr.l2".into(), ColKind::Gauge),
            ("noc.req_in_flight".into(), ColKind::Gauge),
            ("noc.resp_in_flight".into(), ColKind::Gauge),
            ("noc.req_peak".into(), ColKind::Gauge),
            ("noc.resp_peak".into(), ColKind::Gauge),
        ];
        for c in 0..gpu.num_cores {
            schema.push((format!("warps.core{c}"), ColKind::Gauge));
        }
        for class in MsgClass::ALL {
            schema.push((format!("flits.{}", class.label()), ColKind::Delta));
        }
        let width = schema.len();

        let mut trace = TraceBuffer::new(if cfg.trace { cfg.max_trace_events } else { 0 });
        if cfg.trace {
            trace.thread_name(track::SYSTEM, "system".into());
            for c in 0..gpu.num_cores {
                trace.thread_name(track::CORE_BASE + c as u64, format!("core{c}"));
            }
            for p in 0..gpu.l2.num_partitions {
                trace.thread_name(track::L2_BASE + p as u64, format!("l2-bank{p}"));
                trace.thread_name(track::DRAM_BASE + p as u64, format!("dram{p}"));
            }
            trace.thread_name(track::NOC_REQ, "noc-req".into());
            trace.thread_name(track::NOC_RESP, "noc-resp".into());
        }

        let first_sample = cfg.sample_every.max(1);
        Observer {
            next_sample: if cfg.sample_every > 0 {
                first_sample
            } else {
                u64::MAX
            },
            cfg,
            series: TimeSeries::new(schema),
            row: Vec::with_capacity(width),
            trace,
        }
    }

    /// Whether trace events should be recorded.
    pub fn tracing(&self) -> bool {
        self.cfg.trace
    }

    /// The trace buffer (no-ops when built with tracing off, because its
    /// capacity is 0 — events count as dropped).
    pub fn trace_mut(&mut self) -> &mut TraceBuffer {
        &mut self.trace
    }

    /// The next cycle that must be stepped so a due sample is taken;
    /// `None` when sampling is off. Fast-forward jumps are capped here.
    pub fn next_sample_cycle(&self) -> Option<u64> {
        (self.cfg.sample_every > 0).then_some(self.next_sample)
    }

    /// Whether a sample is due at `cycle`.
    pub fn sample_due(&self, cycle: u64) -> bool {
        self.cfg.sample_every > 0 && cycle >= self.next_sample
    }

    /// Clears the scratch row and hands it out for the system to fill in
    /// schema order.
    pub fn row_mut(&mut self) -> &mut Vec<u64> {
        self.row.clear();
        &mut self.row
    }

    /// Commits the filled scratch row as the sample for `cycle` and
    /// schedules the next boundary.
    pub fn commit_sample(&mut self, cycle: u64) {
        let row = std::mem::take(&mut self.row);
        self.series.push(cycle, &row);
        self.row = row;
        if let Some(intervals) = cycle.checked_div(self.cfg.sample_every) {
            // Next multiple of sample_every strictly after `cycle`.
            self.next_sample = (intervals + 1) * self.cfg.sample_every;
        }
    }

    /// Whether `cycle` already has a sampled row (used to avoid a
    /// duplicate tail sample at run end).
    pub fn sampled_at(&self, cycle: u64) -> bool {
        self.series.cycles().last() == Some(&cycle)
    }

    /// Consumes the observer into its report.
    pub fn into_report(self) -> ObsReport {
        ObsReport {
            series: self.series,
            trace: self.trace,
        }
    }
}
