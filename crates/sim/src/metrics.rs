//! Run measurements: everything the paper's figures are computed from.

use rcc_common::stats::{Histogram, TrafficStats};
use rcc_core::protocol::{L1Stats, L2Stats};
use rcc_core::ProtocolKind;
use rcc_gpu::CoreStats;
use rcc_noc::EnergyBreakdown;

/// Aggregated measurements of one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Protocol configuration that ran.
    pub kind: ProtocolKind,
    /// Workload name.
    pub workload: String,
    /// Wall-clock cycles until every warp retired.
    pub cycles: u64,
    /// Core-side statistics, merged over all cores.
    pub core: CoreStats,
    /// L1 statistics, merged.
    pub l1: L1Stats,
    /// L2 statistics, merged.
    pub l2: L2Stats,
    /// NoC traffic by message class.
    pub traffic: TrafficStats,
    /// Interconnect energy breakdown.
    pub energy: EnergyBreakdown,
    /// DRAM accesses (reads, writes) and mean read latency.
    pub dram_reads: u64,
    /// DRAM writes.
    pub dram_writes: u64,
    /// Mean DRAM read latency in cycles.
    pub dram_read_latency: f64,
    /// SC violations found by the scoreboard (0 unless checking was on
    /// and the protocol is broken — or TC-Weak, which is expected to
    /// violate write atomicity).
    pub sc_violations: usize,
    /// Runtime SC sanitizer verdict: `Some(true)` if an SC total order
    /// exists for the recorded execution, `Some(false)` if not, `None`
    /// when the sanitizer was not enabled.
    pub sanitizer_sc: Option<bool>,
    /// Timestamp rollovers performed (RCC only).
    pub rollovers: u64,
    /// Perturbations fired by the chaos harness (0 unless the run was
    /// armed with a [`rcc_chaos::ChaosSpec`]). Part of the simulated
    /// results: two runs of the same (seed, profile) must inject exactly
    /// the same perturbations, fast-forwarding or not.
    pub chaos_events: u64,
    /// Cycles the engine fast-forwarded over instead of stepping. Pure
    /// engine telemetry: simulated results are identical whether these
    /// cycles were skipped or stepped (see
    /// [`RunMetrics::same_simulated_results`]).
    pub skipped_cycles: u64,
    /// Fast-forward jumps taken (engine telemetry).
    pub ff_jumps: u64,
}

impl RunMetrics {
    /// Fraction of simulated cycles the engine skipped rather than
    /// stepped (0 when fast-forwarding is off or never fired).
    pub fn skip_ratio(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / self.cycles as f64
        }
    }

    /// Whether two runs produced bit-identical *simulated* results:
    /// every architectural measurement must match exactly; only the
    /// engine telemetry (skipped cycles / jumps) may differ. This is
    /// the fast-forward correctness contract the determinism tests
    /// enforce.
    #[allow(clippy::float_cmp)] // bit-identical is the requirement
    pub fn same_simulated_results(&self, other: &RunMetrics) -> bool {
        self.kind == other.kind
            && self.workload == other.workload
            && self.cycles == other.cycles
            && self.core == other.core
            && self.l1 == other.l1
            && self.l2 == other.l2
            && self.traffic == other.traffic
            && self.energy == other.energy
            && self.dram_reads == other.dram_reads
            && self.dram_writes == other.dram_writes
            && self.dram_read_latency == other.dram_read_latency
            && self.sc_violations == other.sc_violations
            && self.sanitizer_sc == other.sanitizer_sc
            && self.rollovers == other.rollovers
            && self.chaos_events == other.chaos_events
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.core.issued as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to a baseline run of the same
    /// workload (the normalization of Figs. 8–10).
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// SC stall rate normalized per issued memory operation.
    pub fn sc_stalls_per_mem_op(&self) -> f64 {
        if self.core.mem_ops == 0 {
            0.0
        } else {
            self.core.sc_stall_cycles as f64 / self.core.mem_ops as f64
        }
    }

    /// Fraction of loads that found data valid-but-expired in the L1
    /// (Fig. 6 left).
    pub fn expired_load_fraction(&self) -> f64 {
        if self.l1.loads == 0 {
            0.0
        } else {
            self.l1.expired_loads as f64 / self.l1.loads as f64
        }
    }

    /// Of the expired loads, the fraction revalidated by a RENEW — i.e.
    /// premature expirations (Fig. 6 right).
    pub fn renewable_fraction(&self) -> f64 {
        if self.l1.expired_loads == 0 {
            0.0
        } else {
            self.l1.renewed_loads as f64 / self.l1.expired_loads as f64
        }
    }

    /// Mean load latency (Fig. 1c).
    pub fn load_latency(&self) -> &Histogram {
        &self.core.load_latency
    }

    /// Mean store latency (Fig. 1c).
    pub fn store_latency(&self) -> &Histogram {
        &self.core.store_latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::stats::TrafficStats;
    use rcc_core::protocol::{L1Stats, L2Stats};
    use rcc_gpu::CoreStats;
    use rcc_noc::EnergyBreakdown;

    fn metrics(cycles: u64, issued: u64) -> RunMetrics {
        let core = CoreStats {
            issued,
            mem_ops: issued / 2,
            ..CoreStats::default()
        };
        RunMetrics {
            kind: ProtocolKind::RccSc,
            workload: "test".into(),
            cycles,
            core,
            l1: L1Stats::default(),
            l2: L2Stats::default(),
            traffic: TrafficStats::new(),
            energy: EnergyBreakdown::default(),
            dram_reads: 0,
            dram_writes: 0,
            dram_read_latency: 0.0,
            sc_violations: 0,
            sanitizer_sc: None,
            rollovers: 0,
            chaos_events: 0,
            skipped_cycles: 0,
            ff_jumps: 0,
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let a = metrics(1000, 500);
        let b = metrics(2000, 500);
        assert!((a.ipc() - 0.5).abs() < 1e-12);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
        assert!((b.speedup_over(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_edge_cases() {
        let z = metrics(0, 0);
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.speedup_over(&metrics(100, 1)), 0.0);
        assert_eq!(z.sc_stalls_per_mem_op(), 0.0);
        assert_eq!(z.expired_load_fraction(), 0.0);
        assert_eq!(z.renewable_fraction(), 0.0);
    }

    #[test]
    fn fractions() {
        let mut m = metrics(10, 10);
        m.l1.loads = 100;
        m.l1.expired_loads = 25;
        m.l1.renewed_loads = 20;
        assert!((m.expired_load_fraction() - 0.25).abs() < 1e-12);
        assert!((m.renewable_fraction() - 0.8).abs() < 1e-12);
        m.core.sc_stall_cycles = 50;
        assert!((m.sc_stalls_per_mem_op() - 10.0).abs() < 1e-12);
    }
}
