//! Run measurements: everything the paper's figures are computed from.

use rcc_common::addr::WordAddr;
use rcc_common::snap::StateDigest;
use rcc_common::stats::{Histogram, MsgClass, TrafficStats};
use rcc_core::protocol::{L1Stats, L2Stats};
use rcc_core::ProtocolKind;
use rcc_gpu::CoreStats;
use rcc_noc::EnergyBreakdown;
use rcc_obs::{DigestWriter, ObsReport, SimProfile};

/// Telemetry of the event-driven engine's calendar queue: how many wake
/// events were posted and superseded, how deep the queue ran, and how
/// far its exact wakes sat from the conservative min-scan hint. Pure
/// engine measurement — two runs with identical simulated results may
/// differ here (e.g. scheduled vs. stepped).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedStats {
    /// Wake events posted into the calendar queue.
    pub events_posted: u64,
    /// Posted events superseded by a re-arm before firing.
    pub events_cancelled: u64,
    /// Median queue depth sampled at every post.
    pub queue_depth_p50: u64,
    /// Peak queue depth.
    pub queue_depth_max: u64,
    /// Mean |exact wake − min-scan hint| over sampled jumps (0 when the
    /// queue and the conservative scan agree, as they do when every
    /// component's hint is exact).
    pub wake_slack_mean: f64,
}

/// Aggregated measurements of one simulation run.
#[derive(Debug, Clone)]
pub struct RunMetrics {
    /// Protocol configuration that ran.
    pub kind: ProtocolKind,
    /// Workload name.
    pub workload: String,
    /// Wall-clock cycles until every warp retired.
    pub cycles: u64,
    /// Core-side statistics, merged over all cores.
    pub core: CoreStats,
    /// L1 statistics, merged.
    pub l1: L1Stats,
    /// L2 statistics, merged.
    pub l2: L2Stats,
    /// NoC traffic by message class.
    pub traffic: TrafficStats,
    /// Interconnect energy breakdown.
    pub energy: EnergyBreakdown,
    /// DRAM accesses (reads, writes) and mean read latency.
    pub dram_reads: u64,
    /// DRAM writes.
    pub dram_writes: u64,
    /// Mean DRAM read latency in cycles.
    pub dram_read_latency: f64,
    /// SC violations found by the scoreboard (0 unless checking was on
    /// and the protocol is broken — or TC-Weak, which is expected to
    /// violate write atomicity).
    pub sc_violations: usize,
    /// Runtime SC sanitizer verdict: `Some(true)` if an SC total order
    /// exists for the recorded execution, `Some(false)` if not, `None`
    /// when the sanitizer was not enabled.
    pub sanitizer_sc: Option<bool>,
    /// Timestamp rollovers performed (RCC only).
    pub rollovers: u64,
    /// Perturbations fired by the chaos harness (0 unless the run was
    /// armed with a [`rcc_chaos::ChaosSpec`]). Part of the simulated
    /// results: two runs of the same (seed, profile) must inject exactly
    /// the same perturbations, fast-forwarding or not.
    pub chaos_events: u64,
    /// Cycles the engine fast-forwarded over instead of stepping. Pure
    /// engine telemetry: simulated results are identical whether these
    /// cycles were skipped or stepped (see
    /// [`RunMetrics::same_simulated_results`]).
    pub skipped_cycles: u64,
    /// Fast-forward jumps taken (engine telemetry).
    pub ff_jumps: u64,
    /// Calendar-queue scheduler telemetry (engine telemetry, excluded
    /// from [`RunMetrics::same_simulated_results`] like the other
    /// engine counters).
    pub sched: SchedStats,
    /// Simulator self-profile: wall-clock attribution per engine phase.
    /// `None` unless profiling was armed. Host-machine measurement, not a
    /// simulated result — excluded from
    /// [`RunMetrics::same_simulated_results`].
    pub profile: Option<SimProfile>,
    /// What the attached observer recorded (time-series + trace). `None`
    /// unless an observer was armed. Observation, not simulation —
    /// excluded from [`RunMetrics::same_simulated_results`].
    pub obs: Option<ObsReport>,
    /// FNV digest of the logical final memory image: the winning write
    /// per word ordered by `(timestamp, sequence)`, which is protocol-
    /// independent for race-free programs. A simulated result (compared
    /// by [`RunMetrics::same_simulated_results`] and the differential
    /// trace-replay suite) but *not* folded into [`RunMetrics::digest`]:
    /// the golden snapshot hashes predate it and must stay stable.
    pub final_mem_digest: u64,
}

impl RunMetrics {
    /// Fraction of simulated cycles the engine skipped rather than
    /// stepped (0 when fast-forwarding is off or never fired).
    pub fn skip_ratio(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.skipped_cycles as f64 / self.cycles as f64
        }
    }

    /// Whether two runs produced bit-identical *simulated* results:
    /// every architectural measurement must match exactly; only the
    /// engine telemetry (skipped cycles / jumps) may differ. This is
    /// the fast-forward correctness contract the determinism tests
    /// enforce.
    #[allow(clippy::float_cmp)] // bit-identical is the requirement
    pub fn same_simulated_results(&self, other: &RunMetrics) -> bool {
        self.kind == other.kind
            && self.workload == other.workload
            && self.cycles == other.cycles
            && self.core == other.core
            && self.l1 == other.l1
            && self.l2 == other.l2
            && self.traffic == other.traffic
            && self.energy == other.energy
            && self.dram_reads == other.dram_reads
            && self.dram_writes == other.dram_writes
            && self.dram_read_latency == other.dram_read_latency
            && self.sc_violations == other.sc_violations
            && self.sanitizer_sc == other.sanitizer_sc
            && self.rollovers == other.rollovers
            && self.chaos_events == other.chaos_events
            && self.final_mem_digest == other.final_mem_digest
    }

    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.core.issued as f64 / self.cycles as f64
        }
    }

    /// Speedup of this run relative to a baseline run of the same
    /// workload (the normalization of Figs. 8–10).
    pub fn speedup_over(&self, baseline: &RunMetrics) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            baseline.cycles as f64 / self.cycles as f64
        }
    }

    /// SC stall rate normalized per issued memory operation.
    pub fn sc_stalls_per_mem_op(&self) -> f64 {
        if self.core.mem_ops == 0 {
            0.0
        } else {
            self.core.sc_stall_cycles as f64 / self.core.mem_ops as f64
        }
    }

    /// Fraction of loads that found data valid-but-expired in the L1
    /// (Fig. 6 left).
    pub fn expired_load_fraction(&self) -> f64 {
        if self.l1.loads == 0 {
            0.0
        } else {
            self.l1.expired_loads as f64 / self.l1.loads as f64
        }
    }

    /// Of the expired loads, the fraction revalidated by a RENEW — i.e.
    /// premature expirations (Fig. 6 right).
    pub fn renewable_fraction(&self) -> f64 {
        if self.l1.expired_loads == 0 {
            0.0
        } else {
            self.l1.renewed_loads as f64 / self.l1.expired_loads as f64
        }
    }

    /// Seeded digest over every *simulated* field — exactly the set
    /// [`RunMetrics::same_simulated_results`] compares, so two runs are
    /// digest-equal iff they are result-equal. This is what the golden
    /// snapshot tests pin: one stable hash instead of a wall of floats.
    /// Engine telemetry (`skipped_cycles`, `ff_jumps`, `sched`) and
    /// observation (`profile`, `obs`) are deliberately not hashed.
    pub fn digest(&self, seed: u64) -> u64 {
        let mut w = DigestWriter::new(seed);
        w.write_str(&self.kind.to_string());
        w.write_str(&self.workload);
        w.write_u64(self.cycles);
        // Core stats.
        let c = &self.core;
        for v in [
            c.issued,
            c.mem_ops,
            c.sc_stall_cycles,
            c.sc_stall_cycles_prev_load,
            c.sc_stall_cycles_prev_store,
            c.sc_stall_cycles_prev_atomic,
            c.stalled_mem_ops,
            c.structural_stall_cycles,
            c.fence_stall_cycles,
            c.lock_retries,
            c.barrier_polls,
        ] {
            w.write_u64(v);
        }
        for h in [
            &c.stall_resolve,
            &c.load_latency,
            &c.store_latency,
            &c.atomic_latency,
        ] {
            digest_histogram(&mut w, h);
        }
        // L1 stats.
        let l1 = &self.l1;
        for v in [
            l1.loads,
            l1.load_hits,
            l1.expired_loads,
            l1.renewed_loads,
            l1.stores,
            l1.atomics,
            l1.self_invalidations,
            l1.rejects,
            l1.invs_received,
        ] {
            w.write_u64(v);
        }
        // L2 stats.
        let l2 = &self.l2;
        for v in [
            l2.gets,
            l2.renews_granted,
            l2.writes,
            l2.atomics,
            l2.dram_fetches,
            l2.writebacks,
            l2.invs_sent,
            l2.stalled_stores,
            l2.store_stall_cycles,
        ] {
            w.write_u64(v);
        }
        // Traffic by class.
        for class in MsgClass::ALL {
            w.write_u64(self.traffic.msgs(class));
            w.write_u64(self.traffic.flits(class));
        }
        // Energy (floats by bit pattern — bit-identical runs only).
        w.write_f64(self.energy.router_pj);
        w.write_f64(self.energy.link_pj);
        w.write_f64(self.energy.static_pj);
        w.write_u64(self.dram_reads);
        w.write_u64(self.dram_writes);
        w.write_f64(self.dram_read_latency);
        w.write_u64(self.sc_violations as u64);
        w.write_u64(match self.sanitizer_sc {
            None => 0,
            Some(false) => 1,
            Some(true) => 2,
        });
        w.write_u64(self.rollovers);
        w.write_u64(self.chaos_events);
        w.finish()
    }

    /// FNV digest of a final-memory image, exactly as
    /// [`final_mem_digest`](RunMetrics::final_mem_digest) is computed
    /// from a live system — callers holding the sorted word list can
    /// cross-check the metrics field or diff images offline.
    pub fn digest_words(words: &[(WordAddr, u64)]) -> u64 {
        let mut d = StateDigest::new();
        for &(addr, value) in words {
            d.write_u64(addr.0);
            d.write_u64(value);
        }
        d.finish()
    }

    /// Mean load latency (Fig. 1c).
    pub fn load_latency(&self) -> &Histogram {
        &self.core.load_latency
    }

    /// Mean store latency (Fig. 1c).
    pub fn store_latency(&self) -> &Histogram {
        &self.core.store_latency
    }
}

/// Folds a histogram's full state (moments + log2 buckets) into a digest.
fn digest_histogram(w: &mut DigestWriter, h: &Histogram) {
    w.write_u64(h.count());
    w.write_u64(h.sum());
    w.write_u64(h.min().unwrap_or(0));
    w.write_u64(h.max().unwrap_or(0));
    w.write_u64s(h.buckets());
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::stats::TrafficStats;
    use rcc_core::protocol::{L1Stats, L2Stats};
    use rcc_gpu::CoreStats;
    use rcc_noc::EnergyBreakdown;

    fn metrics(cycles: u64, issued: u64) -> RunMetrics {
        let core = CoreStats {
            issued,
            mem_ops: issued / 2,
            ..CoreStats::default()
        };
        RunMetrics {
            kind: ProtocolKind::RccSc,
            workload: "test".into(),
            cycles,
            core,
            l1: L1Stats::default(),
            l2: L2Stats::default(),
            traffic: TrafficStats::new(),
            energy: EnergyBreakdown::default(),
            dram_reads: 0,
            dram_writes: 0,
            dram_read_latency: 0.0,
            sc_violations: 0,
            sanitizer_sc: None,
            rollovers: 0,
            chaos_events: 0,
            skipped_cycles: 0,
            ff_jumps: 0,
            sched: SchedStats::default(),
            profile: None,
            obs: None,
            final_mem_digest: 0,
        }
    }

    #[test]
    fn ipc_and_speedup() {
        let a = metrics(1000, 500);
        let b = metrics(2000, 500);
        assert!((a.ipc() - 0.5).abs() < 1e-12);
        assert!((a.speedup_over(&b) - 2.0).abs() < 1e-12);
        assert!((b.speedup_over(&a) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_cycle_edge_cases() {
        let z = metrics(0, 0);
        assert_eq!(z.ipc(), 0.0);
        assert_eq!(z.speedup_over(&metrics(100, 1)), 0.0);
        assert_eq!(z.sc_stalls_per_mem_op(), 0.0);
        assert_eq!(z.expired_load_fraction(), 0.0);
        assert_eq!(z.renewable_fraction(), 0.0);
    }

    #[test]
    fn digest_tracks_simulated_fields_only() {
        let a = metrics(1000, 500);
        let mut b = metrics(1000, 500);
        assert_eq!(a.digest(1), b.digest(1));
        // Engine telemetry and observation must not move the digest —
        // digest-equality has to mean same_simulated_results.
        b.skipped_cycles = 999;
        b.ff_jumps = 3;
        b.sched = SchedStats {
            events_posted: 12,
            events_cancelled: 4,
            queue_depth_p50: 3,
            queue_depth_max: 9,
            wake_slack_mean: 0.5,
        };
        b.profile = Some(rcc_obs::SimProfile::new());
        assert_eq!(a.digest(1), b.digest(1));
        assert!(a.same_simulated_results(&b));
        // Any simulated field moves it.
        b.cycles = 1001;
        assert_ne!(a.digest(1), b.digest(1));
        assert!(!a.same_simulated_results(&b));
        // Seed matters.
        assert_ne!(a.digest(1), a.digest(2));
    }

    #[test]
    fn fractions() {
        let mut m = metrics(10, 10);
        m.l1.loads = 100;
        m.l1.expired_loads = 25;
        m.l1.renewed_loads = 20;
        assert!((m.expired_load_fraction() - 0.25).abs() < 1e-12);
        assert!((m.renewable_fraction() - 0.8).abs() < 1e-12);
        m.core.sc_stall_cycles = 50;
        assert!((m.sc_stalls_per_mem_op() - 10.0).abs() < 1e-12);
    }
}
