//! Deterministic checkpoint/restore of a running [`crate::System`].
//!
//! The simulator is bit-reproducible from its inputs: the same protocol,
//! configuration, workload, options, and chaos seed always produce the
//! same state at every cycle (the determinism suite enforces this, with
//! fast-forward and chaos on or off). A checkpoint therefore snapshots
//! the *deterministic input closure* plus the target cycle and a
//! cross-component [state digest](crate::System::state_digest) of the
//! machine at that cycle. Restore rebuilds the system from the inputs,
//! replays to the target cycle (fast-forwarding over idle stretches, so
//! replay costs far less than the original wall-clock), verifies the
//! digest matches bit-for-bit, and continues. This makes resumed runs
//! bit-identical to uninterrupted ones *by construction* — the digest
//! check turns any violation of that argument into a typed
//! [`SimError::Checkpoint`] instead of silent divergence.
//!
//! The on-disk format is the versioned binary codec of
//! [`rcc_common::snap`] with a JSON manifest sidecar
//! (`<path>.manifest.json`, pinned by
//! `schemas/checkpoint_manifest.schema.json`) so humans and CI can
//! inspect a checkpoint without decoding it.

use crate::error::SimError;
use crate::runner::SimOptions;
use rcc_chaos::{ChaosProfile, ChaosSpec};
use rcc_common::config::{
    CacheParams, DramParams, GpuConfig, L2Params, NocParams, NocTopology, RccParams, TcParams,
};
use rcc_common::ids::WorkgroupId;
use rcc_common::snap::{SnapError, SnapReader, SnapWriter};
use rcc_core::ProtocolKind;
use rcc_gpu::{MemOp, WarpProgram};
use rcc_workloads::{Sharing, Workload};

/// Magic prefix of the binary checkpoint format.
pub const MAGIC: &[u8; 4] = b"RCCK";
/// Current format version.
pub const VERSION: u32 = 1;

/// A deterministic checkpoint: the input closure that rebuilds the
/// system, the cycle to replay to, and the state digest that attests the
/// replayed machine is bit-identical to the one that was checkpointed.
#[derive(Debug, Clone)]
pub struct Checkpoint {
    /// Protocol under test.
    pub kind: ProtocolKind,
    /// Full machine configuration.
    pub cfg: GpuConfig,
    /// The complete workload (every warp program, fully serialized).
    pub workload: Workload,
    /// Run options (chaos spec included; checkpoint plumbing excluded).
    pub opts: SimOptions,
    /// Cycle the checkpoint was taken at.
    pub cycle: u64,
    /// [`crate::System::state_digest`] of the machine at `cycle`.
    pub state_digest: u64,
}

fn kind_tag(kind: ProtocolKind) -> u8 {
    match kind {
        ProtocolKind::Mesi => 0,
        ProtocolKind::MesiWb => 1,
        ProtocolKind::TcStrong => 2,
        ProtocolKind::TcWeak => 3,
        ProtocolKind::RccSc => 4,
        ProtocolKind::RccWo => 5,
        ProtocolKind::IdealSc => 6,
    }
}

fn kind_from_tag(tag: u8) -> Result<ProtocolKind, SnapError> {
    Ok(match tag {
        0 => ProtocolKind::Mesi,
        1 => ProtocolKind::MesiWb,
        2 => ProtocolKind::TcStrong,
        3 => ProtocolKind::TcWeak,
        4 => ProtocolKind::RccSc,
        5 => ProtocolKind::RccWo,
        6 => ProtocolKind::IdealSc,
        other => return Err(SnapError(format!("unknown protocol tag {other}"))),
    })
}

fn write_cache(w: &mut SnapWriter, c: &CacheParams) {
    w.u64(c.size_bytes as u64);
    w.u64(c.ways as u64);
    w.u64(c.line_bytes as u64);
    w.u64(c.mshrs as u64);
    w.u64(c.mshr_merge as u64);
    w.u64(c.latency);
}

fn read_cache(r: &mut SnapReader) -> Result<CacheParams, SnapError> {
    Ok(CacheParams {
        size_bytes: r.u64()? as usize,
        ways: r.u64()? as usize,
        line_bytes: r.u64()? as usize,
        mshrs: r.u64()? as usize,
        mshr_merge: r.u64()? as usize,
        latency: r.u64()?,
    })
}

fn write_cfg(w: &mut SnapWriter, cfg: &GpuConfig) {
    w.u64(cfg.num_cores as u64);
    w.u64(cfg.warps_per_core as u64);
    w.u64(cfg.threads_per_warp as u64);
    write_cache(w, &cfg.l1);
    w.u64(cfg.l2.num_partitions as u64);
    write_cache(w, &cfg.l2.partition);
    w.u8(match cfg.noc.topology {
        NocTopology::Crossbar => 0,
        NocTopology::Mesh => 1,
    });
    w.u64(cfg.noc.flit_bytes as u64);
    w.u64(cfg.noc.core_cycles_per_noc_cycle);
    w.u64(cfg.noc.traversal_latency);
    w.u64(cfg.noc.vc_buffer_flits as u64);
    w.u64(cfg.noc.control_bytes as u64);
    w.u64(cfg.dram.core_cycles_per_dram_cycle);
    w.u64(cfg.dram.bytes_per_cycle as u64);
    w.u64(cfg.dram.min_latency);
    w.u64(cfg.dram.banks as u64);
    w.u64(cfg.dram.row_bytes as u64);
    for t in [
        cfg.dram.t_cl,
        cfg.dram.t_rp,
        cfg.dram.t_rc,
        cfg.dram.t_ras,
        cfg.dram.t_ccd,
        cfg.dram.t_wl,
        cfg.dram.t_rcd,
        cfg.dram.t_rrd,
        cfg.dram.t_cdlr,
        cfg.dram.t_wr,
    ] {
        w.u64(t);
    }
    w.u64(cfg.rcc.lease_min);
    w.u64(cfg.rcc.lease_max);
    w.opt_u64(cfg.rcc.fixed_lease);
    w.bool(cfg.rcc.renew_enabled);
    w.bool(cfg.rcc.predictor_enabled);
    w.u64(cfg.rcc.rollover_threshold);
    w.u64(cfg.rcc.livelock_bump_interval);
    w.u64(cfg.tc.lease_cycles);
    w.u64(cfg.tc.lease_min);
    w.u64(cfg.tc.lease_max);
    w.u64(cfg.watchdog_cycles);
}

fn read_cfg(r: &mut SnapReader) -> Result<GpuConfig, SnapError> {
    let num_cores = r.u64()? as usize;
    let warps_per_core = r.u64()? as usize;
    let threads_per_warp = r.u64()? as usize;
    let l1 = read_cache(r)?;
    let l2 = L2Params {
        num_partitions: r.u64()? as usize,
        partition: read_cache(r)?,
    };
    let topology = match r.u8()? {
        0 => NocTopology::Crossbar,
        1 => NocTopology::Mesh,
        other => return Err(SnapError(format!("unknown topology tag {other}"))),
    };
    let noc = NocParams {
        topology,
        flit_bytes: r.u64()? as usize,
        core_cycles_per_noc_cycle: r.u64()?,
        traversal_latency: r.u64()?,
        vc_buffer_flits: r.u64()? as usize,
        control_bytes: r.u64()? as usize,
    };
    let dram = DramParams {
        core_cycles_per_dram_cycle: r.u64()?,
        bytes_per_cycle: r.u64()? as usize,
        min_latency: r.u64()?,
        banks: r.u64()? as usize,
        row_bytes: r.u64()? as usize,
        t_cl: r.u64()?,
        t_rp: r.u64()?,
        t_rc: r.u64()?,
        t_ras: r.u64()?,
        t_ccd: r.u64()?,
        t_wl: r.u64()?,
        t_rcd: r.u64()?,
        t_rrd: r.u64()?,
        t_cdlr: r.u64()?,
        t_wr: r.u64()?,
    };
    let rcc = RccParams {
        lease_min: r.u64()?,
        lease_max: r.u64()?,
        fixed_lease: r.opt_u64()?,
        renew_enabled: r.bool()?,
        predictor_enabled: r.bool()?,
        rollover_threshold: r.u64()?,
        livelock_bump_interval: r.u64()?,
    };
    let tc = TcParams {
        lease_cycles: r.u64()?,
        lease_min: r.u64()?,
        lease_max: r.u64()?,
    };
    Ok(GpuConfig {
        num_cores,
        warps_per_core,
        threads_per_warp,
        l1,
        l2,
        noc,
        dram,
        rcc,
        tc,
        watchdog_cycles: r.u64()?,
    })
}

fn write_op(w: &mut SnapWriter, op: &MemOp) {
    // The op tag space is owned by rcc-gpu and shared with the trace
    // format; see `MemOp::snap`.
    op.snap(w);
}

fn read_op(r: &mut SnapReader) -> Result<MemOp, SnapError> {
    MemOp::unsnap(r)
}

fn write_workload(w: &mut SnapWriter, wl: &Workload) {
    w.str(wl.name);
    w.u8(match wl.category {
        Sharing::InterWorkgroup => 0,
        Sharing::IntraWorkgroup => 1,
    });
    w.u64(wl.warps_per_workgroup as u64);
    w.u32(wl.programs.len() as u32);
    for core in &wl.programs {
        w.u32(core.len() as u32);
        for prog in core {
            w.u64(prog.workgroup.0 as u64);
            w.u32(prog.ops.len() as u32);
            for op in &prog.ops {
                write_op(w, op);
            }
        }
    }
}

fn read_workload(r: &mut SnapReader) -> Result<Workload, SnapError> {
    let name = r.str()?;
    let category = match r.u8()? {
        0 => Sharing::InterWorkgroup,
        1 => Sharing::IntraWorkgroup,
        other => return Err(SnapError(format!("unknown sharing tag {other}"))),
    };
    let warps_per_workgroup = r.u64()? as usize;
    let ncores = r.u32()? as usize;
    let mut programs = Vec::with_capacity(ncores);
    for _ in 0..ncores {
        let nwarps = r.u32()? as usize;
        let mut warps = Vec::with_capacity(nwarps);
        for _ in 0..nwarps {
            let workgroup = WorkgroupId(r.u64()? as usize);
            let nops = r.u32()? as usize;
            let mut ops = Vec::with_capacity(nops);
            for _ in 0..nops {
                ops.push(read_op(r)?);
            }
            warps.push(WarpProgram::new(workgroup, ops));
        }
        programs.push(warps);
    }
    Ok(Workload {
        // Workload names are `&'static str` throughout the workspace;
        // a resumed run leaks its (tiny, one-per-process) name string.
        name: Box::leak(name.into_boxed_str()),
        category,
        programs,
        warps_per_workgroup,
    })
}

fn write_opts(w: &mut SnapWriter, opts: &SimOptions) {
    w.bool(opts.check_sc);
    w.bool(opts.sanitize);
    w.u64(opts.max_cycles);
    w.bool(opts.fast_forward);
    match &opts.chaos {
        Some(spec) => {
            w.bool(true);
            w.u64(spec.seed);
            w.str(spec.profile.name);
        }
        None => w.bool(false),
    }
    w.u64(opts.sample_every);
    w.bool(opts.trace);
    w.bool(opts.profile);
}

fn read_opts(r: &mut SnapReader) -> Result<SimOptions, SnapError> {
    let check_sc = r.bool()?;
    let sanitize = r.bool()?;
    let max_cycles = r.u64()?;
    let fast_forward = r.bool()?;
    let chaos = if r.bool()? {
        let seed = r.u64()?;
        let name = r.str()?;
        let profile = ChaosProfile::by_name(&name)
            .ok_or_else(|| SnapError(format!("unknown chaos profile {name:?}")))?;
        Some(ChaosSpec { seed, profile })
    } else {
        None
    };
    Ok(SimOptions {
        check_sc,
        sanitize,
        max_cycles,
        fast_forward,
        chaos,
        sample_every: r.u64()?,
        trace: r.bool()?,
        profile: r.bool()?,
        checkpoint_every: 0,
        checkpoint: None,
        // Host-local output path, like `checkpoint`: a resumed run does
        // not re-record (the pre-checkpoint issues are gone).
        record_trace: None,
        // Host-side scheduling knob: a checkpoint loaded from disk runs
        // to completion unless the caller re-imposes a quantum.
        quantum: 0,
    })
}

impl Checkpoint {
    /// Serializes into the versioned binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        w.u8(MAGIC[0]);
        w.u8(MAGIC[1]);
        w.u8(MAGIC[2]);
        w.u8(MAGIC[3]);
        w.u32(VERSION);
        w.u8(kind_tag(self.kind));
        write_cfg(&mut w, &self.cfg);
        write_workload(&mut w, &self.workload);
        write_opts(&mut w, &self.opts);
        w.u64(self.cycle);
        w.u64(self.state_digest);
        w.into_bytes()
    }

    /// Decodes a checkpoint written by [`Checkpoint::encode`].
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] on a bad magic, an unsupported version,
    /// or any truncation/corruption of the payload.
    pub fn decode(bytes: &[u8]) -> Result<Checkpoint, SimError> {
        let fail = |e: SnapError| SimError::Checkpoint(e.to_string());
        let mut r = SnapReader::new(bytes);
        let magic = [
            r.u8().map_err(fail)?,
            r.u8().map_err(fail)?,
            r.u8().map_err(fail)?,
            r.u8().map_err(fail)?,
        ];
        if &magic != MAGIC {
            return Err(SimError::Checkpoint(format!(
                "bad magic {magic:?} (not an RCC checkpoint)"
            )));
        }
        let version = r.u32().map_err(fail)?;
        if version != VERSION {
            return Err(SimError::Checkpoint(format!(
                "unsupported checkpoint version {version} (this build reads {VERSION})"
            )));
        }
        let kind = r
            .u8()
            .map_err(fail)
            .and_then(|t| kind_from_tag(t).map_err(fail))?;
        let cfg = read_cfg(&mut r).map_err(fail)?;
        let workload = read_workload(&mut r).map_err(fail)?;
        let opts = read_opts(&mut r).map_err(fail)?;
        let cycle = r.u64().map_err(fail)?;
        let state_digest = r.u64().map_err(fail)?;
        r.done().map_err(fail)?;
        Ok(Checkpoint {
            kind,
            cfg,
            workload,
            opts,
            cycle,
            state_digest,
        })
    }

    /// The JSON manifest sidecar, pinned by
    /// `schemas/checkpoint_manifest.schema.json`.
    pub fn manifest_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"version\": {VERSION},");
        let _ = writeln!(out, "  \"protocol\": \"{}\",", self.kind.label());
        let _ = writeln!(out, "  \"workload\": \"{}\",", self.workload.name);
        let _ = writeln!(out, "  \"cycle\": {},", self.cycle);
        let _ = writeln!(out, "  \"state_digest\": \"{:016x}\",", self.state_digest);
        let _ = writeln!(out, "  \"fast_forward\": {},", self.opts.fast_forward);
        let _ = writeln!(out, "  \"sanitize\": {},", self.opts.sanitize);
        let _ = writeln!(out, "  \"max_cycles\": {},", self.opts.max_cycles);
        match &self.opts.chaos {
            Some(spec) => {
                let _ = writeln!(out, "  \"chaos_profile\": \"{}\",", spec.profile.name);
                let _ = writeln!(out, "  \"chaos_seed\": {},", spec.seed);
            }
            None => {
                let _ = writeln!(out, "  \"chaos_profile\": null,");
                let _ = writeln!(out, "  \"chaos_seed\": null,");
            }
        }
        let _ = writeln!(out, "  \"cores\": {},", self.cfg.num_cores);
        let _ = writeln!(out, "  \"l2_partitions\": {}", self.cfg.l2.num_partitions);
        out.push_str("}\n");
        out
    }

    /// Writes the binary checkpoint to `path` and the manifest sidecar
    /// to `<path>.manifest.json`.
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] on any I/O failure.
    pub fn save(&self, path: &str) -> Result<(), SimError> {
        std::fs::write(path, self.encode())
            .map_err(|e| SimError::Checkpoint(format!("writing {path}: {e}")))?;
        let manifest = format!("{path}.manifest.json");
        std::fs::write(&manifest, self.manifest_json())
            .map_err(|e| SimError::Checkpoint(format!("writing {manifest}: {e}")))?;
        Ok(())
    }

    /// Loads and decodes the checkpoint at `path`.
    ///
    /// # Errors
    ///
    /// [`SimError::Checkpoint`] on I/O failure or a corrupt payload.
    pub fn load(path: &str) -> Result<Checkpoint, SimError> {
        let bytes = std::fs::read(path)
            .map_err(|e| SimError::Checkpoint(format!("reading {path}: {e}")))?;
        Checkpoint::decode(&bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_workloads::{Benchmark, Scale};

    fn sample() -> Checkpoint {
        let cfg = GpuConfig::small();
        let workload = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 3);
        Checkpoint {
            kind: ProtocolKind::RccSc,
            cfg,
            workload,
            opts: SimOptions {
                sanitize: true,
                chaos: Some(ChaosSpec {
                    seed: 11,
                    profile: ChaosProfile::light(),
                }),
                ..SimOptions::fast()
            },
            cycle: 4096,
            state_digest: 0xdead_beef_cafe_f00d,
        }
    }

    #[test]
    fn round_trips_bit_exactly() {
        let ck = sample();
        let bytes = ck.encode();
        let back = Checkpoint::decode(&bytes).expect("decodes");
        assert_eq!(back.kind, ck.kind);
        assert_eq!(back.cfg, ck.cfg);
        assert_eq!(back.workload.name, ck.workload.name);
        assert_eq!(back.workload.category, ck.workload.category);
        assert_eq!(
            back.workload.warps_per_workgroup,
            ck.workload.warps_per_workgroup
        );
        assert_eq!(back.workload.programs.len(), ck.workload.programs.len());
        for (a, b) in back.workload.programs.iter().zip(&ck.workload.programs) {
            assert_eq!(a.len(), b.len());
            for (pa, pb) in a.iter().zip(b) {
                assert_eq!(pa.workgroup, pb.workgroup);
                assert_eq!(pa.ops, pb.ops);
            }
        }
        assert_eq!(back.opts.sanitize, ck.opts.sanitize);
        assert_eq!(back.opts.max_cycles, ck.opts.max_cycles);
        let (ca, cb) = (back.opts.chaos.clone().unwrap(), ck.opts.chaos.unwrap());
        assert_eq!(ca.seed, cb.seed);
        assert_eq!(ca.profile.name, cb.profile.name);
        assert_eq!(back.cycle, ck.cycle);
        assert_eq!(back.state_digest, ck.state_digest);
        // Re-encoding the decoded checkpoint is byte-identical.
        assert_eq!(back.encode(), bytes);
    }

    #[test]
    fn corrupt_payloads_are_typed_errors() {
        let bytes = sample().encode();
        assert!(matches!(
            Checkpoint::decode(&bytes[..10]),
            Err(SimError::Checkpoint(_))
        ));
        let mut bad_magic = bytes.clone();
        bad_magic[0] = b'X';
        assert!(matches!(
            Checkpoint::decode(&bad_magic),
            Err(SimError::Checkpoint(_))
        ));
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        let err = Checkpoint::decode(&bad_version).unwrap_err();
        assert!(err.to_string().contains("version"), "{err}");
        let mut trailing = bytes;
        trailing.push(0);
        assert!(Checkpoint::decode(&trailing).is_err());
    }
}
