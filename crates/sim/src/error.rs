//! Typed simulation failures and the forensic hang-dump.
//!
//! Every way a run can go wrong — deadlock, cycle-budget exhaustion, a
//! protocol invariant breaking mid-run, an SC verdict failing, a litmus
//! probe not executing, a bad checkpoint — is a [`SimError`] variant
//! propagated by `Result` instead of a panic, so a 5000-run sweep
//! degrades to one failed job rather than a dead process.
//!
//! When the watchdog fires, the engine assembles a [`HangDump`]: the
//! per-component `next_event` horizon and queue occupancy, every blocked
//! warp with the access it is stalled on, the components that still hold
//! work but schedule no event (the prime suspects), and the state digest
//! of the stuck machine. Its JSON rendering is pinned by
//! `schemas/hangdump.schema.json`.

use rcc_core::ProtocolKind;
use rcc_gpu::WarpState;
use std::fmt;

/// The result of a fallible simulation entry point.
pub type RunOutcome<T> = Result<T, SimError>;

/// A typed simulation failure.
#[must_use = "a SimError explains why the run failed; log or propagate it"]
#[derive(Debug, Clone)]
pub enum SimError {
    /// The watchdog detected no forward progress. Carries the full
    /// forensic dump of the stuck machine.
    Deadlock(Box<HangDump>),
    /// The run did not finish within its cycle budget.
    CyclesExceeded {
        /// Protocol under test.
        kind: ProtocolKind,
        /// Workload name.
        workload: String,
        /// The exhausted budget.
        max_cycles: u64,
    },
    /// An engine invariant broke mid-run (e.g. a store or atomic
    /// completion arrived without its pending value).
    ProtocolInvariant {
        /// Protocol under test.
        kind: ProtocolKind,
        /// Workload name.
        workload: String,
        /// Cycle at which the invariant broke.
        cycle: u64,
        /// Human-readable description of the broken invariant.
        detail: String,
    },
    /// The SC scoreboard observed coherence-order violations on a
    /// protocol that claims sequential consistency.
    ScViolation {
        /// Protocol under test.
        kind: ProtocolKind,
        /// Workload name.
        workload: String,
        /// Number of violations the scoreboard counted.
        violations: u64,
    },
    /// The runtime SC sanitizer found no SC total order explaining the
    /// execution of an SC-capable protocol.
    SanitizerViolation {
        /// Protocol under test.
        kind: ProtocolKind,
        /// Workload name.
        workload: String,
    },
    /// A litmus probe's load never executed, so its outcome cannot be
    /// judged.
    ProbeMissing {
        /// Litmus test name.
        litmus: String,
        /// Description of the probe that did not execute.
        probe: String,
    },
    /// A checkpoint could not be written, read, or verified.
    Checkpoint(String),
    /// A requested memory-access trace could not be recorded or loaded.
    Trace(String),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Deadlock(dump) => write!(
                f,
                "{} on {}: deadlock at cycle {} (no progress since cycle {}; \
                 {} mem ops pending; suspects: {})",
                dump.protocol,
                dump.workload,
                dump.cycle,
                dump.last_progress,
                dump.mem_pending,
                if dump.suspects.is_empty() {
                    "none".to_string()
                } else {
                    dump.suspects.join(", ")
                }
            ),
            SimError::CyclesExceeded {
                kind,
                workload,
                max_cycles,
            } => write!(
                f,
                "{kind} on {workload}: did not finish within {max_cycles} cycles"
            ),
            SimError::ProtocolInvariant {
                kind,
                workload,
                cycle,
                detail,
            } => write!(
                f,
                "{kind} on {workload}: protocol invariant broken at cycle {cycle}: {detail}"
            ),
            SimError::ScViolation {
                kind,
                workload,
                violations,
            } => write!(
                f,
                "{kind} on {workload}: {violations} SC violation(s) on the scoreboard"
            ),
            SimError::SanitizerViolation { kind, workload } => write!(
                f,
                "{kind} on {workload}: sanitizer found no SC order for the execution"
            ),
            SimError::ProbeMissing { litmus, probe } => {
                write!(f, "{litmus}: probe {probe} did not execute")
            }
            SimError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            SimError::Trace(msg) => write!(f, "trace error: {msg}"),
        }
    }
}

impl std::error::Error for SimError {}

/// One simulated component's view at the moment of the hang: how much
/// work it holds and when (if ever) it next schedules an event.
#[derive(Debug, Clone)]
pub struct ComponentState {
    /// Component name (`core3`, `l1-5`, `l2-bank0`, `noc-req`, ...).
    pub name: String,
    /// Occupancy: pending ops / in-flight messages / queued entries.
    pub pending: u64,
    /// The component's `next_event` horizon; `None` means it schedules
    /// nothing — combined with `pending > 0` that makes it a suspect.
    pub next_event: Option<u64>,
}

/// Forensic dump of a hung machine, emitted when the watchdog fires.
#[must_use = "the dump is the only record of the hang; render or attach it"]
#[derive(Debug, Clone)]
pub struct HangDump {
    /// Protocol label.
    pub protocol: String,
    /// Workload name.
    pub workload: String,
    /// Cycle at which the watchdog fired.
    pub cycle: u64,
    /// Last cycle that made forward progress.
    pub last_progress: u64,
    /// The watchdog threshold that was exceeded.
    pub watchdog_cycles: u64,
    /// Memory operations still pending system-wide.
    pub mem_pending: u64,
    /// Rollover FSM state (`Debug` rendering).
    pub rollover: String,
    /// Cross-component state digest of the stuck machine (hex), so a
    /// checkpoint replay can attest it reconstructed this exact state.
    pub state_digest: u64,
    /// Every component with its occupancy and `next_event` horizon.
    pub components: Vec<ComponentState>,
    /// Every non-retired warp and the access it is stalled on.
    pub blocked_warps: Vec<BlockedWarp>,
    /// Components holding work but scheduling no event — where to look
    /// first.
    pub suspects: Vec<String>,
    /// Path of the auto-checkpoint written alongside the dump (replays
    /// deterministically to `cycle`), when one was written.
    pub checkpoint: Option<String>,
}

/// A blocked warp in the hang-dump: [`WarpState`] plus its core.
#[derive(Debug, Clone)]
pub struct BlockedWarp {
    /// Core index.
    pub core: usize,
    /// The warp's forensic state.
    pub state: WarpState,
}

fn esc(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

fn opt_u64(v: Option<u64>) -> String {
    v.map_or("null".to_string(), |x| x.to_string())
}

impl HangDump {
    /// Serializes in the `schemas/hangdump.schema.json` shape.
    pub fn to_json(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::from("{\n");
        let _ = writeln!(out, "  \"protocol\": \"{}\",", esc(&self.protocol));
        let _ = writeln!(out, "  \"workload\": \"{}\",", esc(&self.workload));
        let _ = writeln!(out, "  \"cycle\": {},", self.cycle);
        let _ = writeln!(out, "  \"last_progress\": {},", self.last_progress);
        let _ = writeln!(out, "  \"watchdog_cycles\": {},", self.watchdog_cycles);
        let _ = writeln!(out, "  \"mem_pending\": {},", self.mem_pending);
        let _ = writeln!(out, "  \"rollover\": \"{}\",", esc(&self.rollover));
        let _ = writeln!(out, "  \"state_digest\": \"{:016x}\",", self.state_digest);
        let _ = writeln!(
            out,
            "  \"checkpoint\": {},",
            self.checkpoint
                .as_ref()
                .map_or("null".to_string(), |p| format!("\"{}\"", esc(p)))
        );
        out.push_str("  \"components\": [\n");
        for (i, c) in self.components.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"name\": \"{}\", \"pending\": {}, \"next_event\": {}}}",
                esc(&c.name),
                c.pending,
                opt_u64(c.next_event)
            );
            out.push_str(if i + 1 < self.components.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"blocked_warps\": [\n");
        for (i, b) in self.blocked_warps.iter().enumerate() {
            let w = &b.state;
            let _ = write!(
                out,
                "    {{\"core\": {}, \"warp\": {}, \"pc\": {}, \"micro\": \"{}\", \
                 \"at_fence\": {}, \"waiting_local\": {}, \"stalled_op\": {}, \
                 \"outstanding\": [",
                b.core,
                w.warp,
                w.pc,
                esc(&w.micro),
                w.at_fence,
                opt_u64(w.waiting_local),
                w.stalled_op
                    .as_ref()
                    .map_or("null".to_string(), |o| format!("\"{}\"", esc(o)))
            );
            for (j, o) in w.outstanding.iter().enumerate() {
                let _ = write!(
                    out,
                    "{}{{\"addr\": {}, \"class\": \"{}\", \"issued\": {}}}",
                    if j > 0 { ", " } else { "" },
                    o.addr,
                    esc(&o.class),
                    o.issued
                );
            }
            out.push_str("]}");
            out.push_str(if i + 1 < self.blocked_warps.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"suspects\": [");
        for (i, s) in self.suspects.iter().enumerate() {
            let _ = write!(out, "{}\"{}\"", if i > 0 { ", " } else { "" }, esc(s));
        }
        out.push_str("]\n}\n");
        out
    }
}
