//! The calendar queue at the heart of the event-driven engine.
//!
//! Every timed component of the [`System`](crate::System) — cores, L1
//! controllers, the two NoC directions, L2 banks, bank inboxes, L2 delay
//! pipes, DRAM channels — owns one slot in this queue holding the exact
//! next cycle at which that component must run. The engine pops the
//! earliest armed cycle, jumps straight to it, and executes only the
//! components that are due; everything else costs nothing, even in the
//! middle of a busy phase.
//!
//! # Determinism
//!
//! The queue decides *when* the next cycle is, never *in what order*
//! components run within it: the engine always executes a scheduled
//! cycle in the same fixed phase order (and fixed component order within
//! a phase) as the legacy stepped loop. Two runs that arm the same
//! wakes therefore execute bit-identically, and a scheduled run is
//! bit-identical to a stepped one because every skipped cycle is proven
//! action-free by the components' own exact `next_event` contracts.
//!
//! # Lazy invalidation
//!
//! Re-arming a component does not search the heap for its old entry.
//! The `armed` array is the single source of truth; heap entries are
//! hints, and an entry whose cycle no longer matches `armed[comp]` is
//! stale and discarded (counted as a cancellation) when it surfaces.
//! This keeps every operation O(log n) with no auxiliary indices.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// A component's slot value meaning "no spontaneous wake scheduled".
const DISARMED: u64 = u64::MAX;

/// Histogram resolution for queue-depth telemetry (depths clamp into
/// the last bucket).
const DEPTH_BUCKETS: usize = 256;

/// Deterministic calendar/priority queue of per-component wake cycles.
#[derive(Debug)]
pub struct EventQueue {
    /// Exact next wake cycle per component (`u64::MAX` = disarmed).
    /// This array is authoritative; the heap is a lazy index over it.
    armed: Vec<u64>,
    /// Min-heap of `(cycle, component)` hints. Ties break on the
    /// component id purely to keep the heap's internal order a pure
    /// function of its contents.
    heap: BinaryHeap<Reverse<(u64, u32)>>,
    /// Wake events posted (arm calls that changed a slot).
    posted: u64,
    /// Stale heap entries discarded (arms superseded before firing).
    cancelled: u64,
    /// Peak heap depth observed.
    depth_max: u64,
    /// Heap depth sampled at every post, for the p50 estimate.
    depth_hist: [u64; DEPTH_BUCKETS],
}

impl EventQueue {
    /// Creates a queue for `components` slots, all disarmed.
    pub fn new(components: usize) -> Self {
        EventQueue {
            armed: vec![DISARMED; components],
            heap: BinaryHeap::with_capacity(components * 2),
            posted: 0,
            cancelled: 0,
            depth_max: 0,
            depth_hist: [0; DEPTH_BUCKETS],
        }
    }

    /// Disarms every slot and clears the heap (telemetry is kept).
    /// Used when the engine re-derives all wakes from component state.
    pub fn reset(&mut self) {
        self.armed.fill(DISARMED);
        self.heap.clear();
    }

    /// Sets component `comp`'s wake to exactly `cycle`, replacing any
    /// previous wake. Use when `cycle` is derived from the component's
    /// full state (a `next_event` hint), which supersedes older arms.
    #[inline]
    pub fn arm_at(&mut self, comp: usize, cycle: u64) {
        if self.armed[comp] == cycle {
            return; // the existing heap entry is still valid
        }
        self.armed[comp] = cycle;
        self.push(comp, cycle);
    }

    /// Moves component `comp`'s wake earlier to `cycle` if it is not
    /// already armed at or before it. Use for *touch* arms — an input
    /// arriving at a component — which add a wake cause without full
    /// knowledge of the component's other pending wakes.
    #[inline]
    pub fn arm_min(&mut self, comp: usize, cycle: u64) {
        if cycle < self.armed[comp] {
            self.armed[comp] = cycle;
            self.push(comp, cycle);
        }
    }

    /// Clears component `comp`'s wake. The engine calls this when it
    /// consumes a due wake (re-arming afterwards from fresh state) and
    /// when a component goes idle.
    #[inline]
    pub fn disarm(&mut self, comp: usize) {
        self.armed[comp] = DISARMED;
    }

    /// Whether component `comp` is due at (or overdue by) `now`.
    #[inline]
    pub fn is_due(&self, comp: usize, now: u64) -> bool {
        self.armed[comp] <= now
    }

    /// The earliest armed wake cycle across all components, discarding
    /// stale heap entries along the way. `None` means every component
    /// is disarmed (the machine is quiescent).
    pub fn next_wake(&mut self) -> Option<u64> {
        while let Some(&Reverse((cycle, comp))) = self.heap.peek() {
            if self.armed[comp as usize] == cycle {
                return Some(cycle);
            }
            self.heap.pop();
            self.cancelled += 1;
        }
        None
    }

    #[inline]
    fn push(&mut self, comp: usize, cycle: u64) {
        if cycle == DISARMED {
            return;
        }
        self.heap.push(Reverse((cycle, comp as u32)));
        self.posted += 1;
        let depth = self.heap.len() as u64;
        self.depth_max = self.depth_max.max(depth);
        self.depth_hist[(depth as usize).min(DEPTH_BUCKETS - 1)] += 1;
    }

    /// Wake events posted so far.
    pub fn posted(&self) -> u64 {
        self.posted
    }

    /// Stale (superseded) heap entries discarded so far.
    pub fn cancelled(&self) -> u64 {
        self.cancelled
    }

    /// Peak heap depth observed.
    pub fn depth_max(&self) -> u64 {
        self.depth_max
    }

    /// Median heap depth over all posts (clamped to the histogram
    /// range; 0 if nothing was posted).
    pub fn depth_p50(&self) -> u64 {
        let total: u64 = self.depth_hist.iter().sum();
        if total == 0 {
            return 0;
        }
        let mut seen = 0;
        for (depth, count) in self.depth_hist.iter().enumerate() {
            seen += count;
            if seen * 2 >= total {
                return depth as u64;
            }
        }
        (DEPTH_BUCKETS - 1) as u64
    }

    /// Current heap size (valid + stale entries); diagnostics only.
    pub fn heap_len(&self) -> usize {
        self.heap.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arm_and_pop_in_cycle_order() {
        let mut q = EventQueue::new(4);
        q.arm_at(2, 30);
        q.arm_at(0, 10);
        q.arm_at(1, 20);
        assert_eq!(q.next_wake(), Some(10));
        assert!(q.is_due(0, 10));
        assert!(!q.is_due(1, 10));
        q.disarm(0);
        assert_eq!(q.next_wake(), Some(20));
    }

    #[test]
    fn rearm_supersedes_and_counts_cancellation() {
        let mut q = EventQueue::new(2);
        q.arm_at(0, 50);
        q.arm_at(0, 10); // earlier: new entry wins immediately
        assert_eq!(q.next_wake(), Some(10));
        q.arm_at(0, 70); // later: the 10 and 50 entries are now stale
        assert_eq!(q.next_wake(), Some(70));
        assert_eq!(q.cancelled(), 2);
    }

    #[test]
    fn arm_min_only_moves_earlier() {
        let mut q = EventQueue::new(1);
        q.arm_at(0, 40);
        q.arm_min(0, 60); // ignored: already earlier
        assert_eq!(q.next_wake(), Some(40));
        q.arm_min(0, 15);
        assert_eq!(q.next_wake(), Some(15));
    }

    #[test]
    fn disarmed_queue_reports_quiescent() {
        let mut q = EventQueue::new(3);
        assert_eq!(q.next_wake(), None);
        q.arm_at(1, 5);
        q.disarm(1);
        assert_eq!(q.next_wake(), None);
        // The stale entry was discarded while scanning.
        assert_eq!(q.cancelled(), 1);
    }

    #[test]
    fn duplicate_arm_is_free() {
        let mut q = EventQueue::new(1);
        q.arm_at(0, 9);
        let posted = q.posted();
        q.arm_at(0, 9);
        assert_eq!(q.posted(), posted);
    }

    #[test]
    fn depth_telemetry_tracks_posts() {
        let mut q = EventQueue::new(8);
        for c in 0..8 {
            q.arm_at(c, 100 + c as u64);
        }
        assert_eq!(q.depth_max(), 8);
        assert!(q.depth_p50() >= 1);
        assert_eq!(q.posted(), 8);
    }
}
