#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Full-system simulator: SM cores + write-through L1s + crossbar NoC +
//! L2 partitions + GDDR DRAM, generic over the coherence protocol.
//!
//! The [`system::System`] wires one protocol's controllers into the timed
//! substrate and advances everything cycle by cycle; [`runner::simulate`]
//! dispatches a [`ProtocolKind`](rcc_core::ProtocolKind) to the right
//! concrete system and returns [`metrics::RunMetrics`] — the measurements
//! every figure of the paper is computed from. The SC scoreboard can
//! verify any SC-capable run, and [`litmus`] drives the litmus tests of
//! `rcc-workloads` and extracts the observed outcomes.
//!
//! # Example
//!
//! ```
//! use rcc_common::GpuConfig;
//! use rcc_core::ProtocolKind;
//! use rcc_sim::runner::{simulate, SimOptions};
//! use rcc_workloads::{Benchmark, Scale};
//!
//! let cfg = GpuConfig::small();
//! let wl = Benchmark::Hsp.generate(&cfg, &Scale::quick(), 1);
//! let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::checked());
//! assert!(m.cycles > 0);
//! assert_eq!(m.sc_violations, 0);
//! ```

pub mod checkpoint;
pub mod error;
pub mod litmus;
pub mod metrics;
pub mod observe;
pub mod runner;
pub mod sched;
pub mod system;

pub use checkpoint::Checkpoint;
pub use error::{HangDump, RunOutcome, SimError};
pub use metrics::{RunMetrics, SchedStats};
pub use observe::Observer;
pub use runner::{
    resume, resume_slice, simulate, try_simulate, try_simulate_slice, SimOptions, SliceOutcome,
    SliceProgress,
};
pub use sched::EventQueue;
pub use system::System;
