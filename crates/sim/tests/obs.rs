//! Observability guard: exported traces are valid Chrome-trace JSON
//! carrying the promised per-component events, sampled series have the
//! documented shape and reconcile with the end-of-run aggregates, and
//! the self-profiler attributes the whole run.

use rcc_common::stats::MsgClass;
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_obs::json::{self, JsonValue};
use rcc_obs::{schema, track, ObsConfig, SimPhase};
use rcc_sim::litmus::run_litmus_observed;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::{litmus, Benchmark, Scale};

const TRACE_SCHEMA: &str = include_str!("../../../schemas/trace.schema.json");
const SERIES_SCHEMA: &str = include_str!("../../../schemas/timeseries.schema.json");

fn trace_events(dump: &str) -> Vec<JsonValue> {
    let v = json::parse(dump).expect("trace JSON must parse");
    v.get("traceEvents")
        .and_then(JsonValue::as_array)
        .expect("traceEvents array")
        .to_vec()
}

fn named(evs: &[JsonValue], ph: &str, name: &str) -> usize {
    evs.iter()
        .filter(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some(ph)
                && e.get("name").and_then(JsonValue::as_str) == Some(name)
        })
        .count()
}

#[test]
fn rcc_litmus_trace_is_valid_chrome_json_with_lease_events() {
    let cfg = GpuConfig::small();
    let lit = litmus::message_passing(cfg.num_cores, 5);
    let (out, report) = run_litmus_observed(
        ProtocolKind::RccSc,
        &cfg,
        &lit,
        None,
        Some(&ObsConfig::full(64)),
    )
    .expect("litmus run succeeds");
    assert!(!out.forbidden);
    let report = report.expect("observer was armed");
    let dump = report.trace.to_chrome_json();
    let errs = schema::validate_text(TRACE_SCHEMA, &dump).expect("schema and trace must parse");
    assert!(
        errs.is_empty(),
        "trace schema violations:\n{}",
        errs.join("\n")
    );

    // Leases are granted per L2 bank, so "lease" instants must sit on L2
    // bank tracks and nowhere else.
    let lease_tids = report.trace.instant_tids("lease");
    assert!(!lease_tids.is_empty(), "RCC run granted no leases");
    let banks = track::L2_BASE..track::L2_BASE + cfg.l2.num_partitions as u64;
    for tid in &lease_tids {
        assert!(banks.contains(tid), "lease event on non-L2 track {tid}");
    }

    // The per-bank logical clocks show up as counter tracks.
    let evs = trace_events(&dump);
    assert!(
        named(&evs, "C", "logical-time") > 0,
        "no logical-time counter samples in an RCC trace"
    );
    // Core-side completions land on core tracks.
    let done = report.trace.instant_tids("load-done");
    assert!(!done.is_empty(), "no load completions traced");
    for tid in &done {
        assert!(
            (track::CORE_BASE..track::CORE_BASE + cfg.num_cores as u64).contains(tid),
            "load-done on non-core track {tid}"
        );
    }
}

#[test]
fn rollover_emits_system_span_and_per_bank_resets() {
    // Tiny rollover threshold: several rollovers over one workload (the
    // same configuration rcc_rollover_fires_and_execution_stays_sc pins).
    let mut cfg = GpuConfig::small();
    cfg.rcc.rollover_threshold = 300;
    cfg.rcc.fixed_lease = Some(64);
    let wl = Benchmark::Vpr.generate(&cfg, &Scale::quick(), 23);
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::observed(64));
    assert!(m.rollovers > 0, "rollover never triggered");
    let report = m.obs.as_ref().expect("observer was armed");

    // Every rollover resets every bank's logical clock, each visible as
    // a per-bank instant.
    let reset_tids = report.trace.instant_tids("rollover-reset");
    let banks: Vec<u64> = (0..cfg.l2.num_partitions as u64)
        .map(|p| track::L2_BASE + p)
        .collect();
    assert_eq!(reset_tids, banks, "resets must cover every L2 bank track");
    assert_eq!(
        report.trace.count_instants("rollover-reset") as u64,
        m.rollovers * cfg.l2.num_partitions as u64,
    );

    // The drain..flush window is one span per rollover on the system
    // track, properly closed.
    let evs = trace_events(&report.trace.to_chrome_json());
    assert_eq!(named(&evs, "B", "rollover") as u64, m.rollovers);
    let ends = evs
        .iter()
        .filter(|e| {
            e.get("ph").and_then(JsonValue::as_str) == Some("E")
                && e.get("tid").and_then(JsonValue::as_u64) == Some(track::SYSTEM)
        })
        .count() as u64;
    assert_eq!(ends, m.rollovers, "every rollover span must close");
}

#[test]
fn sampled_series_reconciles_with_run_totals() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 5);
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::observed(64));
    let s = &m.obs.as_ref().expect("observer was armed").series;
    assert!(s.rows() >= 2, "too few samples to test anything");

    // Interior samples land exactly on interval boundaries; the final
    // row is the end-of-run flush and may not.
    let cycles = s.cycles();
    for (i, c) in cycles.iter().enumerate() {
        if i + 1 < cycles.len() {
            assert_eq!(c % 64, 0, "sample {i} off the interval grid");
        }
        if i > 0 {
            assert!(cycles[i - 1] < *c, "sample cycles must be increasing");
        }
    }
    assert_eq!(*cycles.last().unwrap(), m.cycles, "final flush at run end");

    // Delta columns sum back to the end-of-run cumulative aggregates.
    let sum = |name: &str| s.col(name).unwrap_or_else(|| panic!("column {name}"));
    assert_eq!(sum("issued").iter().sum::<u64>(), m.core.issued);
    assert_eq!(sum("l1.loads").iter().sum::<u64>(), m.l1.loads);
    assert_eq!(sum("l2.gets").iter().sum::<u64>(), m.l2.gets);
    assert_eq!(sum("rollovers").iter().sum::<u64>(), m.rollovers);
    let flits: u64 = MsgClass::ALL
        .iter()
        .map(|c| sum(&format!("flits.{}", c.label())).iter().sum::<u64>())
        .sum();
    assert_eq!(flits, m.traffic.total_flits());

    // Per-core occupancy gauges exist and end at zero (all warps retired).
    for i in 0..cfg.num_cores {
        let col = sum(&format!("warps.core{i}"));
        assert_eq!(*col.last().unwrap(), 0, "core {i} retired everything");
    }

    // Both exports hold their shape: the JSON validates against the
    // committed schema, the CSV has one line per row plus the header.
    let errs =
        schema::validate_text(SERIES_SCHEMA, &s.to_json()).expect("schema and dump must parse");
    assert!(
        errs.is_empty(),
        "series schema violations:\n{}",
        errs.join("\n")
    );
    assert_eq!(s.to_csv().lines().count(), s.rows() + 1);
}

#[test]
fn self_profile_attributes_the_run() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Hsp.generate(&cfg, &Scale::quick(), 5);
    let mut opts = SimOptions::fast();
    opts.profile = true;
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &opts);
    let p = m.profile.as_ref().expect("profiling was armed");
    assert!(p.steps > 0);
    assert!(p.total_nanos() > 0, "no wall-clock attributed at all");
    let shares: f64 = SimPhase::ALL.iter().map(|ph| p.share(*ph)).sum();
    assert!((shares - 1.0).abs() < 1e-9, "phase shares sum to {shares}");

    let plain = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast());
    assert!(plain.profile.is_none(), "unarmed run carries a profile");
}

#[test]
fn trace_cap_drops_loudly_and_stays_valid() {
    let cfg = GpuConfig::small();
    let lit = litmus::message_passing(cfg.num_cores, 5);
    let obs = ObsConfig {
        sample_every: 0,
        trace: true,
        max_trace_events: 4,
    };
    let (_, report) = run_litmus_observed(ProtocolKind::RccSc, &cfg, &lit, None, Some(&obs))
        .expect("litmus run succeeds");
    let report = report.expect("observer was armed");
    assert!(report.trace.dropped() > 0, "cap of 4 never overflowed");
    let dump = report.trace.to_chrome_json();
    let errs = schema::validate_text(TRACE_SCHEMA, &dump).expect("must parse");
    assert!(
        errs.is_empty(),
        "capped trace violations:\n{}",
        errs.join("\n")
    );
    let evs = trace_events(&dump);
    assert_eq!(named(&evs, "i", "trace-events-dropped"), 1);
}
