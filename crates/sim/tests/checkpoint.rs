//! Checkpoint/restore determinism: for three protocol×workload pairs,
//! with fast-forwarding and chaos each on and off, a run that writes a
//! mid-run checkpoint and a run resumed from that checkpoint both
//! produce bit-identical simulated results — metrics digest and
//! observability output — versus the uninterrupted run.

use rcc_chaos::{ChaosProfile, ChaosSpec};
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::checkpoint::Checkpoint;
use rcc_sim::error::SimError;
use rcc_sim::runner::{resume, try_simulate, SimOptions};
use rcc_workloads::{Benchmark, Scale};

const MANIFEST_SCHEMA: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../schemas/checkpoint_manifest.schema.json"
));

const PAIRS: [(ProtocolKind, Benchmark); 3] = [
    (ProtocolKind::RccSc, Benchmark::Dlb),
    (ProtocolKind::Mesi, Benchmark::Hsp),
    (ProtocolKind::TcWeak, Benchmark::Cl),
];

fn tmp(name: &str) -> String {
    std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(name)
        .to_str()
        .expect("utf-8 tmp path")
        .to_string()
}

fn opts(fast_forward: bool, chaos: bool) -> SimOptions {
    let mut o = SimOptions::observed(128);
    o.profile = false; // host-side timing; irrelevant to bit-identity
    o.fast_forward = fast_forward;
    if chaos {
        o.chaos = Some(ChaosSpec::new(5, ChaosProfile::light()));
    }
    o
}

/// Asserts simulated results AND observability output are bit-identical.
fn assert_identical(label: &str, a: &rcc_sim::RunMetrics, b: &rcc_sim::RunMetrics) {
    assert!(
        a.same_simulated_results(b),
        "{label}: simulated results diverged"
    );
    assert_eq!(a.digest(1), b.digest(1), "{label}: metrics digest diverged");
    let (oa, ob) = (
        a.obs.as_ref().expect("obs recorded"),
        b.obs.as_ref().expect("obs recorded"),
    );
    assert_eq!(
        oa.series.to_json(),
        ob.series.to_json(),
        "{label}: time-series diverged"
    );
    assert_eq!(
        oa.trace.to_chrome_json(),
        ob.trace.to_chrome_json(),
        "{label}: trace diverged"
    );
}

#[test]
fn resume_is_bit_identical_across_protocols_ff_and_chaos() {
    let cfg = GpuConfig::small();
    for (kind, bench) in PAIRS {
        let wl = bench.generate(&cfg, &Scale::quick(), 3);
        for ff in [true, false] {
            for chaos in [true, false] {
                let label = format!("{kind:?}/{bench:?} ff={ff} chaos={chaos}");
                let base = opts(ff, chaos);
                let uninterrupted =
                    try_simulate(kind, &cfg, &wl, &base).expect("uninterrupted run");

                // Checkpoint roughly mid-run, derived from the run's own
                // length so the boundary always lands inside it.
                let path = tmp(&format!("ck-{kind:?}-{bench:?}-{ff}-{chaos}"));
                let mut ck_opts = base.clone();
                ck_opts.checkpoint_every = (uninterrupted.cycles / 2).max(1);
                ck_opts.checkpoint = Some(path.clone());
                let checkpointed =
                    try_simulate(kind, &cfg, &wl, &ck_opts).expect("checkpointed run");
                assert_identical(
                    &format!("{label} [checkpointing]"),
                    &uninterrupted,
                    &checkpointed,
                );

                // The snapshot and its manifest exist; the manifest obeys
                // the in-repo schema and names the run.
                let ck = Checkpoint::load(&path).expect("snapshot readable");
                assert!(ck.cycle > 0 && ck.cycle < uninterrupted.cycles);
                let manifest = std::fs::read_to_string(format!("{path}.manifest.json"))
                    .expect("manifest sidecar written");
                let errs = rcc_obs::schema::validate_text(MANIFEST_SCHEMA, &manifest)
                    .expect("manifest parses");
                assert!(
                    errs.is_empty(),
                    "{label}: manifest schema violations: {errs:?}"
                );
                assert!(
                    manifest.contains(wl.name),
                    "{label}: manifest names workload"
                );

                // Resume replays to the checkpointed cycle (verifying the
                // state digest) and finishes bit-identically.
                let resumed = resume(&path).expect("resumed run");
                assert_identical(&format!("{label} [resume]"), &uninterrupted, &resumed);
            }
        }
    }
}

#[test]
fn corrupt_and_missing_checkpoints_are_typed_errors() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 3);
    let path = tmp("ck-corrupt");
    let probe =
        try_simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast()).expect("probe run");
    let mut o = SimOptions::fast();
    o.checkpoint_every = (probe.cycles / 2).max(1);
    o.checkpoint = Some(path.clone());
    try_simulate(ProtocolKind::RccSc, &cfg, &wl, &o).expect("checkpointed run");

    // Flip a byte in the middle of the payload: decode must fail closed.
    let mut bytes = std::fs::read(&path).expect("snapshot readable");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xff;
    let corrupt_path = tmp("ck-corrupt.flipped");
    std::fs::write(&corrupt_path, &bytes).expect("write corrupted copy");
    let err = resume(&corrupt_path).expect_err("corrupted snapshot must not resume");
    assert!(
        matches!(err, SimError::Checkpoint(_)),
        "expected Checkpoint error, got: {err}"
    );

    let err = resume(&tmp("ck-does-not-exist")).expect_err("missing file");
    assert!(matches!(err, SimError::Checkpoint(_)), "got: {err}");
}
