//! Fast-forward determinism guard (DESIGN.md, "Simulation performance").
//!
//! The engine invariant: skipping provably idle cycles may change
//! wall-clock only. Every simulated metric — cycle counts, cache and
//! core statistics, traffic, energy, DRAM activity, SC verdicts — must
//! be bit-identical with the fast-forwarder on and off, for every
//! protocol, and rerunning the same seed must reproduce the same run.

use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::{Benchmark, Scale};

const KINDS: [ProtocolKind; 7] = [
    ProtocolKind::Mesi,
    ProtocolKind::MesiWb,
    ProtocolKind::TcStrong,
    ProtocolKind::TcWeak,
    ProtocolKind::RccSc,
    ProtocolKind::RccWo,
    ProtocolKind::IdealSc,
];

fn opts(fast_forward: bool) -> SimOptions {
    let mut o = SimOptions::fast();
    o.fast_forward = fast_forward;
    o
}

#[test]
fn fast_forward_is_invisible_in_metrics() {
    // The full benchmark set: a boundary case (a warp timer expiring
    // exactly at the window floor into an ordering stall) only shows up
    // on some (protocol, workload, seed) combinations.
    let cfg = GpuConfig::small();
    for kind in KINDS {
        for bench in Benchmark::ALL {
            let wl = bench.generate(&cfg, &Scale::quick(), 7);
            let stepped = simulate(kind, &cfg, &wl, &opts(false));
            let skipped = simulate(kind, &cfg, &wl, &opts(true));
            assert_eq!(
                stepped.skipped_cycles,
                0,
                "{kind}/{}: FF off must not skip",
                bench.name()
            );
            assert!(
                stepped.same_simulated_results(&skipped),
                "{kind}/{}: fast-forward changed simulated results \
                 (stepped {} cycles, skipped {} cycles)",
                bench.name(),
                stepped.cycles,
                skipped.cycles,
            );
        }
    }
}

#[test]
fn fast_forward_actually_skips() {
    // Sanity that the invariant test above is not vacuous: on at least
    // one workload the engine must find idle cycles to jump over.
    let cfg = GpuConfig::small();
    let mut total_skipped = 0;
    for kind in KINDS {
        let wl = Benchmark::Bh.generate(&cfg, &Scale::quick(), 5);
        let m = simulate(kind, &cfg, &wl, &opts(true));
        total_skipped += m.skipped_cycles;
        assert!(
            m.skipped_cycles < m.cycles,
            "{kind}: skip ratio must be < 1"
        );
    }
    assert!(total_skipped > 0, "no protocol ever fast-forwarded");
}

#[test]
fn same_seed_same_run() {
    let cfg = GpuConfig::small();
    for kind in [ProtocolKind::Mesi, ProtocolKind::RccSc] {
        let wl1 = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 5);
        let wl2 = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 5);
        let a = simulate(kind, &cfg, &wl1, &opts(true));
        let b = simulate(kind, &cfg, &wl2, &opts(true));
        assert!(
            a.same_simulated_results(&b),
            "{kind}: same seed must reproduce the same run"
        );
        assert_eq!(a.skipped_cycles, b.skipped_cycles);
        assert_eq!(a.ff_jumps, b.ff_jumps);
    }
}

#[test]
fn chaos_is_deterministic_under_fast_forward() {
    // Chaos draws are event-driven (one draw per message/command/access,
    // never per cycle), so skipping idle cycles must not change which
    // perturbations fire: same chaos seed ⇒ bit-identical metrics —
    // including the fired-injection count — with the fast-forwarder on
    // and off, for every sound profile.
    let cfg = GpuConfig::small();
    for profile in rcc_chaos::ChaosProfile::sound() {
        for kind in [
            ProtocolKind::RccSc,
            ProtocolKind::Mesi,
            ProtocolKind::TcWeak,
        ] {
            let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 7);
            let chaos = rcc_chaos::ChaosSpec::new(11, profile.clone());
            let mut stepped_opts = opts(false);
            stepped_opts.chaos = Some(chaos.clone());
            let mut ff_opts = opts(true);
            ff_opts.chaos = Some(chaos);
            let stepped = simulate(kind, &cfg, &wl, &stepped_opts);
            let skipped = simulate(kind, &cfg, &wl, &ff_opts);
            assert!(
                stepped.chaos_events > 0,
                "{kind}/{}: chaos never fired — test is vacuous",
                profile.name
            );
            assert!(
                stepped.same_simulated_results(&skipped),
                "{kind}/{}: fast-forward changed a chaos run \
                 (stepped {} cycles / {} events, skipped {} cycles / {} events)",
                profile.name,
                stepped.cycles,
                stepped.chaos_events,
                skipped.cycles,
                skipped.chaos_events,
            );
        }
    }
}

#[test]
fn observation_is_invisible_in_metrics() {
    // The observability layer is passive by contract: sampling, trace
    // recording and self-profiling together must not move a single
    // simulated metric. Same discipline as chaos — one branch on the hot
    // path when off, and nothing ever feeds back when on. (The sampler
    // does cap fast-forward jumps at sample boundaries, so this also
    // proves boundary-stepping changes engine telemetry only.)
    let cfg = GpuConfig::small();
    for kind in KINDS {
        let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 7);
        let plain = simulate(kind, &cfg, &wl, &opts(true));
        let observed = simulate(kind, &cfg, &wl, &SimOptions::observed(64));
        assert!(plain.obs.is_none(), "{kind}: unarmed run carries a report");
        let report = observed.obs.as_ref().expect("observer was armed");
        assert!(report.series.rows() > 0, "{kind}: sampler never fired");
        assert!(
            !report.trace.is_empty(),
            "{kind}: tracer recorded nothing on a full benchmark"
        );
        assert!(
            plain.same_simulated_results(&observed),
            "{kind}: observation changed simulated results \
             (plain {} cycles, observed {} cycles)",
            plain.cycles,
            observed.cycles,
        );
        assert_eq!(
            plain.digest(3),
            observed.digest(3),
            "{kind}: digest disagrees though results compare equal"
        );
    }
}

#[test]
fn observation_is_invisible_on_every_litmus_test() {
    // Same invariant over the full litmus suite: the short, racy runs
    // are where an off-by-one sample boundary or a trace-driven borrow
    // would bite timing first.
    let cfg = GpuConfig::small();
    for kind in [ProtocolKind::RccSc, ProtocolKind::TcWeak] {
        for lit in rcc_workloads::litmus::all(cfg.num_cores, 11) {
            let wl = rcc_sim::litmus::litmus_workload(&lit);
            let plain = simulate(kind, &cfg, &wl, &opts(true));
            let observed = simulate(kind, &cfg, &wl, &SimOptions::observed(16));
            assert!(
                plain.same_simulated_results(&observed),
                "{kind} on {}: observation changed a litmus run",
                lit.name
            );
        }
    }
}

// The event-driven engine must not merely reproduce the *metrics* of
// the legacy stepped engine — the machine state itself must match at
// every checkpoint boundary, or a checkpoint taken under one engine
// would not resume bit-identically under the other. Lockstep the two
// engines with `run_until` and compare full state digests at each
// boundary, then the final metrics.
fn lockstep_digests<P: rcc_core::protocol::Protocol>(
    proto: &P,
    cfg: &GpuConfig,
    wl: &rcc_workloads::Workload,
    stride: u64,
    label: &str,
) {
    let mut stepped = rcc_sim::System::new(proto, cfg, wl, false);
    stepped.set_fast_forward(false);
    let mut sched = rcc_sim::System::new(proto, cfg, wl, false);
    sched.set_fast_forward(true);
    let mut boundary = 0;
    let mut boundaries = 0u32;
    while !(stepped.done() && sched.done()) {
        boundary += stride;
        assert!(boundary < 50_000_000, "{label}: lockstep run never retired");
        stepped.run_until(boundary).unwrap();
        sched.run_until(boundary).unwrap();
        boundaries += 1;
        assert_eq!(
            stepped.state_digest(),
            sched.state_digest(),
            "{label}: engines diverged at checkpoint boundary {boundary}"
        );
    }
    assert!(boundaries > 0, "{label}: no boundary ever compared");
    assert!(
        stepped.metrics().same_simulated_results(&sched.metrics()),
        "{label}: final metrics diverged though every digest matched"
    );
}

fn lockstep_kind(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    wl: &rcc_workloads::Workload,
    stride: u64,
    label: &str,
) {
    use rcc_core::ideal::IdealProtocol;
    use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
    use rcc_core::rcc::RccProtocol;
    use rcc_core::tc::TcProtocol;
    match kind {
        ProtocolKind::Mesi => lockstep_digests(&MesiProtocol::new(cfg), cfg, wl, stride, label),
        ProtocolKind::MesiWb => lockstep_digests(&MesiWbProtocol::new(cfg), cfg, wl, stride, label),
        ProtocolKind::TcStrong => {
            lockstep_digests(&TcProtocol::strong(cfg), cfg, wl, stride, label)
        }
        ProtocolKind::TcWeak => lockstep_digests(&TcProtocol::weak(cfg), cfg, wl, stride, label),
        ProtocolKind::RccSc => {
            lockstep_digests(&RccProtocol::sequential(cfg), cfg, wl, stride, label)
        }
        ProtocolKind::RccWo => {
            lockstep_digests(&RccProtocol::weakly_ordered(cfg), cfg, wl, stride, label)
        }
        ProtocolKind::IdealSc => lockstep_digests(&IdealProtocol::new(cfg), cfg, wl, stride, label),
    }
}

#[test]
fn scheduled_engine_matches_stepped_state_on_litmus() {
    // Short racy runs with a fine stride: where a wake posted one cycle
    // late would move an ordering race first.
    let cfg = GpuConfig::small();
    for kind in KINDS {
        for lit in rcc_workloads::litmus::all(cfg.num_cores, 11) {
            let wl = rcc_sim::litmus::litmus_workload(&lit);
            lockstep_kind(kind, &cfg, &wl, 64, &format!("{kind}/{}", lit.name));
        }
    }
}

#[test]
fn scheduled_engine_matches_stepped_state_on_benchmarks() {
    // Long runs with realistic checkpoint spacing: dlb (load balancing,
    // bursty), bh (barrier phases, idle-heavy), hsp (streaming,
    // contention-heavy).
    let cfg = GpuConfig::small();
    for kind in KINDS {
        for bench in [Benchmark::Dlb, Benchmark::Bh, Benchmark::Hsp] {
            let wl = bench.generate(&cfg, &Scale::quick(), 7);
            lockstep_kind(kind, &cfg, &wl, 2500, &format!("{kind}/{}", bench.name()));
        }
    }
}

#[test]
fn fast_forward_passes_sc_checking() {
    // The litmus matrix runs elsewhere; here, pin that the SC scoreboard
    // and sanitizer both hold under fast-forward on a real workload.
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 5);
    let mut o = SimOptions::checked();
    o.sanitize = true;
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &o);
    assert_eq!(m.sc_violations, 0);
    assert_eq!(m.sanitizer_sc, Some(true));
}
