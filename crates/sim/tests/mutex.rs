//! Mutual-exclusion verification: spin locks built from CAS must
//! serialize critical sections under EVERY protocol (including the
//! weakly ordered ones — atomics are always serialized at the L2).
//!
//! Each warp's critical section stores its unique token into a shared
//! word and immediately loads it back: if any other warp entered the
//! section concurrently, some warp reads back a foreign token.

use rcc_common::addr::LineAddr;
use rcc_common::ids::WorkgroupId;
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_gpu::op::{MemOp, WarpProgram};
use rcc_sim::system::System;
use rcc_workloads::{Sharing, Workload};

fn mutex_workload(cfg: &GpuConfig, iters: usize) -> (Workload, Vec<(usize, usize, u64)>) {
    let lock = LineAddr(0).word(0);
    let shared = LineAddr(1).word(0);
    let mut programs = Vec::new();
    let mut tokens = Vec::new();
    for core in 0..cfg.num_cores {
        let mut warps = Vec::new();
        for w in 0..2 {
            let token = 1 + (core as u64) * 100 + w as u64;
            tokens.push((core, w, token));
            let mut ops = vec![MemOp::Compute(1 + (core * 7 + w * 3) as u32)];
            for _ in 0..iters {
                ops.push(MemOp::Lock(lock));
                ops.push(MemOp::Fence);
                ops.push(MemOp::Store(shared, token));
                ops.push(MemOp::Compute(20));
                ops.push(MemOp::Load(shared)); // must read back `token`
                ops.push(MemOp::Fence);
                ops.push(MemOp::Unlock(lock));
            }
            warps.push(WarpProgram::new(WorkgroupId(core * 2 + w), ops));
        }
        programs.push(warps);
    }
    (
        Workload {
            name: "mutex",
            category: Sharing::InterWorkgroup,
            programs,
            warps_per_workgroup: 1,
        },
        tokens,
    )
}

fn check_mutex(kind: ProtocolKind) {
    let cfg = GpuConfig::small();
    let (wl, tokens) = mutex_workload(&cfg, 6);
    let shared = LineAddr(1).word(0);
    let run = |sys: &mut dyn FnMut() -> Vec<u64>, _: ()| sys();
    let _ = run;
    // Run via the concrete systems to reach the load log.
    macro_rules! go {
        ($p:expr) => {{
            let mut sys = System::new(&$p, &cfg, &wl, false);
            while !sys.done() {
                sys.step().expect("mutex run fails");
            }
            for (core, warp, token) in &tokens {
                let loads = sys.loads_of(*core, *warp, shared);
                assert_eq!(loads.len(), 6, "{kind}: every section read back");
                for v in loads {
                    assert_eq!(
                        v, token,
                        "{kind}: warp {core}/{warp} saw a foreign token inside \
                         its critical section — mutual exclusion broken"
                    );
                }
            }
        }};
    }
    match kind {
        ProtocolKind::Mesi => go!(rcc_core::mesi::MesiProtocol::new(&cfg)),
        ProtocolKind::MesiWb => go!(rcc_core::mesi::MesiWbProtocol::new(&cfg)),
        ProtocolKind::TcStrong => go!(rcc_core::tc::TcProtocol::strong(&cfg)),
        ProtocolKind::TcWeak => go!(rcc_core::tc::TcProtocol::weak(&cfg)),
        ProtocolKind::RccSc => go!(rcc_core::rcc::RccProtocol::sequential(&cfg)),
        ProtocolKind::RccWo => go!(rcc_core::rcc::RccProtocol::weakly_ordered(&cfg)),
        ProtocolKind::IdealSc => go!(rcc_core::ideal::IdealProtocol::new(&cfg)),
    }
}

#[test]
fn mutual_exclusion_mesi() {
    check_mutex(ProtocolKind::Mesi);
}

#[test]
fn mutual_exclusion_tcs() {
    check_mutex(ProtocolKind::TcStrong);
}

#[test]
fn mutual_exclusion_tcw() {
    check_mutex(ProtocolKind::TcWeak);
}

#[test]
fn mutual_exclusion_rcc_sc() {
    check_mutex(ProtocolKind::RccSc);
}

#[test]
fn mutual_exclusion_rcc_wo() {
    check_mutex(ProtocolKind::RccWo);
}

#[test]
fn mutual_exclusion_mesi_wb() {
    check_mutex(ProtocolKind::MesiWb);
}
