//! Record → replay fidelity and recorder passivity (DESIGN.md, "Trace
//! capture & replay").
//!
//! Two contracts:
//!
//! * **Passivity** — arming `SimOptions::record_trace` must not move a
//!   single simulated metric, for any protocol, on benchmarks and on
//!   the short racy litmus runs. Same discipline as the observer and
//!   the chaos harness: one branch on the hot path when off, nothing
//!   feeds back when on.
//! * **Fidelity** — replaying a recorded trace through the runner
//!   reproduces the originating run bit-identically: metrics, metrics
//!   digest, and the full architectural `state_digest()`, fast-forward
//!   on or off. The recorded bytes themselves are engine-independent
//!   (FF on and FF off record identical files).

use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_sim::{RunMetrics, System};
use rcc_trace::Trace;
use rcc_workloads::{Benchmark, Scale, Workload};

const KINDS: [ProtocolKind; 7] = [
    ProtocolKind::Mesi,
    ProtocolKind::MesiWb,
    ProtocolKind::TcStrong,
    ProtocolKind::TcWeak,
    ProtocolKind::RccSc,
    ProtocolKind::RccWo,
    ProtocolKind::IdealSc,
];

fn opts(fast_forward: bool) -> SimOptions {
    let mut o = SimOptions::fast();
    o.fast_forward = fast_forward;
    o
}

/// A collision-free scratch path for one recording.
fn tmp(label: &str) -> String {
    std::env::temp_dir()
        .join(format!(
            "rcc-trace-test-{}-{label}.rcct",
            std::process::id()
        ))
        .to_string_lossy()
        .into_owned()
}

fn cleanup(path: &str) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(format!("{path}.manifest.json"));
}

/// Runs to completion on a live system and returns the metrics plus the
/// full architectural state digest (the checkpoint-grade fingerprint).
fn final_state(kind: ProtocolKind, cfg: &GpuConfig, wl: &Workload) -> (RunMetrics, u64) {
    fn go<P: rcc_core::protocol::Protocol>(
        proto: &P,
        cfg: &GpuConfig,
        wl: &Workload,
    ) -> (RunMetrics, u64) {
        let mut system = System::new(proto, cfg, wl, false);
        let metrics = system.run(50_000_000).unwrap();
        let digest = system.state_digest();
        (metrics, digest)
    }
    use rcc_core::ideal::IdealProtocol;
    use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
    use rcc_core::rcc::RccProtocol;
    use rcc_core::tc::TcProtocol;
    match kind {
        ProtocolKind::Mesi => go(&MesiProtocol::new(cfg), cfg, wl),
        ProtocolKind::MesiWb => go(&MesiWbProtocol::new(cfg), cfg, wl),
        ProtocolKind::TcStrong => go(&TcProtocol::strong(cfg), cfg, wl),
        ProtocolKind::TcWeak => go(&TcProtocol::weak(cfg), cfg, wl),
        ProtocolKind::RccSc => go(&RccProtocol::sequential(cfg), cfg, wl),
        ProtocolKind::RccWo => go(&RccProtocol::weakly_ordered(cfg), cfg, wl),
        ProtocolKind::IdealSc => go(&IdealProtocol::new(cfg), cfg, wl),
    }
}

#[test]
fn record_then_replay_reproduces_the_run() {
    let cfg = GpuConfig::small();
    for kind in KINDS {
        let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 7);
        let path = tmp(&format!("fidelity-{}", kind.label()));
        let mut rec_opts = opts(true);
        rec_opts.record_trace = Some(path.clone());
        let original = simulate(kind, &cfg, &wl, &rec_opts);

        let trace = Trace::load(&path).unwrap();
        cleanup(&path);
        let src = trace.source.as_ref().expect("recording stamps provenance");
        assert_eq!(src.cycles, original.cycles, "{kind}: stamped cycle count");
        assert!(trace.stats().annotated > 0, "{kind}: nothing was recorded");
        let replayed_wl = trace.to_workload(cfg.num_cores).unwrap();
        assert_eq!(
            format!("{:?}", wl.programs),
            format!("{:?}", replayed_wl.programs),
            "{kind}: replay lowered a different program stream"
        );

        for ff in [true, false] {
            let replay = simulate(kind, &cfg, &replayed_wl, &opts(ff));
            assert!(
                original.same_simulated_results(&replay),
                "{kind} (ff={ff}): replay diverged from the recorded run \
                 ({} vs {} cycles)",
                original.cycles,
                replay.cycles,
            );
            assert_eq!(
                original.digest(1),
                replay.digest(1),
                "{kind} (ff={ff}): metrics digests diverged"
            );
        }
        // And the machine itself: the replayed run's final architectural
        // state is the recorded run's, bit for bit.
        let (_, original_state) = final_state(kind, &cfg, &wl);
        let (_, replayed_state) = final_state(kind, &cfg, &replayed_wl);
        assert_eq!(
            original_state, replayed_state,
            "{kind}: replayed state digest diverged"
        );
    }
}

#[test]
fn recorded_bytes_are_engine_independent() {
    // Issue cycles are simulated results, so the trace a run records
    // must not depend on whether the engine stepped or fast-forwarded.
    let cfg = GpuConfig::small();
    let wl = Benchmark::Bh.generate(&cfg, &Scale::quick(), 5);
    let mut bytes = Vec::new();
    for ff in [true, false] {
        let path = tmp(&format!("engine-{ff}"));
        let mut o = opts(ff);
        o.record_trace = Some(path.clone());
        simulate(ProtocolKind::RccSc, &cfg, &wl, &o);
        bytes.push(std::fs::read(&path).unwrap());
        cleanup(&path);
    }
    assert_eq!(
        bytes[0], bytes[1],
        "fast-forwarding changed the recorded trace"
    );
}

#[test]
fn recording_is_invisible_in_metrics() {
    let cfg = GpuConfig::small();
    for kind in KINDS {
        let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 7);
        let plain = simulate(kind, &cfg, &wl, &opts(true));
        let path = tmp(&format!("passive-{}", kind.label()));
        let mut rec_opts = opts(true);
        rec_opts.record_trace = Some(path.clone());
        let recorded = simulate(kind, &cfg, &wl, &rec_opts);
        cleanup(&path);
        assert!(
            plain.same_simulated_results(&recorded),
            "{kind}: recording changed simulated results \
             (plain {} cycles, recorded {} cycles)",
            plain.cycles,
            recorded.cycles,
        );
        assert_eq!(
            plain.digest(3),
            recorded.digest(3),
            "{kind}: digest disagrees though results compare equal"
        );
    }
}

#[test]
fn recording_is_invisible_on_every_litmus_test() {
    // The short racy runs are where a recorder that perturbed the
    // machine — an extra borrow, a shifted scheduler decision — would
    // move an ordering race first.
    let cfg = GpuConfig::small();
    for kind in [ProtocolKind::RccSc, ProtocolKind::TcWeak] {
        for lit in rcc_workloads::litmus::all(cfg.num_cores, 11) {
            let wl = rcc_sim::litmus::litmus_workload(&lit);
            let plain = simulate(kind, &cfg, &wl, &opts(true));
            let path = tmp(&format!("litmus-{}-{}", kind.label(), lit.name));
            let mut rec_opts = opts(true);
            rec_opts.record_trace = Some(path.clone());
            let recorded = simulate(kind, &cfg, &wl, &rec_opts);
            cleanup(&path);
            assert!(
                plain.same_simulated_results(&recorded),
                "{kind} on {}: recording changed a litmus run",
                lit.name
            );
        }
    }
}

#[test]
fn timed_replay_is_deterministic_on_every_protocol() {
    // The timed lowering inserts a `WaitUntil` gate before every
    // annotated op, so replay drives the calendar-queue scheduler with
    // the trace's own issue cycles. The gates are timers: fast-forward
    // must jump them without moving a single simulated result, under
    // every protocol (including ones the trace was not recorded on).
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 7);
    let path = tmp("timed");
    let mut rec_opts = opts(true);
    rec_opts.record_trace = Some(path.clone());
    let original = simulate(ProtocolKind::RccSc, &cfg, &wl, &rec_opts);
    let trace = Trace::load(&path).unwrap();
    cleanup(&path);
    let timed = trace.to_workload_timed(cfg.num_cores).unwrap();
    let gates: usize = timed
        .programs
        .iter()
        .flatten()
        .flat_map(|p| &p.ops)
        .filter(|op| matches!(op, rcc_gpu::MemOp::WaitUntil(_)))
        .count();
    assert_eq!(
        gates,
        trace.stats().annotated,
        "timed lowering must gate every annotated op"
    );
    for kind in KINDS {
        let stepped = simulate(kind, &cfg, &timed, &opts(false));
        let skipped = simulate(kind, &cfg, &timed, &opts(true));
        assert!(
            stepped.same_simulated_results(&skipped),
            "{kind}: fast-forward changed a timed replay \
             ({} vs {} cycles)",
            stepped.cycles,
            skipped.cycles,
        );
        assert!(
            skipped.cycles >= trace.stats().last_issue.unwrap(),
            "{kind}: timed replay finished before the last recorded issue"
        );
    }
    // On the recording protocol, the gates reproduce the recorded
    // pacing: the timed run cannot beat the original's issue schedule.
    let timed_rcc = simulate(ProtocolKind::RccSc, &cfg, &timed, &opts(true));
    assert!(
        timed_rcc.cycles >= original.cycles,
        "timed replay ({} cycles) outran the recorded run ({} cycles)",
        timed_rcc.cycles,
        original.cycles,
    );
}

#[test]
fn recording_writes_a_manifest_sidecar() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 7);
    let path = tmp("manifest");
    let mut o = opts(true);
    o.record_trace = Some(path.clone());
    simulate(ProtocolKind::Mesi, &cfg, &wl, &o);
    let manifest = std::fs::read_to_string(format!("{path}.manifest.json")).unwrap();
    cleanup(&path);
    assert!(manifest.contains("\"format\": \"RCCT\""));
    assert!(manifest.contains("\"source_protocol\": \"MESI\""));
}
