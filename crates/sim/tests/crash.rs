//! Typed failure handling, end to end: a crafted deadlock produces a
//! schema-valid forensic hang-dump (and a replayable auto-checkpoint)
//! instead of a panic, broken completion bookkeeping surfaces as
//! [`SimError::ProtocolInvariant`], and an exhausted cycle budget as
//! [`SimError::CyclesExceeded`].

use rcc_common::addr::LineAddr;
use rcc_common::ids::WorkgroupId;
use rcc_common::GpuConfig;
use rcc_core::mesi::MesiProtocol;
use rcc_core::ProtocolKind;
use rcc_gpu::{MemOp, WarpProgram};
use rcc_sim::error::SimError;
use rcc_sim::runner::{resume, try_simulate, SimOptions};
use rcc_sim::System;
use rcc_workloads::{Sharing, Workload};

const HANGDUMP_SCHEMA: &str = include_str!(concat!(
    env!("CARGO_MANIFEST_DIR"),
    "/../../schemas/hangdump.schema.json"
));

/// A guaranteed deadlock: warp 0 of core 0 waits for workgroup-barrier
/// epoch 1, but no warp ever passes a [`MemOp::Barrier`], so the epoch
/// stays 0 forever. The warp issues nothing (a local wait costs no
/// memory traffic), so the watchdog's progress clock never advances.
fn deadlock_workload() -> Workload {
    Workload {
        name: "crafted-deadlock",
        category: Sharing::IntraWorkgroup,
        programs: vec![vec![WarpProgram::new(
            WorkgroupId(0),
            vec![MemOp::LocalWait { epoch: 1 }],
        )]],
        warps_per_workgroup: 2,
    }
}

fn small_watchdog() -> GpuConfig {
    let mut cfg = GpuConfig::small();
    cfg.watchdog_cycles = 10_000;
    cfg
}

fn tmp(name: &str) -> String {
    std::path::Path::new(env!("CARGO_TARGET_TMPDIR"))
        .join(name)
        .to_str()
        .expect("utf-8 tmp path")
        .to_string()
}

#[test]
fn watchdog_emits_forensic_hang_dump() {
    let cfg = small_watchdog();
    let err = try_simulate(
        ProtocolKind::RccSc,
        &cfg,
        &deadlock_workload(),
        &SimOptions::fast(),
    )
    .expect_err("the crafted deadlock must trip the watchdog");
    let SimError::Deadlock(dump) = err else {
        panic!("expected Deadlock, got: {err}");
    };

    // The dump names the stuck component and the blocked warp.
    assert_eq!(dump.workload, "crafted-deadlock");
    assert!(
        dump.suspects.iter().any(|s| s == "core0"),
        "core0 holds a live warp but schedules no event; suspects: {:?}",
        dump.suspects
    );
    let blocked = dump
        .blocked_warps
        .iter()
        .find(|b| b.core == 0 && b.state.warp == 0)
        .expect("warp 0 of core 0 is reported blocked");
    assert_eq!(blocked.state.waiting_local, Some(1));
    let stalled = blocked.state.stalled_op.as_deref().unwrap_or_default();
    assert!(
        stalled.contains("LocalWait"),
        "stalled op names the wait: {stalled:?}"
    );
    assert!(dump.cycle > cfg.watchdog_cycles);
    assert_eq!(dump.last_progress, 0, "nothing ever issued");

    // The JSON rendering is pinned by the in-repo schema.
    let json = dump.to_json();
    let errs =
        rcc_obs::schema::validate_text(HANGDUMP_SCHEMA, &json).expect("schema and dump must parse");
    assert!(errs.is_empty(), "hang-dump schema violations: {errs:?}");

    // The error's Display names the essentials for log-only consumers.
    let msg = SimError::Deadlock(dump).to_string();
    assert!(msg.contains("deadlock"), "{msg}");
    assert!(msg.contains("core0"), "{msg}");
}

#[test]
fn watchdog_auto_checkpoint_replays_the_hang() {
    let cfg = small_watchdog();
    let path = tmp("hang-auto.ck");
    let mut opts = SimOptions::fast();
    opts.checkpoint = Some(path.clone());
    let err =
        try_simulate(ProtocolKind::RccSc, &cfg, &deadlock_workload(), &opts).expect_err("deadlock");
    let SimError::Deadlock(dump) = err else {
        panic!("expected Deadlock, got: {err}");
    };
    let hang_path = dump.checkpoint.clone().expect("auto-checkpoint written");
    assert_eq!(hang_path, format!("{path}.hang"));

    // Replaying the auto-checkpoint deterministically re-reaches the
    // deadlock — same cycle, same suspects.
    let replay_err = resume(&hang_path).expect_err("replay reproduces the hang");
    let SimError::Deadlock(replayed) = replay_err else {
        panic!("expected replayed Deadlock, got: {replay_err}");
    };
    assert_eq!(replayed.cycle, dump.cycle);
    assert_eq!(replayed.suspects, dump.suspects);
    assert_eq!(replayed.state_digest, dump.state_digest);
}

#[test]
fn fast_forward_and_stepping_agree_on_the_deadlock() {
    let cfg = small_watchdog();
    let mut opts = SimOptions::fast();
    opts.fast_forward = false;
    let slow = try_simulate(ProtocolKind::RccSc, &cfg, &deadlock_workload(), &opts)
        .expect_err("deadlock without FF");
    let fast = try_simulate(
        ProtocolKind::RccSc,
        &cfg,
        &deadlock_workload(),
        &SimOptions::fast(),
    )
    .expect_err("deadlock with FF");
    let (SimError::Deadlock(a), SimError::Deadlock(b)) = (slow, fast) else {
        panic!("both must be deadlocks");
    };
    assert_eq!(a.cycle, b.cycle);
    assert_eq!(a.state_digest, b.state_digest);
}

#[test]
fn corrupted_completion_bookkeeping_is_a_typed_invariant_error() {
    let cfg = GpuConfig::small();
    let wl = Workload {
        name: "store-invariant",
        category: Sharing::InterWorkgroup,
        programs: vec![vec![WarpProgram::new(
            WorkgroupId(0),
            vec![MemOp::Store(LineAddr(4).word(0), 7)],
        )]],
        warps_per_workgroup: 1,
    };
    let p = MesiProtocol::new(&cfg);
    let mut sys = System::new(&p, &cfg, &wl, false);
    let mut outcome = Ok(());
    while !sys.done() {
        // Wipe the recorder's pending-value table every cycle, so the
        // store's eventual completion finds no matching entry.
        sys.corrupt_pending_values_for_test();
        outcome = sys.step();
        if outcome.is_err() {
            break;
        }
        assert!(sys.cycle().raw() < 1_000_000, "test run away");
    }
    let err = outcome.expect_err("the corrupted completion must be flagged");
    let SimError::ProtocolInvariant {
        kind,
        workload,
        cycle,
        detail,
    } = err
    else {
        panic!("expected ProtocolInvariant, got: {err}");
    };
    assert_eq!(kind, ProtocolKind::Mesi);
    assert_eq!(workload, "store-invariant");
    assert!(cycle > 0);
    assert!(
        detail.contains("store completion without value"),
        "{detail}"
    );
}

#[test]
fn exhausted_cycle_budget_is_typed() {
    let cfg = GpuConfig::small();
    let wl = rcc_workloads::Benchmark::Dlb.generate(&cfg, &rcc_workloads::Scale::quick(), 3);
    let mut opts = SimOptions::fast();
    opts.max_cycles = 10;
    let err = try_simulate(ProtocolKind::RccSc, &cfg, &wl, &opts)
        .expect_err("10 cycles cannot finish a benchmark");
    let SimError::CyclesExceeded {
        kind, max_cycles, ..
    } = err
    else {
        panic!("expected CyclesExceeded, got: {err}");
    };
    assert_eq!(kind, ProtocolKind::RccSc);
    assert_eq!(max_cycles, 10);
}
