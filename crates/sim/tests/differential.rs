//! Differential trace replay (DESIGN.md, "Trace capture & replay").
//!
//! The committed regression traces under `tests/traces/` are authored
//! write-race-free: loads may race (that is what the protocols differ
//! on), but every word's writes are ordered by program order, a lock, a
//! barrier, or sole ownership. Replaying such a trace must therefore
//! leave the *same logical final memory* under every protocol — the
//! write-serialization guarantee even the weak protocols keep — and
//! every SC-capable protocol must produce an execution the runtime
//! sanitizer can explain with an SC total order.
//!
//! Each trace's final image is also pinned as golden data: a protocol
//! change that moves a committed value (not just reorders internals)
//! fails here with the word and value named.

use rcc_common::addr::{Addr, WordAddr};
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::{RunMetrics, System};
use rcc_trace::Trace;
use rcc_workloads::Workload;

const KINDS: [ProtocolKind; 7] = [
    ProtocolKind::Mesi,
    ProtocolKind::MesiWb,
    ProtocolKind::TcStrong,
    ProtocolKind::TcWeak,
    ProtocolKind::RccSc,
    ProtocolKind::RccWo,
    ProtocolKind::IdealSc,
];

/// The committed traces and their golden final images (byte address →
/// final word value; every untouched word must stay 0).
fn golden() -> Vec<(&'static str, Vec<(u64, u64)>)> {
    vec![
        ("mp", vec![(0x0, 42), (0x80, 1)]),
        ("mutex", vec![(0x0, 4), (0x200, 0)]),
        (
            "interval",
            vec![(0x0, 1), (0x80, 2), (0x100, 3), (0x180, 1)],
        ),
        (
            "barrier",
            vec![(0x0, 7), (0x80, 8), (0x100, 9), (0x180, 10), (0x400, 4)],
        ),
    ]
}

fn trace_path(name: &str) -> String {
    format!(
        "{}/../../tests/traces/{name}.trace",
        env!("CARGO_MANIFEST_DIR")
    )
}

/// Runs a workload on a live `System` so the test can read the final
/// memory image (the runner's metrics only carry its digest).
fn run_system<P: rcc_core::protocol::Protocol>(
    proto: &P,
    cfg: &GpuConfig,
    wl: &Workload,
    chaos: Option<&rcc_chaos::ChaosSpec>,
) -> (RunMetrics, Vec<(WordAddr, u64)>) {
    let mut system = System::new(proto, cfg, wl, false);
    system.enable_sanitizer();
    if let Some(spec) = chaos {
        system.set_chaos(spec);
    }
    let metrics = system.run(50_000_000).unwrap();
    (metrics, system.final_memory())
}

fn run_kind(
    kind: ProtocolKind,
    cfg: &GpuConfig,
    wl: &Workload,
    chaos: Option<&rcc_chaos::ChaosSpec>,
) -> (RunMetrics, Vec<(WordAddr, u64)>) {
    use rcc_core::ideal::IdealProtocol;
    use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
    use rcc_core::rcc::RccProtocol;
    use rcc_core::tc::TcProtocol;
    match kind {
        ProtocolKind::Mesi => run_system(&MesiProtocol::new(cfg), cfg, wl, chaos),
        ProtocolKind::MesiWb => run_system(&MesiWbProtocol::new(cfg), cfg, wl, chaos),
        ProtocolKind::TcStrong => run_system(&TcProtocol::strong(cfg), cfg, wl, chaos),
        ProtocolKind::TcWeak => run_system(&TcProtocol::weak(cfg), cfg, wl, chaos),
        ProtocolKind::RccSc => run_system(&RccProtocol::sequential(cfg), cfg, wl, chaos),
        ProtocolKind::RccWo => run_system(&RccProtocol::weakly_ordered(cfg), cfg, wl, chaos),
        ProtocolKind::IdealSc => run_system(&IdealProtocol::new(cfg), cfg, wl, chaos),
    }
}

fn load(name: &str, cfg: &GpuConfig) -> Workload {
    Trace::load_any(&trace_path(name))
        .and_then(|t| t.to_workload(cfg.num_cores))
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn committed_traces_agree_across_all_protocols() {
    let cfg = GpuConfig::small();
    for (name, expected) in golden() {
        let wl = load(name, &cfg);
        let mut runs = Vec::new();
        for kind in KINDS {
            let (metrics, memory) = run_kind(kind, &cfg, &wl, None);
            if kind.supports_sc() {
                assert_eq!(
                    metrics.sanitizer_sc,
                    Some(true),
                    "{kind} on {name}: no SC order explains the replay"
                );
            }
            assert_eq!(
                metrics.final_mem_digest,
                rcc_sim::RunMetrics::digest_words(&memory),
                "{kind} on {name}: metrics digest disagrees with the image it hashes"
            );
            runs.push((kind, metrics, memory));
        }
        // Golden image: the authored synchronization makes it
        // protocol-independent, so check every protocol against it.
        let want: Vec<(WordAddr, u64)> = expected
            .iter()
            .map(|&(byte, value)| (Addr(byte).word(), value))
            .collect();
        for (kind, _, memory) in &runs {
            let written: Vec<(WordAddr, u64)> = memory
                .iter()
                .copied()
                .filter(|&(_, value)| value != 0)
                .collect();
            let mut want_nonzero: Vec<(WordAddr, u64)> = want
                .iter()
                .copied()
                .filter(|&(_, value)| value != 0)
                .collect();
            want_nonzero.sort_unstable_by_key(|&(addr, _)| addr);
            assert_eq!(
                written, want_nonzero,
                "{kind} on {name}: final memory diverged from the golden image"
            );
        }
        // And pairwise: the full images (zeros included) must agree.
        let (first_kind, _, first_mem) = &runs[0];
        for (kind, metrics, memory) in &runs[1..] {
            assert_eq!(
                memory, first_mem,
                "{kind} vs {first_kind} on {name}: final memory diverged"
            );
            assert_eq!(
                metrics.final_mem_digest, runs[0].1.final_mem_digest,
                "{kind} vs {first_kind} on {name}: image digests diverged"
            );
        }
    }
}

#[test]
fn replayed_traces_survive_chaos_under_the_sanitizer() {
    // Trace fuzzing: the replay path must compose with the perturbation
    // injector — a sound chaos profile shifts timing only, so the final
    // image and the SC verdict stand.
    let cfg = GpuConfig::small();
    for (name, _) in golden() {
        let wl = load(name, &cfg);
        let baseline = run_kind(ProtocolKind::RccSc, &cfg, &wl, None);
        for profile in rcc_chaos::ChaosProfile::sound() {
            let spec = rcc_chaos::ChaosSpec::new(13, profile.clone());
            let (metrics, memory) = run_kind(ProtocolKind::RccSc, &cfg, &wl, Some(&spec));
            assert_eq!(
                metrics.sanitizer_sc,
                Some(true),
                "{name}/{}: chaos broke SC on a replayed trace",
                profile.name
            );
            assert_eq!(
                memory, baseline.1,
                "{name}/{}: chaos moved the final image",
                profile.name
            );
        }
    }
}

#[test]
fn binary_and_text_forms_replay_identically() {
    // The committed .rcct binaries are generated from the .trace text;
    // both forms must lower to the same workload and replay to the same
    // run. Guards the committed pairs against drifting apart.
    let cfg = GpuConfig::small();
    for (name, _) in golden() {
        let text = load(name, &cfg);
        let bin_path = trace_path(name).replace(".trace", ".rcct");
        let bin = Trace::load_any(&bin_path)
            .and_then(|t| t.to_workload(cfg.num_cores))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(
            format!("{:?}", text.programs),
            format!("{:?}", bin.programs),
            "{name}: committed binary drifted from its text source"
        );
        let (mt, memt) = run_kind(ProtocolKind::RccSc, &cfg, &text, None);
        let (mb, memb) = run_kind(ProtocolKind::RccSc, &cfg, &bin, None);
        assert!(
            mt.same_simulated_results(&mb),
            "{name}: text and binary replays diverged"
        );
        assert_eq!(memt, memb);
    }
}
