//! Full-system integration matrix: every protocol × every benchmark on
//! the small machine, with the SC scoreboard on for SC-capable
//! protocols, plus litmus tests.

use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::litmus::{count_forbidden, run_litmus};
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::litmus;
use rcc_workloads::{Benchmark, Scale};

fn cfg() -> GpuConfig {
    GpuConfig::small()
}

#[test]
fn every_protocol_runs_every_benchmark_and_sc_holds() {
    let cfg = cfg();
    let opts = SimOptions::checked();
    for bench in Benchmark::ALL {
        let wl = bench.generate(&cfg, &Scale::quick(), 17);
        for kind in ProtocolKind::ALL {
            let m = simulate(kind, &cfg, &wl, &opts);
            assert!(m.cycles > 0, "{kind}/{bench:?}");
            assert!(m.core.mem_ops > 0, "{kind}/{bench:?}");
            if kind.supports_sc() {
                assert_eq!(m.sc_violations, 0, "{kind}/{bench:?}");
            }
        }
    }
}

#[test]
fn protocols_agree_on_work_done() {
    // The same workload must issue the same static memory operations
    // under every protocol (dynamic lock retries and polls may differ).
    let cfg = cfg();
    let wl = Benchmark::Cl.generate(&cfg, &Scale::quick(), 3);
    let static_ops = wl.static_mem_ops() as u64;
    for kind in ProtocolKind::ALL {
        let m = simulate(kind, &cfg, &wl, &SimOptions::fast());
        assert!(
            m.core.mem_ops >= static_ops,
            "{kind}: {} < {static_ops}",
            m.core.mem_ops
        );
    }
}

#[test]
fn sc_protocols_never_show_forbidden_litmus_outcomes() {
    let cfg = cfg();
    let runs = 30;
    for kind in [
        ProtocolKind::Mesi,
        ProtocolKind::MesiWb,
        ProtocolKind::TcStrong,
        ProtocolKind::RccSc,
    ] {
        for make in [
            litmus::message_passing as fn(usize, u64) -> litmus::Litmus,
            litmus::mp_atomic,
            litmus::store_buffering,
            litmus::load_buffering,
            litmus::wrc,
            litmus::corr,
            litmus::iriw,
        ] {
            let n = count_forbidden(kind, &cfg, runs, |seed| make(cfg.num_cores, seed));
            assert_eq!(n, 0, "{kind} showed a forbidden outcome");
        }
    }
}

#[test]
fn tcw_shows_weak_behaviour_on_mp_but_fences_restore_order() {
    // Long leases widen TC-Weak's stale-hit window so the weak outcome
    // is reliably observable within a handful of runs.
    let mut cfg = cfg();
    cfg.tc.lease_cycles = 2000;
    let runs = 60;
    // Unfenced message passing: TC-Weak is allowed to (and does, given
    // enough timing variation) show the forbidden outcome.
    let weak = count_forbidden(ProtocolKind::TcWeak, &cfg, runs, |seed| {
        litmus::message_passing(cfg.num_cores, seed)
    });
    assert!(
        weak > 0,
        "TC-Weak never exhibited the mp weak behaviour in {runs} runs — \
         the weak-ordering model is suspiciously strong"
    );
    // Properly fenced, the outcome must disappear (DRF programs get SC).
    let fenced = count_forbidden(ProtocolKind::TcWeak, &cfg, runs, |seed| {
        litmus::message_passing_fenced(cfg.num_cores, seed)
    });
    assert_eq!(fenced, 0, "fences must restore SC for TC-Weak");
}

#[test]
fn rcc_wo_respects_fenced_message_passing() {
    let cfg = cfg();
    let fenced = count_forbidden(ProtocolKind::RccWo, &cfg, 60, |seed| {
        litmus::message_passing_fenced(cfg.num_cores, seed)
    });
    assert_eq!(fenced, 0, "RCC-WO with fences must be data-race-free SC");
}

#[test]
fn fenced_store_buffering_is_sc_for_weak_protocols() {
    // sb needs a fence between the store and the load on both sides;
    // with it in place neither weakly ordered configuration may show
    // the both-read-zero outcome.
    let cfg = cfg();
    for kind in [ProtocolKind::TcWeak, ProtocolKind::RccWo] {
        let n = count_forbidden(kind, &cfg, 40, |seed| {
            litmus::store_buffering_fenced(cfg.num_cores, seed)
        });
        assert_eq!(n, 0, "{kind} reordered across a fence");
    }
}

#[test]
fn atomic_handoff_mp_is_safe_even_for_weak_protocols() {
    // mp+atomic publishes the flag with fence + XCHG, the unlock idiom:
    // the RMW performs at the L2 and the fences order it against the
    // data accesses, so even TC-Weak and RCC-WO must never show the
    // stale-data outcome. Long leases would widen any stale-hit window
    // if the hand-off were broken.
    let mut cfg = cfg();
    cfg.tc.lease_cycles = 2000;
    for kind in [ProtocolKind::TcWeak, ProtocolKind::RccWo] {
        let n = count_forbidden(kind, &cfg, 40, |seed| {
            litmus::mp_atomic(cfg.num_cores, seed)
        });
        assert_eq!(n, 0, "{kind} broke the atomic release/acquire hand-off");
    }
}

#[test]
fn corr_holds_even_for_weak_protocols() {
    // Per-location coherence is guaranteed by every protocol here.
    let cfg = cfg();
    for kind in [ProtocolKind::TcWeak, ProtocolKind::RccWo] {
        let n = count_forbidden(kind, &cfg, 40, |seed| litmus::corr(cfg.num_cores, seed));
        assert_eq!(n, 0, "{kind} broke per-location coherence");
    }
}

#[test]
fn litmus_probe_values_are_plausible() {
    let cfg = cfg();
    let out = run_litmus(
        ProtocolKind::RccSc,
        &cfg,
        &litmus::message_passing(cfg.num_cores, 5),
    )
    .expect("litmus run succeeds");
    assert_eq!(out.values.len(), 2);
    for v in &out.values {
        assert!(*v == 0 || *v == 1);
    }
    assert!(out.sanitizer_sc, "RCC-SC litmus run must admit an SC order");
}

#[test]
fn sanitizer_flags_tcw_weak_outcomes_as_non_sc() {
    // Whenever TC-Weak shows the forbidden mp outcome, the runtime
    // sanitizer must agree that no SC total order explains the
    // execution — the probes and the axiomatic check corroborate each
    // other. (run_litmus itself asserts the converse for SC protocols.)
    let mut cfg = cfg();
    cfg.tc.lease_cycles = 2000;
    let mut saw_forbidden = false;
    for seed in 0..60 {
        let out = run_litmus(
            ProtocolKind::TcWeak,
            &cfg,
            &litmus::message_passing(cfg.num_cores, seed),
        )
        .expect("litmus run succeeds");
        if out.forbidden {
            saw_forbidden = true;
            assert!(
                !out.sanitizer_sc,
                "seed {seed}: forbidden mp outcome but the sanitizer \
                 found an SC order — its edge construction is missing a cycle"
            );
        }
    }
    assert!(saw_forbidden, "TC-Weak never showed the weak mp outcome");
}

#[test]
fn rcc_rollover_fires_and_execution_stays_sc() {
    // Tiny rollover threshold: several rollovers over one workload.
    let mut cfg = cfg();
    cfg.rcc.rollover_threshold = 300;
    cfg.rcc.fixed_lease = Some(64);
    let wl = Benchmark::Vpr.generate(&cfg, &Scale::quick(), 23);
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::checked());
    assert!(m.rollovers > 0, "rollover never triggered");
    assert_eq!(m.sc_violations, 0);
}

#[test]
fn dlb_under_every_sc_protocol_serializes_queues() {
    // Locks exercise atomics heavily; make sure all SC protocols agree
    // there are no violations and locks were contended.
    let cfg = cfg();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 29);
    for kind in [
        ProtocolKind::Mesi,
        ProtocolKind::TcStrong,
        ProtocolKind::RccSc,
    ] {
        let m = simulate(kind, &cfg, &wl, &SimOptions::checked());
        assert_eq!(m.sc_violations, 0, "{kind}");
        assert!(m.l2.atomics > 0, "{kind}: locks must reach the L2");
    }
}

#[test]
fn renew_and_predictor_reduce_work_for_rcc() {
    let cfg = cfg();
    let wl = Benchmark::Bh.generate(&cfg, &Scale::quick(), 31);
    let base = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast());
    // Disable renew: same run must move at least as many flits.
    let mut no_renew = cfg.clone();
    no_renew.rcc.renew_enabled = false;
    let m2 = simulate(ProtocolKind::RccSc, &no_renew, &wl, &SimOptions::fast());
    assert!(
        m2.traffic.total_flits() >= base.traffic.total_flits(),
        "renew must not increase traffic"
    );
    assert_eq!(m2.l2.renews_granted, 0);
}

#[test]
fn rollover_bills_flush_traffic() {
    use rcc_common::stats::MsgClass;
    let mut cfg = cfg();
    cfg.rcc.rollover_threshold = 300;
    cfg.rcc.fixed_lease = Some(64);
    let wl = Benchmark::Vpr.generate(&cfg, &Scale::quick(), 23);
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::checked());
    assert!(m.rollovers > 0);
    // Each rollover sends one Flush per core and receives one FlushAck
    // back, all billed on the Flush class.
    assert!(
        m.traffic.msgs(MsgClass::Flush) >= m.rollovers * 2 * cfg.num_cores as u64,
        "flush round trips must appear in the traffic accounts"
    );
}

#[test]
fn one_rcc_implementation_serves_both_memory_models() {
    // Section IV-C: "the hardware needed for RCC is similar for SC and
    // RC, a single implementation can potentially allow runtime
    // selection of the desired memory model." In this codebase that is
    // literal: both modes instantiate the same controller types with a
    // one-bit mode switch, and share the Table V census.
    use rcc_core::census::ProtocolCensus;
    let sc = ProtocolCensus::for_kind(ProtocolKind::RccSc).unwrap();
    let wo = ProtocolCensus::for_kind(ProtocolKind::RccWo).unwrap();
    assert_eq!(sc.l1_states(), wo.l1_states());
    assert_eq!(sc.l2_transitions, wo.l2_transitions);
    // And both run the same workload correctly.
    let cfg = cfg();
    let wl = Benchmark::Cl.generate(&cfg, &Scale::quick(), 31);
    let m_sc = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::checked());
    let m_wo = simulate(ProtocolKind::RccWo, &cfg, &wl, &SimOptions::fast());
    assert_eq!(m_sc.sc_violations, 0);
    assert!(
        m_wo.cycles <= m_sc.cycles,
        "weak ordering is never slower here"
    );
}

#[test]
fn mesh_topology_runs_and_stays_sc() {
    let mut cfg = cfg();
    cfg.noc.topology = rcc_common::config::NocTopology::Mesh;
    let wl = Benchmark::Cl.generate(&cfg, &Scale::quick(), 13);
    for kind in [
        ProtocolKind::Mesi,
        ProtocolKind::MesiWb,
        ProtocolKind::TcStrong,
        ProtocolKind::RccSc,
    ] {
        let m = simulate(kind, &cfg, &wl, &SimOptions::checked());
        assert_eq!(m.sc_violations, 0, "{kind} on a mesh");
        assert!(m.cycles > 0);
    }
    // The mesh accumulates more flit-hops than flits.
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast());
    assert!(m.energy.router_pj > 0.0);
}
