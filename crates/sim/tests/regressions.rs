//! Regression tests for bugs found during development — each of these
//! caught a real protocol or witness defect at some point.

use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::{Benchmark, Scale};

/// MESI once excluded the writer's core from invalidations; a sibling
/// warp's refetch raced the write-through and kept a stale copy forever.
/// dlb seed 0/29 under MESI reproduced it.
#[test]
fn mesi_dlb_stale_sibling_copy() {
    let cfg = GpuConfig::small();
    for seed in [0, 29] {
        let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), seed);
        let m = simulate(ProtocolKind::Mesi, &cfg, &wl, &SimOptions::checked());
        assert_eq!(m.sc_violations, 0, "seed {seed}");
    }
}

/// RCC once acked refetch-path writes with ver = mnow, tying with a
/// still-valid remote lease at exactly mnow; and loads lacked the bank
/// service slot needed to order same-version ties.
#[test]
fn rcc_dlb_refetch_and_tie_ordering() {
    let cfg = GpuConfig::small();
    for seed in [0, 23, 29] {
        let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), seed);
        let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::checked());
        assert_eq!(m.sc_violations, 0, "seed {seed}");
    }
}

/// TCS once let a fill evict a line with parked stores, which then
/// applied against a non-resident line (ndl at standard scale).
#[test]
fn tcs_parked_store_eviction() {
    let cfg = GpuConfig::small();
    for seed in [0, 7] {
        let wl = Benchmark::Ndl.generate(&cfg, &Scale::quick(), seed);
        let m = simulate(ProtocolKind::TcStrong, &cfg, &wl, &SimOptions::checked());
        assert_eq!(m.sc_violations, 0, "seed {seed}");
    }
}

/// SC-IDEAL once deadlocked when a load merged into an MSHR entry
/// created by an atomic (no GETS in flight) — dlb exercises it.
#[test]
fn ideal_load_merges_into_atomic_entry() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 17);
    let m = simulate(ProtocolKind::IdealSc, &cfg, &wl, &SimOptions::fast());
    assert!(m.cycles > 0);
}

/// MESI-WB's directory once replayed MSHR-queued requests *behind*
/// requests deferred while the fill was stalled on a recall, inverting
/// same-core arrival order: kmn seed 17 acknowledged atomic 54 before
/// atomic 53 and tripped the L1's response-order assertion.
#[test]
fn mesi_wb_fill_replay_preserves_arrival_order() {
    let cfg = GpuConfig::small();
    for seed in [0, 7, 17] {
        let wl = Benchmark::Kmn.generate(&cfg, &Scale::quick(), seed);
        let m = simulate(ProtocolKind::MesiWb, &cfg, &wl, &SimOptions::checked());
        assert_eq!(m.sc_violations, 0, "seed {seed}");
    }
}

/// SC-IDEAL's magic invalidation once missed fetches in flight: the
/// fill re-installed pre-write data and a later load hit the stale
/// copy, showing the forbidden mp outcome under a nominally SC
/// idealization. The fill is now poisoned by a racing invalidation.
#[test]
fn ideal_inv_poisons_in_flight_fetch() {
    use rcc_sim::litmus::count_forbidden;
    let cfg = GpuConfig::small();
    let n = count_forbidden(ProtocolKind::IdealSc, &cfg, 40, |seed| {
        rcc_workloads::litmus::message_passing(cfg.num_cores, seed)
    });
    assert_eq!(n, 0, "SC-IDEAL showed the forbidden mp outcome");
}

/// Loads that merge into an in-flight fetch after the granted lease
/// window must re-request rather than complete with stale-window data;
/// high-contention runs under TCS/RCC exercise the path.
#[test]
fn late_merged_loads_refetch() {
    let cfg = GpuConfig::small();
    for kind in [ProtocolKind::TcStrong, ProtocolKind::RccSc] {
        for seed in 0..6 {
            let wl = Benchmark::Bfs.generate(&cfg, &Scale::quick(), seed);
            let m = simulate(kind, &cfg, &wl, &SimOptions::checked());
            assert_eq!(m.sc_violations, 0, "{kind} seed {seed}");
        }
    }
}
