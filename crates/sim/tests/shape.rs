use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::{Benchmark, Scale};

#[test]
#[ignore]
fn shape() {
    let cfg = GpuConfig::gtx480();
    let opts = SimOptions::fast();
    let kinds = [
        ProtocolKind::Mesi,
        ProtocolKind::TcStrong,
        ProtocolKind::TcWeak,
        ProtocolKind::RccSc,
        ProtocolKind::RccWo,
        ProtocolKind::IdealSc,
    ];
    println!(
        "{:6} {:>9} {:>7} {:>7} {:>7} {:>7} {:>7}",
        "bench", "MESIcyc", "TCS", "TCW", "RCC", "RCCWO", "IDEAL"
    );
    for b in Benchmark::ALL {
        let wl = b.generate(&cfg, &Scale::standard(), 7);
        let base = simulate(ProtocolKind::Mesi, &cfg, &wl, &opts);
        let mut row = format!("{:6} {:>9}", b.name(), base.cycles);
        for k in &kinds[1..] {
            let m = simulate(*k, &cfg, &wl, &opts);
            row += &format!(" {:>7.3}", base.cycles as f64 / m.cycles as f64);
        }
        println!("{row}");
    }
}
