//! Chaos-harness guard: SC must survive arbitrary (sound) timing
//! perturbation, the same chaos seed must replay the same run, and the
//! deliberately unsound canary profile must be caught by the runtime SC
//! sanitizer immediately.

use proptest::prelude::*;
use rcc_chaos::{ChaosProfile, ChaosSpec};
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::litmus::run_litmus_chaos;
use rcc_sim::runner::{simulate, SimOptions};
use rcc_workloads::{litmus, Benchmark, Scale};

fn cfg() -> GpuConfig {
    GpuConfig::small()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// The tentpole property: for ANY chaos seed and any sound profile,
    /// an SC protocol's litmus outcomes stay SC-allowed and the runtime
    /// sanitizer still finds an SC total order for the whole execution.
    /// On failure the shim reports the offending (seed, profile, kind)
    /// so the schedule can be replayed deterministically.
    #[test]
    fn sound_chaos_never_breaks_sc(
        seed in 0u64..1_000_000,
        profile_idx in 0usize..3,
        kind_idx in 0usize..2,
    ) {
        let cfg = cfg();
        let profile = ChaosProfile::sound()[profile_idx].clone();
        let kind = [ProtocolKind::RccSc, ProtocolKind::Mesi][kind_idx];
        let spec = ChaosSpec::new(seed, profile);
        for make in [
            litmus::message_passing as fn(usize, u64) -> litmus::Litmus,
            litmus::store_buffering,
            litmus::corr,
        ] {
            let lit = make(cfg.num_cores, seed);
            let out = run_litmus_chaos(kind, &cfg, &lit, Some(&spec)).expect("litmus run succeeds");
            prop_assert!(
                !out.forbidden,
                "{kind} on {} (chaos {} seed {seed}): forbidden outcome",
                lit.name, spec.profile.name,
            );
            prop_assert!(
                out.sanitizer_sc,
                "{kind} on {} (chaos {} seed {seed}): no SC order explains the run",
                lit.name, spec.profile.name,
            );
        }
    }
}

/// The canary profile models a lost lease-extension: every granted lease
/// truncates to one cycle and the L1 keeps serving the expired resident
/// lines as if the extension had arrived. The sanitizer must flag the
/// very first litmus run — this is the proof that the chaos harness and
/// sanitizer together actually detect unsound protocols, not just that
/// sound ones pass. (Seed 1 is pinned: its timing makes the mp reader
/// observe the flag while the data line's expired lease is still being
/// served stale, so the planted bug bites observably.)
#[test]
fn canary_is_caught_by_sanitizer_in_one_run() {
    let cfg = cfg();
    let spec = ChaosSpec::new(1, ChaosProfile::canary());
    let lit = litmus::message_passing(cfg.num_cores, 1);
    let out = run_litmus_chaos(ProtocolKind::RccSc, &cfg, &lit, Some(&spec))
        .expect("litmus run succeeds");
    assert!(
        !out.sanitizer_sc,
        "canary run produced values {:?} but the sanitizer found an SC order — \
         the planted lease-extension bug went undetected",
        out.values,
    );
}

/// Same unsound execution, checked from the outcome side: the probed
/// values themselves show the stale read (flag = 1, data = 0).
#[test]
fn canary_shows_the_forbidden_outcome() {
    let cfg = cfg();
    let spec = ChaosSpec::new(1, ChaosProfile::canary());
    let lit = litmus::message_passing(cfg.num_cores, 1);
    let out = run_litmus_chaos(ProtocolKind::RccSc, &cfg, &lit, Some(&spec))
        .expect("litmus run succeeds");
    assert!(out.forbidden, "values {:?}", out.values);
}

/// Chaos on a real workload: heavy perturbation fires often, yet both
/// the SC scoreboard and the sanitizer stay clean; without a spec the
/// run reports zero chaos events.
#[test]
fn heavy_chaos_on_benchmark_stays_sc() {
    let cfg = cfg();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), 5);
    let mut opts = SimOptions::checked();
    opts.sanitize = true;
    opts.chaos = Some(ChaosSpec::new(3, ChaosProfile::heavy()));
    let m = simulate(ProtocolKind::RccSc, &cfg, &wl, &opts);
    assert!(m.chaos_events > 0, "heavy chaos never fired");
    assert_eq!(m.sc_violations, 0);
    assert_eq!(m.sanitizer_sc, Some(true));

    let baseline = simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::checked());
    assert_eq!(baseline.chaos_events, 0, "unarmed run must not perturb");
}

/// Reproducibility: a chaos seed names one schedule. The same seed
/// replays bit-identically (including the fired-injection count); a
/// different seed produces a different run.
#[test]
fn chaos_seed_names_one_schedule() {
    let cfg = cfg();
    let wl = Benchmark::Hsp.generate(&cfg, &Scale::quick(), 7);
    let run = |seed| {
        let mut o = SimOptions::fast();
        o.chaos = Some(ChaosSpec::new(seed, ChaosProfile::heavy()));
        simulate(ProtocolKind::RccSc, &cfg, &wl, &o)
    };
    let a = run(1);
    let b = run(1);
    let c = run(2);
    assert!(
        a.same_simulated_results(&b),
        "same chaos seed must replay the same run"
    );
    assert_eq!(a.chaos_events, b.chaos_events);
    assert!(
        !a.same_simulated_results(&c),
        "different chaos seeds produced identical runs — injection looks dead"
    );
}

/// IRIW and coRR under every sound profile: write atomicity and
/// per-location coherence are the two SC ingredients the relativistic
/// protocol most directly bends (per-bank logical clocks, leases served
/// from the L1s), so these are the litmus shapes a timing perturbation
/// would crack first. RCC-SC must never show the forbidden outcome and
/// the runtime sanitizer's order graph must stay acyclic on every run.
#[test]
fn iriw_and_corr_hold_under_every_sound_profile() {
    let cfg = cfg();
    for profile in ChaosProfile::sound() {
        for seed in [1, 7, 13] {
            let spec = ChaosSpec::new(seed, profile.clone());
            for make in [
                litmus::iriw as fn(usize, u64) -> litmus::Litmus,
                litmus::corr,
            ] {
                let lit = make(cfg.num_cores, seed);
                let out = run_litmus_chaos(ProtocolKind::RccSc, &cfg, &lit, Some(&spec))
                    .expect("litmus run succeeds");
                assert!(
                    !out.forbidden,
                    "RCC-SC on {} (chaos {} seed {seed}): forbidden outcome {:?}",
                    lit.name, spec.profile.name, out.values,
                );
                assert!(
                    out.sanitizer_sc,
                    "RCC-SC on {} (chaos {} seed {seed}): no SC order explains the run",
                    lit.name, spec.profile.name,
                );
            }
        }
    }
}

/// TC-Weak under chaos: the weakly ordered protocol may show weak
/// outcomes on unfenced tests, but fences and per-location coherence
/// must hold under every sound profile.
#[test]
fn tcw_fences_hold_under_chaos() {
    let cfg = cfg();
    for profile in ChaosProfile::sound() {
        let spec = ChaosSpec::new(13, profile);
        for make in [
            litmus::message_passing_fenced as fn(usize, u64) -> litmus::Litmus,
            litmus::corr,
        ] {
            let lit = make(cfg.num_cores, 13);
            let out = run_litmus_chaos(ProtocolKind::TcWeak, &cfg, &lit, Some(&spec))
                .expect("litmus run succeeds");
            assert!(
                !out.forbidden,
                "TC-Weak on {} (chaos {}): forbidden outcome",
                lit.name, spec.profile.name,
            );
        }
    }
}
