//! The cooperative slice entry points: a run chopped into checkpoint
//! quanta is bit-identical to the uninterrupted run, and a corrupted
//! in-memory snapshot fails typed instead of resuming wrong state.

use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_sim::runner::{resume_slice, try_simulate, try_simulate_slice, SimOptions};
use rcc_sim::{SimError, SliceOutcome};
use rcc_workloads::{Benchmark, Scale};

const SEED: u64 = 7;

fn sliced_metrics(quantum: u64) -> (rcc_sim::RunMetrics, u64) {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), SEED);
    let opts = SimOptions {
        quantum,
        ..SimOptions::fast()
    };
    let mut slices = 0u64;
    let mut out = try_simulate_slice(ProtocolKind::RccSc, &cfg, &wl, &opts).expect("first slice");
    loop {
        slices += 1;
        match out {
            SliceOutcome::Finished(m) => return (*m, slices),
            SliceOutcome::Preempted { ck, progress } => {
                assert_eq!(ck.cycle, progress.cycle, "checkpoint sits at the yield");
                assert!(slices < 1000, "slicing must terminate");
                out = resume_slice(&ck).expect("resume");
            }
        }
    }
}

#[test]
fn slice_chain_is_bit_identical_to_uninterrupted_run() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), SEED);
    let direct =
        try_simulate(ProtocolKind::RccSc, &cfg, &wl, &SimOptions::fast()).expect("direct run");
    let (chained, slices) = sliced_metrics(4_000);
    assert!(slices > 3, "quantum small enough to actually preempt");
    assert_eq!(chained.cycles, direct.cycles);
    assert_eq!(chained.digest(SEED), direct.digest(SEED), "full field set");
}

#[test]
fn zero_quantum_finishes_in_one_slice() {
    let (m, slices) = sliced_metrics(0);
    assert_eq!(slices, 1);
    assert!(m.cycles > 0);
}

#[test]
fn quantum_past_the_run_length_never_yields() {
    let (m, slices) = sliced_metrics(u64::MAX);
    assert_eq!(slices, 1);
    assert!(m.cycles > 0);
}

#[test]
fn corrupted_snapshot_is_a_typed_checkpoint_error() {
    let cfg = GpuConfig::small();
    let wl = Benchmark::Dlb.generate(&cfg, &Scale::quick(), SEED);
    let opts = SimOptions {
        quantum: 4_000,
        ..SimOptions::fast()
    };
    let out = try_simulate_slice(ProtocolKind::RccSc, &cfg, &wl, &opts).expect("first slice");
    let SliceOutcome::Preempted { mut ck, .. } = out else {
        panic!("quantum 4000 must preempt dlb-quick");
    };
    ck.state_digest ^= 1;
    match resume_slice(&ck) {
        Err(SimError::Checkpoint(msg)) => {
            assert!(msg.contains("digest"), "names the mismatch: {msg}")
        }
        other => panic!("corrupted snapshot must fail typed, got {other:?}"),
    }
}
