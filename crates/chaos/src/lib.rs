//! Deterministic perturbation injection ("chaos") for the RCC simulator.
//!
//! RCC enforces sequential consistency in *logical* time, so no amount of
//! physical-time perturbation — NoC congestion, DRAM refresh stalls,
//! variable hit latencies, transient MSHR exhaustion, early lease
//! expiration — may ever produce an SC violation. This crate supplies the
//! adversary for that claim: a seeded, reproducible [`Perturber`] that the
//! timing-bearing crates (`noc`, `dram`, `mem`, `core`, `sim`) consult at
//! well-defined injection [`Site`]s.
//!
//! Design constraints, in order of importance:
//!
//! 1. **Determinism.** Every draw comes from a [`Pcg32`] stream derived
//!    from `(seed, component stream id)`. Sampling is strictly
//!    *event-driven* — a draw happens when a request is serviced, a packet
//!    injected, an MSHR allocated — never per simulated cycle. This is
//!    what makes chaos compose with fast-forwarding: the skipper elides
//!    idle cycles only, so the sequence of events (and hence of rng draws)
//!    is identical with the skipper on or off.
//! 2. **Zero cost when off.** Components hold an
//!    `Option<Box<dyn PerturbPoint>>` that is `None` by default; the hot
//!    path pays one branch.
//! 3. **Soundness by construction.** Sound profiles only *delay* physical
//!    events or *shrink* leases — transformations the protocols must
//!    tolerate. The one deliberately unsound profile ([`canary`]) exists
//!    to prove the sanitizer catches a real protocol hole (an L1 serving
//!    reads from a line whose lease expired, as if a lease extension it
//!    never received had been granted).
//!
//! [`canary`]: ChaosProfile::canary

#![forbid(unsafe_code)]

pub mod service;

use rcc_common::rng::Pcg32;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Well-known injection points. Each site is consulted at most once per
/// *event* (request serviced, packet injected, …), never per cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Site {
    /// Extra cycles added to a NoC packet's traversal latency (applied
    /// before output-port serialization, so per-destination FIFO order —
    /// which the protocols rely on — is preserved; reordering happens
    /// only across (src, dst) pairs, which the mesh legally permits).
    NocTraversal,
    /// Extra cycles a response spends in the L2-partition delay pipe.
    L2Pipe,
    /// Extra cycles added to a DRAM command's issue time (bank/channel
    /// timing stretch).
    DramCommand,
    /// A refresh-like stall: a large fixed delay charged to a DRAM
    /// command when it fires.
    DramRefresh,
    /// Bounce an otherwise-issuable L1 access for one cycle (variable
    /// hit latency seen from the core).
    L1Access,
    /// Transiently report an MSHR file as full (allocate) or a merge
    /// list as saturated (merge).
    MshrSqueeze,
    /// Truncate a granted read lease to a single cycle, forcing early
    /// expiration and renewal pressure.
    LeaseTruncate,
    /// Bump an L2 write/atomic's logical timestamp forward, creating
    /// timestamp-rollover pressure.
    TsBump,
    /// UNSOUND (canary only): let an L1 serve a read from a resident
    /// line whose lease has expired, as if an extension had been granted.
    CanaryStaleHit,
}

/// A perturbation hook. Components call [`jitter`](PerturbPoint::jitter)
/// for sites that yield a delay/amount and [`fires`](PerturbPoint::fires)
/// for yes/no sites. Both mutate rng state, so call them exactly once per
/// event, in a deterministic order.
pub trait PerturbPoint: fmt::Debug + Send {
    /// Extra cycles (or timestamp delta, for [`Site::TsBump`]) to inject
    /// at `site`; 0 when nothing fires.
    fn jitter(&mut self, site: Site) -> u64;

    /// Whether the yes/no perturbation at `site` fires for this event.
    fn fires(&mut self, site: Site) -> bool;

    /// Derives an independent hook for a sub-component (e.g. a
    /// controller handing a hook to its MSHR file). The child is seeded
    /// from this hook's stream *and* `salt`, so siblings are
    /// decorrelated — a plain `clone` would replay identical draws.
    fn fork(&mut self, salt: u64) -> Box<dyn PerturbPoint>;

    /// Clones the hook, preserving rng state (used by `#[derive(Clone)]`
    /// on components; cloned components replay identical perturbations,
    /// which is exactly what snapshot/replay debugging wants).
    fn clone_box(&self) -> Box<dyn PerturbPoint>;
}

impl Clone for Box<dyn PerturbPoint> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// Per-site probabilities and magnitudes. All cycle counts are bounded so
/// perturbed runs terminate within the usual watchdogs.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosProfile {
    pub name: &'static str,
    /// P(extra NoC traversal latency) and its max, in cycles.
    pub noc_jitter_p: f64,
    pub noc_jitter_max: u64,
    /// P(extra L2 delay-pipe latency) and its max, in cycles.
    pub pipe_jitter_p: f64,
    pub pipe_jitter_max: u64,
    /// P(DRAM command timing stretch) and its max, in cycles.
    pub dram_cmd_jitter_p: f64,
    pub dram_cmd_jitter_max: u64,
    /// P(refresh-like stall) and its fixed duration, in cycles.
    pub dram_refresh_p: f64,
    pub dram_refresh_stall: u64,
    /// P(bouncing an issuable L1 access for one cycle).
    pub l1_stall_p: f64,
    /// P(transiently reporting MSHRs exhausted).
    pub mshr_squeeze_p: f64,
    /// P(truncating a granted read lease to 1 cycle).
    pub lease_truncate_p: f64,
    /// P(bumping a write/atomic timestamp) and the max bump.
    pub ts_bump_p: f64,
    pub ts_bump_max: u64,
    /// UNSOUND: serve reads from expired resident lines. Canary only.
    pub canary_stale_hit: bool,
}

impl ChaosProfile {
    /// Mild jitter everywhere: the "realistic bad day" profile.
    pub fn light() -> Self {
        ChaosProfile {
            name: "light",
            noc_jitter_p: 0.05,
            noc_jitter_max: 8,
            pipe_jitter_p: 0.05,
            pipe_jitter_max: 4,
            dram_cmd_jitter_p: 0.05,
            dram_cmd_jitter_max: 16,
            dram_refresh_p: 0.01,
            dram_refresh_stall: 64,
            l1_stall_p: 0.02,
            mshr_squeeze_p: 0.01,
            lease_truncate_p: 0.02,
            ts_bump_p: 0.02,
            ts_bump_max: 256,
            canary_stale_hit: false,
        }
    }

    /// Aggressive delays and resource exhaustion: the "adversarial
    /// scheduler" profile.
    pub fn heavy() -> Self {
        ChaosProfile {
            name: "heavy",
            noc_jitter_p: 0.25,
            noc_jitter_max: 32,
            pipe_jitter_p: 0.20,
            pipe_jitter_max: 16,
            dram_cmd_jitter_p: 0.25,
            dram_cmd_jitter_max: 64,
            dram_refresh_p: 0.05,
            dram_refresh_stall: 200,
            l1_stall_p: 0.10,
            mshr_squeeze_p: 0.10,
            lease_truncate_p: 0.25,
            ts_bump_p: 0.10,
            ts_bump_max: 4096,
            canary_stale_hit: false,
        }
    }

    /// Maximizes cross-flow reordering: large, frequent NoC/pipe jitter,
    /// no resource squeezes — isolates message-arrival-order effects.
    pub fn reorder() -> Self {
        ChaosProfile {
            name: "reorder",
            noc_jitter_p: 0.50,
            noc_jitter_max: 64,
            pipe_jitter_p: 0.40,
            pipe_jitter_max: 32,
            dram_cmd_jitter_p: 0.30,
            dram_cmd_jitter_max: 48,
            dram_refresh_p: 0.0,
            dram_refresh_stall: 0,
            l1_stall_p: 0.0,
            mshr_squeeze_p: 0.0,
            lease_truncate_p: 0.10,
            ts_bump_p: 0.05,
            ts_bump_max: 1024,
            canary_stale_hit: false,
        }
    }

    /// Deliberately UNSOUND: models a lost lease-extension message by
    /// (a) truncating every granted lease to 1 cycle, so lines expire
    /// almost immediately, and (b) letting L1s keep serving reads from
    /// those expired lines as if the extension had arrived. The runtime
    /// SC sanitizer must flag this — it is the proof that the chaos
    /// harness + sanitizer pair actually detects unsound protocols.
    pub fn canary() -> Self {
        ChaosProfile {
            name: "canary",
            lease_truncate_p: 1.0,
            canary_stale_hit: true,
            ..Self::light()
        }
    }

    /// The sound profiles, i.e. every preset an SC protocol must survive.
    pub fn sound() -> Vec<ChaosProfile> {
        vec![Self::light(), Self::heavy(), Self::reorder()]
    }

    /// Looks a profile up by preset name.
    pub fn by_name(name: &str) -> Option<ChaosProfile> {
        match name {
            "light" => Some(Self::light()),
            "heavy" => Some(Self::heavy()),
            "reorder" => Some(Self::reorder()),
            "canary" => Some(Self::canary()),
            _ => None,
        }
    }

    /// True if the profile only delays events / shrinks leases (safe
    /// transformations); false for the canary.
    pub fn is_sound(&self) -> bool {
        !self.canary_stale_hit
    }
}

/// What `--chaos seed=N,profile=P` parses into; carried on
/// `SimOptions::chaos`.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosSpec {
    pub seed: u64,
    pub profile: ChaosProfile,
}

impl ChaosSpec {
    pub fn new(seed: u64, profile: ChaosProfile) -> Self {
        ChaosSpec { seed, profile }
    }

    /// Parses `seed=N,profile=P` (either key may be omitted; defaults
    /// are seed 0 and the `light` profile).
    pub fn parse(s: &str) -> Result<ChaosSpec, String> {
        let mut seed = 0u64;
        let mut profile = ChaosProfile::light();
        for part in s.split(',').filter(|p| !p.is_empty()) {
            match part.split_once('=') {
                Some(("seed", v)) => {
                    seed = v.parse().map_err(|_| format!("--chaos: bad seed {v:?}"))?;
                }
                Some(("profile", v)) => {
                    profile = ChaosProfile::by_name(v).ok_or_else(|| {
                        format!(
                            "--chaos: unknown profile {v:?} \
                             (known: light, heavy, reorder, canary)"
                        )
                    })?;
                }
                _ => {
                    return Err(format!(
                        "--chaos: expected seed=N or profile=P, got {part:?}"
                    ))
                }
            }
        }
        Ok(ChaosSpec { seed, profile })
    }
}

/// Stable per-component rng stream selectors. Keeping these fixed means a
/// given (seed, profile) names one schedule forever, independent of the
/// order in which `sim::System` happens to wire components.
pub mod stream {
    pub const REQ_NET: u64 = 0x11;
    pub const RESP_NET: u64 = 0x12;
    pub const L2_PIPE: u64 = 0x13;
    pub const L1_ACCESS: u64 = 0x14;
    /// Per-partition DRAM channels: `DRAM_BASE + partition`.
    pub const DRAM_BASE: u64 = 0x100;
    /// Per-core L1 controllers: `L1_BASE + core`.
    pub const L1_BASE: u64 = 0x200;
    /// Per-partition L2 banks: `L2_BASE + partition`.
    pub const L2_BASE: u64 = 0x300;
}

/// The standard [`PerturbPoint`]: a profile plus a PCG-32 stream, with a
/// shared counter of fired injections (reported as
/// `RunMetrics::chaos_events`, so determinism tests also pin that both
/// runs injected the *same number* of perturbations).
#[derive(Debug, Clone)]
pub struct Perturber {
    profile: ChaosProfile,
    rng: Pcg32,
    fired: Arc<AtomicU64>,
}

impl Perturber {
    /// A hook for component stream `stream`, counting fired injections
    /// into `fired`.
    pub fn new(spec: &ChaosSpec, stream: u64, fired: Arc<AtomicU64>) -> Self {
        Perturber {
            profile: spec.profile.clone(),
            rng: Pcg32::new(spec.seed, stream),
            fired,
        }
    }

    /// Convenience constructor with a private counter (tests).
    pub fn standalone(spec: &ChaosSpec, stream: u64) -> Self {
        Self::new(spec, stream, Arc::new(AtomicU64::new(0)))
    }

    pub fn profile(&self) -> &ChaosProfile {
        &self.profile
    }

    fn hit(&mut self) {
        self.fired.fetch_add(1, Ordering::Relaxed);
    }

    fn bounded(&mut self, p: f64, max: u64) -> u64 {
        if max == 0 || !self.rng.chance(p) {
            return 0;
        }
        self.hit();
        self.rng.range(1, max + 1)
    }
}

impl PerturbPoint for Perturber {
    fn jitter(&mut self, site: Site) -> u64 {
        let p = self.profile.clone();
        match site {
            Site::NocTraversal => self.bounded(p.noc_jitter_p, p.noc_jitter_max),
            Site::L2Pipe => self.bounded(p.pipe_jitter_p, p.pipe_jitter_max),
            Site::DramCommand => self.bounded(p.dram_cmd_jitter_p, p.dram_cmd_jitter_max),
            Site::DramRefresh => {
                if p.dram_refresh_stall > 0 && self.rng.chance(p.dram_refresh_p) {
                    self.hit();
                    p.dram_refresh_stall
                } else {
                    0
                }
            }
            Site::TsBump => self.bounded(p.ts_bump_p, p.ts_bump_max),
            // Yes/no sites answered through `fires`; a jitter query on
            // them is a wiring bug, but returning 0 keeps it harmless.
            Site::L1Access | Site::MshrSqueeze | Site::LeaseTruncate | Site::CanaryStaleHit => 0,
        }
    }

    fn fires(&mut self, site: Site) -> bool {
        let p = match site {
            Site::L1Access => self.profile.l1_stall_p,
            Site::MshrSqueeze => self.profile.mshr_squeeze_p,
            Site::LeaseTruncate => self.profile.lease_truncate_p,
            Site::CanaryStaleHit => {
                if !self.profile.canary_stale_hit {
                    return false;
                }
                self.hit();
                return true;
            }
            // Delay sites answered through `jitter`.
            _ => return false,
        };
        if self.rng.chance(p) {
            self.hit();
            true
        } else {
            false
        }
    }

    fn fork(&mut self, salt: u64) -> Box<dyn PerturbPoint> {
        // Reseed from this stream's output so the child is decorrelated
        // from the parent *and* from siblings forked with other salts.
        let seed = self.rng.next_u64();
        Box::new(Perturber {
            profile: self.profile.clone(),
            rng: Pcg32::new(seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15), salt),
            fired: Arc::clone(&self.fired),
        })
    }

    fn clone_box(&self) -> Box<dyn PerturbPoint> {
        Box::new(self.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec(seed: u64, profile: ChaosProfile) -> ChaosSpec {
        ChaosSpec { seed, profile }
    }

    #[test]
    fn parse_accepts_both_keys_any_order() {
        let s = ChaosSpec::parse("seed=42,profile=heavy").unwrap();
        assert_eq!(s.seed, 42);
        assert_eq!(s.profile.name, "heavy");
        let s = ChaosSpec::parse("profile=reorder,seed=7").unwrap();
        assert_eq!(s.seed, 7);
        assert_eq!(s.profile.name, "reorder");
    }

    #[test]
    fn parse_defaults_and_errors() {
        let s = ChaosSpec::parse("seed=3").unwrap();
        assert_eq!((s.seed, s.profile.name), (3, "light"));
        let s = ChaosSpec::parse("profile=canary").unwrap();
        assert_eq!((s.seed, s.profile.name), (0, "canary"));
        assert!(ChaosSpec::parse("profile=nope").is_err());
        assert!(ChaosSpec::parse("seed=x").is_err());
        assert!(ChaosSpec::parse("bogus").is_err());
    }

    #[test]
    fn sound_presets_are_sound_and_canary_is_not() {
        for p in ChaosProfile::sound() {
            assert!(p.is_sound(), "{} must be sound", p.name);
            assert!(ChaosProfile::by_name(p.name).is_some());
        }
        assert!(!ChaosProfile::canary().is_sound());
        assert_eq!(ChaosProfile::canary().lease_truncate_p, 1.0);
    }

    #[test]
    fn same_seed_same_draws() {
        let sp = spec(9, ChaosProfile::heavy());
        let mut a = Perturber::standalone(&sp, stream::REQ_NET);
        let mut b = Perturber::standalone(&sp, stream::REQ_NET);
        for _ in 0..256 {
            assert_eq!(a.jitter(Site::NocTraversal), b.jitter(Site::NocTraversal));
            assert_eq!(a.fires(Site::MshrSqueeze), b.fires(Site::MshrSqueeze));
        }
    }

    #[test]
    fn streams_are_decorrelated() {
        let sp = spec(9, ChaosProfile::heavy());
        let mut a = Perturber::standalone(&sp, stream::REQ_NET);
        let mut b = Perturber::standalone(&sp, stream::RESP_NET);
        let same = (0..64)
            .filter(|_| a.jitter(Site::NocTraversal) == b.jitter(Site::NocTraversal))
            .count();
        assert!(same < 60, "streams look identical ({same}/64 equal)");
    }

    #[test]
    fn jitter_is_bounded() {
        let sp = spec(1, ChaosProfile::heavy());
        let mut p = Perturber::standalone(&sp, 1);
        for _ in 0..1000 {
            assert!(p.jitter(Site::NocTraversal) <= ChaosProfile::heavy().noc_jitter_max);
            assert!(p.jitter(Site::DramCommand) <= ChaosProfile::heavy().dram_cmd_jitter_max);
            let r = p.jitter(Site::DramRefresh);
            assert!(r == 0 || r == ChaosProfile::heavy().dram_refresh_stall);
        }
    }

    #[test]
    fn fork_decorrelates_but_clone_replays() {
        let sp = spec(5, ChaosProfile::heavy());
        let mut parent = Perturber::standalone(&sp, stream::L1_BASE);
        let mut fork_a = parent.fork(1);
        let mut fork_b = parent.fork(2);
        let mut clone = fork_a.clone_box();
        let mut same_ab = 0;
        let mut same_ac = 0;
        for _ in 0..64 {
            let a = fork_a.jitter(Site::NocTraversal);
            let b = fork_b.jitter(Site::NocTraversal);
            let c = clone.jitter(Site::NocTraversal);
            same_ab += usize::from(a == b);
            same_ac += usize::from(a == c);
        }
        assert!(same_ab < 60, "forks correlated ({same_ab}/64)");
        assert_eq!(same_ac, 64, "clone must replay the original");
    }

    #[test]
    fn fired_counter_is_shared_and_counts() {
        let fired = Arc::new(AtomicU64::new(0));
        let sp = spec(3, ChaosProfile::heavy());
        let mut a = Perturber::new(&sp, 1, Arc::clone(&fired));
        let mut b = a.fork(7);
        let mut n = 0u64;
        for _ in 0..500 {
            n += u64::from(a.jitter(Site::NocTraversal) > 0);
            n += u64::from(b.fires(Site::MshrSqueeze));
        }
        assert!(n > 0, "heavy profile must fire sometimes");
        assert_eq!(fired.load(Ordering::Relaxed), n);
    }

    #[test]
    fn canary_always_serves_stale_and_counts() {
        let sp = spec(0, ChaosProfile::canary());
        let mut p = Perturber::standalone(&sp, 1);
        assert!((0..32).all(|_| p.fires(Site::CanaryStaleHit)));
        let sp = spec(0, ChaosProfile::light());
        let mut p = Perturber::standalone(&sp, 1);
        assert!((0..32).all(|_| !p.fires(Site::CanaryStaleHit)));
    }

    #[test]
    fn zero_probability_profile_never_fires() {
        let mut quiet = ChaosProfile::light();
        quiet.noc_jitter_p = 0.0;
        quiet.mshr_squeeze_p = 0.0;
        quiet.dram_refresh_p = 0.0;
        let sp = spec(11, quiet);
        let mut p = Perturber::standalone(&sp, 1);
        for _ in 0..200 {
            assert_eq!(p.jitter(Site::NocTraversal), 0);
            assert_eq!(p.jitter(Site::DramRefresh), 0);
            assert!(!p.fires(Site::MshrSqueeze));
        }
    }
}
