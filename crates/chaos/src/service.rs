//! Service-level fault injection for `rcc-serve`.
//!
//! The simulator-level [`crate::Perturber`] stresses the *protocols*;
//! this module stresses the *service* around them: the write-ahead
//! journal, the artifact store, and the worker pool. Faults are drawn
//! from the same seeded PCG-32 machinery, but with one crucial twist —
//! every draw is a **one-shot generator keyed by the event's identity**
//! (journal record index, job id, attempt number) rather than a shared
//! mutable stream. Worker threads race, so draw *order* is
//! nondeterministic; keying each draw by identity makes the fault plan a
//! pure function of `(seed, event)`, reproducible across process
//! restarts — which is exactly what the kill -9 recovery soak needs.
//!
//! Three fault families:
//!
//! - **Write faults** ([`WriteFault`]) hit journal appends and store
//!   writes: a typed IO error, a torn write (a prefix of the frame hits
//!   the disk), a single-bit flip in flight, or a skipped fsync (the
//!   record rides in the page cache and dies with the process).
//! - **Worker faults** ([`WorkerFault`]) hit slices: a panic at a
//!   seeded point, or a wedge (the slice blocks until the supervisor's
//!   wall-clock watchdog abandons it). Stride rules make specific job
//!   ids crash-loop deterministically, so quarantine paths are testable.
//! - **Kill points** (`kill_at`): absolute journal record indices at
//!   which the process "dies" mid-write — the frame is torn at a seeded
//!   byte offset and every later durable write is dropped, emulating
//!   `kill -9` purely through on-disk state.

use rcc_common::rng::Pcg32;

/// Decorrelation streams for service-level draws (disjoint from the
/// simulator streams in [`crate::stream`]).
pub mod stream {
    /// Journal append faults, keyed by record index.
    pub const JOURNAL: u64 = 0x400;
    /// Store artifact-write faults, keyed by job id.
    pub const STORE: u64 = 0x401;
    /// Probabilistic worker-slice faults, keyed by (job, attempt).
    pub const WORKER: u64 = 0x402;
    /// Torn-write cut points, keyed by record index.
    pub const TORN: u64 = 0x403;
}

/// What happens to one durable write (journal append or store write).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WriteFault {
    /// The write goes through untouched.
    None,
    /// The write fails with a typed IO error; nothing hits the disk.
    IoError,
    /// Only a prefix of the frame hits the disk (torn write). The
    /// writer detects it and must restore the journal invariant.
    TornWrite,
    /// One bit of the frame is flipped in flight; replay must detect
    /// it via the per-record digest and fail closed.
    BitFlip,
    /// The write lands but the fsync is skipped: the record is only in
    /// the page cache and is lost if the process dies before the next
    /// synced append.
    DelayedFsync,
}

/// What happens to one worker slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkerFault {
    /// The slice runs normally.
    None,
    /// The slice panics at a seeded point (caught by the supervisor).
    Panic,
    /// The slice wedges: it blocks until the wall-clock watchdog
    /// abandons the worker.
    Wedge,
}

/// A `(stride, residue)` rule: fires for job ids with
/// `id % stride == residue`. Deterministic across restarts, so the
/// same jobs crash-loop in every recovery phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StrideRule {
    /// Modulus (0 disables the rule).
    pub stride: u64,
    /// Residue class that fires.
    pub residue: u64,
}

impl StrideRule {
    /// A disabled rule.
    pub const OFF: StrideRule = StrideRule {
        stride: 0,
        residue: 0,
    };

    /// True when the rule fires for `id`.
    pub fn hits(&self, id: u64) -> bool {
        self.stride != 0 && id % self.stride == self.residue
    }
}

/// The full service-level fault plan. Everything defaults to off;
/// tests enable exactly the families they exercise.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceFaultSpec {
    /// Seed for every probabilistic draw.
    pub seed: u64,
    /// P(typed IO error) per journal append.
    pub journal_io_error_p: f64,
    /// P(torn write) per journal append.
    pub journal_torn_p: f64,
    /// P(single-bit flip) per journal append.
    pub journal_bitflip_p: f64,
    /// P(skipped fsync) per journal append.
    pub delayed_fsync_p: f64,
    /// P(typed IO error) per store artifact write.
    pub store_io_error_p: f64,
    /// P(panic) per slice, keyed by (job, attempt) — a hit repeats on
    /// replays of the same attempt but not on retries.
    pub slice_panic_p: f64,
    /// Jobs that panic on **every** attempt (crash-loop → quarantine).
    pub panic_jobs: StrideRule,
    /// Jobs that panic on their **first** attempt only (the retry
    /// succeeds, proving backoff recovery).
    pub transient_panic_jobs: StrideRule,
    /// Jobs whose slices wedge on every attempt (watchdog → quarantine).
    pub wedge_jobs: StrideRule,
    /// Absolute journal record indices at which the process "dies"
    /// mid-append (sorted; each fires once).
    pub kill_at: Vec<u64>,
}

impl Default for ServiceFaultSpec {
    fn default() -> Self {
        ServiceFaultSpec {
            seed: 0,
            journal_io_error_p: 0.0,
            journal_torn_p: 0.0,
            journal_bitflip_p: 0.0,
            delayed_fsync_p: 0.0,
            store_io_error_p: 0.0,
            slice_panic_p: 0.0,
            panic_jobs: StrideRule::OFF,
            transient_panic_jobs: StrideRule::OFF,
            wedge_jobs: StrideRule::OFF,
            kill_at: Vec::new(),
        }
    }
}

impl ServiceFaultSpec {
    /// A named IO-fault profile for the chaos suite: occasional typed
    /// IO errors, torn writes, and skipped fsyncs on the durable path.
    pub fn flaky_disk(seed: u64) -> Self {
        ServiceFaultSpec {
            seed,
            journal_io_error_p: 0.02,
            journal_torn_p: 0.01,
            delayed_fsync_p: 0.05,
            store_io_error_p: 0.02,
            ..ServiceFaultSpec::default()
        }
    }

    /// A named worker-fault profile: seeded panics plus one
    /// deterministic crash-looping residue class.
    pub fn flaky_workers(seed: u64) -> Self {
        ServiceFaultSpec {
            seed,
            slice_panic_p: 0.02,
            panic_jobs: StrideRule {
                stride: 37,
                residue: 5,
            },
            transient_panic_jobs: StrideRule {
                stride: 23,
                residue: 7,
            },
            ..ServiceFaultSpec::default()
        }
    }
}

/// The seeded injector the service consults. All methods take `&self`
/// and are pure functions of `(spec, event identity)`: safe to share
/// across worker threads behind an `Arc` with no lock, and the plan
/// replays identically after a process restart.
#[derive(Debug, Clone)]
pub struct ServiceInjector {
    spec: ServiceFaultSpec,
}

/// One-shot generator for an identity-keyed draw: the stream encodes
/// the site, the key perturbs the seed through a splitmix-style mix so
/// neighboring keys decorrelate.
fn one_shot(seed: u64, stream: u64, key: u64) -> Pcg32 {
    let mut z = key.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    Pcg32::new(seed ^ (z ^ (z >> 31)), stream)
}

impl ServiceInjector {
    /// Wraps a fault plan.
    pub fn new(spec: ServiceFaultSpec) -> Self {
        ServiceInjector { spec }
    }

    /// The plan this injector draws from.
    pub fn spec(&self) -> &ServiceFaultSpec {
        &self.spec
    }

    /// True when appending record `index` is a kill point.
    pub fn kill_at(&self, index: u64) -> bool {
        self.spec.kill_at.contains(&index)
    }

    /// The fault (if any) for journal record `index`. Kill points are
    /// handled separately via [`ServiceInjector::kill_at`].
    pub fn journal_fault(&self, index: u64) -> WriteFault {
        let mut rng = one_shot(self.spec.seed, stream::JOURNAL, index);
        if rng.chance(self.spec.journal_io_error_p) {
            return WriteFault::IoError;
        }
        if rng.chance(self.spec.journal_torn_p) {
            return WriteFault::TornWrite;
        }
        if rng.chance(self.spec.journal_bitflip_p) {
            return WriteFault::BitFlip;
        }
        if rng.chance(self.spec.delayed_fsync_p) {
            return WriteFault::DelayedFsync;
        }
        WriteFault::None
    }

    /// Where to cut a torn frame of `len` bytes: a seeded offset in
    /// `[1, len)` (at least one byte lands, the record never completes).
    pub fn torn_cut(&self, index: u64, len: usize) -> usize {
        if len <= 1 {
            return len;
        }
        let mut rng = one_shot(self.spec.seed, stream::TORN, index);
        rng.range(1, len as u64) as usize
    }

    /// True when job `id`'s artifact write fails with an IO error.
    pub fn store_fault(&self, id: u64) -> bool {
        let mut rng = one_shot(self.spec.seed, stream::STORE, id);
        rng.chance(self.spec.store_io_error_p)
    }

    /// The worker fault (if any) for a slice of job `id` on 0-based
    /// retry `attempt`.
    pub fn worker_fault(&self, id: u64, attempt: u32) -> WorkerFault {
        if self.spec.wedge_jobs.hits(id) {
            return WorkerFault::Wedge;
        }
        if self.spec.panic_jobs.hits(id) {
            return WorkerFault::Panic;
        }
        if attempt == 0 && self.spec.transient_panic_jobs.hits(id) {
            return WorkerFault::Panic;
        }
        let key = (id << 8) ^ attempt as u64;
        let mut rng = one_shot(self.spec.seed, stream::WORKER, key);
        if rng.chance(self.spec.slice_panic_p) {
            return WorkerFault::Panic;
        }
        WorkerFault::None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_identity_keyed_and_stable() {
        let a = ServiceInjector::new(ServiceFaultSpec::flaky_disk(42));
        let b = ServiceInjector::new(ServiceFaultSpec::flaky_disk(42));
        for i in 0..500 {
            assert_eq!(a.journal_fault(i), b.journal_fault(i), "record {i}");
            assert_eq!(a.store_fault(i), b.store_fault(i), "job {i}");
        }
    }

    #[test]
    fn seeds_decorrelate() {
        let a = ServiceInjector::new(ServiceFaultSpec::flaky_disk(1));
        let b = ServiceInjector::new(ServiceFaultSpec::flaky_disk(2));
        let same = (0..2000)
            .filter(|&i| a.journal_fault(i) == b.journal_fault(i))
            .count();
        assert!(same < 2000, "different seeds must produce different plans");
    }

    #[test]
    fn flaky_disk_actually_fires() {
        let inj = ServiceInjector::new(ServiceFaultSpec::flaky_disk(7));
        let fired = (0..2000)
            .filter(|&i| inj.journal_fault(i) != WriteFault::None)
            .count();
        assert!(fired > 50, "profile too quiet: {fired} faults in 2000");
    }

    #[test]
    fn stride_rules_are_deterministic() {
        let inj = ServiceInjector::new(ServiceFaultSpec::flaky_workers(3));
        assert_eq!(inj.worker_fault(5, 0), WorkerFault::Panic);
        assert_eq!(inj.worker_fault(5, 3), WorkerFault::Panic, "every attempt");
        assert_eq!(inj.worker_fault(7, 0), WorkerFault::Panic, "transient");
        // Job 7 (residue 7 mod 23) recovers on retry unless the
        // probabilistic draw also fires; with p=0.02 pick a seed where
        // it does not.
        assert_eq!(inj.worker_fault(7, 1), WorkerFault::None);
    }

    #[test]
    fn torn_cut_is_a_strict_prefix() {
        let inj = ServiceInjector::new(ServiceFaultSpec::flaky_disk(11));
        for i in 0..100 {
            let cut = inj.torn_cut(i, 64);
            assert!((1..64).contains(&cut), "cut {cut} must tear the frame");
        }
    }

    #[test]
    fn kill_points_fire_exactly_at_their_index() {
        let spec = ServiceFaultSpec {
            kill_at: vec![3, 17],
            ..ServiceFaultSpec::default()
        };
        let inj = ServiceInjector::new(spec);
        assert!(inj.kill_at(3) && inj.kill_at(17));
        assert!(!inj.kill_at(4) && !inj.kill_at(0));
    }
}
