//! The crash-recovery soak: "kill -9" the live service at seeded
//! journal-record indices across a 300-job run, restart it from the
//! journal alone, and assert the durability contract:
//!
//! - every accepted job reaches a terminal state **exactly once**
//!   across the whole killed-and-restarted history (the final journal
//!   carries exactly one terminal record per job),
//! - every finished job's summary is **byte-identical** to a direct
//!   `try_simulate` of the same canonical spec — preemption, crashes,
//!   and restarts are invisible in the results,
//! - resubmits with the same `dedup_key` are idempotent across
//!   restarts (same id back, nothing double-run),
//! - a graceful drain journals every in-flight checkpoint, writes the
//!   manifest, and closes the journal with a `Drained` marker.
//!
//! The kill switch lives in the durable layer ([`rcc_chaos::service`]):
//! at the seeded record index the journal writes a torn prefix of the
//! frame and every later durable write is silently dropped, so recovery
//! can only rely on what a real `kill -9` would have left on disk.

use rcc_chaos::service::{ServiceFaultSpec, StrideRule};
use rcc_serve::journal::{replay_bytes, Record};
use rcc_serve::spec::JobSpec;
use rcc_serve::store::{JobError, JobState, ResultSummary};
use rcc_serve::{Server, ServerConfig, Submission};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

const JOBS: usize = 300;
const SEED: u64 = 0x0dd5_eed5;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcc-recovery-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir
}

/// The 300-job soak mix: litmus-heavy (cheap), every protocol, a few
/// deliberate deadlocks, all four priorities, every job dedup-keyed.
fn soak_spec(i: usize) -> String {
    const PROTOCOLS: &[&str] = &["mesi", "mesi-wb", "tcs", "tcw", "rcc", "rcc-wo", "ideal"];
    const LITMUS: &[&str] = &[
        "mp", "mp+fence", "sb", "sb+fence", "lb", "wrc", "corr", "iriw",
    ];
    let protocol = PROTOCOLS[i % PROTOCOLS.len()];
    let priority = i % 4;
    let workload = if i % 29 == 7 {
        // Deliberate deadlocks: typed failures must also be exactly-once.
        r#"{"kind": "hang"}"#.to_string()
    } else {
        format!(
            r#"{{"kind": "litmus", "name": "{}", "seed": {}}}"#,
            LITMUS[i % LITMUS.len()],
            3 + (i / 97) as u64
        )
    };
    format!(
        r#"{{"version": 1, "protocol": "{protocol}", "workload": {workload}, "options": {{"priority": {priority}}}, "dedup_key": "soak-{i}"}}"#
    )
}

/// What a direct run of a canonical spec produces: the summary bytes,
/// or the typed error kind.
fn direct_twin(canonical: &str) -> Result<String, &'static str> {
    let spec = JobSpec::parse(canonical).expect("canonical spec re-validates");
    let (kind, cfg, wl, opts) = spec.inputs();
    match rcc_sim::try_simulate(kind, &cfg, &wl, &opts) {
        Ok(m) => Ok(ResultSummary::from_metrics(&m).to_json()),
        Err(e) => Err(JobError::from_sim(&e).kind),
    }
}

fn base_config(dir: &Path) -> ServerConfig {
    ServerConfig {
        workers: 3,
        quantum: 3_000,
        results_dir: Some(dir.join("results")),
        journal: Some(dir.join("soak.rccj")),
        // The kill switch emulates the dead process; data integrity
        // comes from the codec, so skipping fsync just speeds the soak.
        fsync: false,
        ..ServerConfig::default()
    }
}

#[test]
fn kill9_soak_300_jobs_exactly_once_and_byte_identical() {
    let dir = temp_dir("soak");
    let journal_path = dir.join("soak.rccj");
    let specs: Vec<String> = (0..JOBS).map(soak_spec).collect();

    let mut kills = 0usize;
    let mut phases = 0usize;
    loop {
        phases += 1;
        assert!(phases <= 200, "soak did not converge");
        // Seed the next kill ~80 records past what is durable now, so
        // every phase dies mid-run until the work is done.
        let durable_records = std::fs::read(&journal_path)
            .map(|b| replay_bytes(&b).expect("journal replays").records)
            .unwrap_or_default();
        let durable = durable_records.len();
        // Submits are journaled in id order, so the durable ones are
        // exactly ids 0..durable_submits.
        let durable_submits = durable_records
            .iter()
            .filter(|r| matches!(r, Record::Submitted { .. }))
            .count();
        let mut cfg = base_config(&dir);
        cfg.backoff_ms = 1;
        cfg.faults = Some(ServiceFaultSpec {
            seed: SEED + phases as u64,
            kill_at: vec![durable as u64 + 80],
            // Ids 13, 114, 215 panic on every attempt (crash-loop →
            // quarantine, persisting across kills via Started records);
            // ids 11, 108, 205 panic once and recover on retry.
            panic_jobs: StrideRule {
                stride: 101,
                residue: 13,
            },
            transient_panic_jobs: StrideRule {
                stride: 97,
                residue: 11,
            },
            ..ServiceFaultSpec::default()
        });
        let server = Server::start(cfg).expect("recovery from journal succeeds");

        // Idempotent (re)submission of the whole batch, every phase.
        for (i, text) in specs.iter().enumerate() {
            match server.submit_json(text) {
                Submission::Accepted { id, duplicate } => {
                    assert_eq!(id, i as u64, "dedup key maps back to the original id");
                    // A job whose Submitted record survived the last kill
                    // MUST come back as a duplicate; one whose record the
                    // kill swallowed is legitimately admitted fresh (and
                    // gets the same dense id, since we resubmit in order).
                    assert_eq!(
                        duplicate,
                        i < durable_submits,
                        "job {i}: durable_submits={durable_submits}"
                    );
                }
                other => panic!("job {i} not accepted: {other:?}"),
            }
        }
        // Invalid specs ride along every phase: typed rejection before
        // anything touches the queue or the journal.
        match server.submit_json("{not json at all") {
            Submission::Rejected { kind, .. } => assert_eq!(kind, "schema"),
            other => panic!("garbage accepted: {other:?}"),
        }
        match server.submit_json(
            r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "bench", "name": "doom"}}"#,
        ) {
            Submission::Rejected { kind, .. } => assert_eq!(kind, "workload"),
            other => panic!("unknown bench accepted: {other:?}"),
        }

        // Run until the kill point fires or the batch drains.
        let deadline = Instant::now() + Duration::from_secs(120);
        let killed = loop {
            assert!(Instant::now() < deadline, "phase {phases} wedged");
            if server.stats().killed {
                break true;
            }
            let c = server.counts();
            if c.queued + c.running == 0 {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        server.request_shutdown();
        let _ = server.shutdown();
        if killed {
            kills += 1;
        } else {
            break;
        }
    }
    assert!(
        kills >= 8,
        "soak must die at least 8 times to mean anything (died {kills} across {phases} phases)"
    );

    // The final process exited cleanly: drain one more server to get
    // the clean manifest + Drained marker.
    let server = Server::start(base_config(&dir)).expect("final recovery");
    server.wait_idle();
    server.shutdown().expect("graceful drain");

    // --- Exactly-once, from the journal alone. ---
    let bytes = std::fs::read(&journal_path).expect("journal exists");
    let replay = replay_bytes(&bytes).expect("final journal replays clean");
    let mut terminal_per_job: HashMap<u64, usize> = HashMap::new();
    for rec in &replay.records {
        if rec.is_terminal() {
            *terminal_per_job.entry(rec.job_id().unwrap()).or_insert(0) += 1;
        }
    }
    assert_eq!(
        terminal_per_job.len(),
        JOBS,
        "every job reached a terminal state"
    );
    for (id, n) in &terminal_per_job {
        assert_eq!(*n, 1, "job {id} must be terminal exactly once, saw {n}");
    }
    assert_eq!(
        replay
            .records
            .iter()
            .filter(|r| matches!(r, Record::Submitted { .. }))
            .count(),
        JOBS,
        "dedup admitted each job exactly once across every resubmission"
    );
    assert!(
        matches!(replay.records.last(), Some(Record::Drained)),
        "clean shutdown closes the journal with a Drained marker"
    );

    // --- Byte-identity against direct simulation. ---
    let mut twins: HashMap<String, Result<String, &'static str>> = HashMap::new();
    let server = Server::start(base_config(&dir)).expect("replay for verification");
    let mut preempted = 0usize;
    for i in 0..JOBS {
        let rec = server.status(i as u64).expect("job recovered");
        assert!(rec.state.terminal());
        if i % 101 == 13 {
            // Crash-looping jobs quarantine with their forensics, and
            // the attempt count survives the kills via Started records.
            assert_eq!(rec.state, JobState::Quarantined, "job {i}");
            assert_eq!(rec.attempts, 3, "job {i}");
            let err = rec.error.expect("quarantined job carries its error");
            assert_eq!(err.kind, "panic");
            assert!(err.detail.contains("injected worker panic"), "{err:?}");
            continue;
        }
        if i % 97 == 11 {
            assert!(rec.attempts >= 1, "job {i} recovered from its panic");
        }
        if rec.preemptions > 0 {
            preempted += 1;
        }
        let twin = twins
            .entry(rec.spec_json.clone())
            .or_insert_with(|| direct_twin(&rec.spec_json));
        match (rec.state, &*twin) {
            (JobState::Done, Ok(expect)) => {
                let got = rec.summary.expect("done has summary").to_json();
                assert_eq!(&got, expect, "job {i} diverged across kills");
            }
            (JobState::Failed, Err(kind)) => {
                assert_eq!(rec.error.expect("failed has error").kind, *kind, "job {i}");
            }
            (state, twin) => panic!("job {i}: state {state:?} vs twin {twin:?}"),
        }
        // The artifact a crash swallowed was re-persisted on recovery.
        let artifact = dir.join("results").join(format!("job-{i}.json"));
        assert!(artifact.exists(), "job {i} artifact missing after recovery");
    }
    assert!(
        preempted > 0,
        "quantum too large: nothing exercised resume-from-checkpoint"
    );
    let _ = server.shutdown();
    assert!(dir.join("results").join("manifest.json").exists());
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn dedup_key_is_idempotent_across_restart_and_conflicts_are_typed() {
    let dir = temp_dir("dedup");
    let cfg = || ServerConfig {
        workers: 1,
        journal: Some(dir.join("dedup.rccj")),
        fsync: false,
        ..ServerConfig::default()
    };
    let spec = r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "litmus", "name": "mp", "seed": 3}, "dedup_key": "the-one"}"#;
    let server = Server::start(cfg()).expect("start");
    let id = match server.submit_json(spec) {
        Submission::Accepted { id, duplicate } => {
            assert!(!duplicate);
            id
        }
        other => panic!("{other:?}"),
    };
    // Same key, same spec, same server: duplicate, same id.
    assert_eq!(
        server.submit_json(spec),
        Submission::Accepted {
            id,
            duplicate: true
        }
    );
    server.wait_idle();
    let summary = server.wait(id).unwrap().summary.expect("done").to_json();
    server.shutdown().expect("drain");

    // Across a restart the key still resolves — without re-running.
    let server = Server::start(cfg()).expect("recovery");
    assert_eq!(
        server.submit_json(spec),
        Submission::Accepted {
            id,
            duplicate: true
        }
    );
    let rec = server.status(id).unwrap();
    assert_eq!(rec.state, JobState::Done);
    assert_eq!(
        rec.summary.unwrap().to_json(),
        summary,
        "recovered result is the original"
    );
    // Same key with a different spec: typed conflict, nothing queued.
    let conflicting = spec.replace("\"seed\": 3", "\"seed\": 11");
    match server.submit_json(&conflicting) {
        Submission::Rejected { kind, .. } => assert_eq!(kind, "dedup"),
        other => panic!("conflicting spec not rejected: {other:?}"),
    }
    assert_eq!(server.counts().total(), 1);
    server.shutdown().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn graceful_drain_parks_inflight_work_on_journaled_checkpoints() {
    let dir = temp_dir("drain");
    let cfg = || ServerConfig {
        workers: 2,
        quantum: 2_000,
        journal: Some(dir.join("drain.rccj")),
        fsync: false,
        ..ServerConfig::default()
    };
    let server = Server::start(cfg()).expect("start");
    for i in 0..6 {
        let spec = format!(
            r#"{{"version": 1, "protocol": "rcc", "workload": {{"kind": "bench", "name": "dlb", "scale": "quick", "seed": 3}}, "options": {{"priority": {}}}, "dedup_key": "drain-{i}"}}"#,
            i % 4
        );
        assert!(matches!(
            server.submit_json(&spec),
            Submission::Accepted { .. }
        ));
    }
    // Drain immediately: whatever was mid-quantum parks at its next
    // checkpoint and the journal carries it.
    server.shutdown().expect("drain");
    let replay = replay_bytes(&std::fs::read(dir.join("drain.rccj")).unwrap()).unwrap();
    assert!(matches!(replay.records.last(), Some(Record::Drained)));

    // Restart: the batch finishes from journaled state, bit-identical.
    let server = Server::start(cfg()).expect("recovery");
    server.wait_idle();
    let mut twins: HashMap<String, Result<String, &'static str>> = HashMap::new();
    for i in 0..6u64 {
        let rec = server.wait(i).unwrap();
        assert_eq!(rec.state, JobState::Done, "job {i}: {:?}", rec.error);
        let twin = twins
            .entry(rec.spec_json.clone())
            .or_insert_with(|| direct_twin(&rec.spec_json));
        assert_eq!(&rec.summary.unwrap().to_json(), twin.as_ref().unwrap());
    }
    server.shutdown().expect("drain");
    let _ = std::fs::remove_dir_all(&dir);
}
