//! Property coverage for the priority-aged FIFO scheduler: no
//! starvation past the computable bound, FIFO dispatch within a
//! priority class, and a deterministic schedule for a fixed operation
//! sequence. The scheduler is pure, so these run over raw operation
//! streams with no threads involved.

use proptest::prelude::*;
use rcc_serve::queue::{Sched, CLASSES};

/// One scheduler interaction drawn by the generator.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Op {
    /// Admit a new entry at this class.
    Push(u8),
    /// Dispatch, and with probability ~1/4 requeue the dispatched
    /// entry (simulating a quantum preemption).
    PopAndMaybeRequeue(bool),
}

fn arb_ops() -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        prop_oneof![
            (0u8..CLASSES).prop_map(Op::Push),
            any::<bool>().prop_map(Op::PopAndMaybeRequeue),
        ],
        1..200,
    )
}

/// Replays an op stream, returning the dispatch order as
/// `(token, class)` pairs and tracking per-token wait counts.
fn replay(aging: u64, ops: &[Op]) -> Vec<(u64, u8)> {
    let mut s = Sched::new(aging);
    let mut class_of: Vec<(u64, u8)> = Vec::new();
    let mut order = Vec::new();
    for op in ops {
        match op {
            Op::Push(class) => {
                let tok = s.push(*class);
                class_of.push((tok, *class));
            }
            Op::PopAndMaybeRequeue(requeue) => {
                if let Some(tok) = s.pop() {
                    let class = class_of
                        .iter()
                        .find(|(t, _)| *t == tok)
                        .expect("dispatched token was admitted")
                        .1;
                    order.push((tok, class));
                    if *requeue {
                        let t2 = s.requeue(class);
                        class_of.push((t2, class));
                    }
                }
            }
        }
    }
    order
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Within one class, tokens dispatch in admission order (tokens are
    /// monotone in admission order, requeues included, so the dispatch
    /// sequence restricted to any class must be increasing).
    #[test]
    fn fifo_within_each_class(ops in arb_ops(), aging in 1u64..6) {
        let order = replay(aging, &ops);
        for class in 0..CLASSES {
            let toks: Vec<u64> = order
                .iter()
                .filter(|(_, c)| *c == class)
                .map(|(t, _)| *t)
                .collect();
            for w in toks.windows(2) {
                prop_assert!(w[0] < w[1], "class {class} dispatched out of order: {toks:?}");
            }
        }
    }

    /// No starvation: every entry waiting in the queue is dispatched
    /// within `starvation_bound(queue_len_at_admission)` dispatches of
    /// being admitted, no matter what arrives after it.
    #[test]
    fn every_entry_dispatches_within_the_bound(ops in arb_ops(), aging in 1u64..6) {
        let mut s = Sched::new(aging);
        // token -> (dispatches remaining before violation)
        let mut deadline: Vec<(u64, u64)> = Vec::new();
        for op in &ops {
            match op {
                Op::Push(class) => {
                    let bound = s.starvation_bound(s.len());
                    let tok = s.push(*class);
                    deadline.push((tok, bound));
                }
                Op::PopAndMaybeRequeue(requeue) => {
                    let Some(tok) = s.pop() else { continue };
                    deadline.retain(|(t, _)| *t != tok);
                    for (t, left) in &mut deadline {
                        prop_assert!(*left > 0, "token {t} starved past its bound");
                        *left -= 1;
                    }
                    if *requeue {
                        let bound = s.starvation_bound(s.len());
                        let t2 = s.requeue(CLASSES - 1);
                        deadline.push((t2, bound));
                    }
                }
            }
        }
    }

    /// The schedule is a pure function of the operation sequence.
    #[test]
    fn fixed_sequence_fixed_schedule(ops in arb_ops(), aging in 1u64..6) {
        prop_assert_eq!(replay(aging, &ops), replay(aging, &ops));
    }

    /// Class 0 always beats a fresh (unaged) entry of a lower class.
    #[test]
    fn urgent_beats_fresh_background(bg in 1u8..CLASSES) {
        let mut s = Sched::new(4);
        let slow = s.push(bg);
        let fast = s.push(0);
        prop_assert_eq!(s.pop(), Some(fast));
        prop_assert_eq!(s.pop(), Some(slow));
    }
}
