//! Preemption fidelity: a long job chopped into many checkpoint quanta
//! must be indistinguishable — in its persisted result — from the same
//! spec run uninterrupted, and a corrupted mid-quantum snapshot must
//! fail that job typed, without wedging the worker that hits it.

use rcc_serve::spec::JobSpec;
use rcc_serve::store::{JobState, ResultSummary};
use rcc_serve::{Server, ServerConfig, Submission};

const LONG_JOB: &str = r#"{"version": 1, "protocol": "rcc",
    "workload": {"kind": "bench", "name": "hsp", "scale": "standard", "seed": 7},
    "options": {"sample_every": 4096}}"#;

const SHORT_JOB: &str = r#"{"version": 1, "protocol": "rcc",
    "workload": {"kind": "litmus", "name": "mp", "seed": 3}}"#;

fn submit(server: &Server, spec: &str) -> u64 {
    match server.submit_json(spec) {
        Submission::Accepted { id, .. } => id,
        other => panic!("not accepted: {other:?}"),
    }
}

/// The acceptance-criteria test: N-times-preempted long run ==
/// uninterrupted run, byte for byte and digest for digest.
#[test]
fn preempted_long_job_matches_uninterrupted_twin() {
    let server = Server::start(ServerConfig {
        workers: 1,
        quantum: 20_000,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let long = submit(&server, LONG_JOB);
    // Short jobs behind it in the queue force real interleaving: every
    // time the long job parks, a short one runs on the same worker.
    let shorts: Vec<u64> = (0..4).map(|_| submit(&server, SHORT_JOB)).collect();

    let rec = server.wait(long).expect("job exists");
    assert_eq!(rec.state, JobState::Done, "error: {:?}", rec.error);
    assert!(
        rec.preemptions >= 3,
        "hsp-standard (~150k cycles) under a 20k quantum must park repeatedly, got {}",
        rec.preemptions
    );
    assert_eq!(rec.slices, rec.preemptions + 1);

    // Progress events are monotone in cycle and sourced from the
    // sampler the spec armed.
    let events = server.progress(long).expect("job exists");
    assert_eq!(events.len() as u64, rec.preemptions);
    for pair in events.windows(2) {
        assert!(pair[0].cycle < pair[1].cycle, "progress is monotone");
    }
    assert!(
        events.last().expect("nonempty").samples > 0,
        "sample_every was set, so the sampler fed the progress stream"
    );

    // The direct twin: same resolved inputs, plain driver call.
    let spec = JobSpec::parse(LONG_JOB).expect("valid spec");
    let (kind, cfg, wl, opts) = spec.inputs();
    let direct = rcc_sim::try_simulate(kind, &cfg, &wl, &opts).expect("direct run");
    let twin = ResultSummary::from_metrics(&direct);
    let got = rec.summary.expect("done job has a summary");
    assert_eq!(
        got.to_json(),
        twin.to_json(),
        "preempted result must be byte-identical to the uninterrupted twin"
    );
    assert_eq!(got.metrics_digest, twin.metrics_digest);

    for id in shorts {
        let rec = server.wait(id).expect("job exists");
        assert_eq!(rec.state, JobState::Done);
    }
    server.shutdown().expect("clean shutdown");
}

/// A corrupted mid-quantum snapshot fails the job with a typed
/// `checkpoint` error; the worker survives and keeps serving.
#[test]
fn corrupted_snapshot_fails_typed_and_worker_survives() {
    let server = Server::start(ServerConfig {
        workers: 1,
        quantum: 20_000,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let victim = submit(&server, LONG_JOB);
    assert!(
        server.corrupt_checkpoint(victim),
        "job must still be live when the fault is injected"
    );
    let rec = server.wait(victim).expect("job exists");
    assert_eq!(rec.state, JobState::Failed);
    let err = rec.error.expect("failed job carries its error");
    assert_eq!(err.kind, "checkpoint");
    assert!(err.detail.contains("digest"), "names the mismatch: {err:?}");

    // Same worker, next job: alive and correct.
    let after = submit(&server, SHORT_JOB);
    let rec = server.wait(after).expect("job exists");
    assert_eq!(rec.state, JobState::Done, "worker survived the corruption");
    server.shutdown().expect("clean shutdown");
}

/// Preemption with persistence: the artifact on disk for a preempted
/// job validates against the schema and embeds the identical summary.
#[test]
fn preempted_artifact_persists_and_validates() {
    let dir = std::path::Path::new(env!("CARGO_TARGET_TMPDIR")).join("preempt-store");
    let _ = std::fs::remove_dir_all(&dir);
    let server = Server::start(ServerConfig {
        workers: 1,
        quantum: 20_000,
        results_dir: Some(dir.clone()),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let id = submit(&server, LONG_JOB);
    let rec = server.wait(id).expect("job exists");
    assert_eq!(rec.state, JobState::Done);
    server.shutdown().expect("clean shutdown");

    let artifact = std::fs::read_to_string(dir.join(format!("job-{id}.json"))).expect("artifact");
    rcc_bench::report::check_schema(
        "persisted job",
        rcc_bench::report::schemas::JOB_RESULT,
        &artifact,
    )
    .expect("artifact validates");
    let summary = rec.summary.expect("summary");
    assert!(
        artifact.contains(&format!("{:016x}", summary.metrics_digest)),
        "artifact embeds the metrics digest"
    );
    let manifest = std::fs::read_to_string(dir.join("manifest.json")).expect("manifest");
    rcc_bench::report::check_schema(
        "manifest",
        rcc_bench::report::schemas::JOB_MANIFEST,
        &manifest,
    )
    .expect("manifest validates");
}
