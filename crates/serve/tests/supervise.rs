//! Worker supervision under injected faults: crash-looping jobs are
//! quarantined typed, transient panics recover on a retry with a
//! byte-identical result, wedged workers are abandoned by the wall-clock
//! watchdog and replaced, and a full queue answers with typed overload
//! and priority-shedding replies instead of blocking or dropping work.

use rcc_chaos::service::{ServiceFaultSpec, StrideRule};
use rcc_serve::spec::JobSpec;
use rcc_serve::store::{JobError, JobState, ResultSummary};
use rcc_serve::{Server, ServerConfig, Submission};
use std::collections::HashMap;
use std::time::{Duration, Instant};

fn litmus_spec(i: usize) -> String {
    const LITMUS: &[&str] = &["mp", "sb", "lb", "wrc", "corr"];
    format!(
        r#"{{"version": 1, "protocol": "rcc", "workload": {{"kind": "litmus", "name": "{}", "seed": 3}}}}"#,
        LITMUS[i % LITMUS.len()]
    )
}

fn submit(server: &Server, spec: &str) -> u64 {
    match server.submit_json(spec) {
        Submission::Accepted { id, .. } => id,
        other => panic!("not accepted: {other:?}"),
    }
}

fn direct_twin(canonical: &str) -> Result<String, &'static str> {
    let spec = JobSpec::parse(canonical).expect("canonical spec re-validates");
    let (kind, cfg, wl, opts) = spec.inputs();
    match rcc_sim::try_simulate(kind, &cfg, &wl, &opts) {
        Ok(m) => Ok(ResultSummary::from_metrics(&m).to_json()),
        Err(e) => Err(JobError::from_sim(&e).kind),
    }
}

/// Jobs that panic on every attempt exhaust `max_attempts` and land in
/// quarantine with the typed `panic` error and the last panic payload;
/// their neighbors on the same workers finish untouched.
#[test]
fn crash_looping_jobs_are_quarantined_typed() {
    let server = Server::start(ServerConfig {
        workers: 2,
        max_attempts: 3,
        backoff_ms: 1,
        faults: Some(ServiceFaultSpec {
            seed: 1,
            // Ids 2, 7, 12, ... panic on every attempt.
            panic_jobs: StrideRule {
                stride: 5,
                residue: 2,
            },
            ..ServiceFaultSpec::default()
        }),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let ids: Vec<u64> = (0..20).map(|i| submit(&server, &litmus_spec(i))).collect();
    server.wait_idle();

    let mut quarantined = 0usize;
    for id in ids {
        let rec = server.status(id).expect("job exists");
        if id % 5 == 2 {
            assert_eq!(rec.state, JobState::Quarantined, "job {id}");
            assert_eq!(rec.attempts, 3, "job {id} exhausted its attempts");
            let err = rec.error.expect("quarantined job carries its error");
            assert_eq!(err.kind, "panic");
            assert!(
                err.detail.contains("injected worker panic"),
                "last panic payload survives: {err:?}"
            );
            quarantined += 1;
        } else {
            assert_eq!(rec.state, JobState::Done, "job {id}: {:?}", rec.error);
            assert_eq!(rec.attempts, 0, "healthy jobs never retried");
        }
    }
    assert_eq!(quarantined, 4);
    assert_eq!(server.counts().quarantined, 4);
    server.shutdown().expect("clean shutdown");
}

/// A first-attempt-only panic is retried after backoff and succeeds —
/// and the retried result is byte-identical to a direct run, because
/// the retry replays from the job's parked checkpoint.
#[test]
fn transient_panic_recovers_on_retry_byte_identical() {
    let server = Server::start(ServerConfig {
        workers: 2,
        max_attempts: 3,
        backoff_ms: 1,
        faults: Some(ServiceFaultSpec {
            seed: 2,
            // Every id panics once, then runs clean.
            transient_panic_jobs: StrideRule {
                stride: 1,
                residue: 0,
            },
            ..ServiceFaultSpec::default()
        }),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let ids: Vec<u64> = (0..10).map(|i| submit(&server, &litmus_spec(i))).collect();
    server.wait_idle();

    let mut twins: HashMap<String, Result<String, &'static str>> = HashMap::new();
    for id in ids {
        let rec = server.status(id).expect("job exists");
        assert_eq!(rec.state, JobState::Done, "job {id}: {:?}", rec.error);
        assert_eq!(rec.attempts, 1, "job {id} recovered on its first retry");
        let twin = twins
            .entry(rec.spec_json.clone())
            .or_insert_with(|| direct_twin(&rec.spec_json));
        let got = rec.summary.expect("done has summary").to_json();
        assert_eq!(&got, twin.as_ref().expect("twin runs clean"), "job {id}");
    }
    assert_eq!(server.counts().quarantined, 0);
    server.shutdown().expect("clean shutdown");
}

/// A wedged slice trips the wall-clock watchdog: the worker is
/// abandoned and replaced, the job quarantines with a typed `hang`
/// error carrying the wedge dump, and the replacement worker keeps
/// serving new jobs.
#[test]
fn watchdog_abandons_wedged_workers_and_replaces_them() {
    let server = Server::start(ServerConfig {
        workers: 1,
        max_attempts: 2,
        backoff_ms: 1,
        wedge_timeout_ms: 50,
        faults: Some(ServiceFaultSpec {
            seed: 3,
            // Only job 0 wedges.
            wedge_jobs: StrideRule {
                stride: 1 << 32,
                residue: 0,
            },
            ..ServiceFaultSpec::default()
        }),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let wedged = submit(&server, &litmus_spec(0));
    assert_eq!(wedged, 0);
    let rec = server.wait(wedged).expect("job exists");
    assert_eq!(rec.state, JobState::Quarantined);
    assert_eq!(rec.attempts, 2, "each attempt wedged and was abandoned");
    let err = rec.error.expect("quarantined job carries its error");
    assert_eq!(err.kind, "hang");
    let dump = err.hang_dump.expect("watchdog attaches its dump");
    assert!(dump.contains("\"kind\": \"wedge\""), "dump: {dump}");
    assert!(dump.contains("waited_ms"), "dump: {dump}");

    // The replacement worker is alive: fresh jobs still complete.
    let after = submit(&server, &litmus_spec(1));
    let rec = server.wait(after).expect("job exists");
    assert_eq!(rec.state, JobState::Done, "replacement worker serves");
    server.shutdown().expect("clean shutdown");
}

/// Bounded admission: past `max_queue` the submit gets a typed
/// overloaded reply with a retry-after hint; past `shed_queue`,
/// priority-3 (batch) jobs are shed first; a duplicate dedup-keyed
/// submit is still answered idempotently while overloaded.
#[test]
fn overload_replies_are_typed_and_priority_3_sheds_first() {
    let server = Server::start(ServerConfig {
        workers: 1,
        max_queue: 4,
        shed_queue: 3,
        // The lone worker wedges on its first job and there is no
        // watchdog, so the queue depth is fully deterministic.
        wedge_timeout_ms: 0,
        faults: Some(ServiceFaultSpec {
            seed: 4,
            wedge_jobs: StrideRule {
                stride: 1 << 32,
                residue: 0,
            },
            ..ServiceFaultSpec::default()
        }),
        ..ServerConfig::default()
    })
    .expect("server starts");
    let plug = r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "litmus", "name": "mp", "seed": 3}, "dedup_key": "plug"}"#.to_string();
    let plug_id = submit(&server, &plug);
    // Wait until the wedged job is running (off the queue).
    let deadline = Instant::now() + Duration::from_secs(10);
    while server.counts().running == 0 {
        assert!(Instant::now() < deadline, "plug job never started");
        std::thread::sleep(Duration::from_millis(2));
    }

    // Fill the queue to shed_queue with priority-0 jobs...
    for i in 0..3 {
        submit(&server, &litmus_spec(i));
    }
    // ...now priority 3 is shed, priority 0 still admitted.
    let batch = r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "litmus", "name": "sb", "seed": 3}, "options": {"priority": 3}}"#;
    match server.submit_json(batch) {
        Submission::Overloaded {
            queued,
            retry_after_ms,
            shed,
        } => {
            assert!(shed, "priority 3 is shed before the hard bound");
            assert_eq!(queued, 3);
            assert!(retry_after_ms >= 100);
        }
        other => panic!("batch job not shed: {other:?}"),
    }
    submit(&server, &litmus_spec(3));

    // The hard bound: queue is at max_queue, every priority is refused.
    match server.submit_json(&litmus_spec(4)) {
        Submission::Overloaded {
            queued,
            retry_after_ms,
            shed,
        } => {
            assert!(!shed, "past max_queue is overload, not shedding");
            assert_eq!(queued, 4);
            assert!(retry_after_ms >= 100);
        }
        other => panic!("overload not typed: {other:?}"),
    }
    // Idempotent resubmission is not new load: still answered.
    assert_eq!(
        server.submit_json(&plug),
        Submission::Accepted {
            id: plug_id,
            duplicate: true
        }
    );
    server.request_shutdown();
    let _ = server.shutdown();
}

/// The flaky-disk chaos profile: typed IO errors, torn writes, and
/// skipped fsyncs on the durable path never corrupt in-memory results —
/// every accepted job still terminates with the correct outcome, and
/// the faults surface only as typed rejections or counted journal
/// errors.
#[test]
fn flaky_disk_degrades_durability_never_correctness() {
    let dir = std::env::temp_dir().join(format!("rcc-flaky-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("temp dir");
    let server = Server::start(ServerConfig {
        workers: 2,
        journal: Some(dir.join("flaky.rccj")),
        fsync: false,
        faults: Some(ServiceFaultSpec::flaky_disk(0x5eed)),
        ..ServerConfig::default()
    })
    .expect("server starts");

    let mut accepted: Vec<u64> = Vec::new();
    let mut journal_rejections = 0usize;
    for i in 0..80 {
        match server.submit_json(&litmus_spec(i)) {
            Submission::Accepted { id, .. } => accepted.push(id),
            Submission::Rejected { kind, .. } => {
                assert_eq!(kind, "journal", "admission fails closed, typed");
                journal_rejections += 1;
            }
            other => panic!("unexpected reply: {other:?}"),
        }
    }
    server.wait_idle();

    let mut twins: HashMap<String, Result<String, &'static str>> = HashMap::new();
    for id in &accepted {
        let rec = server.status(*id).expect("job exists");
        assert_eq!(rec.state, JobState::Done, "job {id}: {:?}", rec.error);
        let twin = twins
            .entry(rec.spec_json.clone())
            .or_insert_with(|| direct_twin(&rec.spec_json));
        let got = rec.summary.expect("done has summary").to_json();
        assert_eq!(&got, twin.as_ref().expect("twin runs clean"), "job {id}");
    }
    let stats = server.stats();
    assert!(
        journal_rejections + stats.journal_errors as usize > 0,
        "the flaky-disk profile must actually fire"
    );
    assert!(!stats.killed);
    server.shutdown().expect("drain survives a flaky disk");
    let _ = std::fs::remove_dir_all(&dir);
}
