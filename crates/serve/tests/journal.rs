//! Property coverage for the `RCCJ` journal codec, mirroring the
//! `RCCT` trace codec suite (`crates/trace/tests/codec.rs`):
//!
//! - encode→replay identity on random record sequences,
//! - a truncated tail (what `kill -9` mid-append leaves) always
//!   recovers the longest complete prefix — never an error, never an
//!   invented record,
//! - interior corruption (a bit flip in any already-durable frame)
//!   always fails closed with a typed [`JournalError::Corrupt`],
//! - no corruption of any kind ever yields a silent wrong decode: the
//!   replayed records are a prefix of what was written, or the replay
//!   is a typed error.

use proptest::prelude::*;
use rcc_serve::journal::{
    encode_frame, replay_bytes, Journal, JournalError, Record, MAGIC, VERSION,
};
use rcc_serve::store::{JobError, ResultSummary};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;

const KINDS: &[&str] = &[
    "deadlock",
    "cycles-exceeded",
    "protocol-invariant",
    "sc-violation",
    "checkpoint",
    "panic",
    "hang",
    "internal",
];

/// Printable-ASCII strings (the shim has no regex strategies).
fn arb_string(max: usize) -> impl Strategy<Value = String> {
    prop::collection::vec(32u8..127, 0..max)
        .prop_map(|v| v.into_iter().map(|b| b as char).collect())
}

fn arb_error() -> impl Strategy<Value = JobError> {
    (
        0usize..KINDS.len(),
        arb_string(40),
        prop_oneof![Just(None), arb_string(30).prop_map(Some)],
    )
        .prop_map(|(k, detail, hang_dump)| JobError {
            kind: KINDS[k],
            detail,
            hang_dump,
        })
}

fn arb_summary() -> impl Strategy<Value = ResultSummary> {
    (
        (arb_string(10), arb_string(12)),
        any::<u64>(),
        any::<u64>(),
        any::<u64>(),
        0u64..100,
        any::<u64>(),
    )
        .prop_map(
            |((protocol, workload), cycles, issued, mem_ops, sc_violations, metrics_digest)| {
                ResultSummary {
                    protocol,
                    workload,
                    cycles,
                    issued,
                    mem_ops,
                    sc_violations,
                    metrics_digest,
                }
            },
        )
}

fn arb_record() -> impl Strategy<Value = Record> {
    prop_oneof![
        (
            0u64..500,
            0u8..4,
            arb_string(60),
            prop_oneof![Just(None), arb_string(20).prop_map(Some)]
        )
            .prop_map(|(id, priority, spec_json, dedup_key)| Record::Submitted {
                id,
                priority,
                spec_json,
                dedup_key
            }),
        (0u64..500, 0u32..8).prop_map(|(id, attempt)| Record::Started { id, attempt }),
        (
            0u64..500,
            0u64..100,
            0u64..100,
            prop::collection::vec(any::<u8>(), 0..200)
        )
            .prop_map(|(id, slices, preemptions, checkpoint)| Record::Preempted {
                id,
                slices,
                preemptions,
                checkpoint
            }),
        (0u64..500, 0u64..100, 0u64..100, arb_summary()).prop_map(
            |(id, slices, preemptions, summary)| Record::Finished {
                id,
                slices,
                preemptions,
                summary
            }
        ),
        (0u64..500, 0u64..100, 0u64..100, arb_error()).prop_map(
            |(id, slices, preemptions, error)| Record::Failed {
                id,
                slices,
                preemptions,
                error
            }
        ),
        (0u64..500, 1u32..8, arb_error()).prop_map(|(id, attempts, error)| {
            Record::Quarantined {
                id,
                attempts,
                error,
            }
        }),
        Just(Record::Drained),
    ]
}

fn journal_bytes(records: &[Record]) -> Vec<u8> {
    let mut bytes = Vec::new();
    bytes.extend_from_slice(&MAGIC);
    bytes.extend_from_slice(&VERSION.to_le_bytes());
    for r in records {
        bytes.extend_from_slice(&encode_frame(&r.encode()));
    }
    bytes
}

/// Frame start offsets, including the end-of-file sentinel.
fn frame_offsets(records: &[Record]) -> Vec<usize> {
    let mut offs = vec![8usize];
    for r in records {
        let last = *offs.last().unwrap();
        offs.push(last + 12 + r.encode().len());
    }
    offs
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn replay_is_encode_inverse(recs in prop::collection::vec(arb_record(), 0..20)) {
        let bytes = journal_bytes(&recs);
        let replay = replay_bytes(&bytes).unwrap();
        prop_assert_eq!(&replay.records, &recs);
        prop_assert!(!replay.torn_tail);
        prop_assert_eq!(replay.good_len, bytes.len() as u64);
    }

    #[test]
    fn truncated_tail_recovers_the_prefix(
        recs in prop::collection::vec(arb_record(), 1..20),
        cut_back in 1usize..64,
    ) {
        let bytes = journal_bytes(&recs);
        let keep = (bytes.len() - cut_back.min(bytes.len() - 8)).max(8);
        let replay = replay_bytes(&bytes[..keep]).expect("a torn tail is never an error");
        // Whatever survives is an exact prefix of what was written.
        prop_assert!(replay.records.len() <= recs.len());
        prop_assert_eq!(&replay.records[..], &recs[..replay.records.len()]);
        prop_assert!(replay.good_len <= keep as u64);
        // And the boundary is tight: good_len is a real frame boundary.
        let offs = frame_offsets(&recs);
        prop_assert!(offs.contains(&(replay.good_len as usize)));
    }

    #[test]
    fn interior_flip_fails_closed(
        recs in prop::collection::vec(arb_record(), 2..12),
        frame_pick: usize,
        byte_pick: usize,
        bit in 0u8..8,
    ) {
        let bytes = journal_bytes(&recs);
        let offs = frame_offsets(&recs);
        // Flip inside any frame except the last: that is interior
        // damage (disk rot), not a legitimate crash artifact.
        let f = frame_pick % (recs.len() - 1);
        let (start, end) = (offs[f], offs[f + 1]);
        let idx = start + byte_pick % (end - start);
        let mut bad = bytes.clone();
        bad[idx] ^= 1 << bit;
        match replay_bytes(&bad) {
            Err(JournalError::Corrupt { .. }) => {}
            Err(other) => prop_assert!(false, "wrong error kind: {other}"),
            // A flip in a length field can widen the frame past EOF,
            // which replay can only see as a torn tail — but then it
            // must NOT have invented or altered any record.
            Ok(replay) => {
                prop_assert!(replay.torn_tail, "flip at {idx} silently accepted");
                prop_assert!(replay.records.len() <= f);
                prop_assert_eq!(&replay.records[..], &recs[..replay.records.len()]);
            }
        }
    }

    #[test]
    fn any_flip_never_silently_diverges(
        recs in prop::collection::vec(arb_record(), 1..12),
        pos: usize,
        bit in 0u8..8,
    ) {
        let bytes = journal_bytes(&recs);
        let idx = pos % bytes.len();
        let mut bad = bytes.clone();
        bad[idx] ^= 1 << bit;
        if let Ok(replay) = replay_bytes(&bad) {
            // Tolerated only as a shorter-but-exact prefix (tail loss).
            prop_assert!(replay.records.len() < recs.len() || replay.records == recs);
            prop_assert_eq!(&replay.records[..], &recs[..replay.records.len()]);
        }
    }
}

#[test]
fn header_damage_fails_closed() {
    for bytes in [
        &b"RCCX\x01\x00\x00\x00"[..],
        &b"RCCJ\x02\x00\x00\x00"[..],
        &b"RC"[..],
        &[0u8; 8][..],
    ] {
        assert!(
            matches!(replay_bytes(bytes), Err(JournalError::Corrupt { .. })),
            "{bytes:02x?} must fail closed"
        );
    }
    // Empty is a fresh journal, not corruption.
    assert!(replay_bytes(b"").unwrap().records.is_empty());
}

#[test]
fn crash_mid_append_then_reopen_resumes_cleanly() {
    let dir = std::env::temp_dir().join(format!("rccj-prop-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("crash.rccj");
    let _ = std::fs::remove_file(&path);
    let killed = Arc::new(AtomicBool::new(false));
    let (mut j, _) = Journal::open(&path, true, None, Arc::clone(&killed)).unwrap();
    let first = Record::Started { id: 1, attempt: 0 };
    j.append(&first).unwrap();
    drop(j);
    // Emulate a torn append: a partial frame lands after the record.
    let mut bytes = std::fs::read(&path).unwrap();
    bytes.extend_from_slice(&encode_frame(&Record::Drained.encode())[..5]);
    std::fs::write(&path, &bytes).unwrap();
    // Reopen: the torn tail is truncated away and appending resumes on
    // the record boundary.
    let (mut j, replay) = Journal::open(&path, true, None, Arc::clone(&killed)).unwrap();
    assert!(replay.torn_tail);
    assert_eq!(replay.records, vec![first.clone()]);
    let second = Record::Started { id: 2, attempt: 1 };
    j.append(&second).unwrap();
    drop(j);
    let (_, replay) = Journal::open(&path, true, None, killed).unwrap();
    assert!(!replay.torn_tail);
    assert_eq!(replay.records, vec![first, second]);
    let _ = std::fs::remove_file(&path);
}
