//! The stress/soak suite: a seeded generator floods the service with
//! over a thousand mixed jobs — every protocol, litmus and benchmark
//! workloads, chaos on and off, deliberate deadlocks, and a salting of
//! invalid requests — and asserts the service contract:
//!
//! - every accepted job reaches a terminal state (nothing starves),
//! - every finished job's result is **byte-identical** to a direct
//!   `try_simulate` of the same resolved spec,
//! - every failed job carries the same typed error a direct run hits,
//! - every invalid request is rejected typed, queuing nothing,
//! - workers survive all of it (no job is ever wedged by another).

use rcc_serve::spec::JobSpec;
use rcc_serve::store::{JobError, JobState, ResultSummary};
use rcc_serve::{Server, ServerConfig, Submission};
use std::collections::HashMap;

/// Deterministic generator seed; bump only with a reason.
const SEED: u64 = 0x5eed_2026;

/// Jobs the generator emits (acceptance floor is 1000).
const JOBS: usize = 1_100;

struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        // xorshift64*: plenty for picking test cases.
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn pick<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[(self.next() % xs.len() as u64) as usize]
    }

    fn chance(&mut self, percent: u64) -> bool {
        self.next() % 100 < percent
    }
}

const PROTOCOLS: &[&str] = &["mesi", "mesi-wb", "tcs", "tcw", "rcc", "rcc-wo", "ideal"];
const LITMUS: &[&str] = &[
    "mp",
    "mp+fence",
    "mp+atomic",
    "sb",
    "sb+fence",
    "lb",
    "wrc",
    "corr",
    "iriw",
];
const BENCHES: &[&str] = &["dlb", "hsp", "kmn", "lud", "sr"];
/// Small pools keep the distinct-spec count low, so the direct-twin
/// memo pays off while every (protocol × workload × chaos) corner is
/// still hit at 1.1k draws.
const SEEDS: &[u64] = &[3, 11];
const CHAOS: &[&str] = &["light", "heavy", "reorder"];

enum Expect {
    /// Must be accepted; id + canonical spec recorded for verification.
    Valid,
    /// Must be rejected with this typed kind.
    Invalid(&'static str),
}

/// One generated submission: raw request text plus what must happen.
fn gen_job(rng: &mut Rng) -> (String, Expect) {
    // ~10% invalid requests, each a distinct failure layer.
    if rng.chance(10) {
        return match rng.next() % 6 {
            0 => ("{not json at all".into(), Expect::Invalid("schema")),
            1 => (
                r#"{"version": 1, "protocol": "moesi", "workload": {"kind": "litmus", "name": "mp"}}"#.into(),
                Expect::Invalid("schema"), // protocol enum is schema-level
            ),
            2 => (
                r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "bench", "name": "doom"}}"#.into(),
                Expect::Invalid("workload"),
            ),
            3 => (
                r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "litmus", "name": "mp"}, "surprise": 1}"#.into(),
                Expect::Invalid("schema"),
            ),
            4 => (
                r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "litmus", "name": "mp"}, "options": {"priority": 9}}"#.into(),
                Expect::Invalid("schema"), // maximum is schema-level
            ),
            _ => (
                // record_trace without a results dir: a semantically
                // valid spec the in-memory server cannot honor.
                r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "litmus", "name": "mp"}, "options": {"record_trace": true}}"#.into(),
                Expect::Invalid("options"),
            ),
        };
    }
    let protocol = *rng.pick(PROTOCOLS);
    let priority = rng.next() % 4;
    // ~5% deliberate deadlocks.
    if rng.chance(5) {
        let spec = format!(
            r#"{{"version": 1, "protocol": "{protocol}", "workload": {{"kind": "hang"}}, "options": {{"priority": {priority}}}}}"#
        );
        return (spec, Expect::Valid);
    }
    let seed = *rng.pick(SEEDS);
    let chaos = if rng.chance(30) {
        format!(
            r#", "chaos": {{"profile": "{}", "seed": 5}}"#,
            rng.pick(CHAOS)
        )
    } else {
        String::new()
    };
    // Litmus-heavy mix: benchmarks are ~200× the cost of a litmus test
    // in a debug build, so they get ~10% of the draws.
    let workload = if rng.chance(10) {
        format!(
            r#"{{"kind": "bench", "name": "{}", "scale": "quick", "seed": {seed}}}"#,
            rng.pick(BENCHES)
        )
    } else {
        format!(
            r#"{{"kind": "litmus", "name": "{}", "seed": {seed}}}"#,
            rng.pick(LITMUS)
        )
    };
    let spec = format!(
        r#"{{"version": 1, "protocol": "{protocol}", "workload": {workload}, "options": {{"priority": {priority}{chaos}}}}}"#
    );
    (spec, Expect::Valid)
}

/// What a direct run of a canonical spec produces: the summary bytes,
/// or the typed error kind.
type Twin = Result<String, &'static str>;

fn direct_twin(spec_text: &str) -> Twin {
    let spec = JobSpec::parse(spec_text).expect("accepted spec re-validates");
    let (kind, cfg, wl, opts) = spec.inputs();
    match rcc_sim::try_simulate(kind, &cfg, &wl, &opts) {
        Ok(m) => Ok(ResultSummary::from_metrics(&m).to_json()),
        Err(e) => Err(JobError::from_sim(&e).kind),
    }
}

#[test]
fn thousand_mixed_jobs_all_terminal_and_byte_identical() {
    let server = Server::start(ServerConfig {
        workers: 4,
        quantum: 10_000,
        ..ServerConfig::default()
    })
    .expect("server starts");

    let mut rng = Rng(SEED);
    let mut accepted: Vec<(u64, String)> = Vec::new();
    let mut rejected = 0usize;
    for _ in 0..JOBS {
        let (text, expect) = gen_job(&mut rng);
        match (server.submit_json(&text), expect) {
            (Submission::Accepted { id, .. }, Expect::Valid) => {
                let canonical = JobSpec::parse(&text)
                    .expect("accepted implies valid")
                    .to_canonical_json();
                accepted.push((id, canonical));
            }
            (Submission::Rejected { kind, detail }, Expect::Invalid(want)) => {
                assert_eq!(kind, want, "typed rejection for {text}: {detail}");
                rejected += 1;
            }
            (sub, Expect::Valid) => panic!("valid spec rejected: {text} -> {sub:?}"),
            (sub, Expect::Invalid(_)) => panic!("invalid spec accepted: {text} -> {sub:?}"),
        }
    }
    assert!(
        accepted.len() >= 900,
        "mix skewed: {} accepted",
        accepted.len()
    );
    assert!(rejected >= 50, "mix skewed: {rejected} rejected");

    // Everything terminal: with the aging scheduler a full drain IS the
    // no-starvation check — wait_idle returns only once no job is
    // queued or running.
    server.wait_idle();
    let c = server.counts();
    assert_eq!((c.queued, c.running), (0, 0), "no job starved or wedged");
    assert_eq!(c.quarantined, 0, "no job crash-looped");
    assert_eq!(c.done + c.failed, accepted.len());

    // Byte-identity (and typed-failure identity) against direct
    // simulation, memoized per distinct canonical spec.
    let mut twins: HashMap<String, Twin> = HashMap::new();
    let mut preempted = 0usize;
    let mut deadlocks = 0usize;
    for (id, canonical) in &accepted {
        let rec = server.status(*id).expect("job exists");
        assert!(rec.state.terminal());
        assert_eq!(&rec.spec_json, canonical, "record keeps the canonical spec");
        if rec.preemptions > 0 {
            preempted += 1;
        }
        let twin = twins
            .entry(canonical.clone())
            .or_insert_with(|| direct_twin(canonical));
        match (rec.state, &*twin) {
            (JobState::Done, Ok(expected)) => {
                let got = rec.summary.expect("done job has a summary").to_json();
                assert_eq!(&got, expected, "job {id}: service vs direct mismatch");
            }
            (JobState::Failed, Err(kind)) => {
                let err = rec.error.expect("failed job carries its error");
                assert_eq!(&err.kind, kind, "job {id}: error kind");
                if err.kind == "deadlock" {
                    deadlocks += 1;
                    let dump = err.hang_dump.expect("deadlock carries its hang dump");
                    rcc_bench::report::check_schema(
                        "hang dump",
                        rcc_bench::report::schemas::HANGDUMP,
                        &dump,
                    )
                    .expect("dump validates");
                }
            }
            (state, twin) => panic!(
                "job {id} ({canonical}): service says {state:?}, direct says {}",
                if twin.is_ok() { "done" } else { "failed" }
            ),
        }
    }
    assert!(
        preempted > 0,
        "the 10k quantum must preempt some benchmarks"
    );
    assert!(deadlocks > 0, "hang jobs must hit the deadlock path");
    server.shutdown().expect("clean shutdown");
}
