//! Wire-protocol fuzz/corruption coverage, in the fail-closed style of
//! the trace codec suite: malformed frames, truncated JSON, oversized
//! payloads, unknown verbs/fields — every one a typed error response,
//! never a dead accept loop, a killed connection thread, or a wedged
//! worker. Runs against a real listening server over TCP.

use proptest::prelude::*;
use rcc_obs::json::JsonValue;
use rcc_serve::wire::{self, Request, MAX_LINE};
use rcc_serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};

fn start_server() -> (Server, SocketAddr) {
    let server = Server::start(ServerConfig {
        workers: 1,
        ..ServerConfig::default()
    })
    .expect("server starts");
    let addr = server.listen("127.0.0.1:0").expect("bind");
    (server, addr)
}

/// Sends one line, returns the first response line.
fn roundtrip(addr: SocketAddr, line: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(line.as_bytes()).expect("send");
    stream.write_all(b"\n").expect("send newline");
    let mut reader = BufReader::new(stream);
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    resp.trim_end().to_string()
}

fn error_kind(resp: &str) -> Option<String> {
    let v = rcc_obs::json::parse(resp).ok()?;
    if v.get("ok").and_then(JsonValue::as_bool) == Some(false) {
        v.get("error")?
            .get("kind")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
    } else {
        None
    }
}

#[test]
fn malformed_frames_get_typed_errors_and_the_loop_survives() {
    let (server, addr) = start_server();
    let cases: &[(&str, &str)] = &[
        ("{truncated", "json"),
        ("[1, 2, 3]", "request"),
        ("\"just a string\"", "request"),
        ("{\"cmd\": \"fly\"}", "request"),
        ("{\"cmd\": \"list\", \"stray\": 0}", "request"),
        ("{\"cmd\": \"status\"}", "request"),
        ("{\"cmd\": \"status\", \"job\": \"seven\"}", "request"),
        ("{\"cmd\": \"status\", \"job\": -3}", "request"),
        ("{\"cmd\": \"submit\"}", "request"),
        ("{\"cmd\": \"submit\", \"spec\": 42}", "schema"),
        ("{\"cmd\": \"submit\", \"spec\": {}}", "schema"),
        ("", "request"),
    ];
    // All on ONE connection: each bad frame must leave it usable.
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    for (line, want_kind) in cases {
        stream
            .write_all(format!("{line}\n").as_bytes())
            .expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        assert_eq!(
            error_kind(resp.trim_end()).as_deref(),
            Some(*want_kind),
            "for frame {line:?} got {resp:?}"
        );
    }
    // The same connection still serves a valid request.
    stream.write_all(b"{\"cmd\": \"list\"}\n").expect("send");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    assert!(resp.contains("\"ok\": true"), "survived: {resp}");
    server.shutdown().expect("clean shutdown");
}

#[test]
fn oversized_frames_are_rejected_without_buffering() {
    let (server, addr) = start_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    let huge = "x".repeat(MAX_LINE + 100);
    stream
        .write_all(format!("{huge}\n").as_bytes())
        .expect("send");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    assert_eq!(error_kind(resp.trim_end()).as_deref(), Some("frame"));
    // Connection survives the flood.
    stream.write_all(b"{\"cmd\": \"list\"}\n").expect("send");
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    assert!(resp.contains("\"ok\": true"));
    server.shutdown().expect("clean shutdown");
}

#[test]
fn non_utf8_frames_fail_closed() {
    let (server, addr) = start_server();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(&[0xff, 0xfe, 0x80, b'\n'])
        .expect("send bytes");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("response");
    assert_eq!(error_kind(resp.trim_end()).as_deref(), Some("encoding"));
    server.shutdown().expect("clean shutdown");
}

/// An end-to-end happy path over TCP: submit, watch the stream, status.
#[test]
fn submit_watch_status_over_tcp() {
    let (server, addr) = start_server();
    let spec = r#"{"cmd": "submit", "spec": {"version": 1, "protocol": "rcc", "workload": {"kind": "litmus", "name": "mp", "seed": 3}}}"#;
    let resp = roundtrip(addr, spec);
    let v = rcc_obs::json::parse(&resp).expect("json response");
    assert_eq!(v.get("ok").and_then(JsonValue::as_bool), Some(true));
    let id = v.get("job").and_then(JsonValue::as_u64).expect("job id");

    // watch streams until terminal; final line is the status.
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(format!("{{\"cmd\": \"watch\", \"job\": {id}}}\n").as_bytes())
        .expect("send");
    let reader = BufReader::new(stream);
    let mut last = String::new();
    for line in reader.lines() {
        let line = line.expect("stream line");
        if line.contains("\"state\": \"done\"") || line.contains("\"state\": \"failed\"") {
            last = line;
            break;
        }
    }
    assert!(last.contains("\"state\": \"done\""), "final status: {last}");
    assert!(last.contains("\"metrics_digest\""), "carries the summary");

    let status = roundtrip(addr, &format!("{{\"cmd\": \"status\", \"job\": {id}}}"));
    assert!(status.contains("\"state\": \"done\""));
    server.shutdown().expect("clean shutdown");
}

/// Random garbage never kills the connection: every frame gets exactly
/// one response line and the connection then still answers `list`.
fn arb_garbage() -> impl Strategy<Value = Vec<u8>> {
    prop::collection::vec(
        prop_oneof![
            // printable junk
            0x20u8..0x7f,
            // JSON-ish punctuation, heavily weighted
            prop_oneof![
                Just(b'{'),
                Just(b'}'),
                Just(b'"'),
                Just(b':'),
                Just(b','),
                Just(b'[')
            ],
        ],
        0..200,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fuzzed_frames_never_kill_the_connection(frames in prop::collection::vec(arb_garbage(), 1..8)) {
        // One server per case keeps state independent; it is cheap.
        let (server, addr) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        for frame in &frames {
            let mut msg = frame.clone();
            msg.retain(|&b| b != b'\n');
            msg.push(b'\n');
            stream.write_all(&msg).expect("send");
            let mut resp = String::new();
            reader.read_line(&mut resp).expect("one response per frame");
            prop_assert!(!resp.is_empty(), "connection died on {frame:?}");
            let v = rcc_obs::json::parse(resp.trim_end()).expect("response is JSON");
            prop_assert!(v.get("ok").and_then(JsonValue::as_bool).is_some());
        }
        stream.write_all(b"{\"cmd\": \"list\"}\n").expect("send");
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("list response");
        prop_assert!(resp.contains("\"ok\": true"));
        server.shutdown().expect("clean shutdown");
    }

    /// Corrupting a valid submit frame at one byte either still parses
    /// (rare) or fails typed — it never yields a non-JSON response or
    /// a dropped connection. Mirrors the codec bit-flip discipline.
    #[test]
    fn bitflipped_submits_fail_closed(pos in 0usize..1000, flip in 1u8..255) {
        let valid = br#"{"cmd": "submit", "spec": {"version": 1, "protocol": "rcc", "workload": {"kind": "hang"}}}"#;
        let mut frame = valid.to_vec();
        let pos = pos % frame.len();
        frame[pos] ^= flip;
        frame.retain(|&b| b != b'\n');
        let (server, addr) = start_server();
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream.write_all(&frame).expect("send");
        stream.write_all(b"\n").expect("send newline");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response");
        let v = rcc_obs::json::parse(resp.trim_end()).expect("response is JSON");
        prop_assert!(v.get("ok").and_then(JsonValue::as_bool).is_some());
        server.shutdown().expect("clean shutdown");
    }
}

/// The pure request parser agrees with itself on the verbs (sanity for
/// the fuzz above, which mostly sees rejections).
#[test]
fn parser_accepts_every_verb() {
    for (line, want) in [
        (r#"{"cmd": "list"}"#, Request::List),
        (r#"{"cmd": "shutdown"}"#, Request::Shutdown),
        (r#"{"cmd": "status", "job": 0}"#, Request::Status(0)),
        (r#"{"cmd": "watch", "job": 9}"#, Request::Watch(9)),
    ] {
        assert_eq!(wire::parse_request(line), Ok(want));
    }
}
