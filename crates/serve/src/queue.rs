//! Priority-aged FIFO job scheduler.
//!
//! A pure data structure — no threads, no clocks — so its fairness
//! properties are testable in isolation (see `tests/sched_props.rs`):
//!
//! - **FIFO within a priority class.** Entries of the same nominal
//!   class dispatch in arrival order: an earlier arrival has witnessed
//!   at least as many dispatches as a later one, so its effective class
//!   is never higher, and ties break on the arrival sequence number.
//! - **No starvation.** Every dispatch ages every waiting entry by one;
//!   after `aging × class` dispatches an entry reaches effective
//!   class 0, where only *older* class-0 entries (a finite set fixed at
//!   its arrival) can precede it. Hence an entry admitted into a queue
//!   of length `q` waits at most [`Sched::starvation_bound`]`(q)`
//!   dispatches.
//! - **Determinism.** The pick is a pure function of the queue state,
//!   so a fixed arrival/requeue sequence yields a fixed schedule.
//!
//! Preempted jobs are [`Sched::requeue`]d at the *back* of their class
//! under a fresh sequence number: one quantum is one turn, so a long
//! job round-robins with its class peers instead of re-monopolizing the
//! worker, and a flood of short jobs drains while the long one crawls
//! forward a quantum per pass.

/// Number of priority classes; class 0 is the most urgent.
pub const CLASSES: u8 = 4;

#[derive(Debug, Clone)]
struct Entry {
    seq: u64,
    class: u8,
    /// Dispatches this entry has waited through since (re)admission.
    age: u64,
}

impl Entry {
    /// Nominal class minus earned aging credit, saturating at 0.
    fn effective(&self, aging: u64) -> u8 {
        let credit = (self.age / aging).min(u64::from(self.class));
        self.class - credit as u8
    }
}

/// The scheduler: a bag of waiting entries plus the aging policy.
#[derive(Debug, Clone)]
pub struct Sched {
    aging: u64,
    next_seq: u64,
    ready: Vec<Entry>,
}

impl Sched {
    /// Creates a scheduler whose entries gain one class of urgency per
    /// `aging` dispatches waited. `aging` is clamped to at least 1.
    pub fn new(aging: u64) -> Self {
        Sched {
            aging: aging.max(1),
            next_seq: 0,
            ready: Vec::new(),
        }
    }

    /// Admits a new entry at `class` (clamped to `CLASSES - 1`) and
    /// returns its sequence token — the handle [`Sched::pop`] yields.
    pub fn push(&mut self, class: u8) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.ready.push(Entry {
            seq,
            class: class.min(CLASSES - 1),
            age: 0,
        });
        seq
    }

    /// Re-admits a preempted entry at the back of its class under a
    /// fresh token (returned): each quantum is one turn in the
    /// round-robin, so class peers that arrived while it ran go first.
    pub fn requeue(&mut self, class: u8) -> u64 {
        self.push(class)
    }

    /// Dispatches the entry with the lowest `(effective class, seq)`
    /// and ages everything still waiting by one dispatch.
    pub fn pop(&mut self) -> Option<u64> {
        let best = self
            .ready
            .iter()
            .enumerate()
            .min_by_key(|(_, e)| (e.effective(self.aging), e.seq))?
            .0;
        let picked = self.ready.swap_remove(best);
        for e in &mut self.ready {
            e.age += 1;
        }
        Some(picked.seq)
    }

    /// Entries currently waiting.
    pub fn len(&self) -> usize {
        self.ready.len()
    }

    /// True when nothing is waiting.
    pub fn is_empty(&self) -> bool {
        self.ready.is_empty()
    }

    /// Worst-case dispatches an entry admitted into a queue of length
    /// `queue_len` can wait before it is picked, regardless of its
    /// class or any future arrivals.
    pub fn starvation_bound(&self, queue_len: usize) -> u64 {
        self.aging * u64::from(CLASSES - 1) + queue_len as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_a_class() {
        let mut s = Sched::new(4);
        let a = s.push(1);
        let b = s.push(1);
        let c = s.push(1);
        assert_eq!(s.pop(), Some(a));
        assert_eq!(s.pop(), Some(b));
        assert_eq!(s.pop(), Some(c));
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn urgent_class_preempts_but_aging_rescues() {
        // One background entry, then a stream of urgent arrivals: the
        // background entry must still dispatch within its bound.
        let mut s = Sched::new(2);
        let slow = s.push(3);
        let bound = s.starvation_bound(0);
        let mut waited = 0;
        loop {
            s.push(0);
            let picked = s.pop().expect("queue non-empty");
            if picked == slow {
                break;
            }
            waited += 1;
            assert!(waited <= bound, "starved past the bound");
        }
        assert!(waited <= bound);
    }

    #[test]
    fn requeue_goes_to_the_back_of_the_class() {
        let mut s = Sched::new(4);
        let a = s.push(2);
        let b = s.push(2);
        assert_eq!(s.pop(), Some(a));
        let a2 = s.requeue(2); // preempted: b takes its turn first
        assert_eq!(s.pop(), Some(b));
        assert_eq!(s.pop(), Some(a2));
    }
}
