//! Job records, result summaries, and the on-disk artifact store.
//!
//! Every persisted document is validated against its schema
//! (`schemas/job_result.schema.json`, `schemas/job_manifest.schema.json`)
//! *before* it is written; a document the schema rejects is a bug in
//! the producer and surfaces as an error instead of a corrupt artifact.
//!
//! [`ResultSummary`] is the pure-simulation slice of a finished job:
//! exactly the fields two runs of the same spec must agree on, plus the
//! [`rcc_sim::RunMetrics::digest`] over the full
//! same-simulated-results field set. The stress suite compares the
//! serialized summary byte-for-byte against a direct `try_simulate` of
//! the same spec; service-side scheduling facts (slices, preemptions)
//! live outside it, since they legitimately differ run to run.

use crate::wire::esc;
use rcc_chaos::service::ServiceInjector;
use rcc_sim::{RunMetrics, SimError};
use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Artifact format version.
pub const RESULT_VERSION: u64 = 1;

/// Lifecycle of a job inside the service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobState {
    /// Waiting in the scheduler (fresh, parked mid-run on a checkpoint,
    /// or deferred behind a retry backoff).
    Queued,
    /// A worker is running a quantum of it right now.
    Running,
    /// Finished; a [`ResultSummary`] is available.
    Done,
    /// Failed with a typed [`JobError`].
    Failed,
    /// Crash-looped (panic or wedge) through `max_attempts` retries;
    /// the supervisor pulled it out of rotation. Terminal, with the
    /// last panic payload or hang dump on the [`JobError`].
    Quarantined,
}

impl JobState {
    /// Wire/artifact label.
    pub fn label(self) -> &'static str {
        match self {
            JobState::Queued => "queued",
            JobState::Running => "running",
            JobState::Done => "done",
            JobState::Failed => "failed",
            JobState::Quarantined => "quarantined",
        }
    }

    /// True once the job can never change state again.
    pub fn terminal(self) -> bool {
        matches!(
            self,
            JobState::Done | JobState::Failed | JobState::Quarantined
        )
    }
}

/// The pure-simulation result of a finished job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResultSummary {
    /// Protocol label (as in the paper's figures).
    pub protocol: String,
    /// Workload name.
    pub workload: String,
    /// Cycles to retire every warp.
    pub cycles: u64,
    /// Instructions issued.
    pub issued: u64,
    /// Memory operations performed.
    pub mem_ops: u64,
    /// SC scoreboard violations observed.
    pub sc_violations: u64,
    /// [`RunMetrics::digest`] over the full deterministic field set,
    /// seeded with the bench harness seed.
    pub metrics_digest: u64,
}

impl ResultSummary {
    /// Summarizes a finished run.
    pub fn from_metrics(m: &RunMetrics) -> Self {
        ResultSummary {
            protocol: m.kind.label().to_string(),
            workload: m.workload.clone(),
            cycles: m.cycles,
            issued: m.core.issued,
            mem_ops: m.core.mem_ops,
            sc_violations: m.sc_violations as u64,
            metrics_digest: m.digest(rcc_bench::SEED),
        }
    }

    /// Deterministic JSON form — the byte string the stress suite
    /// compares across service and direct runs.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"protocol\": \"{}\", \"workload\": \"{}\", \"cycles\": {}, \
             \"issued\": {}, \"mem_ops\": {}, \"sc_violations\": {}, \
             \"metrics_digest\": \"{:016x}\"}}",
            esc(&self.protocol),
            esc(&self.workload),
            self.cycles,
            self.issued,
            self.mem_ops,
            self.sc_violations,
            self.metrics_digest
        )
    }
}

/// A typed job failure, preserving the [`SimError`] taxonomy across the
/// service boundary. Deadlocks carry the full forensic hang dump.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobError {
    /// Stable failure category.
    pub kind: &'static str,
    /// The error's display form.
    pub detail: String,
    /// `HangDump::to_json()` for deadlocks.
    pub hang_dump: Option<String>,
}

impl JobError {
    /// Maps a simulation error into its wire/artifact form.
    pub fn from_sim(e: &SimError) -> Self {
        let kind = match e {
            SimError::Deadlock(_) => "deadlock",
            SimError::CyclesExceeded { .. } => "cycles-exceeded",
            SimError::ProtocolInvariant { .. } => "protocol-invariant",
            SimError::ScViolation { .. } => "sc-violation",
            SimError::SanitizerViolation { .. } => "sanitizer-violation",
            SimError::ProbeMissing { .. } => "probe-missing",
            SimError::Checkpoint(_) => "checkpoint",
            SimError::Trace(_) => "trace",
        };
        let hang_dump = match e {
            SimError::Deadlock(dump) => Some(dump.to_json()),
            _ => None,
        };
        JobError {
            kind,
            detail: e.to_string(),
            hang_dump,
        }
    }

    /// An internal service failure (e.g. a panicking worker closure).
    pub fn internal(kind: &'static str, detail: impl Into<String>) -> Self {
        JobError {
            kind,
            detail: detail.into(),
            hang_dump: None,
        }
    }

    /// Wire/artifact form.
    pub fn to_json(&self) -> String {
        let mut s = format!(
            "{{\"kind\": \"{}\", \"detail\": \"{}\"",
            esc(self.kind),
            esc(&self.detail)
        );
        if let Some(dump) = &self.hang_dump {
            let _ = write!(s, ", \"hang_dump\": {dump}");
        }
        s.push('}');
        s
    }
}

/// Everything the service knows about one job.
#[derive(Debug, Clone)]
pub struct JobRecord {
    /// Job id (dense, assigned at accept time).
    pub id: u64,
    /// Current lifecycle state.
    pub state: JobState,
    /// The accepted spec in canonical JSON form.
    pub spec_json: String,
    /// Priority class it was admitted at.
    pub priority: u8,
    /// Quanta executed so far (a completed unpreempted job has 1).
    pub slices: u64,
    /// Times the job was parked on a checkpoint and requeued.
    pub preemptions: u64,
    /// 0-based retry attempts consumed (0 = never crashed).
    pub attempts: u32,
    /// Client-supplied idempotency key, if any.
    pub dedup_key: Option<String>,
    /// Summary, once `Done`.
    pub summary: Option<ResultSummary>,
    /// Failure, once `Failed` or `Quarantined`.
    pub error: Option<JobError>,
}

impl JobRecord {
    /// The persisted artifact for a terminal job, shaped by
    /// `schemas/job_result.schema.json`.
    pub fn artifact_json(&self) -> String {
        format!(
            "{{\"version\": {RESULT_VERSION}, \"job_id\": {}, \"state\": \"{}\", \
             \"spec\": {}, \"result\": {}, \"error\": {}, \
             \"service\": {{\"priority\": {}, \"slices\": {}, \"preemptions\": {}, \
             \"attempts\": {}}}}}",
            self.id,
            self.state.label(),
            self.spec_json,
            self.summary
                .as_ref()
                .map(ResultSummary::to_json)
                .unwrap_or_else(|| "null".into()),
            self.error
                .as_ref()
                .map(JobError::to_json)
                .unwrap_or_else(|| "null".into()),
            self.priority,
            self.slices,
            self.preemptions,
            self.attempts
        )
    }
}

/// The artifact store: a results directory, or nothing (in-memory
/// service, as the tests mostly run it).
#[derive(Debug)]
pub struct Store {
    dir: Option<PathBuf>,
    /// Service-level fault injection for artifact writes.
    injector: Option<Arc<ServiceInjector>>,
    /// Kill switch shared with the journal: once set, writes are
    /// silently dropped (the "process" is dead — see `journal`).
    killed: Arc<AtomicBool>,
}

impl Store {
    /// Creates the store, making the directory if needed.
    pub fn new(dir: Option<PathBuf>) -> Result<Store, String> {
        Store::with_faults(dir, None, Arc::new(AtomicBool::new(false)))
    }

    /// Creates the store with a fault injector and shared kill switch.
    pub fn with_faults(
        dir: Option<PathBuf>,
        injector: Option<Arc<ServiceInjector>>,
        killed: Arc<AtomicBool>,
    ) -> Result<Store, String> {
        if let Some(d) = &dir {
            std::fs::create_dir_all(d).map_err(|e| format!("results dir {}: {e}", d.display()))?;
        }
        Ok(Store {
            dir,
            injector,
            killed,
        })
    }

    /// True when artifacts are being persisted.
    pub fn persistent(&self) -> bool {
        self.dir.is_some()
    }

    /// The path trace-recording jobs write their RCCT binary to.
    pub fn trace_path(&self, id: u64) -> Option<String> {
        self.dir
            .as_ref()
            .map(|d| d.join(format!("trace-{id}.rcct")).display().to_string())
    }

    /// Persists a terminal job's artifact, schema-validating first.
    /// Returns the relative artifact name, or `None` when the store is
    /// in-memory.
    pub fn persist(&self, rec: &JobRecord) -> Result<Option<String>, String> {
        debug_assert!(rec.state.terminal());
        let Some(dir) = &self.dir else {
            return Ok(None);
        };
        if self.killed.load(Ordering::SeqCst) {
            // Dead process: nothing lands, nobody is told. Recovery
            // re-persists terminal artifacts from the journal.
            return Ok(None);
        }
        if let Some(inj) = &self.injector {
            if inj.store_fault(rec.id) {
                return Err(format!("injected io error writing job {}", rec.id));
            }
        }
        let doc = rec.artifact_json();
        rcc_bench::report::check_schema(
            "job artifact",
            rcc_bench::report::schemas::JOB_RESULT,
            &doc,
        )?;
        let name = format!("job-{}.json", rec.id);
        std::fs::write(dir.join(&name), doc.as_bytes())
            .map_err(|e| format!("write {name}: {e}"))?;
        Ok(Some(name))
    }

    /// Writes `manifest.json` indexing every terminal job, validated
    /// against `schemas/job_manifest.schema.json`.
    pub fn write_manifest(&self, records: &[JobRecord]) -> Result<Option<PathBuf>, String> {
        let Some(dir) = &self.dir else {
            return Ok(None);
        };
        if self.killed.load(Ordering::SeqCst) {
            return Ok(None);
        }
        let terminal: Vec<&JobRecord> = records.iter().filter(|r| r.state.terminal()).collect();
        let done = terminal
            .iter()
            .filter(|r| r.state == JobState::Done)
            .count();
        let quarantined = terminal
            .iter()
            .filter(|r| r.state == JobState::Quarantined)
            .count();
        let mut doc = format!(
            "{{\"version\": {RESULT_VERSION}, \"jobs\": {}, \"done\": {done}, \
             \"failed\": {}, \"quarantined\": {quarantined}, \"entries\": [",
            terminal.len(),
            terminal.len() - done - quarantined
        );
        for (i, r) in terminal.iter().enumerate() {
            if i > 0 {
                doc.push_str(", ");
            }
            let _ = write!(
                doc,
                "{{\"job_id\": {}, \"state\": \"{}\", \"path\": \"job-{}.json\"}}",
                r.id,
                r.state.label(),
                r.id
            );
        }
        doc.push_str("]}");
        rcc_bench::report::check_schema(
            "job manifest",
            rcc_bench::report::schemas::JOB_MANIFEST,
            &doc,
        )?;
        let path = dir.join("manifest.json");
        std::fs::write(&path, doc.as_bytes()).map_err(|e| format!("write manifest: {e}"))?;
        Ok(Some(path))
    }

    /// The artifact path for a job id, when persistent.
    pub fn artifact_path(&self, id: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("job-{id}.json")))
    }

    /// The results directory, when persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }
}
