//! The line-delimited JSON wire protocol, fail closed.
//!
//! One request per line, one JSON object per request, `cmd` selects the
//! verb. Anything else — a frame over [`MAX_LINE`], invalid UTF-8,
//! truncated or trailing-garbage JSON, a non-object, an unknown verb,
//! an unknown field, a wrong-typed argument — is a typed
//! [`WireError`] turned into an error response on that connection; the
//! accept loop and the workers never see it. `tests/wire.rs` hammers
//! this layer with corrupted frames in the same style as the trace
//! codec's fail-closed suite.

use rcc_obs::json::JsonValue;
use std::io::{self, BufRead};

/// Hard cap on a request frame, newline included. Large enough for any
/// legitimate spec, small enough that a hostile peer cannot balloon the
/// connection thread's memory.
pub const MAX_LINE: usize = 64 * 1024;

/// A parsed request.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Submit a job; the payload is the raw spec value (validated by
    /// [`crate::spec::JobSpec::from_value`] next).
    Submit(JsonValue),
    /// Query one job's status.
    Status(u64),
    /// Stream progress events for one job until it is terminal.
    Watch(u64),
    /// Summarize every job the server knows about.
    List,
    /// Stop accepting connections and wind down the workers.
    Shutdown,
}

/// A typed wire-level rejection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Rejection category: `frame`, `encoding`, `json`, `request`.
    pub kind: &'static str,
    /// Human-readable reason.
    pub detail: String,
}

impl WireError {
    fn new(kind: &'static str, detail: impl Into<String>) -> Self {
        WireError {
            kind,
            detail: detail.into(),
        }
    }
}

/// Reads one newline-terminated frame with the [`MAX_LINE`] bound
/// enforced *during* the read: an overlong line is drained and reported
/// without ever being buffered whole. `Ok(None)` is a clean EOF.
pub fn read_frame(r: &mut impl BufRead) -> io::Result<Option<Result<String, WireError>>> {
    let mut buf: Vec<u8> = Vec::new();
    let mut overlong = false;
    loop {
        let chunk = r.fill_buf()?;
        if chunk.is_empty() {
            // EOF: a clean end between frames, or a final unterminated
            // frame (processed as-is).
            if buf.is_empty() && !overlong {
                return Ok(None);
            }
            break;
        }
        let (take, done) = match chunk.iter().position(|&b| b == b'\n') {
            Some(nl) => (nl + 1, true),
            None => (chunk.len(), false),
        };
        if !overlong {
            if buf.len() + take > MAX_LINE {
                overlong = true;
                buf.clear();
            } else {
                buf.extend_from_slice(&chunk[..take]);
            }
        }
        r.consume(take);
        if done {
            break;
        }
    }
    if overlong {
        return Ok(Some(Err(WireError::new(
            "frame",
            format!("line exceeds {MAX_LINE} bytes"),
        ))));
    }
    while buf.last() == Some(&b'\n') || buf.last() == Some(&b'\r') {
        buf.pop();
    }
    match String::from_utf8(buf) {
        Ok(line) => Ok(Some(Ok(line))),
        Err(_) => Ok(Some(Err(WireError::new("encoding", "frame is not UTF-8")))),
    }
}

fn job_arg(obj: &JsonValue) -> Result<u64, WireError> {
    obj.get("job")
        .and_then(JsonValue::as_u64)
        .ok_or_else(|| WireError::new("request", "job must be a non-negative integer"))
}

/// Parses one frame into a [`Request`], rejecting unknown verbs and
/// unknown fields.
pub fn parse_request(line: &str) -> Result<Request, WireError> {
    if line.trim().is_empty() {
        return Err(WireError::new("request", "empty request"));
    }
    let v = rcc_obs::json::parse(line).map_err(|e| WireError::new("json", e))?;
    let Some(obj) = v.as_object() else {
        return Err(WireError::new("request", "request must be a JSON object"));
    };
    let Some(cmd) = v.get("cmd").and_then(JsonValue::as_str) else {
        return Err(WireError::new("request", "missing cmd"));
    };
    let allowed: &[&str] = match cmd {
        "submit" => &["cmd", "spec"],
        "status" | "watch" => &["cmd", "job"],
        "list" | "shutdown" => &["cmd"],
        other => {
            return Err(WireError::new(
                "request",
                format!("unknown cmd {other} (submit|status|watch|list|shutdown)"),
            ))
        }
    };
    if let Some(stray) = obj.keys().find(|k| !allowed.contains(&k.as_str())) {
        return Err(WireError::new(
            "request",
            format!("unknown field {stray} for cmd {cmd}"),
        ));
    }
    Ok(match cmd {
        "submit" => {
            let spec = v
                .get("spec")
                .ok_or_else(|| WireError::new("request", "submit needs a spec object"))?;
            Request::Submit(spec.clone())
        }
        "status" => Request::Status(job_arg(&v)?),
        "watch" => Request::Watch(job_arg(&v)?),
        "list" => Request::List,
        _ => Request::Shutdown,
    })
}

/// Escapes a string for embedding in a JSON literal.
pub fn esc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// The error-response line for a wire-level rejection.
pub fn error_line(kind: &str, detail: &str) -> String {
    format!(
        "{{\"ok\": false, \"error\": {{\"kind\": \"{}\", \"detail\": \"{}\"}}}}",
        esc(kind),
        esc(detail)
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn verbs_parse_and_unknown_fields_fail_closed() {
        assert_eq!(parse_request(r#"{"cmd": "list"}"#), Ok(Request::List));
        assert_eq!(
            parse_request(r#"{"cmd": "status", "job": 3}"#),
            Ok(Request::Status(3))
        );
        assert!(parse_request(r#"{"cmd": "status", "job": -1}"#).is_err());
        assert!(parse_request(r#"{"cmd": "list", "extra": 1}"#).is_err());
        assert!(parse_request(r#"{"cmd": "teleport"}"#).is_err());
        assert!(parse_request(r#"[1, 2]"#).is_err());
        assert!(parse_request("").is_err());
    }

    #[test]
    fn overlong_frames_are_drained_not_buffered() {
        let mut big = vec![b'x'; MAX_LINE + 10];
        big.push(b'\n');
        big.extend_from_slice(b"{\"cmd\": \"list\"}\n");
        let mut r = io::BufReader::new(&big[..]);
        let first = read_frame(&mut r).unwrap().unwrap();
        assert_eq!(first.unwrap_err().kind, "frame");
        let second = read_frame(&mut r).unwrap().unwrap().unwrap();
        assert_eq!(parse_request(&second), Ok(Request::List));
        assert!(read_frame(&mut r).unwrap().is_none(), "clean EOF");
    }

    #[test]
    fn escaping_survives_a_round_trip() {
        let nasty = "he said \"hi\"\\\n\tctrl:\u{1}";
        let doc = format!("{{\"s\": \"{}\"}}", esc(nasty));
        let v = rcc_obs::json::parse(&doc).expect("escaped doc parses");
        assert_eq!(v.get("s").and_then(JsonValue::as_str), Some(nasty));
    }
}
