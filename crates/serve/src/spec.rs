//! Job-request validation and resolution.
//!
//! A submission is checked in two passes, failing closed on the first
//! violation: structural validation against `schemas/job.schema.json`
//! (unknown fields, wrong types, out-of-range values), then semantic
//! validation (a benchmark or litmus test that actually exists, chaos
//! profiles by name, option combinations the service can honor). A
//! valid spec resolves — via [`JobSpec::inputs`] — into the exact
//! `(ProtocolKind, GpuConfig, Workload, SimOptions)` a direct
//! [`rcc_sim::try_simulate`] call would use, which is what makes the
//! stress suite's byte-identity check against the driver possible.

use rcc_chaos::{ChaosProfile, ChaosSpec};
use rcc_common::ids::WorkgroupId;
use rcc_common::GpuConfig;
use rcc_core::ProtocolKind;
use rcc_gpu::{MemOp, WarpProgram};
use rcc_obs::json::JsonValue;
use rcc_sim::SimOptions;
use rcc_workloads::{litmus, Benchmark, Scale, Sharing, Workload};

/// Current job-spec version (the `version` field of the schema).
pub const SPEC_VERSION: u64 = 1;

/// Watchdog budget for deliberate-deadlock (`hang`) jobs: small enough
/// that a hang job fails fast, large enough that the dump is a real
/// no-progress detection.
pub const HANG_WATCHDOG: u64 = 10_000;

/// A typed validation failure: `kind` names the layer that rejected
/// (`schema`, `protocol`, `workload`, `options`), `detail` says why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecError {
    /// Rejection category.
    pub kind: &'static str,
    /// Human-readable reason.
    pub detail: String,
}

impl SpecError {
    fn new(kind: &'static str, detail: impl Into<String>) -> Self {
        SpecError {
            kind,
            detail: detail.into(),
        }
    }
}

/// Workload scale, mirroring the driver's `--scale` knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScaleKind {
    /// `Scale::quick()` — test sizing.
    Quick,
    /// `Scale::standard()` — evaluation sizing.
    Standard,
    /// `Scale::full()` — every warp context busy.
    Full,
}

impl ScaleKind {
    fn parse(s: &str) -> Option<ScaleKind> {
        Some(match s {
            "quick" => ScaleKind::Quick,
            "standard" => ScaleKind::Standard,
            "full" => ScaleKind::Full,
            _ => return None,
        })
    }

    fn name(self) -> &'static str {
        match self {
            ScaleKind::Quick => "quick",
            ScaleKind::Standard => "standard",
            ScaleKind::Full => "full",
        }
    }

    fn scale(self) -> Scale {
        match self {
            ScaleKind::Quick => Scale::quick(),
            ScaleKind::Standard => Scale::standard(),
            ScaleKind::Full => Scale::full(),
        }
    }
}

/// What to simulate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// A Table IV benchmark.
    Bench {
        /// Which benchmark.
        bench: Benchmark,
        /// Sizing.
        scale: ScaleKind,
        /// Cores on the scaled-down test machine.
        cores: usize,
        /// Workload generation seed.
        seed: u64,
    },
    /// A litmus test from the `rcc-workloads` suite.
    Litmus {
        /// Test name (`mp`, `sb`, `iriw`, ...).
        name: String,
        /// Cores on the scaled-down test machine.
        cores: usize,
        /// Address/interleaving seed.
        seed: u64,
    },
    /// A deliberate deadlock: one warp waits on a barrier epoch nobody
    /// else will ever reach, under a short watchdog. Exercises the
    /// service's typed-failure path end to end.
    Hang,
}

/// A validated, fully-resolved job request.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// What to run.
    pub workload: WorkloadSpec,
    /// Cycle budget (defaults to the `SimOptions::fast` budget).
    pub max_cycles: u64,
    /// Idle-cycle fast-forwarding (default on; results identical).
    pub fast_forward: bool,
    /// Attach the runtime SC sanitizer.
    pub sanitize: bool,
    /// Record the run's memory-access trace into the results dir.
    /// Trace-recording jobs run unpreempted (a resumed run does not
    /// re-record, so slicing would truncate the artifact).
    pub record_trace: bool,
    /// Time-series sampling period in cycles (0 = off); feeds the
    /// per-slice progress events the service streams.
    pub sample_every: u64,
    /// Priority class, 0 (urgent) to `queue::CLASSES - 1`.
    pub priority: u8,
    /// Deterministic perturbation injection.
    pub chaos: Option<ChaosSpec>,
    /// Client-supplied idempotency key: a resubmission carrying the
    /// same key returns the original job id instead of double-enqueuing
    /// (the retry-after-dropped-connection safety net). Purely
    /// host-side; does not affect simulation inputs.
    pub dedup_key: Option<String>,
}

fn protocol_by_cli_name(s: &str) -> Option<ProtocolKind> {
    Some(match s {
        "mesi" => ProtocolKind::Mesi,
        "mesi-wb" => ProtocolKind::MesiWb,
        "tcs" => ProtocolKind::TcStrong,
        "tcw" => ProtocolKind::TcWeak,
        "rcc" => ProtocolKind::RccSc,
        "rcc-wo" => ProtocolKind::RccWo,
        "ideal" => ProtocolKind::IdealSc,
        _ => return None,
    })
}

fn cli_name(kind: ProtocolKind) -> &'static str {
    match kind {
        ProtocolKind::Mesi => "mesi",
        ProtocolKind::MesiWb => "mesi-wb",
        ProtocolKind::TcStrong => "tcs",
        ProtocolKind::TcWeak => "tcw",
        ProtocolKind::RccSc => "rcc",
        ProtocolKind::RccWo => "rcc-wo",
        ProtocolKind::IdealSc => "ideal",
    }
}

/// Default seed, shared with the bench harness so a bare spec matches
/// the artifacts the harness produces.
const DEFAULT_SEED: u64 = 7;

fn get_u64(obj: &JsonValue, key: &str) -> Option<u64> {
    obj.get(key).and_then(JsonValue::as_u64)
}

impl JobSpec {
    /// Parses and validates a job spec from text. Fails closed: schema
    /// violations first, then semantic ones.
    pub fn parse(text: &str) -> Result<JobSpec, SpecError> {
        let v = rcc_obs::json::parse(text)
            .map_err(|e| SpecError::new("schema", format!("not JSON: {e}")))?;
        JobSpec::from_value(&v)
    }

    /// Validates an already-parsed submission.
    pub fn from_value(v: &JsonValue) -> Result<JobSpec, SpecError> {
        let schema = rcc_obs::json::parse(rcc_bench::report::schemas::JOB)
            .map_err(|e| SpecError::new("schema", format!("job schema unreadable: {e}")))?;
        let violations = rcc_obs::schema::validate(&schema, v);
        if !violations.is_empty() {
            return Err(SpecError::new("schema", violations.join("; ")));
        }
        if get_u64(v, "version") != Some(SPEC_VERSION) {
            return Err(SpecError::new(
                "schema",
                format!("unsupported spec version (want {SPEC_VERSION})"),
            ));
        }
        let proto_name = v
            .get("protocol")
            .and_then(JsonValue::as_str)
            .unwrap_or_default();
        let protocol = protocol_by_cli_name(proto_name)
            .ok_or_else(|| SpecError::new("protocol", format!("unknown protocol {proto_name}")))?;

        let wl = v.get("workload").expect("schema guarantees workload");
        let kind = wl.get("kind").and_then(JsonValue::as_str).unwrap_or("");
        let cores = get_u64(wl, "cores")
            .map(|c| c as usize)
            .unwrap_or(GpuConfig::small().num_cores);
        if cores > 16 {
            return Err(SpecError::new(
                "workload",
                format!("cores {cores} exceeds the 16-core machine cap"),
            ));
        }
        let seed = get_u64(wl, "seed").unwrap_or(DEFAULT_SEED);
        let name = wl.get("name").and_then(JsonValue::as_str);
        let workload = match kind {
            "bench" => {
                let name =
                    name.ok_or_else(|| SpecError::new("workload", "bench jobs need a name"))?;
                let bench = Benchmark::ALL
                    .into_iter()
                    .find(|b| b.name() == name)
                    .ok_or_else(|| {
                        SpecError::new("workload", format!("unknown benchmark {name}"))
                    })?;
                let scale = match wl.get("scale").and_then(JsonValue::as_str) {
                    None => ScaleKind::Quick,
                    Some(s) => ScaleKind::parse(s)
                        .ok_or_else(|| SpecError::new("workload", format!("unknown scale {s}")))?,
                };
                WorkloadSpec::Bench {
                    bench,
                    scale,
                    cores,
                    seed,
                }
            }
            "litmus" => {
                let name =
                    name.ok_or_else(|| SpecError::new("workload", "litmus jobs need a name"))?;
                if !litmus::all(cores.max(2), seed)
                    .iter()
                    .any(|l| l.name == name)
                {
                    return Err(SpecError::new(
                        "workload",
                        format!("unknown litmus test {name}"),
                    ));
                }
                WorkloadSpec::Litmus {
                    name: name.to_string(),
                    cores,
                    seed,
                }
            }
            "hang" => {
                if name.is_some() {
                    return Err(SpecError::new("workload", "hang jobs take no name"));
                }
                WorkloadSpec::Hang
            }
            other => {
                return Err(SpecError::new(
                    "workload",
                    format!("unknown workload kind {other}"),
                ))
            }
        };

        let empty = JsonValue::Obj(Default::default());
        let opts = v.get("options").unwrap_or(&empty);
        let chaos = match opts.get("chaos") {
            None => None,
            Some(c) => {
                let profile = c.get("profile").and_then(JsonValue::as_str).unwrap_or("");
                let seed = get_u64(c, "seed").unwrap_or(0);
                let profile = ChaosProfile::by_name(profile).ok_or_else(|| {
                    SpecError::new("options", format!("unknown chaos profile {profile}"))
                })?;
                Some(ChaosSpec::new(seed, profile))
            }
        };
        let dedup_key = v
            .get("dedup_key")
            .and_then(JsonValue::as_str)
            .map(str::to_string);
        if let Some(k) = &dedup_key {
            // The in-repo validator has no minLength/maxLength keyword;
            // the schema documents the bound, this enforces it.
            if k.is_empty() || k.len() > 128 {
                return Err(SpecError::new(
                    "schema",
                    format!("dedup_key must be 1..=128 bytes, got {}", k.len()),
                ));
            }
        }
        Ok(JobSpec {
            protocol,
            workload,
            max_cycles: get_u64(opts, "max_cycles").unwrap_or(SimOptions::fast().max_cycles),
            fast_forward: opts
                .get("fast_forward")
                .and_then(JsonValue::as_bool)
                .unwrap_or(true),
            sanitize: opts
                .get("sanitize")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            record_trace: opts
                .get("record_trace")
                .and_then(JsonValue::as_bool)
                .unwrap_or(false),
            sample_every: get_u64(opts, "sample_every").unwrap_or(0),
            priority: get_u64(opts, "priority").unwrap_or(1) as u8,
            chaos,
            dedup_key,
        })
    }

    /// Resolves the spec into exactly what the driver would hand to
    /// `try_simulate`: machine, generated workload, and options.
    /// Host-side service knobs (quantum, trace paths) are layered on by
    /// the server afterwards.
    pub fn inputs(&self) -> (ProtocolKind, GpuConfig, Workload, SimOptions) {
        let mut cfg = GpuConfig::small();
        let mut opts = SimOptions {
            fast_forward: self.fast_forward,
            sanitize: self.sanitize,
            sample_every: self.sample_every,
            chaos: self.chaos.clone(),
            ..SimOptions::fast()
        };
        opts.max_cycles = self.max_cycles;
        let wl = match &self.workload {
            WorkloadSpec::Bench {
                bench,
                scale,
                cores,
                seed,
            } => {
                cfg.num_cores = (*cores).max(1);
                bench.generate(&cfg, &scale.scale(), *seed)
            }
            WorkloadSpec::Litmus { name, cores, seed } => {
                cfg.num_cores = (*cores).max(2);
                let suite = litmus::all(cfg.num_cores, *seed);
                let lit = suite
                    .iter()
                    .find(|l| l.name == name.as_str())
                    .expect("validated at parse time");
                rcc_sim::litmus::litmus_workload(lit)
            }
            WorkloadSpec::Hang => {
                cfg.watchdog_cycles = HANG_WATCHDOG;
                Workload {
                    name: "crafted-deadlock",
                    category: Sharing::IntraWorkgroup,
                    programs: vec![vec![WarpProgram::new(
                        WorkgroupId(0),
                        vec![MemOp::LocalWait { epoch: 1 }],
                    )]],
                    warps_per_workgroup: 2,
                }
            }
        };
        (self.protocol, cfg, wl, opts)
    }

    /// Deterministic normalized re-serialization: defaults filled in,
    /// fields in a fixed order. Equal canonical strings ⇒ equal
    /// simulation inputs, which the stress suite exploits to memoize
    /// its direct-simulation twins. The output itself validates against
    /// `schemas/job.schema.json`.
    pub fn to_canonical_json(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        let _ = write!(
            s,
            "{{\"version\": {SPEC_VERSION}, \"protocol\": \"{}\", \"workload\": ",
            cli_name(self.protocol)
        );
        match &self.workload {
            WorkloadSpec::Bench {
                bench,
                scale,
                cores,
                seed,
            } => {
                let _ = write!(
                    s,
                    "{{\"kind\": \"bench\", \"name\": \"{}\", \"scale\": \"{}\", \
                     \"cores\": {cores}, \"seed\": {seed}}}",
                    bench.name(),
                    scale.name()
                );
            }
            WorkloadSpec::Litmus { name, cores, seed } => {
                let _ = write!(
                    s,
                    "{{\"kind\": \"litmus\", \"name\": \"{}\", \"cores\": {cores}, \
                     \"seed\": {seed}}}",
                    crate::wire::esc(name)
                );
            }
            WorkloadSpec::Hang => s.push_str("{\"kind\": \"hang\"}"),
        }
        let _ = write!(
            s,
            ", \"options\": {{\"max_cycles\": {}, \"fast_forward\": {}, \"sanitize\": {}, \
             \"record_trace\": {}, \"sample_every\": {}, \"priority\": {}",
            self.max_cycles,
            self.fast_forward,
            self.sanitize,
            self.record_trace,
            self.sample_every,
            self.priority
        );
        if let Some(chaos) = &self.chaos {
            let _ = write!(
                s,
                ", \"chaos\": {{\"profile\": \"{}\", \"seed\": {}}}",
                chaos.profile.name, chaos.seed
            );
        }
        s.push('}');
        if let Some(key) = &self.dedup_key {
            let _ = write!(s, ", \"dedup_key\": \"{}\"", crate::wire::esc(key));
        }
        s.push('}');
        s
    }

    /// The canonical spec with the host-side idempotency key stripped:
    /// equal strings ⇒ equal *simulation inputs*, which is the
    /// memoization key byte-identity suites want.
    pub fn to_canonical_json_no_dedup(&self) -> String {
        let mut clone = self.clone();
        clone.dedup_key = None;
        clone.to_canonical_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_json_round_trips_and_validates() {
        let text = r#"{"version": 1, "protocol": "tcw",
            "workload": {"kind": "bench", "name": "hsp", "scale": "quick"},
            "options": {"sample_every": 64, "priority": 2,
                        "chaos": {"profile": "light", "seed": 3}}}"#;
        let spec = JobSpec::parse(text).expect("valid spec");
        let canon = spec.to_canonical_json();
        let reparsed = JobSpec::parse(&canon).expect("canonical form re-validates");
        assert_eq!(spec, reparsed);
        assert_eq!(canon, reparsed.to_canonical_json(), "canonical fixpoint");
    }

    #[test]
    fn dedup_key_round_trips_and_strips() {
        let text = r#"{"version": 1, "protocol": "rcc",
            "workload": {"kind": "litmus", "name": "mp"},
            "dedup_key": "client-42"}"#;
        let spec = JobSpec::parse(text).expect("valid spec");
        assert_eq!(spec.dedup_key.as_deref(), Some("client-42"));
        let canon = spec.to_canonical_json();
        let reparsed = JobSpec::parse(&canon).expect("canonical re-validates");
        assert_eq!(spec, reparsed);
        assert_eq!(canon, reparsed.to_canonical_json(), "canonical fixpoint");
        // The stripped form equals the same spec submitted without a key.
        let bare = JobSpec::parse(
            r#"{"version": 1, "protocol": "rcc",
                "workload": {"kind": "litmus", "name": "mp"}}"#,
        )
        .unwrap();
        assert_eq!(spec.to_canonical_json_no_dedup(), bare.to_canonical_json());
        // Schema rejects an empty key.
        let empty = r#"{"version": 1, "protocol": "rcc",
            "workload": {"kind": "litmus", "name": "mp"}, "dedup_key": ""}"#;
        assert_eq!(JobSpec::parse(empty).unwrap_err().kind, "schema");
    }

    #[test]
    fn semantic_rejections_are_typed() {
        let bad_bench = r#"{"version": 1, "protocol": "rcc",
            "workload": {"kind": "bench", "name": "nosuch"}}"#;
        assert_eq!(JobSpec::parse(bad_bench).unwrap_err().kind, "workload");
        let bad_litmus = r#"{"version": 1, "protocol": "rcc",
            "workload": {"kind": "litmus", "name": "mp+teleport"}}"#;
        assert_eq!(JobSpec::parse(bad_litmus).unwrap_err().kind, "workload");
        let stray = r#"{"version": 1, "protocol": "rcc",
            "workload": {"kind": "litmus", "name": "mp"}, "nope": 1}"#;
        assert_eq!(JobSpec::parse(stray).unwrap_err().kind, "schema");
    }

    #[test]
    fn hang_spec_resolves_to_short_watchdog() {
        let spec =
            JobSpec::parse(r#"{"version": 1, "protocol": "rcc", "workload": {"kind": "hang"}}"#)
                .expect("valid");
        let (_, cfg, wl, _) = spec.inputs();
        assert_eq!(cfg.watchdog_cycles, HANG_WATCHDOG);
        assert_eq!(wl.name, "crafted-deadlock");
    }
}
