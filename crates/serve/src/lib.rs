#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! `rcc-serve` — a long-running batch-simulation service.
//!
//! The service accepts simulation job requests (protocol × machine ×
//! workload × options), runs them on a bounded worker pool, and
//! persists schema-validated result artifacts. Long jobs are
//! preemptible: a worker runs one checkpoint quantum at a time via
//! [`rcc_sim::try_simulate_slice`] / [`rcc_sim::resume_slice`], parks
//! the in-memory [`rcc_sim::Checkpoint`] and requeues the job, so a
//! flood of short jobs cannot starve behind a long one — and, because a
//! resumed slice replays to its snapshot cycle and digest-verifies the
//! rebuilt state, a preempted job's results are bit-identical to an
//! uninterrupted run of the same spec (the stress suite asserts this
//! byte-for-byte).
//!
//! Layers, bottom to top:
//!
//! - [`queue`] — the pure priority-aged FIFO scheduler (provable
//!   starvation bound, deterministic for a fixed arrival order).
//! - [`spec`] — job validation: JSON Schema (`schemas/job.schema.json`)
//!   first, then semantic checks, then resolution into the exact
//!   `(ProtocolKind, GpuConfig, Workload, SimOptions)` the driver's
//!   `try_simulate` would use.
//! - [`store`] — result summaries, typed job errors (hang dumps
//!   attached), and the on-disk artifact/manifest writer, all validated
//!   against `schemas/job_result.schema.json` /
//!   `schemas/job_manifest.schema.json` before anything is written.
//! - [`journal`] — the `RCCJ` write-ahead journal: every lifecycle
//!   transition fsync'd before it takes effect, torn tails tolerated,
//!   interior corruption failed closed, so a `kill -9` loses at most
//!   the in-flight quantum and recovery is bit-identical.
//! - [`server`] — the worker pool, the in-process [`server::Server`]
//!   API the tests drive, and the line-delimited JSON TCP front end.
//! - [`wire`] — the fail-closed wire protocol (bounded frames, typed
//!   [`wire::WireError`] rejections; malformed input can never kill the
//!   accept loop or a worker).
//!
//! The worker pool generalizes `rcc_bench::pool::run_yielding` — the
//! same cooperative `Slice { Done, Yield }` step shape — to dynamic
//! arrivals with priorities; a fixed batch of specs can equivalently be
//! driven through the bench pool, which is exactly how the stress suite
//! cross-checks the service against direct simulation.

pub mod journal;
pub mod queue;
pub mod server;
pub mod spec;
pub mod store;
pub mod wire;

pub use journal::{Journal, JournalError, Record, Replay};
pub use queue::Sched;
pub use server::{Counts, Server, ServerConfig, ServiceStats, Submission};
pub use spec::{JobSpec, SpecError, WorkloadSpec};
pub use store::{JobError, JobState, ResultSummary};
