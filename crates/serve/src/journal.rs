//! The `RCCJ` write-ahead journal: crash durability for the service.
//!
//! Every job lifecycle transition — submitted, started, preempted (with
//! the full `RCCK` checkpoint bytes embedded), finished, failed,
//! quarantined, and the clean-shutdown drain marker — is appended to a
//! single journal file and fsync'd before the transition is considered
//! to have happened. On startup [`Journal::open`] replays the file and
//! the server rebuilds its job table and priority queue from the
//! records alone, so a `kill -9` at any instant loses at most the
//! in-flight quantum: preempted jobs resume from their last journaled,
//! digest-verified checkpoint and finish bit-identical to an
//! uninterrupted run.
//!
//! ## Format
//!
//! Built on the [`rcc_common::snap`] codec (little-endian, zero
//! dependencies), mirroring the `RCCT` trace container's discipline:
//!
//! ```text
//! "RCCJ" magic (4 bytes) | version u32 (=1)
//! per record: payload_len u32 | payload bytes | fnv1a64(payload) u64
//! ```
//!
//! ## Corruption policy (asymmetric by design)
//!
//! - A **truncated tail** — a trailing frame with fewer bytes than its
//!   header promises — is what a crash mid-append legitimately leaves
//!   behind. Replay tolerates it: the partial frame is discarded and
//!   the file truncated back to the last complete record.
//! - **Interior corruption** — a digest mismatch, an undecodable
//!   payload, an insane length, a bad header — can only come from disk
//!   rot or a bug, where guessing would silently diverge the rebuilt
//!   state from what actually ran. Replay fails closed with a typed
//!   [`JournalError::Corrupt`] naming the byte offset.
//!
//! Fault injection (IO error, torn write, bit flip, delayed fsync,
//! kill points) threads through [`rcc_chaos::service::ServiceInjector`]
//! so the recovery soak can "kill -9" the durable layer at seeded
//! record indices purely through on-disk state.

use crate::store::{JobError, ResultSummary};
use rcc_chaos::service::{ServiceInjector, WriteFault};
use rcc_common::snap::{SnapReader, SnapWriter, StateDigest};
use std::fs::{File, OpenOptions};
use std::io::{Read as _, Seek, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Journal container magic.
pub const MAGIC: [u8; 4] = *b"RCCJ";
/// Journal format version.
pub const VERSION: u32 = 1;
/// Fail-closed cap on a single record's payload: anything larger is a
/// corrupt length field, not a real record (checkpoints are the biggest
/// payload and sit far below this).
pub const MAX_RECORD: usize = 1 << 28;

/// Replay failure. `Io` covers the file layer; `Corrupt` is the typed
/// fail-closed verdict on interior damage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum JournalError {
    /// Filesystem-level failure (open, read, write, sync, truncate).
    Io(String),
    /// Interior corruption: replay refuses to guess.
    Corrupt {
        /// Byte offset of the offending frame.
        offset: u64,
        /// What was wrong.
        detail: String,
    },
}

impl std::fmt::Display for JournalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            JournalError::Io(e) => write!(f, "journal io error: {e}"),
            JournalError::Corrupt { offset, detail } => {
                write!(f, "journal corrupt at byte {offset}: {detail}")
            }
        }
    }
}

impl std::error::Error for JournalError {}

/// One journaled lifecycle transition.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A job was admitted: id, priority class, canonical spec, and the
    /// optional idempotency key.
    Submitted {
        /// Dense job id (equals the record's position in the id space).
        id: u64,
        /// Priority class at admission.
        priority: u8,
        /// Canonical spec JSON (re-validates on replay).
        spec_json: String,
        /// Client-supplied idempotency key, if any.
        dedup_key: Option<String>,
    },
    /// A worker picked the job up for 0-based retry `attempt`.
    Started {
        /// Job id.
        id: u64,
        /// 0-based attempt number.
        attempt: u32,
    },
    /// The job parked on a checkpoint; the full `RCCK` bytes ride in
    /// the record so recovery can resume without any in-memory state.
    Preempted {
        /// Job id.
        id: u64,
        /// Quanta executed so far.
        slices: u64,
        /// Preemptions so far.
        preemptions: u64,
        /// `Checkpoint::encode()` bytes.
        checkpoint: Vec<u8>,
    },
    /// Terminal: finished with a result summary.
    Finished {
        /// Job id.
        id: u64,
        /// Quanta executed.
        slices: u64,
        /// Preemptions.
        preemptions: u64,
        /// The pure-simulation result.
        summary: ResultSummary,
    },
    /// Terminal: failed with a typed error.
    Failed {
        /// Job id.
        id: u64,
        /// Quanta executed.
        slices: u64,
        /// Preemptions.
        preemptions: u64,
        /// The typed failure.
        error: JobError,
    },
    /// Terminal: quarantined after exhausting retries; carries the last
    /// panic payload or hang dump.
    Quarantined {
        /// Job id.
        id: u64,
        /// Attempts consumed (equals `max_attempts`).
        attempts: u32,
        /// The last failure observed.
        error: JobError,
    },
    /// Clean-shutdown marker: the drain completed and the manifest was
    /// written before exit.
    Drained,
}

/// Maps a decoded error-kind string back to the `&'static str` taxonomy
/// [`JobError`] carries. Unknown kinds (from a future version) collapse
/// to `internal` rather than being invented.
fn intern_kind(s: &str) -> &'static str {
    match s {
        "deadlock" => "deadlock",
        "cycles-exceeded" => "cycles-exceeded",
        "protocol-invariant" => "protocol-invariant",
        "sc-violation" => "sc-violation",
        "sanitizer-violation" => "sanitizer-violation",
        "probe-missing" => "probe-missing",
        "checkpoint" => "checkpoint",
        "trace" => "trace",
        "panic" => "panic",
        "hang" => "hang",
        "store" => "store",
        "journal" => "journal",
        "spec" => "spec",
        _ => "internal",
    }
}

fn write_error(w: &mut SnapWriter, e: &JobError) {
    w.str(e.kind);
    w.str(&e.detail);
    match &e.hang_dump {
        Some(d) => {
            w.bool(true);
            w.str(d);
        }
        None => w.bool(false),
    }
}

fn read_error(r: &mut SnapReader) -> Result<JobError, rcc_common::snap::SnapError> {
    let kind = intern_kind(&r.str()?);
    let detail = r.str()?;
    let hang_dump = if r.bool()? { Some(r.str()?) } else { None };
    Ok(JobError {
        kind,
        detail,
        hang_dump,
    })
}

fn write_summary(w: &mut SnapWriter, s: &ResultSummary) {
    w.str(&s.protocol);
    w.str(&s.workload);
    w.u64(s.cycles);
    w.u64(s.issued);
    w.u64(s.mem_ops);
    w.u64(s.sc_violations);
    w.u64(s.metrics_digest);
}

fn read_summary(r: &mut SnapReader) -> Result<ResultSummary, rcc_common::snap::SnapError> {
    Ok(ResultSummary {
        protocol: r.str()?,
        workload: r.str()?,
        cycles: r.u64()?,
        issued: r.u64()?,
        mem_ops: r.u64()?,
        sc_violations: r.u64()?,
        metrics_digest: r.u64()?,
    })
}

impl Record {
    /// Encodes the record payload (no frame header/digest).
    pub fn encode(&self) -> Vec<u8> {
        let mut w = SnapWriter::new();
        match self {
            Record::Submitted {
                id,
                priority,
                spec_json,
                dedup_key,
            } => {
                w.u8(1);
                w.u64(*id);
                w.u8(*priority);
                w.str(spec_json);
                match dedup_key {
                    Some(k) => {
                        w.bool(true);
                        w.str(k);
                    }
                    None => w.bool(false),
                }
            }
            Record::Started { id, attempt } => {
                w.u8(2);
                w.u64(*id);
                w.u32(*attempt);
            }
            Record::Preempted {
                id,
                slices,
                preemptions,
                checkpoint,
            } => {
                w.u8(3);
                w.u64(*id);
                w.u64(*slices);
                w.u64(*preemptions);
                w.bytes(checkpoint);
            }
            Record::Finished {
                id,
                slices,
                preemptions,
                summary,
            } => {
                w.u8(4);
                w.u64(*id);
                w.u64(*slices);
                w.u64(*preemptions);
                write_summary(&mut w, summary);
            }
            Record::Failed {
                id,
                slices,
                preemptions,
                error,
            } => {
                w.u8(5);
                w.u64(*id);
                w.u64(*slices);
                w.u64(*preemptions);
                write_error(&mut w, error);
            }
            Record::Quarantined {
                id,
                attempts,
                error,
            } => {
                w.u8(6);
                w.u64(*id);
                w.u32(*attempts);
                write_error(&mut w, error);
            }
            Record::Drained => w.u8(7),
        }
        w.into_bytes()
    }

    /// Decodes one record payload, consuming it fully.
    pub fn decode(bytes: &[u8]) -> Result<Record, String> {
        let mut r = SnapReader::new(bytes);
        let rec = (|| -> Result<Record, rcc_common::snap::SnapError> {
            let tag = r.u8()?;
            let rec = match tag {
                1 => Record::Submitted {
                    id: r.u64()?,
                    priority: r.u8()?,
                    spec_json: r.str()?,
                    dedup_key: if r.bool()? { Some(r.str()?) } else { None },
                },
                2 => Record::Started {
                    id: r.u64()?,
                    attempt: r.u32()?,
                },
                3 => Record::Preempted {
                    id: r.u64()?,
                    slices: r.u64()?,
                    preemptions: r.u64()?,
                    checkpoint: r.bytes()?,
                },
                4 => Record::Finished {
                    id: r.u64()?,
                    slices: r.u64()?,
                    preemptions: r.u64()?,
                    summary: read_summary(&mut r)?,
                },
                5 => Record::Failed {
                    id: r.u64()?,
                    slices: r.u64()?,
                    preemptions: r.u64()?,
                    error: read_error(&mut r)?,
                },
                6 => Record::Quarantined {
                    id: r.u64()?,
                    attempts: r.u32()?,
                    error: read_error(&mut r)?,
                },
                7 => Record::Drained,
                other => {
                    return Err(rcc_common::snap::SnapError(format!(
                        "unknown record tag {other}"
                    )))
                }
            };
            r.done()?;
            Ok(rec)
        })();
        rec.map_err(|e| e.0)
    }

    /// The job id the record is about (`None` for markers).
    pub fn job_id(&self) -> Option<u64> {
        match self {
            Record::Submitted { id, .. }
            | Record::Started { id, .. }
            | Record::Preempted { id, .. }
            | Record::Finished { id, .. }
            | Record::Failed { id, .. }
            | Record::Quarantined { id, .. } => Some(*id),
            Record::Drained => None,
        }
    }

    /// True for records that end a job's lifecycle.
    pub fn is_terminal(&self) -> bool {
        matches!(
            self,
            Record::Finished { .. } | Record::Failed { .. } | Record::Quarantined { .. }
        )
    }
}

fn fnv64(bytes: &[u8]) -> u64 {
    let mut d = StateDigest::new();
    d.write_bytes(bytes);
    d.finish()
}

/// Frames a payload for the journal: length prefix, payload, digest.
pub fn encode_frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 12);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out
}

/// What a replay recovered.
#[derive(Debug, Clone, PartialEq)]
pub struct Replay {
    /// Every complete, digest-verified record, in append order.
    pub records: Vec<Record>,
    /// Byte offset just past the last complete record (where appending
    /// resumes after truncating a torn tail).
    pub good_len: u64,
    /// True when a trailing partial frame was discarded.
    pub torn_tail: bool,
}

/// Replays journal bytes. Tolerates a truncated tail; fails closed on
/// anything interior (see the module docs for the rationale).
pub fn replay_bytes(bytes: &[u8]) -> Result<Replay, JournalError> {
    if bytes.is_empty() {
        return Ok(Replay {
            records: Vec::new(),
            good_len: 0,
            torn_tail: false,
        });
    }
    if bytes.len() < 8 {
        return Err(JournalError::Corrupt {
            offset: 0,
            detail: format!("file holds {} bytes, header needs 8", bytes.len()),
        });
    }
    if bytes[..4] != MAGIC {
        return Err(JournalError::Corrupt {
            offset: 0,
            detail: format!("bad magic {:02x?}, want \"RCCJ\"", &bytes[..4]),
        });
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if version != VERSION {
        return Err(JournalError::Corrupt {
            offset: 4,
            detail: format!("unsupported journal version {version} (want {VERSION})"),
        });
    }
    let mut records = Vec::new();
    let mut pos = 8usize;
    loop {
        if pos == bytes.len() {
            return Ok(Replay {
                records,
                good_len: pos as u64,
                torn_tail: false,
            });
        }
        let frame_start = pos;
        if bytes.len() - pos < 4 {
            return Ok(Replay {
                records,
                good_len: frame_start as u64,
                torn_tail: true,
            });
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes")) as usize;
        if len > MAX_RECORD {
            return Err(JournalError::Corrupt {
                offset: frame_start as u64,
                detail: format!("record length {len} exceeds the {MAX_RECORD}-byte cap"),
            });
        }
        pos += 4;
        if bytes.len() - pos < len + 8 {
            return Ok(Replay {
                records,
                good_len: frame_start as u64,
                torn_tail: true,
            });
        }
        let payload = &bytes[pos..pos + len];
        pos += len;
        let stored = u64::from_le_bytes(bytes[pos..pos + 8].try_into().expect("8 bytes"));
        pos += 8;
        if fnv64(payload) != stored {
            return Err(JournalError::Corrupt {
                offset: frame_start as u64,
                detail: format!(
                    "record digest mismatch: stored {stored:016x}, computed {:016x}",
                    fnv64(payload)
                ),
            });
        }
        let rec = Record::decode(payload).map_err(|e| JournalError::Corrupt {
            offset: frame_start as u64,
            detail: format!("undecodable record: {e}"),
        })?;
        records.push(rec);
    }
}

/// The append side of the journal. One instance per server; appends are
/// serialized by the server's state lock.
#[derive(Debug)]
pub struct Journal {
    file: File,
    path: PathBuf,
    /// Current good length (everything before it is complete records).
    len: u64,
    /// Records in the file across its whole lifetime (replayed + new) —
    /// the absolute index fault injection keys on.
    appended: u64,
    fsync: bool,
    injector: Option<Arc<ServiceInjector>>,
    /// Kill switch shared with the store: once set, every durable write
    /// is silently dropped, emulating a dead process. Recovery then
    /// depends on on-disk state alone.
    killed: Arc<AtomicBool>,
}

impl Journal {
    /// Opens (creating if absent) and replays the journal at `path`.
    /// A torn tail is truncated away; interior corruption fails closed.
    pub fn open(
        path: &Path,
        fsync: bool,
        injector: Option<Arc<ServiceInjector>>,
        killed: Arc<AtomicBool>,
    ) -> Result<(Journal, Replay), JournalError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| JournalError::Io(format!("create {}: {e}", parent.display())))?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)
            .map_err(|e| JournalError::Io(format!("open {}: {e}", path.display())))?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)
            .map_err(|e| JournalError::Io(format!("read {}: {e}", path.display())))?;
        let replay = replay_bytes(&bytes)?;
        let mut journal = Journal {
            file,
            path: path.to_path_buf(),
            len: replay.good_len,
            appended: replay.records.len() as u64,
            fsync,
            injector,
            killed,
        };
        if bytes.is_empty() {
            let mut header = Vec::with_capacity(8);
            header.extend_from_slice(&MAGIC);
            header.extend_from_slice(&VERSION.to_le_bytes());
            journal.write_at_end(&header, true)?;
            journal.len = 8;
        } else if replay.good_len < bytes.len() as u64 {
            // Torn tail: restore the invariant that the file ends on a
            // record boundary before appending anything new.
            journal
                .file
                .set_len(replay.good_len)
                .map_err(|e| JournalError::Io(format!("truncate torn tail: {e}")))?;
        }
        Ok((journal, replay))
    }

    fn write_at_end(&mut self, bytes: &[u8], sync: bool) -> Result<(), JournalError> {
        self.file
            .seek(SeekFrom::Start(self.len))
            .map_err(|e| JournalError::Io(format!("seek: {e}")))?;
        self.file
            .write_all(bytes)
            .map_err(|e| JournalError::Io(format!("write: {e}")))?;
        if sync {
            self.file
                .sync_data()
                .map_err(|e| JournalError::Io(format!("fsync: {e}")))?;
        }
        Ok(())
    }

    /// Appends one record, fsync'd before returning (unless the journal
    /// was opened with `fsync: false`, or a fault says otherwise).
    /// Returns the record's absolute index.
    pub fn append(&mut self, rec: &Record) -> Result<u64, JournalError> {
        if self.killed.load(Ordering::SeqCst) {
            // The "process" died: writes go nowhere, callers don't know.
            return Ok(self.appended);
        }
        let index = self.appended;
        let mut frame = encode_frame(&rec.encode());
        if let Some(inj) = self.injector.clone() {
            if inj.kill_at(index) {
                // Die mid-append: a prefix of the frame lands, then the
                // kill switch drops everything after it.
                let cut = inj.torn_cut(index, frame.len());
                let partial = frame[..cut].to_vec();
                self.write_at_end(&partial, true)?;
                self.killed.store(true, Ordering::SeqCst);
                return Ok(index);
            }
            match inj.journal_fault(index) {
                WriteFault::None => {}
                WriteFault::IoError => {
                    return Err(JournalError::Io(format!(
                        "injected io error on record {index}"
                    )));
                }
                WriteFault::TornWrite => {
                    // A live process sees the short write, truncates the
                    // tail back, and reports a typed error: the record
                    // did NOT happen.
                    let cut = inj.torn_cut(index, frame.len());
                    let partial = frame[..cut].to_vec();
                    self.write_at_end(&partial, false)?;
                    self.file
                        .set_len(self.len)
                        .map_err(|e| JournalError::Io(format!("truncate after tear: {e}")))?;
                    return Err(JournalError::Io(format!(
                        "injected torn write on record {index} (truncated back)"
                    )));
                }
                WriteFault::BitFlip => {
                    // Silent in-flight corruption: the append "succeeds",
                    // replay must detect it and fail closed.
                    let bit = (index % (frame.len() as u64 * 8)) as usize;
                    frame[bit / 8] ^= 1 << (bit % 8);
                }
                WriteFault::DelayedFsync => {
                    self.write_at_end(&frame, false)?;
                    self.len += frame.len() as u64;
                    self.appended += 1;
                    return Ok(index);
                }
            }
        }
        self.write_at_end(&frame, self.fsync)?;
        self.len += frame.len() as u64;
        self.appended += 1;
        Ok(index)
    }

    /// Records appended across the journal's lifetime (replayed + new).
    pub fn records(&self) -> u64 {
        self.appended
    }

    /// True once a kill point fired (durable writes are being dropped).
    pub fn killed(&self) -> bool {
        self.killed.load(Ordering::SeqCst)
    }

    /// The journal file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Submitted {
                id: 0,
                priority: 1,
                spec_json: "{\"version\": 1}".into(),
                dedup_key: Some("k-0".into()),
            },
            Record::Started { id: 0, attempt: 0 },
            Record::Preempted {
                id: 0,
                slices: 1,
                preemptions: 1,
                checkpoint: vec![1, 2, 3, 4, 5],
            },
            Record::Finished {
                id: 0,
                slices: 2,
                preemptions: 1,
                summary: ResultSummary {
                    protocol: "rcc".into(),
                    workload: "mp".into(),
                    cycles: 100,
                    issued: 50,
                    mem_ops: 20,
                    sc_violations: 0,
                    metrics_digest: 0xdead_beef,
                },
            },
            Record::Failed {
                id: 1,
                slices: 1,
                preemptions: 0,
                error: JobError {
                    kind: "deadlock",
                    detail: "no progress".into(),
                    hang_dump: Some("{\"x\": 1}".into()),
                },
            },
            Record::Quarantined {
                id: 2,
                attempts: 3,
                error: JobError {
                    kind: "panic",
                    detail: "boom".into(),
                    hang_dump: None,
                },
            },
            Record::Drained,
        ]
    }

    fn journal_bytes(records: &[Record]) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&VERSION.to_le_bytes());
        for r in records {
            bytes.extend_from_slice(&encode_frame(&r.encode()));
        }
        bytes
    }

    #[test]
    fn records_round_trip() {
        for rec in sample_records() {
            let decoded = Record::decode(&rec.encode()).expect("round trip");
            assert_eq!(decoded, rec);
        }
    }

    #[test]
    fn replay_reads_everything_back() {
        let recs = sample_records();
        let replay = replay_bytes(&journal_bytes(&recs)).expect("replays");
        assert_eq!(replay.records, recs);
        assert!(!replay.torn_tail);
    }

    #[test]
    fn torn_tail_is_tolerated() {
        let recs = sample_records();
        let bytes = journal_bytes(&recs);
        let full = replay_bytes(&bytes).unwrap();
        // Chop into the last frame (anywhere short of complete).
        let cut = bytes.len() - 3;
        let replay = replay_bytes(&bytes[..cut]).expect("torn tail tolerated");
        assert!(replay.torn_tail);
        assert_eq!(replay.records.len(), recs.len() - 1);
        assert!(replay.good_len < full.good_len);
    }

    #[test]
    fn interior_flip_fails_closed() {
        let bytes = journal_bytes(&sample_records());
        // Flip a payload bit of the first record (offset 8 is its length
        // field; 12 is inside its payload).
        let mut bad = bytes.clone();
        bad[13] ^= 0x10;
        match replay_bytes(&bad) {
            Err(JournalError::Corrupt { .. }) => {}
            other => panic!("expected Corrupt, got {other:?}"),
        }
    }

    #[test]
    fn bad_header_fails_closed() {
        assert!(matches!(
            replay_bytes(b"RCCX\x01\x00\x00\x00"),
            Err(JournalError::Corrupt { .. })
        ));
        assert!(matches!(
            replay_bytes(b"RCCJ\x09\x00\x00\x00"),
            Err(JournalError::Corrupt { .. })
        ));
        assert!(matches!(
            replay_bytes(b"RCC"),
            Err(JournalError::Corrupt { .. })
        ));
    }

    #[test]
    fn append_and_reopen_round_trips() {
        let dir = std::env::temp_dir().join(format!("rccj-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.rccj");
        let _ = std::fs::remove_file(&path);
        let killed = Arc::new(AtomicBool::new(false));
        let (mut j, replay) = Journal::open(&path, true, None, killed.clone()).unwrap();
        assert!(replay.records.is_empty());
        for rec in sample_records() {
            j.append(&rec).unwrap();
        }
        drop(j);
        let (_, replay) = Journal::open(&path, true, None, killed).unwrap();
        assert_eq!(replay.records, sample_records());
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn unknown_error_kind_interns_to_internal() {
        let mut w = SnapWriter::new();
        w.u8(6);
        w.u64(9);
        w.u32(2);
        w.str("mystery-kind");
        w.str("detail");
        w.bool(false);
        let rec = Record::decode(&w.into_bytes()).unwrap();
        match rec {
            Record::Quarantined { error, .. } => assert_eq!(error.kind, "internal"),
            other => panic!("{other:?}"),
        }
    }
}
