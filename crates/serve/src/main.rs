//! `rcc-serve` — the batch-simulation service binary.
//!
//! ```text
//! USAGE: rcc-serve [--addr HOST:PORT] [--workers N] [--quantum CYCLES]
//!                  [--aging N] [--results-dir PATH] [--journal PATH]
//!                  [--max-queue N] [--shed-queue N] [--max-attempts N]
//!                  [--backoff-ms MS] [--wedge-timeout-ms MS]
//!                  [--max-conns N] [--no-fsync]
//!
//!   --addr             bind address (default 127.0.0.1:0; the chosen
//!                      port is printed as "listening on HOST:PORT")
//!   --workers          worker threads (default 2)
//!   --quantum          preemption quantum in cycles (default 50000;
//!                      0 disables preemption)
//!   --aging            scheduler aging rate (default 4)
//!   --results-dir      persist job artifacts + manifest here
//!   --journal          write-ahead journal path; replayed on start,
//!                      so a killed service resumes where it left off
//!   --max-queue        bound on queued jobs (default 0 = unbounded);
//!                      past it submits get a typed overloaded reply
//!   --shed-queue       queue depth that sheds priority-3 jobs
//!                      (default 3/4 of --max-queue)
//!   --max-attempts     crash retries before quarantine (default 3)
//!   --backoff-ms       base retry backoff, doubling per attempt (100)
//!   --wedge-timeout-ms abandon + replace a worker stuck this long on
//!                      one slice (default 0 = watchdog off)
//!   --max-conns        concurrent TCP connection cap (default 64)
//!   --no-fsync         skip per-record journal fsync (tests only)
//!
//! Speak line-delimited JSON to the printed address:
//!   {"cmd": "submit", "spec": {...}}   -> {"ok": true, "job": N}
//!   {"cmd": "status", "job": N}
//!   {"cmd": "watch", "job": N}         (streams progress events)
//!   {"cmd": "list"}
//!   {"cmd": "shutdown"}
//! ```

use rcc_serve::server::{
    DEFAULT_BACKOFF_MS, DEFAULT_MAX_ATTEMPTS, DEFAULT_MAX_CONNS, DEFAULT_QUANTUM,
};
use rcc_serve::{Server, ServerConfig};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let get = |flag: &str| -> Option<String> {
        args.iter()
            .position(|a| a == flag)
            .and_then(|i| args.get(i + 1).cloned())
    };
    if args.iter().any(|a| a == "--help" || a == "-h") {
        println!(
            "{}",
            include_str!("main.rs")
                .lines()
                .skip(2)
                .take(34)
                .map(|l| l.trim_start_matches("//!").strip_prefix(' ').unwrap_or(""))
                .collect::<Vec<_>>()
                .join("\n")
        );
        return ExitCode::SUCCESS;
    }
    let cfg = ServerConfig {
        workers: get("--workers").and_then(|s| s.parse().ok()).unwrap_or(2),
        quantum: get("--quantum")
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_QUANTUM),
        aging: get("--aging").and_then(|s| s.parse().ok()).unwrap_or(4),
        results_dir: get("--results-dir").map(Into::into),
        journal: get("--journal").map(Into::into),
        fsync: !args.iter().any(|a| a == "--no-fsync"),
        max_queue: get("--max-queue").and_then(|s| s.parse().ok()).unwrap_or(0),
        shed_queue: get("--shed-queue")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0),
        max_attempts: get("--max-attempts")
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_MAX_ATTEMPTS),
        backoff_ms: get("--backoff-ms")
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_BACKOFF_MS),
        wedge_timeout_ms: get("--wedge-timeout-ms")
            .and_then(|s| s.parse().ok())
            .unwrap_or(0),
        max_conns: get("--max-conns")
            .and_then(|s| s.parse().ok())
            .unwrap_or(DEFAULT_MAX_CONNS),
        faults: None,
    };
    let addr = get("--addr").unwrap_or_else(|| "127.0.0.1:0".into());
    let server = match Server::start(cfg) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    };
    let local = match server.listen(&addr) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            let _ = server.shutdown();
            return ExitCode::FAILURE;
        }
    };
    println!("listening on {local}");
    server.wait_for_shutdown_request();
    match server.shutdown() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
