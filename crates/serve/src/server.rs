//! The service itself: worker pool, in-process API, TCP front end.
//!
//! A [`Server`] owns a bounded pool of worker threads draining the
//! priority-aged [`crate::queue::Sched`]. A worker never runs a job to
//! completion blindly: it executes **one checkpoint quantum** via
//! [`rcc_sim::try_simulate_slice`] (or [`rcc_sim::resume_slice`] for a
//! parked job), and a job that yields is re-admitted behind its class
//! peers with its in-memory [`Checkpoint`] stored on the record. Resume
//! replays to the snapshot cycle and digest-verifies the rebuilt state,
//! so preemption is invisible in the results — and a corrupted snapshot
//! surfaces as a typed `checkpoint` failure on that job, never a wedged
//! worker.
//!
//! ## Durability
//!
//! With [`ServerConfig::journal`] set, every lifecycle transition is
//! appended to the `RCCJ` write-ahead journal **before** it takes
//! effect in memory (submitted, started, preempted — with the full
//! `RCCK` checkpoint bytes embedded — finished, failed, quarantined,
//! drained). [`Server::start`] replays the journal, rebuilds the job
//! table and priority queue, resumes preempted jobs from their last
//! digest-verified checkpoint, and re-persists any terminal artifact
//! the crash swallowed — so a `kill -9` loses at most the in-flight
//! quantum and recovered results are bit-identical to an uninterrupted
//! run.
//!
//! ## Supervision
//!
//! Every failure path is typed: simulation errors map through
//! [`JobError::from_sim`] (deadlocks carry their hang dump), a
//! panicking slice is caught, and a wall-clock watchdog
//! ([`ServerConfig::wedge_timeout_ms`]) abandons wedged workers and
//! spawns replacements. Crash-style failures (`panic`, `hang`) are
//! retried with deterministic exponential backoff up to
//! [`ServerConfig::max_attempts`], then quarantined with the last panic
//! payload or hang dump attached; deterministic simulation failures
//! fail immediately — retrying a deadlock reproduces it.
//!
//! ## Degradation
//!
//! Admission is bounded ([`ServerConfig::max_queue`]): past the cap,
//! submissions get a typed [`Submission::Overloaded`] with a
//! retry-after hint instead of unbounded queue growth, and best-effort
//! priority-3 jobs are shed earlier ([`ServerConfig::shed_queue`]).
//! The TCP front end caps concurrent connections
//! ([`ServerConfig::max_conns`]) by parking the acceptor — backpressure
//! lands in the kernel backlog, not the heap. Shutdown drains
//! gracefully: in-flight slices park on journaled checkpoints, the
//! manifest is written, and a `Drained` marker closes the journal.

use crate::journal::{Journal, Record};
use crate::queue::Sched;
use crate::spec::JobSpec;
use crate::store::{JobError, JobRecord, JobState, ResultSummary, Store};
use crate::wire::{self, Request, WireError};
use rcc_chaos::service::{ServiceFaultSpec, ServiceInjector, WorkerFault};
use rcc_sim::{Checkpoint, SimOptions, SliceOutcome};
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Default crash-retry budget before quarantine.
pub const DEFAULT_MAX_ATTEMPTS: u32 = 3;
/// Default base retry backoff (doubles per consumed attempt).
pub const DEFAULT_BACKOFF_MS: u64 = 100;
/// Default concurrent-connection cap for the TCP front end.
pub const DEFAULT_MAX_CONNS: usize = 64;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Preemption quantum in cycles; 0 runs every job to completion.
    pub quantum: u64,
    /// Scheduler aging rate (dispatches per class of earned urgency).
    pub aging: u64,
    /// Results directory; `None` keeps everything in memory.
    pub results_dir: Option<PathBuf>,
    /// Write-ahead journal path; `None` runs without durability.
    pub journal: Option<PathBuf>,
    /// Fsync each journal record (leave on outside of tests).
    pub fsync: bool,
    /// Admission cap on queued (not-yet-running) jobs; 0 = unbounded.
    pub max_queue: usize,
    /// Queue depth at which priority-3 jobs are shed; 0 derives
    /// 3/4 × `max_queue` (and stays off when that is unbounded).
    pub shed_queue: usize,
    /// Crash retries (panic/wedge) before quarantine; min 1.
    pub max_attempts: u32,
    /// Base backoff between crash retries; doubles per attempt.
    pub backoff_ms: u64,
    /// Wall-clock watchdog: a worker stuck on one slice this long is
    /// abandoned and replaced. 0 disables the watchdog.
    pub wedge_timeout_ms: u64,
    /// Concurrent TCP connection cap; 0 = unbounded.
    pub max_conns: usize,
    /// Service-level fault injection (tests/soaks only).
    pub faults: Option<ServiceFaultSpec>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            quantum: 0,
            aging: 4,
            results_dir: None,
            journal: None,
            fsync: true,
            max_queue: 0,
            shed_queue: 0,
            max_attempts: DEFAULT_MAX_ATTEMPTS,
            backoff_ms: DEFAULT_BACKOFF_MS,
            wedge_timeout_ms: 0,
            max_conns: DEFAULT_MAX_CONNS,
            faults: None,
        }
    }
}

/// Outcome of a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// The job was admitted under this id.
    Accepted {
        /// Dense job id; the handle for status/watch.
        id: u64,
        /// True when an idempotent resubmit matched an existing job by
        /// `dedup_key` (the id is the original job's).
        duplicate: bool,
    },
    /// The job was rejected with a typed reason; nothing was queued.
    Rejected {
        /// Rejection category (see [`crate::spec::SpecError`]).
        kind: String,
        /// Human-readable reason.
        detail: String,
    },
    /// The queue is full (or shedding best-effort work); nothing was
    /// queued. Resubmit after the hint.
    Overloaded {
        /// Jobs queued at rejection time.
        queued: usize,
        /// Deterministic resubmit hint.
        retry_after_ms: u64,
        /// True when this was priority-3 load shedding (the queue had
        /// room, but not for best-effort work).
        shed: bool,
    },
}

/// Per-state job counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Counts {
    /// Waiting in the scheduler (including retry backoff).
    pub queued: usize,
    /// On a worker right now.
    pub running: usize,
    /// Finished with a summary.
    pub done: usize,
    /// Failed with a typed error.
    pub failed: usize,
    /// Quarantined after exhausting crash retries.
    pub quarantined: usize,
}

impl Counts {
    /// Every job the service has ever accepted.
    pub fn total(&self) -> usize {
        self.queued + self.running + self.done + self.failed + self.quarantined
    }
}

/// Durability / degradation counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceStats {
    /// Journal records across its lifetime (replayed + appended).
    pub journal_records: u64,
    /// Journal appends that failed (durability degraded, not lost
    /// correctness: the in-memory state stayed authoritative).
    pub journal_errors: u64,
    /// Artifact writes that failed (the journal still has the result).
    pub store_errors: u64,
    /// True once an injected kill point fired.
    pub killed: bool,
}

/// One per-slice progress event, streamed by `watch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Job id.
    pub job: u64,
    /// Slice ordinal (1 = first quantum).
    pub slice: u64,
    /// Simulated cycle reached.
    pub cycle: u64,
    /// Instructions issued so far.
    pub issued: u64,
    /// Memory operations performed so far.
    pub mem_ops: u64,
    /// Rows the rcc-obs time-series sampler has collected so far
    /// (0 when the job did not request sampling).
    pub samples: u64,
}

impl ProgressEvent {
    /// Wire form.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"event\": \"progress\", \"job\": {}, \"slice\": {}, \"cycle\": {}, \
             \"issued\": {}, \"mem_ops\": {}, \"samples\": {}}}",
            self.job, self.slice, self.cycle, self.issued, self.mem_ops, self.samples
        )
    }
}

struct Job {
    record: JobRecord,
    spec: JobSpec,
    /// Parked mid-run state between quanta.
    ck: Option<Box<Checkpoint>>,
    /// Fault injection: corrupt the next snapshot this job parks on.
    corrupt_next: bool,
    events: Vec<ProgressEvent>,
    /// Bumped when the watchdog abandons an attempt: a stale worker's
    /// outcome for an older epoch is dropped, so a job is never
    /// double-resolved by its abandoned thread.
    epoch: u64,
    /// True once the current attempt's `Started` record is journaled.
    attempt_started: bool,
}

struct Busy {
    job: usize,
    epoch: u64,
    since: Instant,
    /// Observed by injected wedges (and shutdown) to unblock.
    abandon: Arc<AtomicBool>,
}

struct WorkerSlot {
    /// Generation: bumped when the watchdog replaces the thread; the
    /// old thread notices and exits without touching shared state.
    gen: u64,
    busy: Option<Busy>,
}

struct State {
    jobs: Vec<Job>,
    sched: Sched,
    /// Scheduler token → job index, for everything currently queued.
    token_to_job: BTreeMap<u64, usize>,
    /// Crash-retried jobs waiting out their backoff: (due, job index).
    deferred: Vec<(Instant, usize)>,
    /// Idempotency: dedup_key → job id.
    dedup: BTreeMap<String, u64>,
    workers: Vec<WorkerSlot>,
    journal: Option<Journal>,
    journal_errors: u64,
    store_errors: u64,
    /// Jobs not yet terminal.
    active: usize,
    shutdown: bool,
    addr: Option<SocketAddr>,
}

struct Inner {
    state: Mutex<State>,
    /// Signaled when work lands in the queue (workers wait here).
    work: Condvar,
    /// Signaled on any job state change (watchers/waiters wait here).
    change: Condvar,
    store: Store,
    quantum: u64,
    max_attempts: u32,
    backoff_ms: u64,
    max_queue: usize,
    shed_queue: usize,
    max_conns: usize,
    injector: Option<Arc<ServiceInjector>>,
    killed: Arc<AtomicBool>,
    /// Open TCP connections, gated by `max_conns`.
    conns: Mutex<usize>,
    conn_done: Condvar,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The batch-simulation service. Cheap to clone; all clones share one
/// state.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

struct Task {
    id: usize,
    spec: JobSpec,
    ck: Option<Box<Checkpoint>>,
    attempt: u32,
    epoch: u64,
    abandon: Arc<AtomicBool>,
}

enum QuantumOutcome {
    Finished(Box<rcc_sim::RunMetrics>),
    Preempted {
        ck: Box<Checkpoint>,
        progress: Box<rcc_sim::SliceProgress>,
    },
    Failed(JobError),
}

/// Crash-style failures get retried; deterministic simulation failures
/// do not (retrying a deadlock reproduces the deadlock).
fn retryable(err: &JobError) -> bool {
    matches!(err.kind, "panic" | "hang")
}

/// Appends to the journal when one is configured. An append failure
/// degrades durability (counted), never in-memory correctness.
fn journal_append(st: &mut State, rec: &Record) -> Result<(), String> {
    let Some(j) = st.journal.as_mut() else {
        return Ok(());
    };
    match j.append(rec) {
        Ok(_) => Ok(()),
        Err(e) => {
            st.journal_errors += 1;
            Err(e.to_string())
        }
    }
}

/// Persists a terminal job's artifact, counting (not propagating)
/// failures: the journal/in-memory record stays authoritative.
fn persist_record(st: &mut State, inner: &Inner, id: usize) {
    if let Err(e) = inner.store.persist(&st.jobs[id].record) {
        st.store_errors += 1;
        eprintln!("rcc-serve: artifact for job {id} not persisted: {e}");
    }
}

/// Moves due retry-backoff jobs into the scheduler; returns the
/// earliest still-pending deadline (for a worker's timed wait).
fn promote_deferred(st: &mut State) -> Option<Instant> {
    let now = Instant::now();
    let mut earliest: Option<Instant> = None;
    let mut i = 0;
    while i < st.deferred.len() {
        let (due, id) = st.deferred[i];
        if due <= now {
            st.deferred.swap_remove(i);
            let priority = st.jobs[id].record.priority;
            let token = st.sched.push(priority);
            st.token_to_job.insert(token, id);
        } else {
            earliest = Some(earliest.map_or(due, |e| e.min(due)));
            i += 1;
        }
    }
    earliest
}

/// A crashed attempt (panic or wedge): consume a retry, defer behind a
/// deterministic exponential backoff, or quarantine once the budget is
/// spent. `ck_back` restores the parked checkpoint the attempt was
/// resuming, so a retry replays the exact same slice.
fn handle_crash(
    st: &mut State,
    inner: &Inner,
    id: usize,
    err: JobError,
    ck_back: Option<Box<Checkpoint>>,
) {
    let attempts = {
        let job = &mut st.jobs[id];
        job.record.attempts += 1;
        job.attempt_started = false;
        job.record.attempts
    };
    if attempts >= inner.max_attempts.max(1) {
        {
            let job = &mut st.jobs[id];
            job.record.state = JobState::Quarantined;
            job.record.error = Some(err.clone());
            job.ck = None;
        }
        let _ = journal_append(
            st,
            &Record::Quarantined {
                id: id as u64,
                attempts,
                error: err,
            },
        );
        persist_record(st, inner, id);
        st.active -= 1;
    } else {
        let delay = (inner.backoff_ms << (attempts - 1).min(6)).clamp(1, 5_000);
        let job = &mut st.jobs[id];
        job.ck = ck_back;
        job.record.state = JobState::Queued;
        st.deferred
            .push((Instant::now() + Duration::from_millis(delay), id));
        inner.work.notify_all();
    }
}

fn run_quantum(inner: &Inner, task: &Task) -> QuantumOutcome {
    if let Some(inj) = &inner.injector {
        if matches!(
            inj.worker_fault(task.id as u64, task.attempt),
            WorkerFault::Wedge
        ) {
            // Injected hang: burn wall-clock until the watchdog (or
            // shutdown) abandons this worker, then report as a hang so
            // the stale outcome is dropped by the epoch check.
            while !task.abandon.load(Ordering::SeqCst) {
                std::thread::sleep(Duration::from_millis(2));
            }
            return QuantumOutcome::Failed(JobError::internal(
                "hang",
                format!("injected wedge on job {} released", task.id),
            ));
        }
    }
    let res = catch_unwind(AssertUnwindSafe(|| {
        if let Some(inj) = &inner.injector {
            if matches!(
                inj.worker_fault(task.id as u64, task.attempt),
                WorkerFault::Panic
            ) {
                panic!(
                    "injected worker panic (job {}, attempt {})",
                    task.id, task.attempt
                );
            }
        }
        if let Some(ck) = &task.ck {
            return rcc_sim::resume_slice(ck);
        }
        let (kind, cfg, wl, mut opts) = task.spec.inputs();
        if task.spec.record_trace {
            // A resumed run does not re-record, so trace jobs run as one
            // uninterrupted quantum through the plain driver path.
            opts.record_trace = inner.store.trace_path(task.id as u64);
            return rcc_sim::try_simulate(kind, &cfg, &wl, &opts)
                .map(|m| SliceOutcome::Finished(Box::new(m)));
        }
        opts.quantum = inner.quantum;
        rcc_sim::try_simulate_slice(kind, &cfg, &wl, &opts)
    }));
    match res {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker slice panicked".into());
            QuantumOutcome::Failed(JobError::internal("panic", msg))
        }
        Ok(Err(e)) => QuantumOutcome::Failed(JobError::from_sim(&e)),
        Ok(Ok(SliceOutcome::Finished(m))) => QuantumOutcome::Finished(m),
        Ok(Ok(SliceOutcome::Preempted { ck, progress })) => {
            QuantumOutcome::Preempted { ck, progress }
        }
    }
}

fn worker_loop(inner: &Inner, slot: usize, my_gen: u64) {
    loop {
        let mut task = {
            let mut st = inner.state.lock().expect("server state poisoned");
            loop {
                if st.shutdown || st.workers[slot].gen != my_gen {
                    return;
                }
                let next_due = promote_deferred(&mut st);
                if let Some(token) = st.sched.pop() {
                    let id = st
                        .token_to_job
                        .remove(&token)
                        .expect("scheduler token maps to a job");
                    let (spec, ck, attempt, epoch, need_start) = {
                        let job = &mut st.jobs[id];
                        job.record.state = JobState::Running;
                        let need = !job.attempt_started;
                        job.attempt_started = true;
                        (
                            job.spec.clone(),
                            job.ck.take(),
                            job.record.attempts,
                            job.epoch,
                            need,
                        )
                    };
                    if need_start {
                        let _ = journal_append(
                            &mut st,
                            &Record::Started {
                                id: id as u64,
                                attempt,
                            },
                        );
                    }
                    let abandon = Arc::new(AtomicBool::new(false));
                    st.workers[slot].busy = Some(Busy {
                        job: id,
                        epoch,
                        since: Instant::now(),
                        abandon: Arc::clone(&abandon),
                    });
                    break Task {
                        id,
                        spec,
                        ck,
                        attempt,
                        epoch,
                        abandon,
                    };
                }
                st = match next_due {
                    Some(due) => {
                        let wait = due
                            .saturating_duration_since(Instant::now())
                            .max(Duration::from_millis(1));
                        inner
                            .work
                            .wait_timeout(st, wait)
                            .expect("server state poisoned")
                            .0
                    }
                    None => inner.work.wait(st).expect("server state poisoned"),
                };
            }
        };
        let outcome = run_quantum(inner, &task);
        let mut st = inner.state.lock().expect("server state poisoned");
        if st.workers[slot].gen != my_gen {
            // The watchdog abandoned this thread mid-quantum: a
            // replacement owns the slot and the job was already
            // retried or quarantined. Exit without touching anything.
            return;
        }
        st.workers[slot].busy = None;
        if st.jobs[task.id].epoch != task.epoch {
            inner.change.notify_all();
            continue;
        }
        let priority = st.jobs[task.id].record.priority;
        match outcome {
            QuantumOutcome::Finished(m) => {
                let summary = ResultSummary::from_metrics(&m);
                let (slices, preemptions) = {
                    let job = &mut st.jobs[task.id];
                    job.record.slices += 1;
                    job.record.summary = Some(summary.clone());
                    job.record.state = JobState::Done;
                    (job.record.slices, job.record.preemptions)
                };
                let _ = journal_append(
                    &mut st,
                    &Record::Finished {
                        id: task.id as u64,
                        slices,
                        preemptions,
                        summary,
                    },
                );
                persist_record(&mut st, inner, task.id);
                st.active -= 1;
            }
            QuantumOutcome::Failed(err) if retryable(&err) => {
                handle_crash(&mut st, inner, task.id, err, task.ck.take());
            }
            QuantumOutcome::Failed(err) => {
                let (slices, preemptions) = {
                    let job = &mut st.jobs[task.id];
                    job.record.slices += 1;
                    job.record.state = JobState::Failed;
                    job.record.error = Some(err.clone());
                    (job.record.slices, job.record.preemptions)
                };
                let _ = journal_append(
                    &mut st,
                    &Record::Failed {
                        id: task.id as u64,
                        slices,
                        preemptions,
                        error: err,
                    },
                );
                persist_record(&mut st, inner, task.id);
                st.active -= 1;
            }
            QuantumOutcome::Preempted { mut ck, progress } => {
                let (ck_bytes, slices, preemptions) = {
                    let job = &mut st.jobs[task.id];
                    if std::mem::take(&mut job.corrupt_next) {
                        ck.state_digest ^= 0xdead_beef_dead_beef;
                    }
                    job.record.slices += 1;
                    job.record.preemptions += 1;
                    let samples = progress
                        .obs
                        .as_ref()
                        .map(|o| o.series.rows() as u64)
                        .unwrap_or(0);
                    job.events.push(ProgressEvent {
                        job: task.id as u64,
                        slice: job.record.slices,
                        cycle: progress.cycle,
                        issued: progress.issued,
                        mem_ops: progress.mem_ops,
                        samples,
                    });
                    (ck.encode(), job.record.slices, job.record.preemptions)
                };
                // Journal the parked state before exposing it: on-disk
                // never lags what a restart would need.
                let _ = journal_append(
                    &mut st,
                    &Record::Preempted {
                        id: task.id as u64,
                        slices,
                        preemptions,
                        checkpoint: ck_bytes,
                    },
                );
                let job = &mut st.jobs[task.id];
                job.ck = Some(ck);
                job.record.state = JobState::Queued;
                let token = st.sched.requeue(priority);
                st.token_to_job.insert(token, task.id);
                inner.work.notify_one();
            }
        }
        inner.change.notify_all();
    }
}

/// The wall-clock watchdog: abandons workers stuck on one slice past
/// the wedge timeout, retries/quarantines their job, and spawns a
/// replacement thread into the same slot.
fn supervisor_loop(inner: &Arc<Inner>, timeout: Duration) {
    let poll = (timeout / 4).max(Duration::from_millis(10));
    let mut st = inner.state.lock().expect("server state poisoned");
    loop {
        if st.shutdown {
            return;
        }
        let now = Instant::now();
        let wedged: Vec<usize> = st
            .workers
            .iter()
            .enumerate()
            .filter(|(_, w)| {
                w.busy
                    .as_ref()
                    .is_some_and(|b| now.duration_since(b.since) >= timeout)
            })
            .map(|(i, _)| i)
            .collect();
        for slot in wedged {
            let Some(busy) = st.workers[slot].busy.take() else {
                continue;
            };
            busy.abandon.store(true, Ordering::SeqCst);
            st.workers[slot].gen += 1;
            let gen = st.workers[slot].gen;
            let id = busy.job;
            if st.jobs[id].epoch == busy.epoch {
                st.jobs[id].epoch += 1;
                let waited = now.duration_since(busy.since).as_millis() as u64;
                let attempt = st.jobs[id].record.attempts;
                let mut err = JobError::internal(
                    "hang",
                    format!("worker wedged for {waited}ms on job {id} (attempt {attempt})"),
                );
                err.hang_dump = Some(format!(
                    "{{\"kind\": \"wedge\", \"worker\": {slot}, \"waited_ms\": {waited}, \
                     \"attempt\": {attempt}}}"
                ));
                // The abandoned thread owns the checkpoint it was
                // resuming; a retry restarts the job from scratch.
                handle_crash(&mut st, inner, id, err, None);
            }
            let inner2 = Arc::clone(inner);
            if let Ok(h) = std::thread::Builder::new()
                .name(format!("rcc-serve-worker-{slot}g{gen}"))
                .spawn(move || worker_loop(&inner2, slot, gen))
            {
                inner.handles.lock().expect("handle list poisoned").push(h);
            }
            inner.change.notify_all();
        }
        st = inner
            .change
            .wait_timeout(st, poll)
            .expect("server state poisoned")
            .0;
    }
}

fn job_mut(st: &mut State, id: u64) -> Result<&mut Job, String> {
    let len = st.jobs.len();
    st.jobs
        .get_mut(id as usize)
        .ok_or_else(|| format!("journal replay: record for unknown job {id} ({len} submitted)"))
}

/// Rebuilds the job table from replayed journal records. Fails closed
/// on semantic inconsistency (out-of-order ids, invalid specs,
/// undecodable checkpoints): guessing would diverge from what ran.
fn rebuild_from_journal(st: &mut State, records: &[Record], quantum: u64) -> Result<(), String> {
    for rec in records {
        match rec {
            Record::Submitted {
                id,
                priority,
                spec_json,
                dedup_key,
            } => {
                let next = st.jobs.len() as u64;
                if *id != next {
                    return Err(format!(
                        "journal replay: job {id} submitted out of order (expected {next})"
                    ));
                }
                let spec = JobSpec::parse(spec_json)
                    .map_err(|e| format!("journal replay: job {id} spec rejected: {}", e.detail))?;
                st.jobs.push(Job {
                    record: JobRecord {
                        id: *id,
                        state: JobState::Queued,
                        spec_json: spec_json.clone(),
                        priority: *priority,
                        slices: 0,
                        preemptions: 0,
                        attempts: 0,
                        dedup_key: dedup_key.clone(),
                        summary: None,
                        error: None,
                    },
                    spec,
                    ck: None,
                    corrupt_next: false,
                    events: Vec::new(),
                    epoch: 0,
                    attempt_started: false,
                });
                if let Some(k) = dedup_key {
                    st.dedup.insert(k.clone(), *id);
                }
            }
            Record::Started { id, attempt } => {
                let job = job_mut(st, *id)?;
                job.record.attempts = (*attempt).max(job.record.attempts);
            }
            Record::Preempted {
                id,
                slices,
                preemptions,
                checkpoint,
            } => {
                let mut ck = Checkpoint::decode(checkpoint)
                    .map_err(|e| format!("journal replay: job {id} checkpoint: {e}"))?;
                // The preemption quantum is a host knob, deliberately
                // not serialized in RCCK; re-impose this server's.
                ck.opts.quantum = quantum;
                let job = job_mut(st, *id)?;
                job.ck = Some(Box::new(ck));
                job.record.slices = *slices;
                job.record.preemptions = *preemptions;
            }
            Record::Finished {
                id,
                slices,
                preemptions,
                summary,
            } => {
                let job = job_mut(st, *id)?;
                job.record.state = JobState::Done;
                job.record.slices = *slices;
                job.record.preemptions = *preemptions;
                job.record.summary = Some(summary.clone());
                job.ck = None;
            }
            Record::Failed {
                id,
                slices,
                preemptions,
                error,
            } => {
                let job = job_mut(st, *id)?;
                job.record.state = JobState::Failed;
                job.record.slices = *slices;
                job.record.preemptions = *preemptions;
                job.record.error = Some(error.clone());
                job.ck = None;
            }
            Record::Quarantined {
                id,
                attempts,
                error,
            } => {
                let job = job_mut(st, *id)?;
                job.record.state = JobState::Quarantined;
                job.record.attempts = *attempts;
                job.record.error = Some(error.clone());
                job.ck = None;
            }
            Record::Drained => {}
        }
    }
    // Requeue every non-terminal job in id order: preempted ones resume
    // from their journaled checkpoint, the rest start fresh.
    for idx in 0..st.jobs.len() {
        let (priority, terminal) = {
            let j = &st.jobs[idx];
            (j.record.priority, j.record.state.terminal())
        };
        if terminal {
            continue;
        }
        st.jobs[idx].record.state = JobState::Queued;
        let token = st.sched.push(priority);
        st.token_to_job.insert(token, idx);
        st.active += 1;
    }
    Ok(())
}

/// Releases a TCP connection slot on scope exit (even if the handler
/// errors out early).
struct ConnSlot(Server);

impl Drop for ConnSlot {
    fn drop(&mut self) {
        let mut n = self.0.inner.conns.lock().expect("conn count poisoned");
        *n = n.saturating_sub(1);
        self.0.inner.conn_done.notify_one();
    }
}

impl Server {
    /// Starts the worker pool, replaying the journal first when one is
    /// configured. No sockets yet — tests drive the in-process API
    /// directly; call [`Server::listen`] for TCP.
    pub fn start(cfg: ServerConfig) -> Result<Server, String> {
        let killed = Arc::new(AtomicBool::new(false));
        let injector = cfg
            .faults
            .clone()
            .map(|s| Arc::new(ServiceInjector::new(s)));
        let store = Store::with_faults(
            cfg.results_dir.clone(),
            injector.clone(),
            Arc::clone(&killed),
        )?;
        let mut journal = None;
        let mut replayed = Vec::new();
        if let Some(path) = &cfg.journal {
            let (j, replay) = Journal::open(path, cfg.fsync, injector.clone(), Arc::clone(&killed))
                .map_err(|e| e.to_string())?;
            replayed = replay.records;
            journal = Some(j);
        }
        let workers = cfg.workers.max(1);
        let mut st = State {
            jobs: Vec::new(),
            sched: Sched::new(cfg.aging),
            token_to_job: BTreeMap::new(),
            deferred: Vec::new(),
            dedup: BTreeMap::new(),
            workers: (0..workers)
                .map(|_| WorkerSlot { gen: 0, busy: None })
                .collect(),
            journal,
            journal_errors: 0,
            store_errors: 0,
            active: 0,
            shutdown: false,
            addr: None,
        };
        rebuild_from_journal(&mut st, &replayed, cfg.quantum)?;
        let shed_queue = if cfg.shed_queue > 0 {
            cfg.shed_queue
        } else if cfg.max_queue > 0 {
            (cfg.max_queue * 3) / 4
        } else {
            0
        };
        let inner = Arc::new(Inner {
            state: Mutex::new(st),
            work: Condvar::new(),
            change: Condvar::new(),
            store,
            quantum: cfg.quantum,
            max_attempts: cfg.max_attempts.max(1),
            backoff_ms: cfg.backoff_ms,
            max_queue: cfg.max_queue,
            shed_queue,
            max_conns: cfg.max_conns,
            injector,
            killed,
            conns: Mutex::new(0),
            conn_done: Condvar::new(),
            handles: Mutex::new(Vec::new()),
        });
        {
            // Re-persist any terminal artifact a crash swallowed: the
            // journal has the result, the results dir may not.
            let mut st = inner.state.lock().expect("server state poisoned");
            for id in 0..st.jobs.len() {
                if !st.jobs[id].record.state.terminal() {
                    continue;
                }
                let missing = inner
                    .store
                    .artifact_path(id as u64)
                    .map(|p| !p.exists())
                    .unwrap_or(false);
                if missing {
                    persist_record(&mut st, &inner, id);
                }
            }
        }
        let mut handles = Vec::new();
        for i in 0..workers {
            let inner2 = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rcc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner2, i, 0))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }
        if cfg.wedge_timeout_ms > 0 {
            let inner2 = Arc::clone(&inner);
            let timeout = Duration::from_millis(cfg.wedge_timeout_ms);
            handles.push(
                std::thread::Builder::new()
                    .name("rcc-serve-supervisor".into())
                    .spawn(move || supervisor_loop(&inner2, timeout))
                    .map_err(|e| format!("spawn supervisor: {e}"))?,
            );
        }
        inner
            .handles
            .lock()
            .expect("handle list poisoned")
            .extend(handles);
        if !replayed.is_empty() {
            inner.work.notify_all();
        }
        Ok(Server { inner })
    }

    /// Submits a job from raw JSON text.
    pub fn submit_json(&self, text: &str) -> Submission {
        match JobSpec::parse(text) {
            Ok(spec) => self.submit_spec(spec),
            Err(e) => Submission::Rejected {
                kind: e.kind.to_string(),
                detail: e.detail,
            },
        }
    }

    /// Submits an already-parsed spec value.
    pub fn submit_value(&self, v: &rcc_obs::json::JsonValue) -> Submission {
        match JobSpec::from_value(v) {
            Ok(spec) => self.submit_spec(spec),
            Err(e) => Submission::Rejected {
                kind: e.kind.to_string(),
                detail: e.detail,
            },
        }
    }

    /// Admits a validated spec into the queue: idempotent on
    /// `dedup_key`, bounded by `max_queue`, shedding priority-3 work
    /// under pressure, and journaled before it is acknowledged.
    pub fn submit_spec(&self, spec: JobSpec) -> Submission {
        if spec.record_trace && !self.inner.store.persistent() {
            return Submission::Rejected {
                kind: "options".into(),
                detail: "record_trace requires a results dir".into(),
            };
        }
        let mut st = self.inner.state.lock().expect("server state poisoned");
        if st.shutdown {
            return Submission::Rejected {
                kind: "shutdown".into(),
                detail: "server is shutting down".into(),
            };
        }
        let spec_json = spec.to_canonical_json();
        if let Some(key) = &spec.dedup_key {
            if let Some(&existing) = st.dedup.get(key) {
                if st.jobs[existing as usize].record.spec_json == spec_json {
                    return Submission::Accepted {
                        id: existing,
                        duplicate: true,
                    };
                }
                return Submission::Rejected {
                    kind: "dedup".into(),
                    detail: format!("dedup_key reused by job {existing} with a different spec"),
                };
            }
        }
        let queued = st.token_to_job.len() + st.deferred.len();
        let retry_after_ms = ((queued as u64) * 25).clamp(100, 10_000);
        if self.inner.max_queue > 0 && queued >= self.inner.max_queue {
            return Submission::Overloaded {
                queued,
                retry_after_ms,
                shed: false,
            };
        }
        if spec.priority == 3 && self.inner.shed_queue > 0 && queued >= self.inner.shed_queue {
            return Submission::Overloaded {
                queued,
                retry_after_ms,
                shed: true,
            };
        }
        let id = st.jobs.len() as u64;
        if let Err(e) = journal_append(
            &mut st,
            &Record::Submitted {
                id,
                priority: spec.priority,
                spec_json: spec_json.clone(),
                dedup_key: spec.dedup_key.clone(),
            },
        ) {
            // Fail closed at admission: a job the journal never saw
            // would silently vanish on restart.
            return Submission::Rejected {
                kind: "journal".into(),
                detail: format!("not admitted: {e}"),
            };
        }
        let token = st.sched.push(spec.priority);
        let idx = st.jobs.len();
        st.token_to_job.insert(token, idx);
        if let Some(key) = &spec.dedup_key {
            st.dedup.insert(key.clone(), id);
        }
        st.jobs.push(Job {
            record: JobRecord {
                id,
                state: JobState::Queued,
                spec_json,
                priority: spec.priority,
                slices: 0,
                preemptions: 0,
                attempts: 0,
                dedup_key: spec.dedup_key.clone(),
                summary: None,
                error: None,
            },
            spec,
            ck: None,
            corrupt_next: false,
            events: Vec::new(),
            epoch: 0,
            attempt_started: false,
        });
        st.active += 1;
        self.inner.work.notify_one();
        Submission::Accepted {
            id,
            duplicate: false,
        }
    }

    /// A snapshot of one job's record.
    pub fn status(&self, id: u64) -> Option<JobRecord> {
        let st = self.inner.state.lock().expect("server state poisoned");
        st.jobs.get(id as usize).map(|j| j.record.clone())
    }

    /// The progress events a job has emitted so far.
    pub fn progress(&self, id: u64) -> Option<Vec<ProgressEvent>> {
        let st = self.inner.state.lock().expect("server state poisoned");
        st.jobs.get(id as usize).map(|j| j.events.clone())
    }

    /// Blocks until the job is terminal; returns its final record.
    pub fn wait(&self, id: u64) -> Option<JobRecord> {
        let mut st = self.inner.state.lock().expect("server state poisoned");
        loop {
            let job = st.jobs.get(id as usize)?;
            if job.record.state.terminal() {
                return Some(job.record.clone());
            }
            st = self.inner.change.wait(st).expect("server state poisoned");
        }
    }

    /// Blocks until no job is queued or running.
    pub fn wait_idle(&self) {
        let mut st = self.inner.state.lock().expect("server state poisoned");
        while st.active > 0 {
            let (guard, _) = self
                .inner
                .change
                .wait_timeout(st, Duration::from_millis(100))
                .expect("server state poisoned");
            st = guard;
        }
    }

    /// Fault-injection hook for the preemption-fidelity suite: corrupts
    /// job `id`'s mid-run snapshot — directly if it is parked on one,
    /// or the next one it parks on if a worker is mid-quantum (blocking
    /// until either happens). The next resume must then fail with a
    /// typed `checkpoint` error on this job — and only this job.
    /// Returns false when the job finished before it could be hit.
    pub fn corrupt_checkpoint(&self, id: u64) -> bool {
        let mut st = self.inner.state.lock().expect("server state poisoned");
        loop {
            let Some(job) = st.jobs.get_mut(id as usize) else {
                return false;
            };
            if job.record.state.terminal() {
                return false;
            }
            if job.record.state == JobState::Queued {
                if let Some(ck) = &mut job.ck {
                    ck.state_digest ^= 0xdead_beef_dead_beef;
                    return true;
                }
            } else if job.record.state == JobState::Running {
                job.corrupt_next = true;
                return true;
            }
            st = self.inner.change.wait(st).expect("server state poisoned");
        }
    }

    /// Per-state job counts.
    pub fn counts(&self) -> Counts {
        let st = self.inner.state.lock().expect("server state poisoned");
        let mut c = Counts::default();
        for j in &st.jobs {
            match j.record.state {
                JobState::Queued => c.queued += 1,
                JobState::Running => c.running += 1,
                JobState::Done => c.done += 1,
                JobState::Failed => c.failed += 1,
                JobState::Quarantined => c.quarantined += 1,
            }
        }
        c
    }

    /// Durability / degradation counters.
    pub fn stats(&self) -> ServiceStats {
        let st = self.inner.state.lock().expect("server state poisoned");
        ServiceStats {
            journal_records: st.journal.as_ref().map(Journal::records).unwrap_or(0),
            journal_errors: st.journal_errors,
            store_errors: st.store_errors,
            killed: self.inner.killed.load(Ordering::SeqCst),
        }
    }

    /// Asks the service to stop: no new submissions, workers park their
    /// current slice at the next checkpoint, the accept loop unblocks.
    pub fn request_shutdown(&self) {
        let addr = {
            let mut st = self.inner.state.lock().expect("server state poisoned");
            st.shutdown = true;
            for w in &st.workers {
                if let Some(b) = &w.busy {
                    // Releases injected wedges so drain cannot hang on a
                    // fault that only the (now exiting) watchdog clears.
                    b.abandon.store(true, Ordering::SeqCst);
                }
            }
            st.addr
        };
        self.inner.work.notify_all();
        self.inner.change.notify_all();
        self.inner.conn_done.notify_all();
        if let Some(addr) = addr {
            // Unblock the acceptor.
            let _ = TcpStream::connect(addr);
        }
    }

    /// Full stop: requests shutdown, joins every thread (in-flight
    /// slices park on journaled checkpoints), writes the results
    /// manifest, then closes the journal with a `Drained` marker.
    /// Idempotent.
    pub fn shutdown(&self) -> Result<(), String> {
        self.request_shutdown();
        loop {
            // The supervisor may spawn replacement workers while we
            // join; drain until the handle list stays empty.
            let handles: Vec<_> = self
                .inner
                .handles
                .lock()
                .expect("handle list poisoned")
                .drain(..)
                .collect();
            if handles.is_empty() {
                break;
            }
            for h in handles {
                let _ = h.join();
            }
        }
        let records: Vec<JobRecord> = {
            let st = self.inner.state.lock().expect("server state poisoned");
            st.jobs.iter().map(|j| j.record.clone()).collect()
        };
        let manifest = self.inner.store.write_manifest(&records);
        if manifest.is_ok() {
            let mut st = self.inner.state.lock().expect("server state poisoned");
            let _ = journal_append(&mut st, &Record::Drained);
        }
        manifest.map(|_| ())
    }

    /// Blocks until something requests shutdown (the TCP `shutdown`
    /// verb, or [`Server::request_shutdown`] from another thread).
    pub fn wait_for_shutdown_request(&self) {
        let mut st = self.inner.state.lock().expect("server state poisoned");
        while !st.shutdown {
            st = self.inner.change.wait(st).expect("server state poisoned");
        }
    }

    fn is_shutdown(&self) -> bool {
        self.inner
            .state
            .lock()
            .expect("server state poisoned")
            .shutdown
    }

    /// Blocks until a connection slot frees up (accept backpressure);
    /// false when shutdown arrived instead.
    fn acquire_conn_slot(&self) -> bool {
        let mut n = self.inner.conns.lock().expect("conn count poisoned");
        loop {
            if self.is_shutdown() {
                return false;
            }
            if self.inner.max_conns == 0 || *n < self.inner.max_conns {
                *n += 1;
                return true;
            }
            n = self
                .inner
                .conn_done
                .wait_timeout(n, Duration::from_millis(100))
                .expect("conn count poisoned")
                .0;
        }
    }

    /// Binds `addr` and starts the accept loop. Returns the bound
    /// address (use port 0 to let the OS pick).
    pub fn listen(&self, addr: &str) -> Result<SocketAddr, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        self.inner.state.lock().expect("server state poisoned").addr = Some(local);
        let server = self.clone();
        let handle = std::thread::Builder::new()
            .name("rcc-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if server.is_shutdown() {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    // Accept backpressure: at the cap, the acceptor
                    // parks here and later connections wait in the
                    // kernel backlog instead of spawning threads.
                    if !server.acquire_conn_slot() {
                        break;
                    }
                    let conn_server = server.clone();
                    // Connection threads are detached; they exit on EOF,
                    // socket error, or server shutdown.
                    let spawned = std::thread::Builder::new()
                        .name("rcc-serve-conn".into())
                        .spawn(move || {
                            let _slot = ConnSlot(conn_server.clone());
                            conn_server.handle_conn(stream);
                        });
                    if spawned.is_err() {
                        // The slot's Drop never ran in the thread.
                        drop(ConnSlot(server.clone()));
                    }
                }
            })
            .map_err(|e| format!("spawn acceptor: {e}"))?;
        self.inner
            .handles
            .lock()
            .expect("handle list poisoned")
            .push(handle);
        Ok(local)
    }

    /// Wire form of one job's status.
    fn status_line(&self, id: u64) -> String {
        match self.status(id) {
            None => wire::error_line("request", &format!("no such job {id}")),
            Some(rec) => record_json(&rec),
        }
    }

    fn handle_conn(&self, stream: TcpStream) {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut out = stream;
        loop {
            let frame = match wire::read_frame(&mut reader) {
                Ok(Some(f)) => f,
                Ok(None) | Err(_) => return,
            };
            let reply = match frame.and_then(|line| wire::parse_request(&line)) {
                Err(WireError { kind, detail }) => wire::error_line(kind, &detail),
                Ok(Request::Submit(spec)) => match self.submit_value(&spec) {
                    Submission::Accepted { id, duplicate } => {
                        format!("{{\"ok\": true, \"job\": {id}, \"duplicate\": {duplicate}}}")
                    }
                    Submission::Rejected { kind, detail } => wire::error_line(&kind, &detail),
                    Submission::Overloaded {
                        queued,
                        retry_after_ms,
                        shed,
                    } => format!(
                        "{{\"ok\": false, \"error\": {{\"kind\": \"{}\", \"detail\": \
                         \"queue holds {queued} jobs\", \"retry_after_ms\": {retry_after_ms}}}}}",
                        if shed { "shed" } else { "overloaded" }
                    ),
                },
                Ok(Request::Status(id)) => self.status_line(id),
                Ok(Request::List) => {
                    let c = self.counts();
                    format!(
                        "{{\"ok\": true, \"jobs\": {}, \"queued\": {}, \"running\": {}, \
                         \"done\": {}, \"failed\": {}, \"quarantined\": {}}}",
                        c.total(),
                        c.queued,
                        c.running,
                        c.done,
                        c.failed,
                        c.quarantined
                    )
                }
                Ok(Request::Shutdown) => {
                    let _ = writeln!(out, "{{\"ok\": true, \"stopping\": true}}");
                    self.request_shutdown();
                    return;
                }
                Ok(Request::Watch(id)) => {
                    if self.stream_watch(id, &mut out).is_err() {
                        return;
                    }
                    continue;
                }
            };
            if writeln!(out, "{reply}").is_err() {
                return;
            }
        }
    }

    /// Streams progress events for `id` until it is terminal, then the
    /// final status line.
    fn stream_watch(&self, id: u64, out: &mut TcpStream) -> std::io::Result<()> {
        {
            let st = self.inner.state.lock().expect("server state poisoned");
            if st.jobs.get(id as usize).is_none() {
                drop(st);
                writeln!(out, "{}", wire::error_line("request", "no such job"))?;
                return Ok(());
            }
        }
        let mut cursor = 0usize;
        loop {
            let (events, terminal) = {
                let mut st = self.inner.state.lock().expect("server state poisoned");
                loop {
                    let job = &st.jobs[id as usize];
                    if job.events.len() > cursor || job.record.state.terminal() || st.shutdown {
                        break (
                            job.events[cursor..].to_vec(),
                            job.record.state.terminal() || st.shutdown,
                        );
                    }
                    let (guard, _) = self
                        .inner
                        .change
                        .wait_timeout(st, Duration::from_millis(200))
                        .expect("server state poisoned");
                    st = guard;
                }
            };
            for e in &events {
                writeln!(out, "{}", e.to_json())?;
            }
            cursor += events.len();
            if terminal {
                writeln!(out, "{}", self.status_line(id))?;
                return Ok(());
            }
        }
    }
}

/// Wire/status JSON for a job record.
pub fn record_json(rec: &JobRecord) -> String {
    format!(
        "{{\"ok\": true, \"job\": {}, \"state\": \"{}\", \"priority\": {}, \
         \"slices\": {}, \"preemptions\": {}, \"attempts\": {}, \"result\": {}, \"error\": {}}}",
        rec.id,
        rec.state.label(),
        rec.priority,
        rec.slices,
        rec.preemptions,
        rec.attempts,
        rec.summary
            .as_ref()
            .map(ResultSummary::to_json)
            .unwrap_or_else(|| "null".into()),
        rec.error
            .as_ref()
            .map(JobError::to_json)
            .unwrap_or_else(|| "null".into()),
    )
}

/// The default quantum the `rcc-serve` binary advertises: long enough
/// that a quick job finishes in one slice, short enough that a
/// full-scale run yields many times.
pub const DEFAULT_QUANTUM: u64 = 50_000;

/// Convenience used by the binary and CI smoke: options a direct
/// driver invocation would use for the same spec (for diffing a service
/// artifact against `try_simulate`).
pub fn direct_options(spec: &JobSpec) -> SimOptions {
    let (_, _, _, opts) = spec.inputs();
    opts
}
