//! The service itself: worker pool, in-process API, TCP front end.
//!
//! A [`Server`] owns a bounded pool of worker threads draining the
//! priority-aged [`crate::queue::Sched`]. A worker never runs a job to
//! completion blindly: it executes **one checkpoint quantum** via
//! [`rcc_sim::try_simulate_slice`] (or [`rcc_sim::resume_slice`] for a
//! parked job), and a job that yields is re-admitted behind its class
//! peers with its in-memory [`Checkpoint`] stored on the record. Resume
//! replays to the snapshot cycle and digest-verifies the rebuilt state,
//! so preemption is invisible in the results — and a corrupted snapshot
//! surfaces as a typed `checkpoint` failure on that job, never a wedged
//! worker.
//!
//! Every failure path is typed: simulation errors map through
//! [`JobError::from_sim`] (deadlocks carry their hang dump), a
//! panicking slice is caught and recorded as an internal error, and the
//! worker loop survives all of it. The TCP front end speaks the
//! fail-closed [`crate::wire`] protocol; `watch` streams the per-slice
//! progress events (cycle, issued instructions, memory operations, and
//! the sample count from the rcc-obs time-series sampler) until the job
//! is terminal.

use crate::queue::Sched;
use crate::spec::JobSpec;
use crate::store::{JobError, JobRecord, JobState, ResultSummary, Store};
use crate::wire::{self, Request, WireError};
use rcc_sim::{Checkpoint, SimOptions, SliceOutcome};
use std::collections::BTreeMap;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

/// Service configuration.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads (clamped to at least 1).
    pub workers: usize,
    /// Preemption quantum in cycles; 0 runs every job to completion.
    pub quantum: u64,
    /// Scheduler aging rate (dispatches per class of earned urgency).
    pub aging: u64,
    /// Results directory; `None` keeps everything in memory.
    pub results_dir: Option<PathBuf>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            workers: 2,
            quantum: 0,
            aging: 4,
            results_dir: None,
        }
    }
}

/// Outcome of a submission.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Submission {
    /// The job was admitted under this id.
    Accepted {
        /// Dense job id; the handle for status/watch.
        id: u64,
    },
    /// The job was rejected with a typed reason; nothing was queued.
    Rejected {
        /// Rejection category (see [`crate::spec::SpecError`]).
        kind: String,
        /// Human-readable reason.
        detail: String,
    },
}

/// One per-slice progress event, streamed by `watch`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgressEvent {
    /// Job id.
    pub job: u64,
    /// Slice ordinal (1 = first quantum).
    pub slice: u64,
    /// Simulated cycle reached.
    pub cycle: u64,
    /// Instructions issued so far.
    pub issued: u64,
    /// Memory operations performed so far.
    pub mem_ops: u64,
    /// Rows the rcc-obs time-series sampler has collected so far
    /// (0 when the job did not request sampling).
    pub samples: u64,
}

impl ProgressEvent {
    /// Wire form.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"event\": \"progress\", \"job\": {}, \"slice\": {}, \"cycle\": {}, \
             \"issued\": {}, \"mem_ops\": {}, \"samples\": {}}}",
            self.job, self.slice, self.cycle, self.issued, self.mem_ops, self.samples
        )
    }
}

struct Job {
    record: JobRecord,
    spec: JobSpec,
    /// Parked mid-run state between quanta.
    ck: Option<Box<Checkpoint>>,
    /// Fault injection: corrupt the next snapshot this job parks on.
    corrupt_next: bool,
    events: Vec<ProgressEvent>,
}

struct State {
    jobs: Vec<Job>,
    sched: Sched,
    /// Scheduler token → job index, for everything currently queued.
    token_to_job: BTreeMap<u64, usize>,
    /// Jobs not yet terminal.
    active: usize,
    shutdown: bool,
    addr: Option<SocketAddr>,
}

struct Inner {
    state: Mutex<State>,
    /// Signaled when work lands in the queue (workers wait here).
    work: Condvar,
    /// Signaled on any job state change (watchers/waiters wait here).
    change: Condvar,
    store: Store,
    quantum: u64,
    handles: Mutex<Vec<std::thread::JoinHandle<()>>>,
}

/// The batch-simulation service. Cheap to clone; all clones share one
/// state.
#[derive(Clone)]
pub struct Server {
    inner: Arc<Inner>,
}

struct Task {
    id: usize,
    spec: JobSpec,
    ck: Option<Box<Checkpoint>>,
}

enum QuantumOutcome {
    Finished(Box<rcc_sim::RunMetrics>),
    Preempted {
        ck: Box<Checkpoint>,
        progress: Box<rcc_sim::SliceProgress>,
    },
    Failed(JobError),
}

fn run_quantum(inner: &Inner, task: &Task) -> QuantumOutcome {
    let res = catch_unwind(AssertUnwindSafe(|| {
        if let Some(ck) = &task.ck {
            return rcc_sim::resume_slice(ck);
        }
        let (kind, cfg, wl, mut opts) = task.spec.inputs();
        if task.spec.record_trace {
            // A resumed run does not re-record, so trace jobs run as one
            // uninterrupted quantum through the plain driver path.
            opts.record_trace = inner.store.trace_path(task.id as u64);
            return rcc_sim::try_simulate(kind, &cfg, &wl, &opts)
                .map(|m| SliceOutcome::Finished(Box::new(m)));
        }
        opts.quantum = inner.quantum;
        rcc_sim::try_simulate_slice(kind, &cfg, &wl, &opts)
    }));
    match res {
        Err(payload) => {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "worker slice panicked".into());
            QuantumOutcome::Failed(JobError::internal("panic", msg))
        }
        Ok(Err(e)) => QuantumOutcome::Failed(JobError::from_sim(&e)),
        Ok(Ok(SliceOutcome::Finished(m))) => QuantumOutcome::Finished(m),
        Ok(Ok(SliceOutcome::Preempted { ck, progress })) => {
            QuantumOutcome::Preempted { ck, progress }
        }
    }
}

fn worker_loop(inner: &Inner) {
    loop {
        let task = {
            let mut st = inner.state.lock().expect("server state poisoned");
            loop {
                if st.shutdown {
                    return;
                }
                if let Some(token) = st.sched.pop() {
                    let id = st
                        .token_to_job
                        .remove(&token)
                        .expect("scheduler token maps to a job");
                    let job = &mut st.jobs[id];
                    job.record.state = JobState::Running;
                    break Task {
                        id,
                        spec: job.spec.clone(),
                        ck: job.ck.take(),
                    };
                }
                st = inner.work.wait(st).expect("server state poisoned");
            }
        };
        let outcome = run_quantum(inner, &task);
        let mut st = inner.state.lock().expect("server state poisoned");
        let priority = st.jobs[task.id].record.priority;
        match outcome {
            QuantumOutcome::Finished(m) => {
                let job = &mut st.jobs[task.id];
                job.record.slices += 1;
                job.record.summary = Some(ResultSummary::from_metrics(&m));
                job.record.state = JobState::Done;
                if let Err(e) = inner.store.persist(&job.record) {
                    job.record.state = JobState::Failed;
                    job.record.error = Some(JobError::internal("store", e));
                }
                st.active -= 1;
            }
            QuantumOutcome::Failed(err) => {
                let job = &mut st.jobs[task.id];
                job.record.slices += 1;
                job.record.state = JobState::Failed;
                job.record.error = Some(err);
                let _ = inner.store.persist(&job.record);
                st.active -= 1;
            }
            QuantumOutcome::Preempted { mut ck, progress } => {
                let job = &mut st.jobs[task.id];
                if std::mem::take(&mut job.corrupt_next) {
                    ck.state_digest ^= 0xdead_beef_dead_beef;
                }
                job.record.slices += 1;
                job.record.preemptions += 1;
                let samples = progress
                    .obs
                    .as_ref()
                    .map(|o| o.series.rows() as u64)
                    .unwrap_or(0);
                let event = ProgressEvent {
                    job: task.id as u64,
                    slice: job.record.slices,
                    cycle: progress.cycle,
                    issued: progress.issued,
                    mem_ops: progress.mem_ops,
                    samples,
                };
                job.events.push(event);
                job.ck = Some(ck);
                job.record.state = JobState::Queued;
                let token = st.sched.requeue(priority);
                st.token_to_job.insert(token, task.id);
                inner.work.notify_one();
            }
        }
        inner.change.notify_all();
    }
}

impl Server {
    /// Starts the worker pool. No sockets yet — tests drive the
    /// in-process API directly; call [`Server::listen`] for TCP.
    pub fn start(cfg: ServerConfig) -> Result<Server, String> {
        let store = Store::new(cfg.results_dir.clone())?;
        let inner = Arc::new(Inner {
            state: Mutex::new(State {
                jobs: Vec::new(),
                sched: Sched::new(cfg.aging),
                token_to_job: BTreeMap::new(),
                active: 0,
                shutdown: false,
                addr: None,
            }),
            work: Condvar::new(),
            change: Condvar::new(),
            store,
            quantum: cfg.quantum,
            handles: Mutex::new(Vec::new()),
        });
        let mut handles = Vec::new();
        for i in 0..cfg.workers.max(1) {
            let inner = Arc::clone(&inner);
            handles.push(
                std::thread::Builder::new()
                    .name(format!("rcc-serve-worker-{i}"))
                    .spawn(move || worker_loop(&inner))
                    .map_err(|e| format!("spawn worker: {e}"))?,
            );
        }
        inner
            .handles
            .lock()
            .expect("handle list poisoned")
            .extend(handles);
        Ok(Server { inner })
    }

    /// Submits a job from raw JSON text.
    pub fn submit_json(&self, text: &str) -> Submission {
        match JobSpec::parse(text) {
            Ok(spec) => self.submit_spec(spec),
            Err(e) => Submission::Rejected {
                kind: e.kind.to_string(),
                detail: e.detail,
            },
        }
    }

    /// Submits an already-parsed spec value.
    pub fn submit_value(&self, v: &rcc_obs::json::JsonValue) -> Submission {
        match JobSpec::from_value(v) {
            Ok(spec) => self.submit_spec(spec),
            Err(e) => Submission::Rejected {
                kind: e.kind.to_string(),
                detail: e.detail,
            },
        }
    }

    /// Admits a validated spec into the queue.
    pub fn submit_spec(&self, spec: JobSpec) -> Submission {
        if spec.record_trace && !self.inner.store.persistent() {
            return Submission::Rejected {
                kind: "options".into(),
                detail: "record_trace requires a results dir".into(),
            };
        }
        let mut st = self.inner.state.lock().expect("server state poisoned");
        if st.shutdown {
            return Submission::Rejected {
                kind: "shutdown".into(),
                detail: "server is shutting down".into(),
            };
        }
        let id = st.jobs.len() as u64;
        let token = st.sched.push(spec.priority);
        let idx = st.jobs.len();
        st.token_to_job.insert(token, idx);
        st.jobs.push(Job {
            record: JobRecord {
                id,
                state: JobState::Queued,
                spec_json: spec.to_canonical_json(),
                priority: spec.priority,
                slices: 0,
                preemptions: 0,
                summary: None,
                error: None,
            },
            spec,
            ck: None,
            corrupt_next: false,
            events: Vec::new(),
        });
        st.active += 1;
        self.inner.work.notify_one();
        Submission::Accepted { id }
    }

    /// A snapshot of one job's record.
    pub fn status(&self, id: u64) -> Option<JobRecord> {
        let st = self.inner.state.lock().expect("server state poisoned");
        st.jobs.get(id as usize).map(|j| j.record.clone())
    }

    /// The progress events a job has emitted so far.
    pub fn progress(&self, id: u64) -> Option<Vec<ProgressEvent>> {
        let st = self.inner.state.lock().expect("server state poisoned");
        st.jobs.get(id as usize).map(|j| j.events.clone())
    }

    /// Blocks until the job is terminal; returns its final record.
    pub fn wait(&self, id: u64) -> Option<JobRecord> {
        let mut st = self.inner.state.lock().expect("server state poisoned");
        loop {
            let job = st.jobs.get(id as usize)?;
            if job.record.state.terminal() {
                return Some(job.record.clone());
            }
            st = self.inner.change.wait(st).expect("server state poisoned");
        }
    }

    /// Blocks until no job is queued or running.
    pub fn wait_idle(&self) {
        let mut st = self.inner.state.lock().expect("server state poisoned");
        while st.active > 0 {
            st = self.inner.change.wait(st).expect("server state poisoned");
        }
    }

    /// Fault-injection hook for the preemption-fidelity suite: corrupts
    /// job `id`'s mid-run snapshot — directly if it is parked on one,
    /// or the next one it parks on if a worker is mid-quantum (blocking
    /// until either happens). The next resume must then fail with a
    /// typed `checkpoint` error on this job — and only this job.
    /// Returns false when the job finished before it could be hit.
    pub fn corrupt_checkpoint(&self, id: u64) -> bool {
        let mut st = self.inner.state.lock().expect("server state poisoned");
        loop {
            let Some(job) = st.jobs.get_mut(id as usize) else {
                return false;
            };
            if job.record.state.terminal() {
                return false;
            }
            if job.record.state == JobState::Queued {
                if let Some(ck) = &mut job.ck {
                    ck.state_digest ^= 0xdead_beef_dead_beef;
                    return true;
                }
            } else if job.record.state == JobState::Running {
                job.corrupt_next = true;
                return true;
            }
            st = self.inner.change.wait(st).expect("server state poisoned");
        }
    }

    /// Counts per state: (queued, running, done, failed).
    pub fn counts(&self) -> (usize, usize, usize, usize) {
        let st = self.inner.state.lock().expect("server state poisoned");
        let mut c = (0, 0, 0, 0);
        for j in &st.jobs {
            match j.record.state {
                JobState::Queued => c.0 += 1,
                JobState::Running => c.1 += 1,
                JobState::Done => c.2 += 1,
                JobState::Failed => c.3 += 1,
            }
        }
        c
    }

    /// Asks the service to stop: no new submissions, workers exit after
    /// their current quantum, the accept loop unblocks.
    pub fn request_shutdown(&self) {
        let addr = {
            let mut st = self.inner.state.lock().expect("server state poisoned");
            st.shutdown = true;
            st.addr
        };
        self.inner.work.notify_all();
        self.inner.change.notify_all();
        if let Some(addr) = addr {
            // Unblock the acceptor.
            let _ = TcpStream::connect(addr);
        }
    }

    /// Full stop: requests shutdown, joins every thread, writes the
    /// results manifest. Idempotent.
    pub fn shutdown(&self) -> Result<(), String> {
        self.request_shutdown();
        let handles: Vec<_> = self
            .inner
            .handles
            .lock()
            .expect("handle list poisoned")
            .drain(..)
            .collect();
        for h in handles {
            let _ = h.join();
        }
        let records: Vec<JobRecord> = {
            let st = self.inner.state.lock().expect("server state poisoned");
            st.jobs.iter().map(|j| j.record.clone()).collect()
        };
        self.inner.store.write_manifest(&records).map(|_| ())
    }

    /// Blocks until something requests shutdown (the TCP `shutdown`
    /// verb, or [`Server::request_shutdown`] from another thread).
    pub fn wait_for_shutdown_request(&self) {
        let mut st = self.inner.state.lock().expect("server state poisoned");
        while !st.shutdown {
            st = self.inner.change.wait(st).expect("server state poisoned");
        }
    }

    /// Binds `addr` and starts the accept loop. Returns the bound
    /// address (use port 0 to let the OS pick).
    pub fn listen(&self, addr: &str) -> Result<SocketAddr, String> {
        let listener = TcpListener::bind(addr).map_err(|e| format!("bind {addr}: {e}"))?;
        let local = listener.local_addr().map_err(|e| e.to_string())?;
        self.inner.state.lock().expect("server state poisoned").addr = Some(local);
        let server = self.clone();
        let handle = std::thread::Builder::new()
            .name("rcc-serve-accept".into())
            .spawn(move || {
                for conn in listener.incoming() {
                    if server
                        .inner
                        .state
                        .lock()
                        .expect("server state poisoned")
                        .shutdown
                    {
                        break;
                    }
                    let Ok(stream) = conn else { continue };
                    let server = server.clone();
                    // Connection threads are detached; they exit on EOF,
                    // socket error, or server shutdown.
                    let _ = std::thread::Builder::new()
                        .name("rcc-serve-conn".into())
                        .spawn(move || server.handle_conn(stream));
                }
            })
            .map_err(|e| format!("spawn acceptor: {e}"))?;
        self.inner
            .handles
            .lock()
            .expect("handle list poisoned")
            .push(handle);
        Ok(local)
    }

    /// Wire form of one job's status.
    fn status_line(&self, id: u64) -> String {
        match self.status(id) {
            None => wire::error_line("request", &format!("no such job {id}")),
            Some(rec) => record_json(&rec),
        }
    }

    fn handle_conn(&self, stream: TcpStream) {
        let mut reader = BufReader::new(match stream.try_clone() {
            Ok(s) => s,
            Err(_) => return,
        });
        let mut out = stream;
        loop {
            let frame = match wire::read_frame(&mut reader) {
                Ok(Some(f)) => f,
                Ok(None) | Err(_) => return,
            };
            let reply = match frame.and_then(|line| wire::parse_request(&line)) {
                Err(WireError { kind, detail }) => wire::error_line(kind, &detail),
                Ok(Request::Submit(spec)) => match self.submit_value(&spec) {
                    Submission::Accepted { id } => format!("{{\"ok\": true, \"job\": {id}}}"),
                    Submission::Rejected { kind, detail } => wire::error_line(&kind, &detail),
                },
                Ok(Request::Status(id)) => self.status_line(id),
                Ok(Request::List) => {
                    let (q, r, d, f) = self.counts();
                    format!(
                        "{{\"ok\": true, \"jobs\": {}, \"queued\": {q}, \"running\": {r}, \
                         \"done\": {d}, \"failed\": {f}}}",
                        q + r + d + f
                    )
                }
                Ok(Request::Shutdown) => {
                    let _ = writeln!(out, "{{\"ok\": true, \"stopping\": true}}");
                    self.request_shutdown();
                    return;
                }
                Ok(Request::Watch(id)) => {
                    if self.stream_watch(id, &mut out).is_err() {
                        return;
                    }
                    continue;
                }
            };
            if writeln!(out, "{reply}").is_err() {
                return;
            }
        }
    }

    /// Streams progress events for `id` until it is terminal, then the
    /// final status line.
    fn stream_watch(&self, id: u64, out: &mut TcpStream) -> std::io::Result<()> {
        {
            let st = self.inner.state.lock().expect("server state poisoned");
            if st.jobs.get(id as usize).is_none() {
                drop(st);
                writeln!(out, "{}", wire::error_line("request", "no such job"))?;
                return Ok(());
            }
        }
        let mut cursor = 0usize;
        loop {
            let (events, terminal) = {
                let mut st = self.inner.state.lock().expect("server state poisoned");
                loop {
                    let job = &st.jobs[id as usize];
                    if job.events.len() > cursor || job.record.state.terminal() || st.shutdown {
                        break (
                            job.events[cursor..].to_vec(),
                            job.record.state.terminal() || st.shutdown,
                        );
                    }
                    let (guard, _) = self
                        .inner
                        .change
                        .wait_timeout(st, Duration::from_millis(200))
                        .expect("server state poisoned");
                    st = guard;
                }
            };
            for e in &events {
                writeln!(out, "{}", e.to_json())?;
            }
            cursor += events.len();
            if terminal {
                writeln!(out, "{}", self.status_line(id))?;
                return Ok(());
            }
        }
    }
}

/// Wire/status JSON for a job record.
pub fn record_json(rec: &JobRecord) -> String {
    format!(
        "{{\"ok\": true, \"job\": {}, \"state\": \"{}\", \"priority\": {}, \
         \"slices\": {}, \"preemptions\": {}, \"result\": {}, \"error\": {}}}",
        rec.id,
        rec.state.label(),
        rec.priority,
        rec.slices,
        rec.preemptions,
        rec.summary
            .as_ref()
            .map(ResultSummary::to_json)
            .unwrap_or_else(|| "null".into()),
        rec.error
            .as_ref()
            .map(JobError::to_json)
            .unwrap_or_else(|| "null".into()),
    )
}

/// The default quantum the `rcc-serve` binary advertises: long enough
/// that a quick job finishes in one slice, short enough that a
/// full-scale run yields many times.
pub const DEFAULT_QUANTUM: u64 = 50_000;

/// Convenience used by the binary and CI smoke: options a direct
/// driver invocation would use for the same spec (for diffing a service
/// artifact against `try_simulate`).
pub fn direct_options(spec: &JobSpec) -> SimOptions {
    let (_, _, _, opts) = spec.inputs();
    opts
}
