//! Smoke tests: bounded-exhaustive exploration of each protocol at
//! model-checking scale (2 cores, 1–2 addresses), the Table V census
//! cross-check, and the seeded-bug shrink test.

use rcc_common::addr::{Addr, WordAddr};
use rcc_core::census::ProtocolCensus;
use rcc_core::kind::ProtocolKind;
use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
use rcc_core::msg::AtomicOp;
use rcc_core::rcc::RccProtocol;
use rcc_core::tc::TcProtocol;
use rcc_verify::explore::{explore, rcc_hooks, verify_config, Hooks, Op, Spec, Violation};

fn word(line: u64) -> WordAddr {
    Addr(line * 128).word()
}

/// The message-passing shape: every interleaving must be value-coherent.
fn mp_spec() -> Spec {
    let data = word(1);
    let flag = word(2);
    Spec::new(vec![
        vec![Op::Store(data, 1), Op::Store(flag, 1)],
        vec![Op::Load(flag), Op::Load(data)],
    ])
}

#[test]
fn smoke_rcc_exhaustive_mp() {
    let cfg = verify_config();
    let protocol = RccProtocol::sequential(&cfg);
    let report = explore(&protocol, &cfg, &mp_spec(), &rcc_hooks());
    assert!(
        report.ok(),
        "RCC mp exploration failed: {:#?}",
        report.counterexample
    );
    assert!(report.terminal_paths > 0);
    assert!(report.states > 10);
}

#[test]
fn smoke_rcc_store_buffering_shape() {
    // The sb shape (both cores store then read the other's address) —
    // forbidden outcome (0, 0) would surface as a coherence violation
    // against the golden memory.
    let x = word(1);
    let y = word(2);
    let cfg = verify_config();
    let protocol = RccProtocol::sequential(&cfg);
    let spec = Spec::new(vec![
        vec![Op::Store(x, 1), Op::Load(y)],
        vec![Op::Store(y, 1), Op::Load(x)],
    ]);
    let report = explore(&protocol, &cfg, &spec, &rcc_hooks());
    assert!(report.ok(), "RCC sb: {:#?}", report.counterexample);
}

#[test]
fn smoke_rcc_census_cross_check() {
    // One address, a load/store core and an atomic core: drives the L1
    // through I/IV/V/VI/II and the L2 through I/IV/IAV/V. The distinct
    // states the explorer visits must match the paper's Table V census
    // and the code's own state inventory.
    let x = word(1);
    let cfg = verify_config();
    let protocol = RccProtocol::sequential(&cfg);
    let spec = Spec::new(vec![
        vec![Op::Load(x), Op::Store(x, 1)],
        vec![Op::Atomic(x, AtomicOp::Add(2)), Op::Load(x)],
    ]);
    let report = explore(&protocol, &cfg, &spec, &rcc_hooks());
    assert!(report.ok(), "RCC census run: {:#?}", report.counterexample);

    let l1: Vec<&str> = report.l1_states_seen.iter().copied().collect();
    let l2: Vec<&str> = report.l2_states_seen.iter().copied().collect();
    assert_eq!(l1, ["I", "II", "IV", "V", "VI"]);
    assert_eq!(l2, ["I", "IAV", "IV", "V"]);

    let census = ProtocolCensus::for_kind(ProtocolKind::RccSc).expect("census");
    assert_eq!(report.l1_states_seen.len(), census.l1_states());
    assert_eq!(report.l2_states_seen.len(), census.l2_states());
    let (s1, t1) = rcc_core::rcc::l1_state_inventory();
    let (s2, t2) = rcc_core::rcc::l2_state_inventory();
    assert_eq!(report.l1_states_seen.len(), s1 + t1);
    assert_eq!(report.l2_states_seen.len(), s2 + t2);
}

#[test]
fn smoke_rcc_atomic_contention() {
    // Two cores increment the same counter; golden memory checks the
    // read-modify-writes serialize (no lost updates at any interleaving).
    let x = word(1);
    let cfg = verify_config();
    let protocol = RccProtocol::sequential(&cfg);
    let spec = Spec::new(vec![
        vec![Op::Atomic(x, AtomicOp::Add(1)), Op::Load(x)],
        vec![Op::Atomic(x, AtomicOp::Add(1))],
    ]);
    let report = explore(&protocol, &cfg, &spec, &rcc_hooks());
    assert!(report.ok(), "RCC atomics: {:#?}", report.counterexample);
}

#[test]
fn smoke_mesi_exhaustive_mp() {
    let cfg = verify_config();
    let protocol = MesiProtocol::new(&cfg);
    let report = explore(&protocol, &cfg, &mp_spec(), &Hooks::none());
    assert!(report.ok(), "MESI mp: {:#?}", report.counterexample);
    assert!(report.terminal_paths > 0);
}

#[test]
fn smoke_mesi_wb_exhaustive_mp() {
    let cfg = verify_config();
    let protocol = MesiWbProtocol::new(&cfg);
    let report = explore(&protocol, &cfg, &mp_spec(), &Hooks::none());
    assert!(report.ok(), "MESI-WB mp: {:#?}", report.counterexample);
    assert!(report.terminal_paths > 0);
}

#[test]
fn smoke_tc_weak_deadlock_freedom() {
    // TC-Weak is intentionally not SC, so value checking is off; the
    // exploration still proves every reachable state can make progress
    // (no stuck transient states) across bounded lease-expiry timing.
    let mut cfg = verify_config();
    cfg.tc.lease_cycles = 64;
    let protocol = TcProtocol::weak(&cfg);
    let mut spec = mp_spec();
    spec.check_values = false;
    spec.max_time_advances = 3;
    spec.tick_quantum = 64;
    let report = explore(&protocol, &cfg, &spec, &Hooks::none());
    assert!(report.ok(), "TC-Weak: {:#?}", report.counterexample);
    assert!(report.terminal_paths > 0);
}

#[test]
fn seeded_lease_bug_is_found_with_short_trace() {
    // Arm the seeded bug (L1 ignores lease expiry on loads). Core 0
    // leases x; core 1 writes x (pushing ver past the lease, rule 3)
    // and then y; core 0's load of y drags its clock past x's lease,
    // so its final load of x hits a logically stale copy — exactly the
    // self-invalidation the lease exists to force. The checker must
    // find it and shrink the counterexample to ≤ 10 messages.
    let x = word(1);
    let y = word(2);
    let cfg = verify_config();
    let spec = Spec::new(vec![
        vec![Op::Load(x), Op::Load(y), Op::Load(x)],
        vec![Op::Store(x, 7), Op::Store(y, 1)],
    ]);

    let clean = RccProtocol::sequential(&cfg);
    let report = explore(&clean, &cfg, &spec, &rcc_hooks());
    assert!(report.ok(), "clean RCC: {:#?}", report.counterexample);

    let buggy = RccProtocol::sequential(&cfg).with_lease_bug();
    let report = explore(&buggy, &cfg, &spec, &rcc_hooks());
    let cex = report.counterexample.expect("seeded bug must be detected");
    assert!(
        matches!(cex.violation, Violation::Lease(_)),
        "expected a lease violation, got {}",
        cex.violation
    );
    assert!(
        cex.messages <= 10,
        "counterexample not minimal: {} messages\n{:#?}",
        cex.messages,
        cex.rendered
    );
    // The rendered trace is the artifact a developer reads; sanity-check
    // its shape.
    assert!(cex.rendered.last().unwrap().contains("lease"));
}
