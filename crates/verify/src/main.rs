//! `rcc-verify`: the standalone model-checking driver.
//!
//! Runs the bounded-exhaustive litmus suite from the verification crate
//! (message passing, store buffering, the Table V census shape, atomic
//! contention, lease renewal) over each protocol, plus a directed probe
//! of the RCC clock-rollover Flush/FlushAck handshake, and reports the
//! explored state counts. With `--transitions <path>` it also writes the
//! transition-visit census — one `(protocol, controller, state, event)`
//! row per edge the suite actually drove — which `rcc-lint --coverage`
//! diffs against the statically extracted controller tables to find
//! transitions the code defines but the checker never exercises.
//!
//! Exit status: 0 when every exploration is clean, 1 when any run finds
//! a violation or is truncated, 2 on usage errors.

#![forbid(unsafe_code)]

use rcc_common::addr::{Addr, LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId};
use rcc_common::time::Cycle;
use rcc_core::mesi::{MesiProtocol, MesiWbProtocol};
use rcc_core::msg::{AtomicOp, ReqId, RespMsg, RespPayload};
use rcc_core::protocol::{L1Cache, L1Outbox, L2Bank, L2Outbox, Protocol};
use rcc_core::rcc::RccProtocol;
use rcc_core::tc::TcProtocol;
use rcc_verify::explore::{explore, rcc_hooks, verify_config, Hooks, Op, Report, Spec};
use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;

/// Merged census: (protocol, controller, state, event) → visit count.
type Census = BTreeMap<(String, String, String, String), u64>;

fn word(line: u64) -> WordAddr {
    Addr(line * 128).word()
}

/// The message-passing shape: every interleaving must be value-coherent.
fn mp_spec() -> Spec {
    let data = word(1);
    let flag = word(2);
    Spec::new(vec![
        vec![Op::Store(data, 1), Op::Store(flag, 1)],
        vec![Op::Load(flag), Op::Load(data)],
    ])
}

/// The store-buffering shape: both cores store then read the other's
/// address; the forbidden (0, 0) outcome would violate value coherence.
fn sb_spec() -> Spec {
    let x = word(1);
    let y = word(2);
    Spec::new(vec![
        vec![Op::Store(x, 1), Op::Load(y)],
        vec![Op::Store(y, 1), Op::Load(x)],
    ])
}

/// The Table V census shape: loads, stores, and atomics on one address,
/// driving the RCC L1 through I/IV/V/VI/II and the L2 through I/IV/IAV/V.
fn census_spec() -> Spec {
    let x = word(1);
    Spec::new(vec![
        vec![Op::Load(x), Op::Store(x, 1)],
        vec![Op::Atomic(x, AtomicOp::Add(2)), Op::Load(x)],
    ])
}

/// The stale-lease shape: core 0 re-reads a line core 1 has overwritten
/// after the lease lapsed, so the L2 must *deny* renewal and send fresh
/// data (the self-invalidation path the lease exists to force).
fn stale_spec() -> Spec {
    let x = word(1);
    let y = word(2);
    Spec::new(vec![
        vec![Op::Load(x), Op::Load(y), Op::Load(x)],
        vec![Op::Store(x, 7), Op::Store(y, 1)],
    ])
}

/// The lease-renewal shape (run with a short fixed lease): core 0
/// leases `x`, then stores to a line core 1 holds a lease on — rule 3
/// pushes core 0's clock past that lease, and past its own lease on
/// `x`. Re-reading `x` then finds the lease lapsed but the data
/// unwritten, so the L2 grants RENEW (a lease refresh without data).
fn renew_spec() -> Spec {
    let x = word(1);
    let y = word(2);
    Spec::new(vec![
        vec![Op::Load(x), Op::Store(y, 1), Op::Load(x)],
        vec![Op::Load(y)],
    ])
}

/// Folds one exploration's transition census into the merged table.
fn merge(census: &mut Census, protocol: &str, report: &Report) {
    for (&(ctrl, state, event), &count) in &report.transitions {
        *census
            .entry((
                protocol.to_string(),
                ctrl.to_string(),
                state.to_string(),
                event.to_string(),
            ))
            .or_insert(0) += count;
    }
}

/// Runs one exploration, prints its one-line summary, and merges its
/// transitions. Returns false when the run found a violation.
fn run_spec<P>(
    census: &mut Census,
    protocol_name: &str,
    spec_name: &str,
    protocol: &P,
    cfg: &GpuConfig,
    spec: &Spec,
    hooks: &Hooks<P>,
) -> bool
where
    P: Protocol,
    P::L1: Clone + std::fmt::Debug,
    P::L2: Clone + std::fmt::Debug,
{
    let report = explore(protocol, cfg, spec, hooks);
    let ok = report.ok();
    println!(
        "{protocol_name}/{spec_name}: {} states, {} paths, {} transitions{}",
        report.states,
        report.terminal_paths,
        report.transitions.len(),
        if ok { "" } else { " — VIOLATION" }
    );
    if let Some(cex) = &report.counterexample {
        eprintln!("counterexample ({} messages):", cex.messages);
        for line in &cex.rendered {
            eprintln!("  {line}");
        }
    }
    merge(census, protocol_name, &report);
    ok
}

/// Directed probe of the RCC rollover handshake: delivers a Flush to a
/// quiesced L1 and the resulting FlushAck to the L2. The bounded litmus
/// programs never push `ts_high` anywhere near the rollover threshold,
/// so this edge is driven directly (mirroring how `rcc-sim` injects the
/// flush outside the request path).
fn rollover_probe(census: &mut Census) {
    let cfg = verify_config();
    let protocol = RccProtocol::sequential(&cfg);
    let hooks = rcc_hooks();
    let mut l1 = protocol.make_l1(CoreId(0), &cfg);
    let mut l2 = protocol.make_l2(PartitionId(0), &cfg);
    let line = LineAddr(0);
    let cycle = Cycle(0);

    let l1_state = hooks
        .l1_state
        .as_ref()
        .map_or("?", |probe| probe(&l1, line));
    let mut out = L1Outbox::new();
    l1.handle_resp(
        cycle,
        RespMsg {
            dst: CoreId(0),
            line,
            id: ReqId(0),
            payload: RespPayload::Flush,
        },
        &mut out,
    );
    *census
        .entry((
            "rcc".to_string(),
            "l1".to_string(),
            l1_state.to_string(),
            "Flush".to_string(),
        ))
        .or_insert(0) += 1;

    // The flushed L1 acks; deliver the ack so the L2 side of the
    // handshake is exercised (and recorded) too.
    for req in out.to_l2.drain(..) {
        let l2_state = hooks
            .l2_state
            .as_ref()
            .map_or("?", |probe| probe(&l2, req.line));
        let event = req.payload.variant_name();
        let mut l2_out = L2Outbox::new();
        if l2.handle_req(cycle, req, &mut l2_out).is_ok() {
            *census
                .entry((
                    "rcc".to_string(),
                    "l2".to_string(),
                    l2_state.to_string(),
                    event.to_string(),
                ))
                .or_insert(0) += 1;
        }
    }
    println!("rcc/rollover-probe: flush/flush-ack handshake recorded");
}

/// Serializes the merged census as the tab-separated table `rcc-lint`
/// consumes: `protocol<TAB>controller<TAB>state<TAB>event<TAB>count`.
fn census_tsv(census: &Census) -> String {
    let mut out = String::new();
    out.push_str("# rcc-verify transition-visit census\n");
    out.push_str("# protocol\tcontroller\tstate\tevent\tcount\n");
    for ((protocol, ctrl, state, event), count) in census {
        out.push_str(&format!("{protocol}\t{ctrl}\t{state}\t{event}\t{count}\n"));
    }
    out
}

const USAGE: &str = "usage: rcc-verify [--transitions <path>]

Runs the bounded-exhaustive protocol verification suite.

options:
  --transitions <path>  write the transition-visit census TSV
  --help                show this message";

fn main() -> ExitCode {
    let mut transitions_out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--transitions" => match args.next() {
                Some(path) => transitions_out = Some(PathBuf::from(path)),
                None => {
                    eprintln!("rcc-verify: --transitions needs a path\n{USAGE}");
                    return ExitCode::from(2);
                }
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("rcc-verify: unknown argument {other:?}\n{USAGE}");
                return ExitCode::from(2);
            }
        }
    }

    let mut census = Census::new();
    let mut ok = true;
    let cfg = verify_config();

    let rcc = RccProtocol::sequential(&cfg);
    for (name, spec) in [
        ("mp", mp_spec()),
        ("sb", sb_spec()),
        ("census", census_spec()),
        ("stale", stale_spec()),
    ] {
        ok &= run_spec(&mut census, "rcc", name, &rcc, &cfg, &spec, &rcc_hooks());
    }
    // Renewal needs the lease to lapse within a bounded program, so this
    // run pins a short fixed lease instead of the predictor.
    let mut renew_cfg = verify_config();
    renew_cfg.rcc.fixed_lease = Some(2);
    let rcc_renew = RccProtocol::sequential(&renew_cfg);
    ok &= run_spec(
        &mut census,
        "rcc",
        "renew",
        &rcc_renew,
        &renew_cfg,
        &renew_spec(),
        &rcc_hooks(),
    );
    rollover_probe(&mut census);

    let mesi = MesiProtocol::new(&cfg);
    ok &= run_spec(
        &mut census,
        "mesi",
        "mp",
        &mesi,
        &cfg,
        &mp_spec(),
        &Hooks::none(),
    );
    let mesi_wb = MesiWbProtocol::new(&cfg);
    ok &= run_spec(
        &mut census,
        "mesi-wb",
        "mp",
        &mesi_wb,
        &cfg,
        &mp_spec(),
        &Hooks::none(),
    );

    let mut tc_cfg = verify_config();
    tc_cfg.tc.lease_cycles = 64;
    let tc = TcProtocol::weak(&tc_cfg);
    let mut tc_spec = mp_spec();
    tc_spec.check_values = false;
    tc_spec.max_time_advances = 3;
    tc_spec.tick_quantum = 64;
    ok &= run_spec(
        &mut census,
        "tc",
        "mp",
        &tc,
        &tc_cfg,
        &tc_spec,
        &Hooks::none(),
    );

    if let Some(path) = &transitions_out {
        let tsv = census_tsv(&census);
        if let Err(e) = std::fs::write(path, tsv) {
            eprintln!("rcc-verify: cannot write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "transition census: {} rows -> {}",
            census.len(),
            path.display()
        );
    }

    if ok {
        println!("rcc-verify: all explorations clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("rcc-verify: violations found");
        ExitCode::FAILURE
    }
}
