//! Runtime sequential-consistency sanitizer.
//!
//! The sanitizer records every memory access of one (timed) simulation
//! and decides *after the fact* whether some sequentially consistent
//! total order explains what every load observed. Unlike the simulator's
//! scoreboard — which trusts the protocol's own `(ts, seq)` completion
//! witness — the sanitizer rebuilds the classic axiomatic-SC relations
//! from observed *values*:
//!
//! * **po** — program order per (core, warp), from issue order;
//! * **co** — coherence order per address, from the write serialization;
//! * **rf** — reads-from, matching each load to the write whose value it
//!   returned;
//! * **fr** — from-reads, `rf⁻¹ ; co`.
//!
//! An execution is SC iff `po ∪ rf ∪ co ∪ fr` is acyclic (Shasha &
//! Snir). A cycle is reported with the participating accesses, which for
//! the classic litmus shapes reads exactly like the textbook diagram
//! (e.g. TC-Weak's stale-lease `mp` failure shows up as
//! `Wdata → Wflag → Rflag → Rdata → Wdata`).
//!
//! Cost model: recording is two hash-map operations per access and
//! nothing else; the graph is built only in [`Sanitizer::check`], so a
//! disabled sanitizer (the default) costs zero on the hot path.

use rcc_common::addr::WordAddr;
use rcc_common::FxHashMap;
use rcc_core::msg::{Access, AccessKind, Completion, CompletionKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// What one recorded access turned out to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EvKind {
    /// Issued, not yet completed.
    Pending(AccessKind),
    /// A load that observed `value`.
    Read { value: u64 },
    /// A store that wrote `value`.
    Write { value: u64 },
    /// An atomic that read `old` and left `new` (possibly equal).
    Rmw { old: u64, new: u64 },
}

/// One recorded memory access.
#[derive(Debug, Clone, Copy)]
struct MemEvent {
    core: usize,
    warp: usize,
    addr: WordAddr,
    /// Position in the warp's issue (= program) order.
    po: u64,
    kind: EvKind,
    /// Protocol completion witness (rollover-adjusted); used only to
    /// order co and to disambiguate duplicate-value rf candidates.
    ts: u64,
    seq: u64,
}

/// End-of-run verdict.
#[derive(Debug, Clone)]
pub struct SanReport {
    /// True iff an SC total order exists for the recorded execution.
    pub sc: bool,
    /// Completed accesses checked.
    pub events: usize,
    /// Accesses issued but never completed (excluded from the check).
    pub incomplete: usize,
    /// Violations found: each is a rendered cycle or a read of a value
    /// no write produced.
    pub violations: Vec<String>,
}

/// Records one execution's accesses; [`Sanitizer::check`] runs the SC
/// test. Attach via `System::enable_sanitizer` (off by default).
#[derive(Debug, Default)]
pub struct Sanitizer {
    events: Vec<MemEvent>,
    /// FIFO of outstanding event indices per (core, warp, addr,
    /// is_load): completions match issues in order, exactly like the
    /// simulator's own pending-value tracking.
    outstanding: FxHashMap<(usize, usize, WordAddr, bool), VecDeque<usize>>,
    /// Next program-order position per (core, warp).
    po_next: FxHashMap<(usize, usize), u64>,
    /// Seeded initial memory values (addresses not listed read as 0).
    init: FxHashMap<WordAddr, u64>,
}

impl Sanitizer {
    /// A fresh, empty sanitizer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an initial memory value (a virtual write at the start of
    /// the coherence order).
    pub fn seed(&mut self, addr: WordAddr, value: u64) {
        self.init.insert(addr, value);
    }

    /// Records an access the L1 accepted (`Done` or `Pending` — never
    /// call for rejects).
    pub fn on_issue(&mut self, core: usize, access: &Access) {
        let warp = access.warp.index();
        let po = self.po_next.entry((core, warp)).or_insert(0);
        let idx = self.events.len();
        self.events.push(MemEvent {
            core,
            warp,
            addr: access.addr,
            po: *po,
            kind: EvKind::Pending(access.kind),
            ts: 0,
            seq: 0,
        });
        *po += 1;
        let is_load = !access.kind.is_write_like();
        self.outstanding
            .entry((core, warp, access.addr, is_load))
            .or_default()
            .push_back(idx);
    }

    /// Forgets the most recent issue of this access — the L1 rejected it
    /// (structural hazard) and the warp will retry. Must be called
    /// immediately after the matching [`Sanitizer::on_issue`].
    pub fn on_reject(&mut self, core: usize, access: &Access) {
        let warp = access.warp.index();
        let is_load = !access.kind.is_write_like();
        let key = (core, warp, access.addr, is_load);
        let Some(idx) = self.outstanding.get_mut(&key).and_then(VecDeque::pop_back) else {
            debug_assert!(false, "reject with no matching issue");
            return;
        };
        debug_assert_eq!(
            idx + 1,
            self.events.len(),
            "reject must undo the last issue"
        );
        self.events.truncate(idx);
        if let Some(po) = self.po_next.get_mut(&(core, warp)) {
            *po -= 1;
        }
    }

    /// Records a completion. `ts` is the rollover-adjusted completion
    /// timestamp (the raw `Completion::ts` is epoch-local).
    pub fn on_complete(&mut self, core: usize, c: &Completion, ts: u64) {
        let is_load = matches!(c.kind, CompletionKind::LoadDone { .. });
        let key = (core, c.warp.index(), c.addr, is_load);
        let Some(idx) = self.outstanding.get_mut(&key).and_then(VecDeque::pop_front) else {
            debug_assert!(false, "completion with no matching issue: {c:?}");
            return;
        };
        let ev = &mut self.events[idx];
        let issued = match ev.kind {
            EvKind::Pending(k) => k,
            k => {
                debug_assert!(false, "double completion for {k:?}");
                return;
            }
        };
        ev.ts = ts;
        ev.seq = c.seq;
        ev.kind = match (issued, c.kind) {
            (AccessKind::Load, CompletionKind::LoadDone { value }) => EvKind::Read { value },
            (AccessKind::Store { value }, CompletionKind::StoreDone) => EvKind::Write { value },
            (AccessKind::Atomic { op }, CompletionKind::AtomicDone { old }) => EvKind::Rmw {
                old,
                new: op.apply(old),
            },
            (i, k) => {
                debug_assert!(false, "completion {k:?} does not match issue {i:?}");
                EvKind::Pending(i)
            }
        };
    }

    /// Builds `po ∪ rf ∪ co ∪ fr` over the completed accesses and checks
    /// it for acyclicity.
    pub fn check(&self) -> SanReport {
        let done: Vec<usize> = (0..self.events.len())
            .filter(|&i| !matches!(self.events[i].kind, EvKind::Pending(_)))
            .collect();
        let incomplete = self.events.len() - done.len();
        let mut violations = Vec::new();

        // Node ids: real events keep their index; each address gets one
        // virtual "initial write" node after them.
        let addrs: BTreeSet<WordAddr> = done.iter().map(|&i| self.events[i].addr).collect();
        let init_node: BTreeMap<WordAddr, usize> = addrs
            .iter()
            .enumerate()
            .map(|(k, &a)| (a, self.events.len() + k))
            .collect();
        let n = self.events.len() + addrs.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];

        // po: chain each (core, warp)'s accesses in issue order.
        let mut by_warp: BTreeMap<(usize, usize), Vec<usize>> = BTreeMap::new();
        for &i in &done {
            let e = &self.events[i];
            by_warp.entry((e.core, e.warp)).or_default().push(i);
        }
        for chain in by_warp.values_mut() {
            chain.sort_by_key(|&i| self.events[i].po);
            for w in chain.windows(2) {
                adj[w[0]].push(w[1]);
            }
        }

        // co: per address, the virtual init write followed by the real
        // writes in (ts, seq) witness order (completion order breaks
        // ties for protocols that do not produce a seq).
        let mut co: BTreeMap<WordAddr, Vec<(usize, u64)>> = BTreeMap::new(); // (node, value)
        for (&addr, &init) in &init_node {
            let value = self.init.get(&addr).copied().unwrap_or(0);
            let mut writes: Vec<usize> = done
                .iter()
                .copied()
                .filter(|&i| self.events[i].addr == addr && self.written_value(i).is_some())
                .collect();
            writes.sort_by_key(|&i| (self.events[i].ts, self.events[i].seq, i));
            let mut order = vec![(init, value)];
            order.extend(
                writes
                    .iter()
                    .map(|&i| (i, self.written_value(i).expect("filtered"))),
            );
            for w in order.windows(2) {
                adj[w[0].0].push(w[1].0);
            }
            co.insert(addr, order);
        }

        // rf and fr: match each read to the write it observed.
        for &i in &done {
            let e = &self.events[i];
            let read_value = match e.kind {
                EvKind::Read { value } => value,
                EvKind::Rmw { old, .. } => old,
                _ => continue,
            };
            let order = &co[&e.addr];
            let candidates: Vec<usize> = (0..order.len())
                .filter(|&p| order[p].0 != i && order[p].1 == read_value)
                .collect();
            let Some(&pos) = candidates
                .iter()
                .rfind(|&&p| {
                    let w = order[p].0;
                    w >= self.events.len() // init write precedes everything
                        || (self.events[w].ts, self.events[w].seq) < (e.ts, e.seq)
                })
                .or(candidates.first())
            else {
                violations.push(format!(
                    "{} observed value {read_value}, which no write to {:?} produced",
                    self.render(i),
                    e.addr
                ));
                continue;
            };
            adj[order[pos].0].push(i); // rf
                                       // fr: the read precedes the next write in co (the chain
                                       // covers the rest). An RMW whose own write IS that next
                                       // write read its immediate co-predecessor — that is
                                       // atomicity working, not an edge.
            if pos + 1 < order.len() && order[pos + 1].0 != i {
                adj[i].push(order[pos + 1].0);
            }
        }

        if let Some(cycle) = find_cycle(&adj) {
            let path: Vec<String> = cycle
                .iter()
                .map(|&node| {
                    if node >= self.events.len() {
                        let (&addr, _) = init_node
                            .iter()
                            .find(|&(_, &v)| v == node)
                            .expect("init node");
                        format!("init {addr:?}")
                    } else {
                        self.render(node)
                    }
                })
                .collect();
            violations.push(format!("po∪rf∪co∪fr cycle: {}", path.join(" -> ")));
        }

        SanReport {
            sc: violations.is_empty(),
            events: done.len(),
            incomplete,
            violations,
        }
    }

    /// The value event `i` left in memory, if it is an effective write.
    fn written_value(&self, i: usize) -> Option<u64> {
        match self.events[i].kind {
            EvKind::Write { value } => Some(value),
            EvKind::Rmw { old, new } if new != old => Some(new),
            _ => None,
        }
    }

    fn render(&self, i: usize) -> String {
        let e = &self.events[i];
        let what = match e.kind {
            EvKind::Read { value } => format!("R={value}"),
            EvKind::Write { value } => format!("W={value}"),
            EvKind::Rmw { old, new } => format!("RMW {old}->{new}"),
            EvKind::Pending(_) => "pending".to_string(),
        };
        format!(
            "c{}w{}#{} {:?} {what} @({},{})",
            e.core, e.warp, e.po, e.addr, e.ts, e.seq
        )
    }
}

/// Finds any cycle in `adj` (iterative 3-color DFS); returns the cycle's
/// nodes in order.
fn find_cycle(adj: &[Vec<usize>]) -> Option<Vec<usize>> {
    let n = adj.len();
    let mut color = vec![0u8; n]; // 0 = unseen, 1 = on stack, 2 = done
    let mut parent = vec![usize::MAX; n];
    for start in 0..n {
        if color[start] != 0 {
            continue;
        }
        color[start] = 1;
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        while let Some(top) = stack.last_mut() {
            let (u, i) = *top;
            if i < adj[u].len() {
                top.1 += 1;
                let v = adj[u][i];
                match color[v] {
                    0 => {
                        color[v] = 1;
                        parent[v] = u;
                        stack.push((v, 0));
                    }
                    1 => {
                        let mut cycle = vec![u];
                        let mut x = u;
                        while x != v {
                            x = parent[x];
                            cycle.push(x);
                        }
                        cycle.reverse();
                        return Some(cycle);
                    }
                    _ => {}
                }
            } else {
                color[u] = 2;
                stack.pop();
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::addr::Addr;
    use rcc_common::ids::WarpId;
    use rcc_core::msg::AtomicOp;

    fn addr(line: u64) -> WordAddr {
        Addr(line * 128).word()
    }

    fn issue(s: &mut Sanitizer, core: usize, a: WordAddr, kind: AccessKind) {
        s.on_issue(
            core,
            &Access {
                warp: WarpId(0),
                addr: a,
                kind,
            },
        );
    }

    fn complete(s: &mut Sanitizer, core: usize, a: WordAddr, kind: CompletionKind, ts: u64) {
        s.on_complete(
            core,
            &Completion {
                warp: WarpId(0),
                addr: a,
                kind,
                ts: rcc_common::time::Timestamp(ts),
                seq: 0,
            },
            ts,
        );
    }

    /// A correctly ordered mp execution is SC.
    #[test]
    fn sc_mp_execution_passes() {
        let (data, flag) = (addr(1), addr(2));
        let mut s = Sanitizer::new();
        issue(&mut s, 0, data, AccessKind::Store { value: 1 });
        complete(&mut s, 0, data, CompletionKind::StoreDone, 10);
        issue(&mut s, 0, flag, AccessKind::Store { value: 1 });
        complete(&mut s, 0, flag, CompletionKind::StoreDone, 20);
        issue(&mut s, 1, flag, AccessKind::Load);
        complete(&mut s, 1, flag, CompletionKind::LoadDone { value: 1 }, 30);
        issue(&mut s, 1, data, AccessKind::Load);
        complete(&mut s, 1, data, CompletionKind::LoadDone { value: 1 }, 40);
        let report = s.check();
        assert!(report.sc, "{:?}", report.violations);
        assert_eq!(report.events, 4);
        assert_eq!(report.incomplete, 0);
    }

    /// The TC-Weak mp failure: flag observed new, data observed stale.
    /// The po ∪ rf ∪ co ∪ fr graph must contain a cycle.
    #[test]
    fn stale_mp_read_is_flagged_non_sc() {
        let (data, flag) = (addr(1), addr(2));
        let mut s = Sanitizer::new();
        issue(&mut s, 0, data, AccessKind::Store { value: 1 });
        complete(&mut s, 0, data, CompletionKind::StoreDone, 10);
        issue(&mut s, 0, flag, AccessKind::Store { value: 1 });
        complete(&mut s, 0, flag, CompletionKind::StoreDone, 20);
        issue(&mut s, 1, flag, AccessKind::Load);
        complete(&mut s, 1, flag, CompletionKind::LoadDone { value: 1 }, 30);
        issue(&mut s, 1, data, AccessKind::Load);
        // Stale: reads the initial 0 even though flag=1 was observed.
        complete(&mut s, 1, data, CompletionKind::LoadDone { value: 0 }, 40);
        let report = s.check();
        assert!(!report.sc);
        assert!(
            report.violations[0].contains("cycle"),
            "{:?}",
            report.violations
        );
    }

    /// Atomics participate as both read and write; a lost update (both
    /// RMWs reading the same old value) breaks coherence order.
    #[test]
    fn rmw_lost_update_is_flagged() {
        let x = addr(1);
        let mut s = Sanitizer::new();
        issue(
            &mut s,
            0,
            x,
            AccessKind::Atomic {
                op: AtomicOp::Add(1),
            },
        );
        complete(&mut s, 0, x, CompletionKind::AtomicDone { old: 0 }, 10);
        issue(
            &mut s,
            1,
            x,
            AccessKind::Atomic {
                op: AtomicOp::Add(1),
            },
        );
        // Lost update: also observed 0, so both wrote 1.
        complete(&mut s, 1, x, CompletionKind::AtomicDone { old: 0 }, 20);
        issue(&mut s, 0, x, AccessKind::Load);
        complete(&mut s, 0, x, CompletionKind::LoadDone { value: 2 }, 30);
        let report = s.check();
        assert!(!report.sc, "lost update must not be SC");
    }

    /// An RMW that reads its immediate co-predecessor (here the initial
    /// value) is atomicity working — no self-loop, execution stays SC.
    #[test]
    fn rmw_from_init_is_sc() {
        let (data, flag) = (addr(1), addr(2));
        let mut s = Sanitizer::new();
        issue(&mut s, 0, data, AccessKind::Store { value: 1 });
        complete(&mut s, 0, data, CompletionKind::StoreDone, 10);
        issue(
            &mut s,
            0,
            flag,
            AccessKind::Atomic {
                op: AtomicOp::Exch(1),
            },
        );
        complete(&mut s, 0, flag, CompletionKind::AtomicDone { old: 0 }, 20);
        issue(&mut s, 1, flag, AccessKind::Load);
        complete(&mut s, 1, flag, CompletionKind::LoadDone { value: 1 }, 30);
        issue(&mut s, 1, data, AccessKind::Load);
        complete(&mut s, 1, data, CompletionKind::LoadDone { value: 1 }, 40);
        let report = s.check();
        assert!(report.sc, "{:?}", report.violations);
    }

    /// Seeded initial values justify first reads; unseeded addresses
    /// read as zero.
    #[test]
    fn seeded_and_default_initial_values() {
        let (x, y) = (addr(1), addr(2));
        let mut s = Sanitizer::new();
        s.seed(x, 42);
        issue(&mut s, 0, x, AccessKind::Load);
        complete(&mut s, 0, x, CompletionKind::LoadDone { value: 42 }, 5);
        issue(&mut s, 0, y, AccessKind::Load);
        complete(&mut s, 0, y, CompletionKind::LoadDone { value: 0 }, 6);
        assert!(s.check().sc);
    }

    /// A value no write produced is reported, not silently accepted.
    #[test]
    fn thin_air_read_is_flagged() {
        let x = addr(1);
        let mut s = Sanitizer::new();
        issue(&mut s, 0, x, AccessKind::Load);
        complete(&mut s, 0, x, CompletionKind::LoadDone { value: 99 }, 5);
        let report = s.check();
        assert!(!report.sc);
        assert!(
            report.violations[0].contains("no write"),
            "{:?}",
            report.violations
        );
    }

    /// Issued-but-never-completed accesses are excluded and counted.
    #[test]
    fn incomplete_accesses_are_counted() {
        let x = addr(1);
        let mut s = Sanitizer::new();
        issue(&mut s, 0, x, AccessKind::Store { value: 1 });
        let report = s.check();
        assert!(report.sc);
        assert_eq!(report.incomplete, 1);
        assert_eq!(report.events, 0);
    }
}
