//! Verification tooling for the coherence protocols: a bounded exhaustive
//! model checker over the message-level FSMs, and a runtime sequential-
//! consistency sanitizer the simulator can attach to any run.
//!
//! The two engines attack the same question — "does this protocol
//! implement SC?" — from opposite ends:
//!
//! * [`explore`] enumerates **every** reachable interleaving of a tiny
//!   litmus-sized program (2–3 cores, 1–2 addresses, bounded message
//!   reorderings) directly against the protocol controllers from
//!   `rcc-core`, with no timing model in the way. It checks Tardis-style
//!   timestamp invariants (clock monotonicity, at most one writer per
//!   logical instant, lease soundness) and full data-value coherence
//!   against a golden memory, and reports violations as minimal message
//!   traces shrunk by replay.
//! * [`sanitizer`] watches **one** (arbitrarily large) execution from the
//!   timed simulator and decides after the fact whether a sequentially
//!   consistent total order explains what every load observed, by building
//!   the po ∪ rf ∪ co ∪ fr graph and looking for a cycle — the classic
//!   axiomatic SC check, independent of the protocol's own (ts, seq)
//!   witness.
//!
//! The explorer's visited-state census doubles as a cross-check of the
//! state inventories reported in `rcc_core::census` (the paper's Table V).

#![forbid(unsafe_code)]

pub mod explore;
pub mod sanitizer;

pub use explore::{explore, rcc_hooks, verify_config, Hooks, Op, Report, Spec, Violation};
pub use sanitizer::{SanReport, Sanitizer};
