//! Bounded exhaustive exploration of the protocol state space.
//!
//! The explorer drives the *untimed* controller FSMs from `rcc-core`
//! directly: it owns the L1s, one L2 bank, a magic DRAM array, and
//! per-core message queues, and treats every possible next step — issue
//! an access, deliver the next request or response, complete any
//! outstanding DRAM fetch (in any order), or advance time by one quantum
//! — as a branch point. A DFS over the resulting tree with a visited-state
//! set yields every reachable protocol state for a small program, which is
//! exactly the model-checking configuration the paper's Table V census
//! talks about (2–3 cores, 1–2 addresses, bounded reorderings).
//!
//! Network ordering model: per-core request and response channels are
//! FIFO (matching the simulator's virtual channels), while DRAM returns
//! fills in any order. Cross-core interleavings are completely free. This
//! keeps the state space finite while still exposing every reordering the
//! timed simulator could produce.
//!
//! Checked invariants:
//!
//! * **value coherence** — every load returns the value of the latest
//!   write strictly before it in `(ts, seq)` order, validated
//!   incrementally both when reads complete and (retroactively) when
//!   writes complete, against a golden memory;
//! * **write-slot uniqueness** — at most one writer per logical instant
//!   per address (Tardis/RCC rule 3 makes `(ts, seq)` slots unique);
//! * **program order** — completion timestamps are non-decreasing per
//!   core;
//! * **clock monotonicity** — per-core `now` and the bank's `mnow` never
//!   run backwards (via [`Hooks`]);
//! * **lease soundness** — data grants satisfy `exp ≥ ver`, and loads
//!   never observe a line beyond its lease expiration (via [`Hooks`]);
//! * **no stuck states** — if work remains but no event can change the
//!   state, that is a deadlock.
//!
//! Counterexamples are reported as event traces and greedily shrunk by
//! replay: drop one event at a time, keep the shorter trace whenever the
//! same class of violation still fires.

use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_common::FxHashSet;
use rcc_core::msg::{
    Access, AccessKind, AccessOutcome, AtomicOp, Completion, CompletionKind, ReqMsg, RespMsg,
    RespPayload,
};
use rcc_core::protocol::{L1Cache, L1Outbox, L2Bank, L2Outbox, Protocol};
use rcc_core::rcc::{L1State, L2State, RccL1, RccL2, RccProtocol};
use rcc_mem::LineData;
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::fmt;
use std::fmt::Write as _;
use std::hash::{Hash, Hasher};
use std::mem;

/// One operation of a core's straight-line verification program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Read one word.
    Load(WordAddr),
    /// Write one word.
    Store(WordAddr, u64),
    /// Atomic read-modify-write.
    Atomic(WordAddr, AtomicOp),
    /// Memory fence (RCC-WO joins views; no-op for SC protocols).
    Fence,
}

/// What to explore: one straight-line program per core plus exploration
/// bounds.
#[derive(Debug, Clone)]
pub struct Spec {
    /// Per-core programs; `programs.len()` is the core count.
    pub programs: Vec<Vec<Op>>,
    /// Initial memory values (addresses not listed read as zero).
    pub init: Vec<(WordAddr, u64)>,
    /// How many times the explorer may advance time along one path
    /// (bounds lease-expiry branching for the physically-timed
    /// protocols; RCC/MESI need none).
    pub max_time_advances: u32,
    /// Cycles per time advance.
    pub tick_quantum: u64,
    /// Abort (reporting truncation) after this many distinct states.
    pub max_states: usize,
    /// Check data values against the golden memory. Disable for
    /// protocols that are intentionally not sequentially consistent
    /// (TC-Weak), where only deadlock-freedom and structural invariants
    /// are meaningful.
    pub check_values: bool,
}

impl Spec {
    /// A spec with the default bounds for logical-time protocols (no
    /// time advances needed) and value checking on.
    pub fn new(programs: Vec<Vec<Op>>) -> Self {
        Spec {
            programs,
            init: Vec::new(),
            max_time_advances: 0,
            tick_quantum: 1,
            max_states: 1_000_000,
            check_values: true,
        }
    }
}

/// One branch-point choice during exploration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Event {
    /// Core issues its next program operation.
    Issue(usize),
    /// L2 consumes the next request from this core's FIFO channel.
    DeliverReq(usize),
    /// Core consumes the next response from its FIFO channel.
    DeliverResp(usize),
    /// DRAM completes the i-th outstanding fetch (any order).
    DramFill(usize),
    /// Time advances by one quantum; all controllers tick.
    Advance,
}

impl Event {
    /// Whether this event delivers a message (used for the
    /// "counterexample within N messages" metric).
    fn is_message(self) -> bool {
        matches!(
            self,
            Event::DeliverReq(_) | Event::DeliverResp(_) | Event::DramFill(_)
        )
    }
}

/// An invariant violation found during exploration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// A load observed a value other than the latest write before it.
    Coherence(String),
    /// Two writes to the same address claimed the same `(ts, seq)` slot.
    WriteSlotClash(String),
    /// A core's completion timestamps ran backwards.
    ProgramOrder(String),
    /// A controller clock (L1 `now` or L2 `mnow`) ran backwards.
    ClockRegression(String),
    /// A lease invariant failed (grant with `exp < ver`, or a load
    /// observed beyond its lease).
    Lease(String),
    /// Work remains but no event can change the state.
    Deadlock(String),
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::Coherence(s) => write!(f, "value coherence: {s}"),
            Violation::WriteSlotClash(s) => write!(f, "write-slot clash: {s}"),
            Violation::ProgramOrder(s) => write!(f, "program order: {s}"),
            Violation::ClockRegression(s) => write!(f, "clock regression: {s}"),
            Violation::Lease(s) => write!(f, "lease soundness: {s}"),
            Violation::Deadlock(s) => write!(f, "deadlock: {s}"),
        }
    }
}

/// A violating execution: the (shrunk) event trace that reproduces it.
#[derive(Debug, Clone)]
pub struct Counterexample {
    /// The violation the trace ends in.
    pub violation: Violation,
    /// Minimal event trace (greedy delta-debugging by replay).
    pub events: Vec<Event>,
    /// Number of message deliveries in the trace.
    pub messages: usize,
    /// Human-readable rendering of the trace.
    pub rendered: Vec<String>,
}

/// Exploration summary.
#[derive(Debug, Default)]
pub struct Report {
    /// Distinct states visited.
    pub states: usize,
    /// State transitions applied (including revisits).
    pub events_applied: usize,
    /// Complete executions reached (all programs retired, queues empty).
    pub terminal_paths: usize,
    /// True if exploration stopped at `max_states` before finishing.
    pub truncated: bool,
    /// L1 state names observed across all visited states (census).
    pub l1_states_seen: BTreeSet<&'static str>,
    /// L2 state names observed across all visited states (census).
    pub l2_states_seen: BTreeSet<&'static str>,
    /// First violation found, with its shrunk trace.
    pub counterexample: Option<Counterexample>,
    /// Transition-visit census: (controller, state-before, event) →
    /// times applied. Controllers are `"l1"`/`"l2"`; states come from the
    /// census probes (`"?"` when the protocol has no probe); events are
    /// `msg.rs` variant names. `rcc-verify --transitions` serializes this
    /// for the `rcc-lint` static-vs-dynamic coverage diff.
    pub transitions: BTreeMap<(&'static str, &'static str, &'static str), u64>,
}

impl Report {
    /// True if the full bounded space was explored with no violation.
    pub fn ok(&self) -> bool {
        self.counterexample.is_none() && !self.truncated
    }

    /// Bumps the visit count for one (controller, state, event) edge.
    fn record_transition(
        &mut self,
        controller: &'static str,
        state: &'static str,
        event: &'static str,
    ) {
        *self
            .transitions
            .entry((controller, state, event))
            .or_insert(0) += 1;
    }
}

/// Names a controller's state for a line (visited-state census probe).
pub type StateProbe<C> = Box<dyn Fn(&C, LineAddr) -> &'static str>;
/// Reads a controller's logical clock (monotonicity probe).
pub type ClockProbe<C> = Box<dyn Fn(&C) -> Timestamp>;
/// Checks an L2→L1 response at send time.
pub type RespCheck = Box<dyn Fn(&RespMsg) -> Option<Violation>>;
/// Checks a completion against the completing L1's state.
pub type LoadCheck<C> = Box<dyn Fn(&C, &Completion) -> Option<Violation>>;

/// Protocol-specific probes and invariant checks. All optional; the
/// explorer's structural checks (values, slots, deadlock) run regardless.
pub struct Hooks<P: Protocol> {
    /// Names the L1 state of a line, for the visited-state census.
    pub l1_state: Option<StateProbe<P::L1>>,
    /// Names the L2 state of a line, for the visited-state census.
    pub l2_state: Option<StateProbe<P::L2>>,
    /// Reads the L1's logical clock; checked to be monotone.
    pub l1_clock: Option<ClockProbe<P::L1>>,
    /// Reads the L2's logical clock; checked to be monotone.
    pub l2_clock: Option<ClockProbe<P::L2>>,
    /// Checks every L2→L1 response at send time.
    pub check_resp: Option<RespCheck>,
    /// Checks every completion against the completing L1's state.
    pub check_load: Option<LoadCheck<P::L1>>,
}

impl<P: Protocol> Hooks<P> {
    /// No probes: structural checks only.
    pub fn none() -> Self {
        Hooks {
            l1_state: None,
            l2_state: None,
            l1_clock: None,
            l2_clock: None,
            check_resp: None,
            check_load: None,
        }
    }
}

impl<P: Protocol> Default for Hooks<P> {
    fn default() -> Self {
        Self::none()
    }
}

/// The full RCC probe set: state names matching the paper's census
/// convention (expired-V folds into I), `now`/`mnow` monotonicity, lease
/// grants with `exp ≥ ver`, and loads observed within their lease.
pub fn rcc_hooks() -> Hooks<RccProtocol> {
    Hooks {
        l1_state: Some(Box::new(|l1: &RccL1, line| match l1.derived_state(line) {
            L1State::I | L1State::VExpired => "I",
            L1State::V => "V",
            L1State::Iv => "IV",
            L1State::Ii => "II",
            L1State::Vi => "VI",
        })),
        l2_state: Some(Box::new(|l2: &RccL2, line| match l2.derived_state(line) {
            L2State::I => "I",
            L2State::V => "V",
            L2State::Iv => "IV",
            L2State::Iav => "IAV",
        })),
        l1_clock: Some(Box::new(RccL1::now)),
        l2_clock: Some(Box::new(RccL2::mnow)),
        check_resp: Some(Box::new(|resp| match resp.payload {
            RespPayload::Data { ver, exp, .. } if exp < ver => Some(Violation::Lease(format!(
                "DATA grant for {:?} carries exp {} < ver {}",
                resp.line,
                exp.raw(),
                ver.raw()
            ))),
            _ => None,
        })),
        check_load: Some(Box::new(|l1: &RccL1, c| {
            if let CompletionKind::LoadDone { .. } = c.kind {
                if let Some(exp) = l1.lease_exp(c.addr.line()) {
                    if c.ts > exp {
                        return Some(Violation::Lease(format!(
                            "load of {:?} observed at logical time {} beyond lease exp {}",
                            c.addr,
                            c.ts.raw(),
                            exp.raw()
                        )));
                    }
                }
            }
            None
        })),
    }
}

/// A small machine configuration for exploration: 1 L2 partition (the
/// explorer drives a single bank), tiny caches so cloned states stay
/// cheap, and the RCC livelock bump disabled (the explorer controls time
/// explicitly).
pub fn verify_config() -> GpuConfig {
    let mut cfg = GpuConfig::small();
    cfg.l1.size_bytes = 1024; // 2 sets × 4 ways
    cfg.l1.mshrs = 4;
    cfg.l1.mshr_merge = 4;
    cfg.l2.num_partitions = 1;
    cfg.l2.partition.size_bytes = 2048; // 2 sets × 8 ways
    cfg.l2.partition.mshrs = 4;
    cfg.l2.partition.mshr_merge = 4;
    cfg.rcc.livelock_bump_interval = 0;
    cfg
}

/// A recorded write: its memory-order slot and value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct WriteRec {
    ts: u64,
    seq: u64,
    value: u64,
}

/// A recorded read: the slot it observed up to, and what it saw.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct ReadRec {
    ts: u64,
    seq: u64,
    core: usize,
    value: u64,
}

/// Golden memory: value-coherence checker. Reads and writes are recorded
/// as they complete; values are validated at *terminal* states (a load
/// may legitimately observe a store whose acknowledgement has not reached
/// the writer yet, so the write slots into the history after the read).
/// Slot uniqueness and program order are final facts and fail
/// immediately. Both histories are part of the explored state — two
/// worlds that differ only in history must not be merged, or a pruned
/// branch could hide a violation — and every non-truncated path ends in
/// a terminal state (or a reported deadlock), so deferral loses nothing.
#[derive(Debug, Clone, Default)]
struct Golden {
    writes: BTreeMap<WordAddr, Vec<WriteRec>>,
    reads: BTreeMap<WordAddr, Vec<ReadRec>>,
    last_ts: BTreeMap<usize, u64>,
}

impl Golden {
    fn seed(&mut self, addr: WordAddr, value: u64) {
        self.writes.entry(addr).or_default().push(WriteRec {
            ts: 0,
            seq: 0,
            value,
        });
    }

    /// The value the latest write strictly before `(ts, seq)` left at
    /// `addr` (zero if none).
    fn expected(&self, addr: WordAddr, ts: u64, seq: u64) -> u64 {
        self.writes
            .get(&addr)
            .into_iter()
            .flatten()
            .take_while(|w| (w.ts, w.seq) < (ts, seq))
            .last()
            .map_or(0, |w| w.value)
    }

    fn read(&mut self, core: usize, addr: WordAddr, ts: u64, seq: u64, value: u64) {
        let rec = ReadRec {
            ts,
            seq,
            core,
            value,
        };
        let reads = self.reads.entry(addr).or_default();
        let pos = reads.partition_point(|r| r < &rec);
        reads.insert(pos, rec);
    }

    fn write(
        &mut self,
        core: usize,
        addr: WordAddr,
        ts: u64,
        seq: u64,
        value: u64,
    ) -> Result<(), Violation> {
        let rec = WriteRec { ts, seq, value };
        let writes = self.writes.entry(addr).or_default();
        if writes.iter().any(|w| (w.ts, w.seq) == (ts, seq)) {
            return Err(Violation::WriteSlotClash(format!(
                "core {core} write of {value} to {addr:?} reuses occupied slot ({ts}, {seq})"
            )));
        }
        let pos = writes.partition_point(|w| (w.ts, w.seq) < (ts, seq));
        writes.insert(pos, rec);
        Ok(())
    }

    /// Validates every recorded read against the final write histories.
    /// Call only once all in-flight operations have drained.
    fn validate(&self) -> Result<(), Violation> {
        for (&addr, reads) in &self.reads {
            for r in reads {
                let want = self.expected(addr, r.ts, r.seq);
                if r.value != want {
                    return Err(Violation::Coherence(format!(
                        "core {} read {} from {addr:?} at ({}, {}); \
                         latest prior write left {want}",
                        r.core, r.value, r.ts, r.seq
                    )));
                }
            }
        }
        Ok(())
    }

    fn program_order(&mut self, core: usize, ts: u64) -> Result<(), Violation> {
        let last = self.last_ts.entry(core).or_insert(0);
        if ts < *last {
            return Err(Violation::ProgramOrder(format!(
                "core {core} completed an access at ts {ts} after one at ts {last}"
            )));
        }
        *last = ts;
        Ok(())
    }
}

/// One explored machine state: controllers, channels, magic DRAM, and
/// per-core program positions.
struct World<P: Protocol> {
    l1s: Vec<P::L1>,
    l2: P::L2,
    dram: BTreeMap<LineAddr, LineData>,
    req_q: Vec<VecDeque<ReqMsg>>,
    resp_q: Vec<VecDeque<RespMsg>>,
    dram_q: Vec<LineAddr>,
    pc: Vec<usize>,
    /// The op each core is blocked on (at most one outstanding per core —
    /// SC issue).
    pending: Vec<Option<Op>>,
    cycle: Cycle,
    advances: u32,
    golden: Golden,
    /// Last observed controller clocks (monotonicity check).
    l1_clocks: Vec<Timestamp>,
    l2_clock: Timestamp,
    /// Lines the programs touch (census probes); constant per spec.
    lines: Vec<LineAddr>,
}

impl<P: Protocol> Clone for World<P>
where
    P::L1: Clone,
    P::L2: Clone,
{
    fn clone(&self) -> Self {
        World {
            l1s: self.l1s.clone(),
            l2: self.l2.clone(),
            dram: self.dram.clone(),
            req_q: self.req_q.clone(),
            resp_q: self.resp_q.clone(),
            dram_q: self.dram_q.clone(),
            pc: self.pc.clone(),
            pending: self.pending.clone(),
            cycle: self.cycle,
            advances: self.advances,
            golden: self.golden.clone(),
            l1_clocks: self.l1_clocks.clone(),
            l2_clock: self.l2_clock,
            lines: self.lines.clone(),
        }
    }
}

impl<P: Protocol> World<P>
where
    P::L1: Clone + fmt::Debug,
    P::L2: Clone + fmt::Debug,
{
    fn new(protocol: &P, cfg: &GpuConfig, spec: &Spec) -> Self {
        let n = spec.programs.len();
        let mut dram: BTreeMap<LineAddr, LineData> = BTreeMap::new();
        let mut golden = Golden::default();
        for &(addr, value) in &spec.init {
            dram.entry(addr.line())
                .or_insert_with(LineData::zeroed)
                .set_word_at(addr, value);
            golden.seed(addr, value);
        }
        let mut lines: Vec<LineAddr> = spec
            .programs
            .iter()
            .flatten()
            .filter_map(|op| match op {
                Op::Load(a) | Op::Store(a, _) | Op::Atomic(a, _) => Some(a.line()),
                Op::Fence => None,
            })
            .collect();
        lines.sort_unstable();
        lines.dedup();
        World {
            l1s: (0..n).map(|i| protocol.make_l1(CoreId(i), cfg)).collect(),
            l2: protocol.make_l2(PartitionId(0), cfg),
            dram,
            req_q: vec![VecDeque::new(); n],
            resp_q: vec![VecDeque::new(); n],
            dram_q: Vec::new(),
            pc: vec![0; n],
            pending: vec![None; n],
            cycle: Cycle(0),
            advances: 0,
            golden,
            l1_clocks: vec![Timestamp::ZERO; n],
            l2_clock: Timestamp::ZERO,
            lines,
        }
    }

    /// All programs retired, nothing outstanding anywhere.
    fn done(&self, spec: &Spec) -> bool {
        self.pc
            .iter()
            .zip(&spec.programs)
            .all(|(&pc, prog)| pc == prog.len())
            && self.pending.iter().all(Option::is_none)
            && self.req_q.iter().all(VecDeque::is_empty)
            && self.resp_q.iter().all(VecDeque::is_empty)
            && self.dram_q.is_empty()
    }

    /// Events that might change this state.
    fn candidates(&self, spec: &Spec) -> Vec<Event> {
        let mut evs = Vec::new();
        for c in 0..self.l1s.len() {
            if self.pending[c].is_none() && self.pc[c] < spec.programs[c].len() {
                evs.push(Event::Issue(c));
            }
        }
        for c in 0..self.l1s.len() {
            if !self.req_q[c].is_empty() {
                evs.push(Event::DeliverReq(c));
            }
        }
        for c in 0..self.l1s.len() {
            if !self.resp_q[c].is_empty() {
                evs.push(Event::DeliverResp(c));
            }
        }
        for i in 0..self.dram_q.len() {
            evs.push(Event::DramFill(i));
        }
        if self.advances < spec.max_time_advances {
            evs.push(Event::Advance);
        }
        evs
    }

    /// Applies `ev`. `Ok(true)` if the state changed, `Ok(false)` if the
    /// event was a no-op (empty queue, structural reject, L2
    /// backpressure), `Err` on an invariant violation.
    fn apply(
        &mut self,
        ev: Event,
        spec: &Spec,
        hooks: &Hooks<P>,
        report: &mut Report,
    ) -> Result<bool, Violation> {
        let changed = match ev {
            Event::Issue(core) => self.issue(core, spec, hooks, report)?,
            Event::DeliverReq(core) => {
                let Some(req) = self.req_q[core].pop_front() else {
                    return Ok(false);
                };
                let mut out = L2Outbox::new();
                let state = hooks
                    .l2_state
                    .as_ref()
                    .map_or("?", |probe| probe(&self.l2, req.line));
                let event = req.payload.variant_name();
                match self.l2.handle_req(self.cycle, req, &mut out) {
                    Ok(()) => {
                        report.record_transition("l2", state, event);
                        self.drain_l2(&mut out, spec, hooks)?;
                        true
                    }
                    Err(req) => {
                        debug_assert!(out.is_empty(), "rejected request produced output");
                        self.req_q[core].push_front(req);
                        false
                    }
                }
            }
            Event::DeliverResp(core) => {
                let Some(resp) = self.resp_q[core].pop_front() else {
                    return Ok(false);
                };
                let mut out = L1Outbox::new();
                let state = hooks
                    .l1_state
                    .as_ref()
                    .map_or("?", |probe| probe(&self.l1s[core], resp.line));
                report.record_transition("l1", state, resp.payload.variant_name());
                self.l1s[core].handle_resp(self.cycle, resp, &mut out);
                self.drain_l1(core, &mut out, spec, hooks)?;
                true
            }
            Event::DramFill(i) => {
                if i >= self.dram_q.len() {
                    return Ok(false);
                }
                let line = self.dram_q.remove(i);
                let data = self.dram.get(&line).cloned().unwrap_or_default();
                let mut out = L2Outbox::new();
                self.l2.handle_dram(self.cycle, line, data, &mut out);
                self.drain_l2(&mut out, spec, hooks)?;
                true
            }
            Event::Advance => {
                if self.advances >= spec.max_time_advances {
                    return Ok(false);
                }
                self.advances += 1;
                self.cycle = Cycle(self.cycle.raw() + spec.tick_quantum);
                for core in 0..self.l1s.len() {
                    let mut out = L1Outbox::new();
                    self.l1s[core].tick(self.cycle, &mut out);
                    self.drain_l1(core, &mut out, spec, hooks)?;
                }
                let mut out = L2Outbox::new();
                self.l2.tick(self.cycle, &mut out);
                self.drain_l2(&mut out, spec, hooks)?;
                true
            }
        };
        if changed {
            self.check_clocks(hooks)?;
        }
        Ok(changed)
    }

    fn issue(
        &mut self,
        core: usize,
        spec: &Spec,
        hooks: &Hooks<P>,
        report: &mut Report,
    ) -> Result<bool, Violation> {
        if self.pending[core].is_some() {
            return Ok(false);
        }
        let Some(&op) = spec.programs[core].get(self.pc[core]) else {
            return Ok(false);
        };
        let kind = match op {
            Op::Fence => {
                self.l1s[core].fence();
                self.pc[core] += 1;
                return Ok(true);
            }
            Op::Load(_) => AccessKind::Load,
            Op::Store(_, value) => AccessKind::Store { value },
            Op::Atomic(_, atomic_op) => AccessKind::Atomic { op: atomic_op },
        };
        let addr = match op {
            Op::Load(a) | Op::Store(a, _) | Op::Atomic(a, _) => a,
            Op::Fence => unreachable!(),
        };
        let event = kind.variant_name();
        let access = Access {
            warp: WarpId(0),
            addr,
            kind,
        };
        let state = hooks
            .l1_state
            .as_ref()
            .map_or("?", |probe| probe(&self.l1s[core], addr.line()));
        let mut out = L1Outbox::new();
        match self.l1s[core].access(self.cycle, access, &mut out) {
            AccessOutcome::Done(c) => {
                report.record_transition("l1", state, event);
                self.pc[core] += 1;
                self.pending[core] = Some(op);
                self.drain_l1(core, &mut out, spec, hooks)?;
                self.record(core, c, spec, hooks)?;
                Ok(true)
            }
            AccessOutcome::Pending => {
                report.record_transition("l1", state, event);
                self.pc[core] += 1;
                self.pending[core] = Some(op);
                self.drain_l1(core, &mut out, spec, hooks)?;
                Ok(true)
            }
            AccessOutcome::Reject(_) => Ok(false),
        }
    }

    fn drain_l1(
        &mut self,
        core: usize,
        out: &mut L1Outbox,
        spec: &Spec,
        hooks: &Hooks<P>,
    ) -> Result<(), Violation> {
        for req in out.to_l2.drain(..) {
            self.req_q[core].push_back(req);
        }
        for c in out.completions.drain(..) {
            self.record(core, c, spec, hooks)?;
        }
        Ok(())
    }

    fn drain_l2(
        &mut self,
        out: &mut L2Outbox,
        _spec: &Spec,
        hooks: &Hooks<P>,
    ) -> Result<(), Violation> {
        for resp in out.to_l1.drain(..) {
            if let Some(check) = &hooks.check_resp {
                if let Some(v) = check(&resp) {
                    return Err(v);
                }
            }
            self.resp_q[resp.dst.index()].push_back(resp);
        }
        for line in out.dram_fetch.drain(..) {
            self.dram_q.push(line);
        }
        for (line, data) in out.dram_writeback.drain(..) {
            self.dram.insert(line, data);
        }
        for (core, line, action) in out.magic_inv.drain(..) {
            self.l1s[core.index()].magic(self.cycle, line, action);
        }
        Ok(())
    }

    /// Records one completion against the golden memory and runs the
    /// per-completion hooks.
    fn record(
        &mut self,
        core: usize,
        c: Completion,
        spec: &Spec,
        hooks: &Hooks<P>,
    ) -> Result<(), Violation> {
        let op = self.pending[core]
            .take()
            .expect("completion delivered with no outstanding operation");
        if let Some(check) = &hooks.check_load {
            if let Some(v) = check(&self.l1s[core], &c) {
                return Err(v);
            }
        }
        if !spec.check_values {
            return Ok(());
        }
        let (ts, seq) = (c.ts.raw(), c.seq);
        match (op, c.kind) {
            (Op::Load(_), CompletionKind::LoadDone { value }) => {
                self.golden.read(core, c.addr, ts, seq, value);
            }
            (Op::Store(_, value), CompletionKind::StoreDone) => {
                self.golden.write(core, c.addr, ts, seq, value)?;
            }
            (Op::Atomic(_, atomic_op), CompletionKind::AtomicDone { old }) => {
                // The read half observes everything strictly before the
                // atomic's own (ts, seq) slot — excluding its own write.
                self.golden.read(core, c.addr, ts, seq, old);
                let new = atomic_op.apply(old);
                if new != old {
                    self.golden.write(core, c.addr, ts, seq, new)?;
                }
            }
            (op, kind) => panic!("completion {kind:?} does not match outstanding op {op:?}"),
        }
        self.golden.program_order(core, ts)
    }

    fn check_clocks(&mut self, hooks: &Hooks<P>) -> Result<(), Violation> {
        if let Some(clock) = &hooks.l1_clock {
            for (i, l1) in self.l1s.iter().enumerate() {
                let now = clock(l1);
                if now < self.l1_clocks[i] {
                    return Err(Violation::ClockRegression(format!(
                        "core {i} clock moved backwards: {} -> {}",
                        self.l1_clocks[i].raw(),
                        now.raw()
                    )));
                }
                self.l1_clocks[i] = now;
            }
        }
        if let Some(clock) = &hooks.l2_clock {
            let mnow = clock(&self.l2);
            if mnow < self.l2_clock {
                return Err(Violation::ClockRegression(format!(
                    "L2 mnow moved backwards: {} -> {}",
                    self.l2_clock.raw(),
                    mnow.raw()
                )));
            }
            self.l2_clock = mnow;
        }
        Ok(())
    }

    /// Census probes for the current state.
    fn note_states(&self, hooks: &Hooks<P>, report: &mut Report) {
        if let Some(probe) = &hooks.l1_state {
            for l1 in &self.l1s {
                for &line in &self.lines {
                    report.l1_states_seen.insert(probe(l1, line));
                }
            }
        }
        if let Some(probe) = &hooks.l2_state {
            for &line in &self.lines {
                report.l2_states_seen.insert(probe(&self.l2, line));
            }
        }
    }

    /// Order-insensitive digest of the semantic state. The trace log and
    /// census sets are excluded; the golden histories are included (see
    /// [`Golden`]).
    fn fingerprint(&self) -> u128 {
        let mut s = String::with_capacity(1 << 12);
        let _ = write!(
            s,
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.l1s,
            self.l2,
            self.dram,
            self.req_q,
            self.resp_q,
            self.dram_q,
            self.pc,
            self.pending,
            self.cycle,
            self.golden,
        );
        let mut h1 = DefaultHasher::new();
        1u8.hash(&mut h1);
        s.hash(&mut h1);
        let mut h2 = DefaultHasher::new();
        2u8.hash(&mut h2);
        s.hash(&mut h2);
        ((h1.finish() as u128) << 64) | h2.finish() as u128
    }
}

/// Exhaustively explores `spec` under `protocol`, checking the structural
/// invariants plus whatever `hooks` add. Returns the census and, if an
/// invariant failed, a shrunk counterexample trace.
pub fn explore<P>(protocol: &P, cfg: &GpuConfig, spec: &Spec, hooks: &Hooks<P>) -> Report
where
    P: Protocol,
    P::L1: Clone + fmt::Debug,
    P::L2: Clone + fmt::Debug,
{
    let mut report = Report::default();
    let root = World::new(protocol, cfg, spec);
    let mut visited: FxHashSet<u128> = FxHashSet::default();
    visited.insert(root.fingerprint());
    let mut stack: Vec<(World<P>, Vec<Event>)> = vec![(root, Vec::new())];

    'outer: while let Some((world, trace)) = stack.pop() {
        world.note_states(hooks, &mut report);
        if world.done(spec) {
            if let Err(violation) = world.golden.validate() {
                report.counterexample = Some(shrink(protocol, cfg, spec, hooks, trace, violation));
                break;
            }
            report.terminal_paths += 1;
            continue;
        }
        let mut progress = false;
        for ev in world.candidates(spec) {
            let mut child = world.clone();
            match child.apply(ev, spec, hooks, &mut report) {
                Ok(true) => {
                    progress = true;
                    report.events_applied += 1;
                    if visited.insert(child.fingerprint()) {
                        if visited.len() >= spec.max_states {
                            report.truncated = true;
                            break 'outer;
                        }
                        let mut t = trace.clone();
                        t.push(ev);
                        stack.push((child, t));
                    }
                }
                Ok(false) => {}
                Err(violation) => {
                    let mut events = trace.clone();
                    events.push(ev);
                    report.counterexample =
                        Some(shrink(protocol, cfg, spec, hooks, events, violation));
                    break 'outer;
                }
            }
        }
        if !progress {
            let detail = format!(
                "pcs {:?}, pending {:?}, {} reqs / {} resps / {} fills queued",
                world.pc,
                world.pending,
                world.req_q.iter().map(VecDeque::len).sum::<usize>(),
                world.resp_q.iter().map(VecDeque::len).sum::<usize>(),
                world.dram_q.len()
            );
            report.counterexample = Some(shrink(
                protocol,
                cfg,
                spec,
                hooks,
                trace,
                Violation::Deadlock(detail),
            ));
            break;
        }
    }
    report.states = visited.len();
    report
}

/// Replays `events` on a fresh world; returns the index and violation of
/// the first invariant failure, if any. No-op events are tolerated (a
/// shrunk trace may have turned a delivery into a no-op).
fn replay<P>(
    protocol: &P,
    cfg: &GpuConfig,
    spec: &Spec,
    hooks: &Hooks<P>,
    events: &[Event],
) -> Option<(usize, Violation)>
where
    P: Protocol,
    P::L1: Clone + fmt::Debug,
    P::L2: Clone + fmt::Debug,
{
    let mut world = World::new(protocol, cfg, spec);
    let mut scratch = Report::default();
    for (i, &ev) in events.iter().enumerate() {
        if let Err(v) = world.apply(ev, spec, hooks, &mut scratch) {
            return Some((i, v));
        }
    }
    if world.done(spec) {
        if let Err(v) = world.golden.validate() {
            return Some((events.len().saturating_sub(1), v));
        }
    }
    None
}

/// Greedy delta-debugging: drop one event at a time, keeping any shorter
/// trace that still reproduces the same class of violation, until no
/// single removal works. (Deadlocks are reported unshrunk — they are a
/// property of the whole trace, not of one event.)
fn shrink<P>(
    protocol: &P,
    cfg: &GpuConfig,
    spec: &Spec,
    hooks: &Hooks<P>,
    mut events: Vec<Event>,
    violation: Violation,
) -> Counterexample
where
    P: Protocol,
    P::L1: Clone + fmt::Debug,
    P::L2: Clone + fmt::Debug,
{
    let kind = mem::discriminant(&violation);
    let mut violation = violation;
    if !matches!(violation, Violation::Deadlock(_)) {
        loop {
            let mut improved = false;
            for i in 0..events.len() {
                let mut cand = events.clone();
                cand.remove(i);
                if let Some((at, v)) = replay(protocol, cfg, spec, hooks, &cand) {
                    if mem::discriminant(&v) == kind {
                        cand.truncate(at + 1);
                        events = cand;
                        violation = v;
                        improved = true;
                        break;
                    }
                }
            }
            if !improved {
                break;
            }
        }
    }
    let rendered = describe(protocol, cfg, spec, hooks, &events, &violation);
    Counterexample {
        messages: events.iter().filter(|e| e.is_message()).count(),
        violation,
        events,
        rendered,
    }
}

/// Renders a trace by replaying it and describing what each event
/// delivers.
fn describe<P>(
    protocol: &P,
    cfg: &GpuConfig,
    spec: &Spec,
    hooks: &Hooks<P>,
    events: &[Event],
    violation: &Violation,
) -> Vec<String>
where
    P: Protocol,
    P::L1: Clone + fmt::Debug,
    P::L2: Clone + fmt::Debug,
{
    let mut world = World::new(protocol, cfg, spec);
    let mut scratch = Report::default();
    let mut lines = Vec::with_capacity(events.len() + 1);
    for &ev in events {
        let desc = match ev {
            Event::Issue(c) => match spec.programs[c].get(world.pc[c]) {
                Some(op) => format!("core {c} issues {op:?}"),
                None => format!("core {c} issues (retired)"),
            },
            Event::DeliverReq(c) => match world.req_q[c].front() {
                Some(req) => format!("L2 <- core {c}: {:?} for {:?}", req.payload, req.line),
                None => format!("L2 <- core {c}: (empty)"),
            },
            Event::DeliverResp(c) => match world.resp_q[c].front() {
                Some(resp) => format!("core {c} <- L2: {:?} for {:?}", resp.payload, resp.line),
                None => format!("core {c} <- L2: (empty)"),
            },
            Event::DramFill(i) => match world.dram_q.get(i) {
                Some(line) => format!("DRAM fill completes for {line:?}"),
                None => "DRAM fill (empty)".to_string(),
            },
            Event::Advance => "time advances".to_string(),
        };
        lines.push(desc);
        if world.apply(ev, spec, hooks, &mut scratch).is_err() {
            break;
        }
    }
    lines.push(format!("!! {violation}"));
    lines
}
