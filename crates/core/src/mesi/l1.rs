//! MESI L1 controller: Shared-state write-through cache with external
//! invalidations.

use crate::msg::{
    Access, AccessKind, AccessOutcome, Completion, CompletionKind, RejectReason, ReqId, ReqMsg,
    ReqPayload, RespMsg, RespPayload,
};
use crate::protocol::{L1Cache, L1Outbox, L1Stats};
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::{MshrFile, MshrRejection, TagArray};
use std::collections::VecDeque;

#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    id: ReqId,
    warp: WarpId,
    addr: WordAddr,
    atomic: bool,
}

#[derive(Debug, Clone, Default)]
struct MesiEntry {
    /// Merged loads with their issue cycles: positioned at
    /// `max(directory service time, issue time)` — every merged load
    /// issued before our inv-ack, which precedes any racing write's
    /// completion, so the fetched value is current at either point.
    waiting_loads: Vec<(WarpId, WordAddr, u64)>,
    pending_writes: VecDeque<PendingWrite>,
    gets_outstanding: bool,
    /// An invalidation raced the fetch: complete the merged loads when
    /// the data arrives, but do not cache it, and accept no new loads.
    poisoned: bool,
}

/// Per-line L1 metadata: the directory service slot of the fill, used as
/// the sub-cycle position of hits.
#[derive(Debug, Clone, Copy)]
struct SharedMeta {
    fill_seq: u64,
}

/// The MESI L1 controller for one core.
#[derive(Debug, Clone)]
pub struct MesiL1 {
    core: CoreId,
    tags: TagArray<SharedMeta>,
    mshrs: MshrFile<MesiEntry>,
    next_req: u64,
    stats: L1Stats,
}

impl MesiL1 {
    /// Creates the controller for `core`.
    pub fn new(core: CoreId, cfg: &GpuConfig) -> Self {
        MesiL1 {
            core,
            tags: TagArray::new(cfg.l1.num_sets(), cfg.l1.ways),
            mshrs: MshrFile::new(cfg.l1.mshrs, cfg.l1.mshr_merge),
            next_req: 1,
            stats: L1Stats::default(),
        }
    }

    /// Whether `line` is cached (for tests).
    pub fn is_resident(&self, line: LineAddr) -> bool {
        self.tags.probe(line).is_some()
    }

    fn hit_completion(&mut self, cycle: Cycle, warp: WarpId, addr: WordAddr) -> Completion {
        let line = self
            .tags
            .access(addr.line())
            .expect("hit path requires resident line");
        Completion {
            warp,
            addr,
            kind: CompletionKind::LoadDone {
                value: line.data.word_at(addr),
            },
            ts: Timestamp(cycle.raw()),
            // Positioned at the fill's directory slot within the cycle:
            // before any same-cycle write this copy cannot have seen.
            seq: line.state.fill_seq,
        }
    }

    fn start_load(&mut self, cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let line = access.addr.line();
        if self.tags.probe(line).is_some() {
            self.stats.load_hits += 1;
            return AccessOutcome::Done(self.hit_completion(cycle, access.warp, access.addr));
        }
        if self.mshrs.contains(line) {
            if self.mshrs.get(line).expect("checked").poisoned {
                self.stats.rejects += 1;
                return AccessOutcome::Reject(RejectReason::TransientState);
            }
            if self
                .mshrs
                .merge(line, |e| {
                    e.waiting_loads
                        .push((access.warp, access.addr, cycle.raw()))
                })
                .is_err()
            {
                self.stats.rejects += 1;
                return AccessOutcome::Reject(RejectReason::MergeFull);
            }
            self.send_gets(cycle, line, out);
            return AccessOutcome::Pending;
        }
        let entry = MesiEntry {
            waiting_loads: vec![(access.warp, access.addr, cycle.raw())],
            ..MesiEntry::default()
        };
        if self.mshrs.allocate(line, entry).is_err() {
            self.stats.rejects += 1;
            return AccessOutcome::Reject(RejectReason::MshrFull);
        }
        self.send_gets(cycle, line, out);
        AccessOutcome::Pending
    }

    fn send_gets(&mut self, cycle: Cycle, line: LineAddr, out: &mut L1Outbox) {
        let entry = self.mshrs.get_mut(line).expect("entry exists");
        if entry.gets_outstanding {
            return;
        }
        entry.gets_outstanding = true;
        out.to_l2.push(ReqMsg {
            src: self.core,
            line,
            id: ReqId(0),
            payload: ReqPayload::Gets {
                now: Timestamp(cycle.raw()),
                renew_exp: None,
            },
        });
    }

    fn start_write(&mut self, cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let line = access.addr.line();
        // Peek the next id; it is minted only if the MSHR accepts the
        // write. A rejected access must leave nothing behind but
        // counters (the `replay_rejected_access` contract).
        let id = ReqId(self.next_req);
        let atomic = matches!(access.kind, AccessKind::Atomic { .. });
        let pending = PendingWrite {
            id,
            warp: access.warp,
            addr: access.addr,
            atomic,
        };
        let alloc = if self.mshrs.contains(line) {
            self.mshrs
                .merge(line, |e| e.pending_writes.push_back(pending))
        } else {
            let mut entry = MesiEntry::default();
            entry.pending_writes.push_back(pending);
            self.mshrs.allocate(line, entry)
        };
        if let Err(e) = alloc {
            self.stats.rejects += 1;
            return AccessOutcome::Reject(match e {
                MshrRejection::Full => RejectReason::MshrFull,
                MshrRejection::MergeListFull => RejectReason::MergeFull,
            });
        }
        self.next_req += 1;
        // Write-through-invalidate: drop the local copy at issue so no
        // warp on this core can read the pre-store value after the store
        // is globally ordered.
        if self.tags.invalidate(line).is_some() {
            self.stats.self_invalidations += 1;
        }
        let word = access.addr.line_word_index();
        let now = Timestamp(cycle.raw());
        let payload = match access.kind {
            AccessKind::Store { value } => ReqPayload::Write { now, word, value },
            AccessKind::Atomic { op } => ReqPayload::Atomic { now, word, op },
            AccessKind::Load => unreachable!("start_write is for writes"),
        };
        out.to_l2.push(ReqMsg {
            src: self.core,
            line,
            id,
            payload,
        });
        AccessOutcome::Pending
    }

    fn maybe_release_after_write(&mut self, line: LineAddr) {
        let entry = self.mshrs.get(line).expect("entry exists");
        if entry.pending_writes.is_empty() && !entry.gets_outstanding {
            debug_assert!(entry.waiting_loads.is_empty());
            self.mshrs.release(line);
        }
    }

    fn take_pending_write(&mut self, line: LineAddr, id: ReqId) -> PendingWrite {
        let entry = self.mshrs.get_mut(line).expect("entry exists");
        let pos = entry
            .pending_writes
            .iter()
            .position(|w| w.id == id)
            .unwrap_or_else(|| panic!("no pending write {id:?} for {line}"));
        entry.pending_writes.remove(pos).expect("position valid")
    }
}

impl L1Cache for MesiL1 {
    fn access(&mut self, cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let outcome = match access.kind {
            AccessKind::Load => {
                self.stats.loads += 1;
                self.start_load(cycle, access, out)
            }
            AccessKind::Store { .. } => {
                self.stats.stores += 1;
                self.start_write(cycle, access, out)
            }
            AccessKind::Atomic { .. } => {
                self.stats.atomics += 1;
                self.start_write(cycle, access, out)
            }
        };
        if matches!(outcome, AccessOutcome::Reject(_)) {
            // Rejected accesses retry later; count them once when they
            // are finally accepted (`rejects` tracks the retries).
            match access.kind {
                AccessKind::Load => self.stats.loads -= 1,
                AccessKind::Store { .. } => self.stats.stores -= 1,
                AccessKind::Atomic { .. } => self.stats.atomics -= 1,
            }
        }
        outcome
    }

    fn handle_resp(&mut self, _cycle: Cycle, resp: RespMsg, out: &mut L1Outbox) {
        let line = resp.line;
        match resp.payload {
            RespPayload::Data {
                data,
                ver,
                exp: _,
                seq,
            } => {
                let entry = self.mshrs.get_mut(line).expect("DATA without entry");
                entry.gets_outstanding = false;
                let poisoned = entry.poisoned;
                entry.poisoned = false;
                let loads = std::mem::take(&mut entry.waiting_loads);
                for (warp, addr, issued) in loads {
                    out.completions.push(Completion {
                        warp,
                        addr,
                        kind: CompletionKind::LoadDone {
                            value: data.word_at(addr),
                        },
                        // max(directory slot, issue time); even for a
                        // poisoned fill this precedes the racing write's
                        // completion (our inv-ack gates it).
                        ts: ver.join(Timestamp(issued)),
                        seq,
                    });
                }
                if !poisoned {
                    let mshrs = &self.mshrs;
                    let _ = self.tags.fill(
                        line,
                        SharedMeta { fill_seq: seq },
                        data,
                        false,
                        |addr, _| !mshrs.contains(addr),
                    );
                }
                let entry = self.mshrs.get(line).expect("entry exists");
                if entry.pending_writes.is_empty() {
                    self.mshrs.release(line);
                }
            }
            RespPayload::StoreAck { ver, seq } => {
                let w = self.take_pending_write(line, resp.id);
                debug_assert!(!w.atomic);
                out.completions.push(Completion {
                    warp: w.warp,
                    addr: w.addr,
                    kind: CompletionKind::StoreDone,
                    ts: ver,
                    seq,
                });
                self.maybe_release_after_write(line);
            }
            RespPayload::AtomicResp { value, ver, seq } => {
                let w = self.take_pending_write(line, resp.id);
                debug_assert!(w.atomic);
                out.completions.push(Completion {
                    warp: w.warp,
                    addr: w.addr,
                    kind: CompletionKind::AtomicDone { old: value },
                    ts: ver,
                    seq,
                });
                self.maybe_release_after_write(line);
            }
            RespPayload::Inv => {
                self.stats.invs_received += 1;
                self.tags.invalidate(line);
                if let Some(entry) = self.mshrs.get_mut(line) {
                    if entry.gets_outstanding {
                        entry.poisoned = true;
                    }
                }
                out.to_l2.push(ReqMsg {
                    src: self.core,
                    line,
                    id: ReqId(0),
                    payload: ReqPayload::InvAck,
                });
            }
            RespPayload::Renew { .. }
            | RespPayload::Flush
            | RespPayload::DataEx { .. }
            | RespPayload::Recall
            | RespPayload::WbAck => {
                debug_assert!(false, "write-through MESI never sends these");
            }
        }
    }

    fn tick(&mut self, _cycle: Cycle, _out: &mut L1Outbox) {}

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: invalidations and fills drive all transitions.
        None
    }

    fn set_chaos(&mut self, hook: Box<dyn rcc_chaos::PerturbPoint>) {
        // The only MESI L1 injection point is transient MSHR exhaustion.
        self.mshrs.set_chaos(hook);
    }

    fn pending(&self) -> usize {
        self.mshrs.len()
    }

    fn replay_rejected_access(&mut self, delta: &L1Stats, times: u64) {
        self.stats.add_scaled(delta, times);
    }

    fn stats(&self) -> &L1Stats {
        &self.stats
    }
}
