//! Directory-based invalidation coherence adapted to write-through,
//! write-no-allocate GPU L1s — the paper's MESI baseline.
//!
//! With write-through L1s there is no dirty/exclusive L1 state: L1 lines
//! are effectively Shared, the L2 directory tracks sharers, and every
//! store must *invalidate all sharers and collect their acknowledgements
//! before it can be acknowledged* — the invalidation round trips whose
//! latency Fig. 1 charges SC stalls to, and the recall traffic on L2
//! evictions that RCC's self-expiring leases avoid entirely. Five virtual
//! networks (request, response, invalidation, inv-ack, writeback) keep
//! the protocol deadlock-free (Table III).
//!
//! The transient-state count of the full MESI protocol (Table V: 16 L1
//! and 15 L2 states, 131 transitions) reflects the complete
//! race-resolution lattice of a writeback MESI; this write-through
//! adaptation resolves the same races with a poisoned-fill rule (an
//! invalidation arriving during a fetch completes the merged loads but
//! prevents caching) and per-line deferral at the directory.

mod l1;
mod l2;
pub mod wb;

pub use l1::MesiL1;
pub use l2::MesiL2;
pub use wb::{MesiWbL1, MesiWbL2, MesiWbProtocol};

use crate::kind::ProtocolKind;
use crate::protocol::Protocol;
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId};

/// Factory for the MESI baseline controllers.
#[derive(Debug, Clone, Default)]
pub struct MesiProtocol;

impl MesiProtocol {
    /// Creates the MESI baseline configuration.
    pub fn new(_cfg: &GpuConfig) -> Self {
        MesiProtocol
    }
}

impl Protocol for MesiProtocol {
    type L1 = MesiL1;
    type L2 = MesiL2;

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Mesi
    }

    fn make_l1(&self, core: CoreId, cfg: &GpuConfig) -> MesiL1 {
        MesiL1::new(core, cfg)
    }

    fn make_l2(&self, partition: PartitionId, cfg: &GpuConfig) -> MesiL2 {
        MesiL2::new(partition, cfg)
    }
}

#[cfg(test)]
mod conformance;
#[cfg(test)]
mod tests;
