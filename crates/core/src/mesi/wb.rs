//! Write-back L1 MESI — the CPU-style configuration the paper argues
//! against for GPUs (Section I: "a write-back policy brings
//! infrequently written data into the L1 only to write it back soon
//! afterwards").
//!
//! L1 lines are Shared or Modified. Stores need exclusive ownership: a
//! GETX invalidates every sharer (or recalls the current owner's dirty
//! data) before the directory grants `DataEx`; once Modified, stores
//! complete locally with zero traffic. Dirty evictions write the line
//! back (`WbData`), and remote accesses to a Modified line pay a recall
//! round trip through the owner.
//!
//! Consistency positions: a local store to a Modified line is globally
//! safe (no other copy exists); it is positioned at its cycle,
//! continuing the line's directory-slot numbering (`fill_seq + k`), and
//! the writeback reports the final slot so the directory's counter jumps
//! past it — every post-recall service of the word then orders strictly
//! after the local stores.

use crate::kind::ProtocolKind;
use crate::msg::{
    Access, AccessKind, AccessOutcome, Completion, CompletionKind, RejectReason, ReqId, ReqMsg,
    ReqPayload, RespMsg, RespPayload,
};
use crate::protocol::{L1Cache, L1Outbox, L1Stats, L2Bank, L2Outbox, L2Stats, Protocol};
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_common::{FxHashMap, FxHashSet};
use rcc_mem::{LineData, MshrFile, MshrRejection, TagArray};
use std::collections::VecDeque;

/// Factory for the MESI-WB controllers.
#[derive(Debug, Clone, Default)]
pub struct MesiWbProtocol;

impl MesiWbProtocol {
    /// Creates the write-back MESI configuration.
    pub fn new(_cfg: &GpuConfig) -> Self {
        MesiWbProtocol
    }
}

impl Protocol for MesiWbProtocol {
    type L1 = MesiWbL1;
    type L2 = MesiWbL2;

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::MesiWb
    }

    fn make_l1(&self, core: CoreId, cfg: &GpuConfig) -> MesiWbL1 {
        MesiWbL1::new(core, cfg)
    }

    fn make_l2(&self, partition: PartitionId, cfg: &GpuConfig) -> MesiWbL2 {
        MesiWbL2::new(partition, cfg)
    }
}

// ---------------------------------------------------------------------
// L1
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
struct WbMeta {
    /// Modified (writable) vs Shared.
    excl: bool,
    /// Sub-cycle position of this copy's latest knowledge: the fill's
    /// directory slot, advanced past every local store's slot.
    fill_seq: u64,
}

#[derive(Debug, Clone, Default)]
struct WbEntry {
    waiting_loads: Vec<(WarpId, WordAddr, u64)>,
    /// Stores awaiting exclusive ownership.
    pending_stores: Vec<(ReqId, WarpId, WordAddr, u64)>,
    /// Atomics serviced at the directory.
    pending_atomics: VecDeque<(ReqId, WarpId, WordAddr)>,
    gets_outstanding: bool,
    getx_outstanding: bool,
    poisoned: bool,
}

/// Write-back L1 controller.
#[derive(Debug, Clone)]
pub struct MesiWbL1 {
    core: CoreId,
    tags: TagArray<WbMeta>,
    mshrs: MshrFile<WbEntry>,
    /// Voluntary writebacks in flight (awaiting WbAck).
    wb_pending: FxHashSet<LineAddr>,
    next_req: u64,
    stats: L1Stats,
}

impl MesiWbL1 {
    /// Creates the controller for `core`.
    pub fn new(core: CoreId, cfg: &GpuConfig) -> Self {
        MesiWbL1 {
            core,
            tags: TagArray::new(cfg.l1.num_sets(), cfg.l1.ways),
            mshrs: MshrFile::new(cfg.l1.mshrs, cfg.l1.mshr_merge),
            wb_pending: FxHashSet::default(),
            next_req: 1,
            stats: L1Stats::default(),
        }
    }

    /// Whether `line` is held Modified (for tests).
    pub fn is_modified(&self, line: LineAddr) -> bool {
        self.tags.probe(line).is_some_and(|l| l.state.excl)
    }

    /// Whether `line` is cached at all (for tests).
    pub fn is_resident(&self, line: LineAddr) -> bool {
        self.tags.probe(line).is_some()
    }

    /// Evicts for a fill, writing back a dirty victim.
    fn fill_with_wb(
        &mut self,
        line: LineAddr,
        meta: WbMeta,
        data: LineData,
        dirty: bool,
        out: &mut L1Outbox,
    ) {
        let mshrs = &self.mshrs;
        let wb = &self.wb_pending;
        let evicted = self.tags.fill(line, meta, data, dirty, |addr, _| {
            !mshrs.contains(addr) && !wb.contains(&addr)
        });
        if let Ok(Some(ev)) = evicted {
            if ev.line.dirty {
                self.wb_pending.insert(ev.line.addr);
                out.to_l2.push(ReqMsg {
                    src: self.core,
                    line: ev.line.addr,
                    id: ReqId(0),
                    payload: ReqPayload::WbData {
                        data: ev.line.data,
                        last_seq: ev.line.state.fill_seq,
                    },
                });
            } else {
                self.stats.self_invalidations += 1;
            }
        }
    }

    fn send_gets(&mut self, cycle: Cycle, line: LineAddr, out: &mut L1Outbox) {
        let entry = self.mshrs.get_mut(line).expect("entry exists");
        if entry.gets_outstanding || entry.getx_outstanding {
            return; // GETX replies with data too
        }
        entry.gets_outstanding = true;
        out.to_l2.push(ReqMsg {
            src: self.core,
            line,
            id: ReqId(0),
            payload: ReqPayload::Gets {
                now: Timestamp(cycle.raw()),
                renew_exp: None,
            },
        });
    }

    fn send_getx(&mut self, cycle: Cycle, line: LineAddr, out: &mut L1Outbox) {
        let entry = self.mshrs.get_mut(line).expect("entry exists");
        if entry.getx_outstanding {
            return;
        }
        entry.getx_outstanding = true;
        out.to_l2.push(ReqMsg {
            src: self.core,
            line,
            id: ReqId(0),
            payload: ReqPayload::GetX {
                now: Timestamp(cycle.raw()),
            },
        });
    }

    fn maybe_release(&mut self, line: LineAddr) {
        let e = self.mshrs.get(line).expect("entry exists");
        if e.waiting_loads.is_empty()
            && e.pending_stores.is_empty()
            && e.pending_atomics.is_empty()
            && !e.gets_outstanding
            && !e.getx_outstanding
        {
            self.mshrs.release(line);
        }
    }
}

impl L1Cache for MesiWbL1 {
    fn access(&mut self, cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let line = access.addr.line();
        match access.kind {
            AccessKind::Load => {
                self.stats.loads += 1;
                if let Some(l) = self.tags.access(line) {
                    self.stats.load_hits += 1;
                    let seq = l.state.fill_seq;
                    return AccessOutcome::Done(Completion {
                        warp: access.warp,
                        addr: access.addr,
                        kind: CompletionKind::LoadDone {
                            value: l.data.word_at(access.addr),
                        },
                        ts: Timestamp(cycle.raw()),
                        seq,
                    });
                }
                let waiting = (access.warp, access.addr, cycle.raw());
                if self.mshrs.contains(line) {
                    if self.mshrs.get(line).expect("checked").poisoned {
                        self.stats.rejects += 1;
                        self.stats.loads -= 1;
                        return AccessOutcome::Reject(RejectReason::TransientState);
                    }
                    if self
                        .mshrs
                        .merge(line, |e| e.waiting_loads.push(waiting))
                        .is_err()
                    {
                        self.stats.rejects += 1;
                        self.stats.loads -= 1;
                        return AccessOutcome::Reject(RejectReason::MergeFull);
                    }
                } else {
                    let entry = WbEntry {
                        waiting_loads: vec![waiting],
                        ..WbEntry::default()
                    };
                    if self.mshrs.allocate(line, entry).is_err() {
                        self.stats.rejects += 1;
                        self.stats.loads -= 1;
                        return AccessOutcome::Reject(RejectReason::MshrFull);
                    }
                }
                self.send_gets(cycle, line, out);
                AccessOutcome::Pending
            }
            AccessKind::Store { value } => {
                self.stats.stores += 1;
                // The write-back fast path: a Modified line absorbs the
                // store with zero coherence traffic.
                if self.is_modified(line) {
                    let l = self.tags.access(line).expect("checked");
                    l.data.set_word_at(access.addr, value);
                    l.dirty = true;
                    // The store takes the line's next slot; future hits
                    // on this copy are positioned strictly after it.
                    let seq = l.state.fill_seq;
                    l.state.fill_seq = seq + 1;
                    return AccessOutcome::Done(Completion {
                        warp: access.warp,
                        addr: access.addr,
                        kind: CompletionKind::StoreDone,
                        ts: Timestamp(cycle.raw()),
                        seq,
                    });
                }
                // Peek the next id; minted only if the MSHR accepts
                // (the `replay_rejected_access` contract).
                let id = ReqId(self.next_req);
                let pending = (id, access.warp, access.addr, value);
                let alloc = if self.mshrs.contains(line) {
                    self.mshrs.merge(line, |e| e.pending_stores.push(pending))
                } else {
                    let mut entry = WbEntry::default();
                    entry.pending_stores.push(pending);
                    self.mshrs.allocate(line, entry)
                };
                if let Err(e) = alloc {
                    self.stats.rejects += 1;
                    self.stats.stores -= 1;
                    return AccessOutcome::Reject(match e {
                        MshrRejection::Full => RejectReason::MshrFull,
                        MshrRejection::MergeListFull => RejectReason::MergeFull,
                    });
                }
                self.next_req += 1;
                self.send_getx(cycle, line, out);
                AccessOutcome::Pending
            }
            AccessKind::Atomic { op } => {
                self.stats.atomics += 1;
                // Atomics are serviced at the directory; if we own the
                // line, the directory will recall it from us first.
                let id = ReqId(self.next_req);
                let pending = (id, access.warp, access.addr);
                let alloc = if self.mshrs.contains(line) {
                    self.mshrs
                        .merge(line, |e| e.pending_atomics.push_back(pending))
                } else {
                    let mut entry = WbEntry::default();
                    entry.pending_atomics.push_back(pending);
                    self.mshrs.allocate(line, entry)
                };
                if let Err(e) = alloc {
                    self.stats.rejects += 1;
                    self.stats.atomics -= 1;
                    return AccessOutcome::Reject(match e {
                        MshrRejection::Full => RejectReason::MshrFull,
                        MshrRejection::MergeListFull => RejectReason::MergeFull,
                    });
                }
                self.next_req += 1;
                out.to_l2.push(ReqMsg {
                    src: self.core,
                    line,
                    id,
                    payload: ReqPayload::Atomic {
                        now: Timestamp(cycle.raw()),
                        word: access.addr.line_word_index(),
                        op,
                    },
                });
                AccessOutcome::Pending
            }
        }
    }

    fn handle_resp(&mut self, cycle: Cycle, resp: RespMsg, out: &mut L1Outbox) {
        let line = resp.line;
        match resp.payload {
            RespPayload::Data { data, ver, seq, .. } => {
                let entry = self.mshrs.get_mut(line).expect("DATA without entry");
                entry.gets_outstanding = false;
                let poisoned = std::mem::take(&mut entry.poisoned);
                let loads = std::mem::take(&mut entry.waiting_loads);
                for (warp, addr, issued) in loads {
                    out.completions.push(Completion {
                        warp,
                        addr,
                        kind: CompletionKind::LoadDone {
                            value: data.word_at(addr),
                        },
                        ts: ver.join(Timestamp(issued)),
                        seq,
                    });
                }
                if !poisoned {
                    self.fill_with_wb(
                        line,
                        WbMeta {
                            excl: false,
                            fill_seq: seq,
                        },
                        data,
                        false,
                        out,
                    );
                }
                self.maybe_release(line);
            }
            RespPayload::DataEx { mut data, seq } => {
                let entry = self.mshrs.get_mut(line).expect("DataEx without entry");
                entry.getx_outstanding = false;
                entry.poisoned = false;
                // Loads merged behind the GETX observe the pre-store data.
                let loads = std::mem::take(&mut entry.waiting_loads);
                for (warp, addr, issued) in loads {
                    out.completions.push(Completion {
                        warp,
                        addr,
                        kind: CompletionKind::LoadDone {
                            value: data.word_at(addr),
                        },
                        ts: Timestamp(cycle.raw().max(issued)),
                        seq,
                    });
                }
                // Apply the stores that wanted ownership, in order.
                let stores = std::mem::take(&mut entry.pending_stores);
                let dirty = !stores.is_empty();
                let mut line_seq = seq + 1;
                for (_, warp, addr, value) in stores {
                    data.set_word_at(addr, value);
                    let sseq = line_seq;
                    line_seq += 1;
                    out.completions.push(Completion {
                        warp,
                        addr,
                        kind: CompletionKind::StoreDone,
                        ts: Timestamp(cycle.raw()),
                        seq: sseq,
                    });
                }
                self.fill_with_wb(
                    line,
                    WbMeta {
                        excl: true,
                        fill_seq: line_seq,
                    },
                    data,
                    dirty,
                    out,
                );
                self.maybe_release(line);
            }
            RespPayload::AtomicResp { value, ver, seq } => {
                let entry = self.mshrs.get_mut(line).expect("resp without entry");
                let (id, warp, addr) = entry
                    .pending_atomics
                    .pop_front()
                    .expect("atomic resp without pending atomic");
                debug_assert_eq!(id, resp.id);
                out.completions.push(Completion {
                    warp,
                    addr,
                    kind: CompletionKind::AtomicDone { old: value },
                    ts: ver,
                    seq,
                });
                self.maybe_release(line);
            }
            RespPayload::Recall => {
                // Surrender a Modified line with its data; Shared copies
                // (or lines already written back) just vanish.
                match self.tags.invalidate(line) {
                    Some(l) if l.state.excl => {
                        out.to_l2.push(ReqMsg {
                            src: self.core,
                            line,
                            id: ReqId(0),
                            payload: ReqPayload::WbData {
                                data: l.data,
                                last_seq: l.state.fill_seq,
                            },
                        });
                    }
                    Some(_) => {
                        // Treated like an invalidation of a shared copy.
                        out.to_l2.push(ReqMsg {
                            src: self.core,
                            line,
                            id: ReqId(0),
                            payload: ReqPayload::InvAck,
                        });
                    }
                    None => {
                        debug_assert!(
                            self.wb_pending.contains(&line),
                            "recall for a line we neither hold nor are writing back"
                        );
                        // The voluntary WbData in flight answers the recall.
                    }
                }
                if let Some(entry) = self.mshrs.get_mut(line) {
                    if entry.gets_outstanding {
                        entry.poisoned = true;
                    }
                }
                self.stats.invs_received += 1;
            }
            RespPayload::Inv => {
                self.stats.invs_received += 1;
                self.tags.invalidate(line);
                if let Some(entry) = self.mshrs.get_mut(line) {
                    if entry.gets_outstanding {
                        entry.poisoned = true;
                    }
                }
                out.to_l2.push(ReqMsg {
                    src: self.core,
                    line,
                    id: ReqId(0),
                    payload: ReqPayload::InvAck,
                });
            }
            RespPayload::WbAck => {
                self.wb_pending.remove(&line);
            }
            RespPayload::StoreAck { .. } | RespPayload::Renew { .. } | RespPayload::Flush => {
                debug_assert!(false, "MESI-WB never sends these");
            }
        }
    }

    fn tick(&mut self, _cycle: Cycle, _out: &mut L1Outbox) {}

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: invalidations, recalls, and fills drive all
        // transitions.
        None
    }

    fn set_chaos(&mut self, hook: Box<dyn rcc_chaos::PerturbPoint>) {
        // The only MESI-WB L1 injection point is transient MSHR
        // exhaustion; every allocate/merge path here tolerates rejection.
        self.mshrs.set_chaos(hook);
    }

    fn pending(&self) -> usize {
        self.mshrs.len() + self.wb_pending.len()
    }

    fn replay_rejected_access(&mut self, delta: &L1Stats, times: u64) {
        self.stats.add_scaled(delta, times);
    }

    fn stats(&self) -> &L1Stats {
        &self.stats
    }
}

// ---------------------------------------------------------------------
// L2 directory
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy)]
enum DirState {
    /// Sharer bitmask (possibly stale, possibly empty).
    Shared(u64),
    /// A single L1 holds the line Modified.
    Modified(CoreId),
}

#[derive(Debug, Clone, Copy)]
struct WbDir {
    state: DirState,
}

#[derive(Debug, Clone, Default)]
struct WbL2Entry {
    queued: VecDeque<ReqMsg>,
}

#[derive(Debug, Clone)]
struct PendingFill {
    line: LineAddr,
    data: LineData,
    queued: VecDeque<ReqMsg>,
}

#[allow(clippy::large_enum_variant)] // PendingFill carries a line; Txns are few
#[derive(Debug, Clone)]
enum Txn {
    /// Invalidating sharers before serving `op` (GETX or atomic).
    CollectInvs {
        needed: usize,
        op: ReqMsg,
        started: Cycle,
    },
    /// Recalled a Modified owner; waiting for its WbData.
    AwaitWb {
        op: Option<ReqMsg>,
        pending_fill: Option<PendingFill>,
        started: Cycle,
    },
}

/// Write-back MESI directory.
#[derive(Debug, Clone)]
pub struct MesiWbL2 {
    partition: PartitionId,
    tags: TagArray<WbDir>,
    mshrs: MshrFile<WbL2Entry>,
    txns: FxHashMap<LineAddr, Txn>,
    filling: FxHashSet<LineAddr>,
    stalled_fills: Vec<PendingFill>,
    deferred: FxHashMap<LineAddr, VecDeque<ReqMsg>>,
    deferred_count: usize,
    seq: u64,
    stats: L2Stats,
}

impl MesiWbL2 {
    /// Creates the directory for `partition`.
    pub fn new(partition: PartitionId, cfg: &GpuConfig) -> Self {
        MesiWbL2 {
            partition,
            tags: TagArray::with_stride(
                cfg.l2.partition.num_sets(),
                cfg.l2.partition.ways,
                cfg.l2.num_partitions as u64,
            ),
            mshrs: MshrFile::new(cfg.l2.partition.mshrs, cfg.l2.partition.mshr_merge),
            txns: FxHashMap::default(),
            filling: FxHashSet::default(),
            stalled_fills: Vec::new(),
            deferred: FxHashMap::default(),
            deferred_count: 0,
            seq: 0,
            stats: L2Stats::default(),
        }
    }

    /// This bank's partition id.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Current owner of a resident line (for tests).
    pub fn owner(&self, line: LineAddr) -> Option<CoreId> {
        self.tags.probe(line).and_then(|l| match l.state.state {
            DirState::Modified(o) => Some(o),
            DirState::Shared(_) => None,
        })
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn is_blocked(&self, line: LineAddr) -> bool {
        self.txns.contains_key(&line) || self.filling.contains(&line)
    }

    fn sharers(mask: u64) -> Vec<CoreId> {
        (0..64)
            .filter(|i| mask & (1 << i) != 0)
            .map(CoreId)
            .collect()
    }

    fn serve_gets(&mut self, cycle: Cycle, req: &ReqMsg, out: &mut L2Outbox) {
        match self.tags.probe(req.line).expect("resident").state.state {
            DirState::Shared(_) => {
                let seq = self.next_seq();
                let l = self.tags.access(req.line).expect("checked");
                if let DirState::Shared(mask) = &mut l.state.state {
                    *mask |= 1 << req.src.index();
                }
                out.to_l1.push(RespMsg {
                    dst: req.src,
                    line: req.line,
                    id: req.id,
                    payload: RespPayload::Data {
                        data: l.data.clone(),
                        ver: Timestamp(cycle.raw()),
                        exp: Timestamp(u64::MAX),
                        seq,
                    },
                });
            }
            DirState::Modified(owner) => {
                // Recall the dirty line from its owner first.
                self.stats.invs_sent += 1;
                out.to_l1.push(RespMsg {
                    dst: owner,
                    line: req.line,
                    id: ReqId(0),
                    payload: RespPayload::Recall,
                });
                self.txns.insert(
                    req.line,
                    Txn::AwaitWb {
                        op: Some(req.clone()),
                        pending_fill: None,
                        started: cycle,
                    },
                );
            }
        }
    }

    fn grant_exclusive(&mut self, cycle: Cycle, req: &ReqMsg, out: &mut L2Outbox) {
        let seq = self.next_seq();
        let l = self.tags.access(req.line).expect("resident");
        l.state.state = DirState::Modified(req.src);
        out.to_l1.push(RespMsg {
            dst: req.src,
            line: req.line,
            id: req.id,
            payload: RespPayload::DataEx {
                data: l.data.clone(),
                seq,
            },
        });
        let _ = cycle;
    }

    fn apply_atomic(&mut self, cycle: Cycle, req: &ReqMsg, out: &mut L2Outbox) {
        let ReqPayload::Atomic { word, op, .. } = &req.payload else {
            unreachable!("apply_atomic on {req:?}");
        };
        let seq = self.next_seq();
        let l = self.tags.access(req.line).expect("resident");
        let old = l.data.word(*word);
        if op.mutates(old) {
            l.data.set_word(*word, op.apply(old));
            l.dirty = true;
        }
        out.to_l1.push(RespMsg {
            dst: req.src,
            line: req.line,
            id: req.id,
            payload: RespPayload::AtomicResp {
                value: old,
                ver: Timestamp(cycle.raw()),
                seq,
            },
        });
    }

    /// Serves a GETX or atomic that may need invalidations/recalls.
    fn serve_excl_op(&mut self, cycle: Cycle, req: ReqMsg, out: &mut L2Outbox) {
        let state = self.tags.probe(req.line).expect("resident").state.state;
        match state {
            DirState::Modified(owner) => {
                self.stats.invs_sent += 1;
                self.stats.stalled_stores += 1;
                out.to_l1.push(RespMsg {
                    dst: owner,
                    line: req.line,
                    id: ReqId(0),
                    payload: RespPayload::Recall,
                });
                self.txns.insert(
                    req.line,
                    Txn::AwaitWb {
                        op: Some(req),
                        pending_fill: None,
                        started: cycle,
                    },
                );
            }
            DirState::Shared(mask) => {
                // For a GETX the requester's own stale copy is replaced
                // wholesale by the DataEx, so it needs no invalidation;
                // an atomic invalidates everyone.
                let exclude = match req.payload {
                    ReqPayload::GetX { .. } => Some(req.src),
                    _ => None,
                };
                let targets: Vec<CoreId> = Self::sharers(mask)
                    .into_iter()
                    .filter(|c| Some(*c) != exclude)
                    .collect();
                if let DirState::Shared(m) =
                    &mut self.tags.access(req.line).expect("checked").state.state
                {
                    *m = 0;
                }
                if targets.is_empty() {
                    match req.payload {
                        ReqPayload::GetX { .. } => self.grant_exclusive(cycle, &req, out),
                        _ => self.apply_atomic(cycle, &req, out),
                    }
                    return;
                }
                self.stats.invs_sent += targets.len() as u64;
                self.stats.stalled_stores += 1;
                for dst in &targets {
                    out.to_l1.push(RespMsg {
                        dst: *dst,
                        line: req.line,
                        id: ReqId(0),
                        payload: RespPayload::Inv,
                    });
                }
                self.txns.insert(
                    req.line,
                    Txn::CollectInvs {
                        needed: targets.len(),
                        op: req,
                        started: cycle,
                    },
                );
            }
        }
    }

    fn replay_queued(
        &mut self,
        cycle: Cycle,
        line: LineAddr,
        queued: VecDeque<ReqMsg>,
        out: &mut L2Outbox,
    ) {
        // Queued requests were absorbed by the MSHR *before* the fill
        // arrived; anything in `deferred` arrived later, while the fill was
        // stalled or a transaction was open. Replay the queued requests
        // first, and if one of them re-blocks the line, park the remainder
        // *ahead* of the existing deferred requests — otherwise two
        // same-core requests could be acknowledged out of order.
        let mut queued = queued;
        while let Some(req) = queued.pop_front() {
            if self.is_blocked(line) {
                queued.push_front(req);
                let mut newer = self.deferred.remove(&line).unwrap_or_default();
                self.deferred_count += queued.len();
                queued.append(&mut newer);
                self.deferred.insert(line, queued);
                return;
            }
            match &req.payload {
                ReqPayload::Gets { .. } => self.serve_gets(cycle, &req, out),
                _ => self.serve_excl_op(cycle, req, out),
            }
        }
        self.redispatch_deferred(cycle, line, out);
    }

    fn redispatch_deferred(&mut self, cycle: Cycle, line: LineAddr, out: &mut L2Outbox) {
        if self.is_blocked(line) {
            return;
        }
        let Some(mut queue) = self.deferred.remove(&line) else {
            return;
        };
        while let Some(req) = queue.pop_front() {
            self.deferred_count -= 1;
            self.handle_req(cycle, req, out)
                .expect("re-dispatched request cannot be rejected");
            if self.is_blocked(line) {
                while let Some(rest) = queue.pop_back() {
                    self.deferred.entry(line).or_default().push_front(rest);
                }
                return;
            }
        }
    }

    fn try_fill_or_recall(
        &mut self,
        cycle: Cycle,
        line: LineAddr,
        data: LineData,
        queued: VecDeque<ReqMsg>,
        out: &mut L2Outbox,
    ) {
        let blocked: Vec<LineAddr> = self.txns.keys().copied().collect();
        // Prefer victims with no tracked copies at all.
        let attempt = self.tags.fill(
            line,
            WbDir {
                state: DirState::Shared(0),
            },
            data.clone(),
            false,
            |addr, d| matches!(d.state, DirState::Shared(0)) && !blocked.contains(&addr),
        );
        match attempt {
            Ok(evicted) => {
                if let Some(ev) = evicted {
                    if ev.line.dirty {
                        self.stats.writebacks += 1;
                        out.dram_writeback.push((ev.line.addr, ev.line.data));
                    }
                }
                self.replay_queued(cycle, line, queued, out);
            }
            Err(()) => {
                // Recall a tracked victim: Shared sharers get Inv (acks
                // only); a Modified owner must return its data.
                let victim = self
                    .tags
                    .peek_victim(line, |addr, _| !blocked.contains(&addr))
                    .map(|v| (v.addr, v.state.state));
                self.filling.insert(line);
                let Some((victim_addr, state)) = victim else {
                    self.stalled_fills.push(PendingFill { line, data, queued });
                    return;
                };
                match state {
                    DirState::Modified(owner) => {
                        self.stats.invs_sent += 1;
                        out.to_l1.push(RespMsg {
                            dst: owner,
                            line: victim_addr,
                            id: ReqId(0),
                            payload: RespPayload::Recall,
                        });
                        self.txns.insert(
                            victim_addr,
                            Txn::AwaitWb {
                                op: None,
                                pending_fill: Some(PendingFill { line, data, queued }),
                                started: cycle,
                            },
                        );
                    }
                    DirState::Shared(mask) => {
                        let targets = Self::sharers(mask);
                        debug_assert!(!targets.is_empty());
                        self.stats.invs_sent += targets.len() as u64;
                        for dst in &targets {
                            out.to_l1.push(RespMsg {
                                dst: *dst,
                                line: victim_addr,
                                id: ReqId(0),
                                payload: RespPayload::Inv,
                            });
                        }
                        // Reuse CollectInvs with a synthetic "op" meaning
                        // "complete the eviction"; represented via AwaitWb
                        // with a pending fill and `needed` tracked by
                        // clearing the mask and counting acks in the
                        // CollectInvs arm would conflate ops — instead we
                        // model it as CollectInvs whose op is the fill.
                        self.txns.insert(
                            victim_addr,
                            Txn::CollectInvs {
                                needed: targets.len(),
                                op: ReqMsg {
                                    src: CoreId(0),
                                    line: victim_addr,
                                    id: ReqId(0),
                                    // Marker: an InvAck-completing eviction.
                                    payload: ReqPayload::FlushAck,
                                },
                                started: cycle,
                            },
                        );
                        // Stash the fill alongside (keyed by victim).
                        self.stalled_fills.push(PendingFill { line, data, queued });
                    }
                }
            }
        }
    }

    fn complete_victim_eviction(&mut self, victim: LineAddr, out: &mut L2Outbox) {
        if let Some(v) = self.tags.invalidate(victim) {
            if v.dirty {
                self.stats.writebacks += 1;
                out.dram_writeback.push((victim, v.data));
            }
        }
    }

    fn handle_inv_ack(&mut self, cycle: Cycle, line: LineAddr, out: &mut L2Outbox) {
        match self.txns.get_mut(&line) {
            Some(Txn::CollectInvs { needed, .. }) => {
                *needed -= 1;
                if *needed > 0 {
                    return;
                }
                let Some(Txn::CollectInvs { op, started, .. }) = self.txns.remove(&line) else {
                    unreachable!();
                };
                self.stats.store_stall_cycles += cycle.raw().saturating_sub(started.raw());
                if matches!(op.payload, ReqPayload::FlushAck) {
                    // Eviction marker: remove the victim and retry the
                    // parked fill(s).
                    self.complete_victim_eviction(line, out);
                    let stalled = std::mem::take(&mut self.stalled_fills);
                    for pf in stalled {
                        self.filling.remove(&pf.line);
                        self.try_fill_or_recall(cycle, pf.line, pf.data, pf.queued, out);
                    }
                } else {
                    match op.payload {
                        ReqPayload::GetX { .. } => self.grant_exclusive(cycle, &op, out),
                        _ => self.apply_atomic(cycle, &op, out),
                    }
                }
                self.redispatch_deferred(cycle, line, out);
            }
            Some(Txn::AwaitWb { .. }) | None => {
                // Spurious ack from a stale sharer bit; nothing to do.
            }
        }
    }

    fn handle_wb_data(
        &mut self,
        cycle: Cycle,
        src: CoreId,
        line: LineAddr,
        data: LineData,
        out: &mut L2Outbox,
    ) {
        // Always acknowledge so the writer can clear its in-flight set.
        out.to_l1.push(RespMsg {
            dst: src,
            line,
            id: ReqId(0),
            payload: RespPayload::WbAck,
        });
        match self.txns.remove(&line) {
            Some(Txn::AwaitWb {
                op,
                pending_fill,
                started,
            }) => {
                self.stats.store_stall_cycles += cycle.raw().saturating_sub(started.raw());
                if let Some(l) = self.tags.access(line) {
                    l.data = data;
                    l.dirty = true;
                    l.state.state = DirState::Shared(0);
                }
                if let Some(req) = op {
                    match &req.payload {
                        ReqPayload::Gets { .. } => self.serve_gets(cycle, &req, out),
                        _ => self.serve_excl_op(cycle, req, out),
                    }
                }
                if let Some(pf) = pending_fill {
                    self.complete_victim_eviction(line, out);
                    self.filling.remove(&pf.line);
                    self.try_fill_or_recall(cycle, pf.line, pf.data, pf.queued, out);
                }
                self.redispatch_deferred(cycle, line, out);
            }
            Some(txn) => {
                // Shouldn't happen: put it back.
                self.txns.insert(line, txn);
            }
            None => {
                // Voluntary writeback.
                if let Some(l) = self.tags.access(line) {
                    l.data = data;
                    l.dirty = true;
                    l.state.state = DirState::Shared(0);
                }
            }
        }
    }
}

impl L2Bank for MesiWbL2 {
    fn handle_req(&mut self, cycle: Cycle, req: ReqMsg, out: &mut L2Outbox) -> Result<(), ReqMsg> {
        let line = req.line;
        match &req.payload {
            ReqPayload::InvAck => {
                self.handle_inv_ack(cycle, line, out);
                return Ok(());
            }
            ReqPayload::WbData { data, last_seq } => {
                // Post-recall services must order after the owner's
                // local stores.
                self.seq = self.seq.max(*last_seq);
                let data = data.clone();
                self.handle_wb_data(cycle, req.src, line, data, out);
                return Ok(());
            }
            ReqPayload::FlushAck => return Ok(()),
            _ => {}
        }
        if self.is_blocked(line) || self.deferred.contains_key(&line) {
            self.deferred_count += 1;
            self.deferred.entry(line).or_default().push_back(req);
            return Ok(());
        }
        match &req.payload {
            ReqPayload::Gets { .. } => {
                self.stats.gets += 1;
                if self.mshrs.contains(line) {
                    self.mshrs
                        .get_mut(line)
                        .expect("checked")
                        .queued
                        .push_back(req);
                } else if self.tags.probe(line).is_some() {
                    self.serve_gets(cycle, &req, out);
                } else {
                    if self.mshrs.is_full() {
                        self.stats.gets -= 1;
                        return Err(req);
                    }
                    let mut entry = WbL2Entry::default();
                    entry.queued.push_back(req);
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::GetX { .. } | ReqPayload::Atomic { .. } => {
                if matches!(req.payload, ReqPayload::GetX { .. }) {
                    self.stats.writes += 1;
                } else {
                    self.stats.atomics += 1;
                }
                if self.mshrs.contains(line) {
                    self.mshrs
                        .get_mut(line)
                        .expect("checked")
                        .queued
                        .push_back(req);
                } else if self.tags.probe(line).is_some() {
                    self.serve_excl_op(cycle, req, out);
                } else {
                    if self.mshrs.is_full() {
                        return Err(req);
                    }
                    let mut entry = WbL2Entry::default();
                    entry.queued.push_back(req);
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::Write { .. } => {
                debug_assert!(false, "write-back L1s never send write-through stores");
            }
            _ => unreachable!("handled above"),
        }
        Ok(())
    }

    fn handle_dram(&mut self, cycle: Cycle, line: LineAddr, data: LineData, out: &mut L2Outbox) {
        let entry = self
            .mshrs
            .release(line)
            .expect("DRAM fill without an MSHR entry");
        self.try_fill_or_recall(cycle, line, data, entry.queued, out);
    }

    fn tick(&mut self, cycle: Cycle, out: &mut L2Outbox) {
        // Retry fills that found every way transiently busy (only when no
        // eviction-recall is pending, which would legitimately hold them).
        if !self.stalled_fills.is_empty() && !self.txns.values().any(|t| {
            matches!(t, Txn::CollectInvs { op, .. } if matches!(op.payload, ReqPayload::FlushAck))
                || matches!(
                    t,
                    Txn::AwaitWb {
                        pending_fill: Some(_),
                        ..
                    }
                )
        }) {
            let stalled = std::mem::take(&mut self.stalled_fills);
            for pf in stalled {
                self.filling.remove(&pf.line);
                self.try_fill_or_recall(cycle, pf.line, pf.data, pf.queued, out);
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // Stalled fills poll every cycle until the blocking transaction
        // clears; with none parked the bank is purely reactive.
        if self.stalled_fills.is_empty() {
            None
        } else {
            Some(now + 1)
        }
    }

    fn pending(&self) -> usize {
        self.mshrs.len() + self.deferred_count + self.txns.len() + self.stalled_fills.len()
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }
}
