//! MESI L2 bank: the coherence directory. Tracks sharers per line, turns
//! stores into invalidate-collect-apply sequences, and recalls sharers on
//! evictions.

use crate::msg::{ReqId, ReqMsg, ReqPayload, RespMsg, RespPayload};
use crate::protocol::{L2Bank, L2Outbox, L2Stats};
use rcc_common::addr::LineAddr;
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_common::{FxHashMap, FxHashSet};
use rcc_mem::{LineData, MshrFile, TagArray};
use std::collections::VecDeque;

/// Directory state per line: which cores hold (possibly stale-tracked)
/// copies. L1s evict silently, so a bit may be set for a core that no
/// longer caches the line — such cores simply ack the spurious
/// invalidation.
#[derive(Debug, Clone, Copy, Default)]
struct Directory {
    sharers: u64,
}

impl Directory {
    fn add(&mut self, core: CoreId) {
        self.sharers |= 1 << core.index();
    }

    fn all(&self) -> Vec<CoreId> {
        (0..64)
            .filter(|i| self.sharers & (1 << i) != 0)
            .map(CoreId)
            .collect()
    }
}

/// An invalidate-collect-apply transaction in flight for a resident line.
#[derive(Debug, Clone)]
struct PendingInv {
    needed: usize,
    /// The write/atomic that triggered the invalidations (applied when
    /// the last ack arrives).
    op: ReqMsg,
    started: Cycle,
}

/// A fill waiting for a recall to finish.
#[derive(Debug, Clone)]
struct PendingFill {
    line: LineAddr,
    data: LineData,
    queued: VecDeque<ReqMsg>,
}

/// A recall in flight: the victim stays resident (transiently busy) until
/// every sharer acked; only then may the displacing fill complete. This
/// is the recall cost the paper contrasts with RCC's self-expiring leases
/// ("RCC allows caches to be non-inclusive without requiring the usual
/// recall messages").
#[derive(Debug, Clone)]
struct Recall {
    needed: usize,
    pending_fill: Option<PendingFill>,
}

#[derive(Debug, Clone, Default)]
struct MesiEntry {
    /// All requests that arrived while the line was being fetched, in
    /// arrival order; replayed through the hit paths at fill time.
    queued: VecDeque<ReqMsg>,
}

/// The MESI controller for one L2 partition.
#[derive(Debug, Clone)]
pub struct MesiL2 {
    partition: PartitionId,
    tags: TagArray<Directory>,
    mshrs: MshrFile<MesiEntry>,
    pending_inv: FxHashMap<LineAddr, PendingInv>,
    recalls: FxHashMap<LineAddr, Recall>,
    /// Lines whose fill is parked behind a recall.
    filling: FxHashSet<LineAddr>,
    /// Fills that found every way transiently busy; retried each tick.
    stalled_fills: Vec<PendingFill>,
    deferred: FxHashMap<LineAddr, VecDeque<ReqMsg>>,
    deferred_count: usize,
    seq: u64,
    stats: L2Stats,
}

impl MesiL2 {
    /// Creates the controller for `partition`.
    pub fn new(partition: PartitionId, cfg: &GpuConfig) -> Self {
        MesiL2 {
            partition,
            tags: TagArray::with_stride(
                cfg.l2.partition.num_sets(),
                cfg.l2.partition.ways,
                cfg.l2.num_partitions as u64,
            ),
            mshrs: MshrFile::new(cfg.l2.partition.mshrs, cfg.l2.partition.mshr_merge),
            pending_inv: FxHashMap::default(),
            recalls: FxHashMap::default(),
            filling: FxHashSet::default(),
            stalled_fills: Vec::new(),
            deferred: FxHashMap::default(),
            deferred_count: 0,
            seq: 0,
            stats: L2Stats::default(),
        }
    }

    /// This bank's partition id.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Sharer count of a resident line (for tests).
    pub fn sharer_count(&self, line: LineAddr) -> Option<u32> {
        self.tags.probe(line).map(|l| l.state.sharers.count_ones())
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    fn is_blocked(&self, line: LineAddr) -> bool {
        self.pending_inv.contains_key(&line)
            || self.recalls.contains_key(&line)
            || self.filling.contains(&line)
    }

    fn serve_gets_hit(&mut self, cycle: Cycle, req: &ReqMsg, out: &mut L2Outbox) {
        let seq = self.next_seq();
        let line = self.tags.access(req.line).expect("hit requires residency");
        line.state.add(req.src);
        out.to_l1.push(RespMsg {
            dst: req.src,
            line: req.line,
            id: req.id,
            payload: RespPayload::Data {
                data: line.data.clone(),
                ver: Timestamp(cycle.raw()),
                exp: Timestamp(u64::MAX),
                seq,
            },
        });
    }

    /// Applies a (write-permission-holding) store/atomic and acks it.
    fn apply_write(&mut self, cycle: Cycle, req: &ReqMsg, out: &mut L2Outbox) {
        let seq = self.next_seq();
        let ver = Timestamp(cycle.raw());
        let meta = self
            .tags
            .access(req.line)
            .expect("apply requires residency");
        match &req.payload {
            ReqPayload::Write { word, value, .. } => {
                meta.data.set_word(*word, *value);
                meta.dirty = true;
                out.to_l1.push(RespMsg {
                    dst: req.src,
                    line: req.line,
                    id: req.id,
                    payload: RespPayload::StoreAck { ver, seq },
                });
            }
            ReqPayload::Atomic { word, op, .. } => {
                let old = meta.data.word(*word);
                if op.mutates(old) {
                    meta.data.set_word(*word, op.apply(old));
                    meta.dirty = true;
                }
                out.to_l1.push(RespMsg {
                    dst: req.src,
                    line: req.line,
                    id: req.id,
                    payload: RespPayload::AtomicResp {
                        value: old,
                        ver,
                        seq,
                    },
                });
            }
            other => unreachable!("apply_write on {other:?}"),
        }
    }

    fn serve_write_hit(&mut self, cycle: Cycle, req: ReqMsg, out: &mut L2Outbox) {
        let line = req.line;
        let targets = {
            let meta = self.tags.probe_mut(line).expect("hit requires residency");
            // Invalidate every tracked copy — including the writer's own
            // core: although the writer dropped its copy at store issue,
            // another of its warps may have refetched the line while the
            // write-through was in flight, and that copy is stale too.
            let targets = meta.state.all();
            meta.state.sharers = 0;
            targets
        };
        if targets.is_empty() {
            self.apply_write(cycle, &req, out);
            return;
        }
        // Invalidate-collect-apply: the store waits for every sharer.
        self.stats.stalled_stores += 1;
        self.stats.invs_sent += targets.len() as u64;
        for dst in &targets {
            out.to_l1.push(RespMsg {
                dst: *dst,
                line,
                id: ReqId(0),
                payload: RespPayload::Inv,
            });
        }
        self.pending_inv.insert(
            line,
            PendingInv {
                needed: targets.len(),
                op: req,
                started: cycle,
            },
        );
    }

    /// Replays requests that queued behind a fetch, in arrival order; a
    /// write needing invalidations blocks the line and defers the rest.
    fn replay_queued(
        &mut self,
        cycle: Cycle,
        line: LineAddr,
        queued: VecDeque<ReqMsg>,
        out: &mut L2Outbox,
    ) {
        for req in queued {
            if self.is_blocked(line) || self.deferred.contains_key(&line) {
                self.deferred_count += 1;
                self.deferred.entry(line).or_default().push_back(req);
                continue;
            }
            match &req.payload {
                ReqPayload::Gets { .. } => self.serve_gets_hit(cycle, &req, out),
                _ => self.serve_write_hit(cycle, req, out),
            }
        }
        self.redispatch_deferred(cycle, line, out);
    }

    /// Completes a fill if a sharer-free way exists; otherwise starts a
    /// recall of the LRU shared victim and parks the fill behind it.
    fn try_fill_or_recall(
        &mut self,
        cycle: Cycle,
        line: LineAddr,
        data: LineData,
        queued: VecDeque<ReqMsg>,
        out: &mut L2Outbox,
    ) {
        let blocked: Vec<LineAddr> = self
            .pending_inv
            .keys()
            .chain(self.recalls.keys())
            .copied()
            .collect();
        let attempt = self.tags.fill(
            line,
            Directory::default(),
            data.clone(),
            false,
            |addr, d| d.sharers == 0 && !blocked.contains(&addr),
        );
        match attempt {
            Ok(evicted) => {
                if let Some(ev) = evicted {
                    debug_assert_eq!(ev.line.state.sharers, 0);
                    if ev.line.dirty {
                        self.stats.writebacks += 1;
                        out.dram_writeback.push((ev.line.addr, ev.line.data));
                    }
                }
                self.replay_queued(cycle, line, queued, out);
            }
            Err(()) => {
                // Every candidate way holds a shared line: recall the LRU
                // one. The victim stays resident (busy) and the fill waits
                // for the acks — the directory-protocol cost RCC avoids.
                let victim = self
                    .tags
                    .peek_victim(line, |addr, _| !blocked.contains(&addr))
                    .map(|v| (v.addr, v.state.all()));
                let Some((victim_addr, targets)) = victim else {
                    // All ways transiently busy; retry next cycle.
                    self.stalled_fills.push(PendingFill { line, data, queued });
                    return;
                };
                debug_assert!(!targets.is_empty());
                self.stats.invs_sent += targets.len() as u64;
                for dst in &targets {
                    out.to_l1.push(RespMsg {
                        dst: *dst,
                        line: victim_addr,
                        id: ReqId(0),
                        payload: RespPayload::Inv,
                    });
                }
                self.filling.insert(line);
                self.recalls.insert(
                    victim_addr,
                    Recall {
                        needed: targets.len(),
                        pending_fill: Some(PendingFill { line, data, queued }),
                    },
                );
            }
        }
    }

    fn redispatch_deferred(&mut self, cycle: Cycle, line: LineAddr, out: &mut L2Outbox) {
        if self.is_blocked(line) {
            return;
        }
        let Some(mut queue) = self.deferred.remove(&line) else {
            return;
        };
        while let Some(req) = queue.pop_front() {
            self.deferred_count -= 1;
            self.handle_req(cycle, req, out)
                .expect("re-dispatched request cannot be rejected");
            if self.is_blocked(line) {
                while let Some(rest) = queue.pop_back() {
                    self.deferred.entry(line).or_default().push_front(rest);
                }
                return;
            }
        }
    }

    fn handle_inv_ack(&mut self, cycle: Cycle, line: LineAddr, out: &mut L2Outbox) {
        if let Some(p) = self.pending_inv.get_mut(&line) {
            p.needed -= 1;
            if p.needed == 0 {
                let p = self.pending_inv.remove(&line).expect("present");
                self.stats.store_stall_cycles += cycle.raw() - p.started.raw();
                self.apply_write(cycle, &p.op, out);
                self.redispatch_deferred(cycle, line, out);
            }
            return;
        }
        if let Some(r) = self.recalls.get_mut(&line) {
            r.needed -= 1;
            if r.needed == 0 {
                let r = self.recalls.remove(&line).expect("present");
                let victim = self
                    .tags
                    .invalidate(line)
                    .expect("recalled victim stays resident until acked");
                if victim.dirty {
                    self.stats.writebacks += 1;
                    out.dram_writeback.push((line, victim.data));
                }
                if let Some(pf) = r.pending_fill {
                    self.filling.remove(&pf.line);
                    // A way is now free; this fill cannot evict.
                    let ev = self
                        .tags
                        .fill(pf.line, Directory::default(), pf.data, false, |_, _| true)
                        .expect("way just freed");
                    debug_assert!(ev.is_none());
                    self.replay_queued(cycle, pf.line, pf.queued, out);
                }
                self.redispatch_deferred(cycle, line, out);
            }
            return;
        }
        debug_assert!(false, "inv-ack for {line} with no transaction");
    }
}

impl L2Bank for MesiL2 {
    fn handle_req(&mut self, cycle: Cycle, req: ReqMsg, out: &mut L2Outbox) -> Result<(), ReqMsg> {
        let line = req.line;
        if matches!(req.payload, ReqPayload::InvAck) {
            self.handle_inv_ack(cycle, line, out);
            return Ok(());
        }
        if matches!(req.payload, ReqPayload::FlushAck) {
            return Ok(());
        }
        if self.is_blocked(line) || self.deferred.contains_key(&line) {
            self.deferred_count += 1;
            self.deferred.entry(line).or_default().push_back(req);
            return Ok(());
        }
        match &req.payload {
            ReqPayload::Gets { .. } => {
                self.stats.gets += 1;
                if self.mshrs.contains(line) {
                    self.mshrs
                        .get_mut(line)
                        .expect("checked")
                        .queued
                        .push_back(req);
                } else if self.tags.probe(line).is_some() {
                    self.serve_gets_hit(cycle, &req, out);
                } else {
                    if self.mshrs.is_full() {
                        self.stats.gets -= 1;
                        return Err(req);
                    }
                    let mut entry = MesiEntry::default();
                    entry.queued.push_back(req);
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::Write { .. } | ReqPayload::Atomic { .. } => {
                if matches!(req.payload, ReqPayload::Write { .. }) {
                    self.stats.writes += 1;
                } else {
                    self.stats.atomics += 1;
                }
                if self.mshrs.contains(line) {
                    self.mshrs
                        .get_mut(line)
                        .expect("checked")
                        .queued
                        .push_back(req);
                } else if self.tags.probe(line).is_some() {
                    self.serve_write_hit(cycle, req, out);
                } else {
                    if self.mshrs.is_full() {
                        return Err(req);
                    }
                    let mut entry = MesiEntry::default();
                    entry.queued.push_back(req);
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::InvAck | ReqPayload::FlushAck => unreachable!("handled above"),
            ReqPayload::GetX { .. } | ReqPayload::WbData { .. } => {
                debug_assert!(false, "write-through MESI L1s never send these");
            }
        }
        Ok(())
    }

    fn handle_dram(&mut self, cycle: Cycle, line: LineAddr, data: LineData, out: &mut L2Outbox) {
        let entry = self
            .mshrs
            .release(line)
            .expect("DRAM fill without an MSHR entry");
        self.try_fill_or_recall(cycle, line, data, entry.queued, out);
    }

    fn tick(&mut self, cycle: Cycle, out: &mut L2Outbox) {
        if !self.stalled_fills.is_empty() {
            let stalled = std::mem::take(&mut self.stalled_fills);
            for pf in stalled {
                self.try_fill_or_recall(cycle, pf.line, pf.data, pf.queued, out);
            }
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // Only stalled fills need per-cycle retries; everything else is
        // driven by requests, acks, and DRAM fills.
        if self.stalled_fills.is_empty() {
            None
        } else {
            Some(now + 1)
        }
    }

    fn pending(&self) -> usize {
        self.mshrs.len()
            + self.deferred_count
            + self.pending_inv.len()
            + self.recalls.len()
            + self.stalled_fills.len()
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }
}
