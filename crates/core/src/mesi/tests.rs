//! MESI baseline tests: invalidation round trips, recall on eviction,
//! fetch/invalidate races, and SC checking on random traces.

use super::MesiProtocol;
use crate::msg::{Access, AccessKind, AccessOutcome, AtomicOp, CompletionKind};
use crate::protocol::{L1Cache, L2Bank};
use crate::testrig::Rig;
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::WarpId;

fn rig(cores: usize) -> Rig<MesiProtocol> {
    let cfg = GpuConfig::small();
    Rig::new(&MesiProtocol::new(&cfg), &cfg, cores)
}

fn word(line: u64, idx: usize) -> WordAddr {
    LineAddr(line).word(idx)
}

#[test]
fn load_caches_and_registers_sharer() {
    let mut r = rig(2);
    let w = word(3, 0);
    r.seed_dram(LineAddr(3), 0, 7);
    assert_eq!(r.load_value(0, w), 7);
    assert_eq!(r.load_value(1, w), 7);
    assert_eq!(r.l2.sharer_count(LineAddr(3)), Some(2));
    assert!(r.l1s[0].is_resident(LineAddr(3)));
    // L1 hits don't touch the directory again.
    let gets = r.l2.stats().gets;
    r.load(0, w);
    assert_eq!(r.l2.stats().gets, gets);
    r.sb.assert_sc();
}

#[test]
fn store_invalidates_all_sharers_before_ack() {
    let mut r = rig(3);
    let w = word(3, 0);
    r.load(0, w);
    r.load(1, w);
    r.store(2, w, 9);
    assert_eq!(r.l2.stats().invs_sent, 2);
    assert_eq!(r.l2.stats().stalled_stores, 1);
    assert_eq!(r.l1s[0].stats().invs_received, 1);
    assert!(!r.l1s[0].is_resident(LineAddr(3)), "copy invalidated");
    assert!(!r.l1s[1].is_resident(LineAddr(3)));
    assert_eq!(r.l2.sharer_count(LineAddr(3)), Some(0));
    // Everyone now observes the new value.
    assert_eq!(r.load_value(0, w), 9);
    assert_eq!(r.load_value(1, w), 9);
    r.sb.assert_sc();
}

#[test]
fn store_with_no_sharers_needs_no_invalidations() {
    let mut r = rig(2);
    let w = word(4, 0);
    r.store(0, w, 5);
    assert_eq!(r.l2.stats().invs_sent, 0);
    assert_eq!(r.l2.stats().stalled_stores, 0);
    r.sb.assert_sc();
}

#[test]
fn own_copy_dropped_at_store_issue() {
    // Write-through-invalidate: after a warp stores, other warps on the
    // same core must not read the stale pre-store value from their L1.
    let mut r = rig(1);
    let w = word(5, 0);
    r.load(0, w);
    assert!(r.l1s[0].is_resident(LineAddr(5)));
    r.store(0, w, 8);
    assert!(!r.l1s[0].is_resident(LineAddr(5)));
    assert_eq!(r.load_value(0, w), 8);
    r.sb.assert_sc();
}

#[test]
fn atomics_serialize_at_directory() {
    let mut r = rig(2);
    let w = word(6, 1);
    r.load(0, w); // sharer that must be invalidated by the atomic
    let c = r.atomic(1, w, AtomicOp::Add(2));
    assert_eq!(c.kind, CompletionKind::AtomicDone { old: 0 });
    assert_eq!(r.l2.stats().invs_sent, 1);
    let c = r.atomic(0, w, AtomicOp::Add(3));
    assert_eq!(c.kind, CompletionKind::AtomicDone { old: 2 });
    assert_eq!(r.load_value(1, w), 5);
    r.sb.assert_sc();
}

#[test]
fn eviction_recalls_sharers() {
    let cfg = GpuConfig::small();
    let mut r = rig(1);
    let sets = cfg.l2.partition.num_sets() as u64 * cfg.l2.num_partitions as u64;
    let ways = cfg.l2.partition.ways as u64;
    let w = word(0, 0);
    r.load(0, w);
    let invs_before = r.l1s[0].stats().invs_received;
    for i in 1..=ways {
        r.load(0, word(i * sets, 0));
    }
    // Line 0 was evicted from L2; its sharer must have been recalled.
    assert!(
        r.l1s[0].stats().invs_received > invs_before,
        "recall invalidation reached the L1"
    );
    assert!(!r.l1s[0].is_resident(LineAddr(0)));
    // The line refetches cleanly afterwards.
    assert_eq!(r.load_value(0, w), 0);
    r.sb.assert_sc();
}

#[test]
fn requests_defer_behind_pending_invalidations() {
    let mut r = rig(3);
    r.auto_dram = true;
    let w = word(7, 0);
    r.load(0, w); // sharer
                  // Store from core 1: invs in flight (the testrig delivers them and
                  // their acks within one pump, so drive manually via issue).
    let o = r.issue(
        1,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Store { value: 3 },
        },
    );
    assert_eq!(o, AccessOutcome::Pending);
    r.pump();
    // By the time the pump settles, acks have been collected and the
    // store applied; a subsequent load sees the new value.
    assert_eq!(r.load_value(2, w), 3);
    r.sb.assert_sc();
}

#[test]
fn concurrent_misses_replay_in_order_at_fill() {
    let mut r = rig(3);
    r.auto_dram = false;
    let w = word(8, 0);
    // load, store, load queued while the line is fetched.
    r.issue(
        0,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Load,
        },
    );
    r.pump();
    r.issue(
        1,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Store { value: 4 },
        },
    );
    r.pump();
    r.issue(
        2,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Load,
        },
    );
    r.pump();
    assert_eq!(r.pending_fetches.len(), 1);
    assert!(r.completions.is_empty());
    let line = r.pending_fetches.pop_front().unwrap();
    r.fill_one(line);
    r.pump();
    assert_eq!(r.completions.len(), 3);
    // Arrival order: core 0 sees 0 (before the store), core 2 sees 4.
    let v0 = match r.completions.iter().find(|(c, _)| *c == 0).unwrap().1.kind {
        CompletionKind::LoadDone { value } => value,
        _ => unreachable!(),
    };
    let v2 = match r.completions.iter().find(|(c, _)| *c == 2).unwrap().1.kind {
        CompletionKind::LoadDone { value } => value,
        _ => unreachable!(),
    };
    assert_eq!(v0, 0);
    assert_eq!(v2, 4);
    r.sb.assert_sc();
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

    /// MESI executions are sequentially consistent under the naïve-SC
    /// issuance rule.
    #[test]
    fn mesi_random_traces_are_sequentially_consistent(
        seed in 0u64..500,
        ops in 30usize..100,
        cores in 2usize..4,
    ) {
        let mut r = rig(cores);
        let mut rng = rcc_common::Pcg32::seeded(seed);
        let words: Vec<WordAddr> =
            (0..6).map(|i| word(i % 3, (i as usize) * 2)).collect();
        let mut token = 1u64;
        for i in 0..ops {
            let core = rng.below(cores as u64) as usize;
            let w = *rng.pick(&words);
            let kind = match rng.below(8) {
                0..=3 => AccessKind::Load,
                4..=6 => {
                    token += 1;
                    AccessKind::Store { value: token }
                }
                _ => AccessKind::Atomic { op: AtomicOp::Add(1) },
            };
            r.op(core, 0, w, kind);
            if i % 9 == 0 {
                r.step(rng.below(5) + 1);
            }
        }
        r.sb.assert_sc();
    }
}

#[test]
fn recall_parks_the_displacing_fill() {
    // Fill an L2 set with shared lines, then miss into it: the fill must
    // wait for the victim's recall acks before completing.
    let cfg = GpuConfig::small();
    let mut r = rig(1);
    r.auto_dram = false;
    let stride = cfg.l2.num_partitions as u64;
    let sets = cfg.l2.partition.num_sets() as u64 * stride;
    // Make every way of set 0 a *shared* line (loaded, so sharer bits set).
    for i in 0..cfg.l2.partition.ways as u64 {
        let w = word(i * sets, 0);
        let o = r.issue(
            0,
            Access {
                warp: WarpId((i % 8) as usize),
                addr: w,
                kind: AccessKind::Load,
            },
        );
        assert_eq!(o, AccessOutcome::Pending);
        r.pump();
        let line = r.pending_fetches.pop_front().unwrap();
        r.fill_one(line);
        r.pump();
    }
    let loads_done = r.completions.len();
    // Now miss into the same set: the fill needs a recall round trip.
    let target = word(cfg.l2.partition.ways as u64 * sets, 0);
    r.issue(
        0,
        Access {
            warp: WarpId(7),
            addr: target,
            kind: AccessKind::Load,
        },
    );
    r.pump();
    let line = r.pending_fetches.pop_front().unwrap();
    r.fill_one(line);
    // The rig pumps inv + ack within the same call, so the fill lands —
    // but the recall must have gone out.
    r.pump();
    assert!(
        r.l1s[0].stats().invs_received > 0,
        "recall invalidation was sent to the sharer"
    );
    assert_eq!(r.completions.len(), loads_done + 1, "the load completed");
    r.sb.assert_sc();
}

#[test]
fn spurious_inv_after_silent_l1_eviction_is_acked() {
    // The L1 silently evicts; the directory's stale sharer bit causes a
    // spurious invalidation which must be acked without drama.
    let cfg = GpuConfig::small();
    let mut r = rig(2);
    let sets = cfg.l1.num_sets() as u64;
    let w = word(3, 0);
    r.load(0, w); // sharer bit set at the directory
                  // Evict line 3 from core 0's L1 by filling its set.
    for i in 1..=cfg.l1.ways as u64 {
        r.load(0, word(3 + i * sets, 0));
    }
    assert!(!r.l1s[0].is_resident(LineAddr(3)), "silently evicted");
    // A store still invalidates "core 0" per the directory; the ack must
    // arrive and the store complete.
    r.store(1, w, 5);
    assert_eq!(r.load_value(0, w), 5);
    r.sb.assert_sc();
}

mod wb {
    use super::super::wb::MesiWbProtocol;
    use crate::msg::{Access, AccessKind, AccessOutcome, AtomicOp, CompletionKind};
    use crate::protocol::L2Bank;
    use crate::testrig::Rig;
    use rcc_common::addr::{LineAddr, WordAddr};
    use rcc_common::config::GpuConfig;
    use rcc_common::ids::WarpId;

    fn rig(cores: usize) -> Rig<MesiWbProtocol> {
        let cfg = GpuConfig::small();
        Rig::new(&MesiWbProtocol::new(&cfg), &cfg, cores)
    }

    fn word(line: u64, idx: usize) -> WordAddr {
        LineAddr(line).word(idx)
    }

    #[test]
    fn first_store_fetches_ownership_then_stores_are_free() {
        let mut r = rig(1);
        let w = word(3, 0);
        // First store: GETX round trip.
        let o = r.issue(
            0,
            Access {
                warp: WarpId(0),
                addr: w,
                kind: AccessKind::Store { value: 1 },
            },
        );
        assert_eq!(o, AccessOutcome::Pending);
        r.pump();
        assert!(r.l1s[0].is_modified(LineAddr(3)));
        // Subsequent stores complete at issue with no traffic.
        let flits_before = r.l2.stats().gets + r.l2.stats().writes;
        for v in 2..6 {
            let o = r.issue(
                0,
                Access {
                    warp: WarpId(0),
                    addr: w,
                    kind: AccessKind::Store { value: v },
                },
            );
            assert!(
                matches!(o, AccessOutcome::Done(_)),
                "M-state store is local"
            );
        }
        assert_eq!(r.l2.stats().gets + r.l2.stats().writes, flits_before);
        assert_eq!(r.load_value(0, w), 5);
        r.sb.assert_sc();
    }

    #[test]
    fn remote_read_recalls_dirty_data() {
        let mut r = rig(2);
        let w = word(4, 0);
        r.store(0, w, 9); // core 0 becomes owner
        assert!(r.l1s[0].is_modified(LineAddr(4)));
        // Core 1's read must see 9 via a recall.
        assert_eq!(r.load_value(1, w), 9);
        assert!(!r.l1s[0].is_modified(LineAddr(4)), "ownership surrendered");
        assert!(r.l2.stats().invs_sent >= 1, "a recall went out");
        r.sb.assert_sc();
    }

    #[test]
    fn ownership_migrates_between_writers() {
        let mut r = rig(2);
        let w = word(5, 0);
        r.store(0, w, 1);
        r.store(1, w, 2); // recalls from core 0, grants to core 1
        assert!(r.l1s[1].is_modified(LineAddr(5)));
        assert!(!r.l1s[0].is_modified(LineAddr(5)));
        assert_eq!(r.load_value(0, w), 2);
        r.sb.assert_sc();
    }

    #[test]
    fn getx_invalidates_sharers_first() {
        let mut r = rig(3);
        let w = word(6, 0);
        r.load(0, w);
        r.load(1, w);
        r.store(2, w, 7);
        assert!(r.l1s[2].is_modified(LineAddr(6)));
        assert!(!r.l1s[0].is_resident(LineAddr(6)));
        assert_eq!(r.load_value(0, w), 7);
        r.sb.assert_sc();
    }

    #[test]
    fn atomic_recalls_owner_and_serializes() {
        let mut r = rig(2);
        let w = word(7, 0);
        r.store(0, w, 10); // owner with dirty 10
        let c = r.atomic(1, w, AtomicOp::Add(5));
        assert_eq!(c.kind, CompletionKind::AtomicDone { old: 10 });
        assert_eq!(r.load_value(0, w), 15);
        r.sb.assert_sc();
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let cfg = GpuConfig::small();
        let mut r = rig(1);
        let sets = cfg.l1.num_sets() as u64;
        let w = word(2, 3);
        r.store(0, w, 42); // M + dirty in L1
                           // Evict it from the L1 by loading into the same set.
        for i in 1..=cfg.l1.ways as u64 {
            r.load(0, word(2 + i * sets, 0));
        }
        r.pump();
        assert!(!r.l1s[0].is_modified(LineAddr(2)));
        // The L2 received the writeback; a reload sees the value.
        assert_eq!(r.load_value(0, w), 42);
        r.sb.assert_sc();
    }

    proptest::proptest! {
        #![proptest_config(proptest::prelude::ProptestConfig::with_cases(24))]

        /// MESI-WB executions are sequentially consistent under the
        /// naïve-SC issuance rule.
        #[test]
        fn wb_random_traces_are_sequentially_consistent(
            seed in 0u64..300,
            ops in 30usize..90,
            cores in 2usize..4,
        ) {
            let mut r = rig(cores);
            let mut rng = rcc_common::Pcg32::seeded(seed);
            let words: Vec<WordAddr> =
                (0..6).map(|i| word(i % 3, (i as usize) * 2)).collect();
            let mut token = 1u64;
            for i in 0..ops {
                let core = rng.below(cores as u64) as usize;
                let w = *rng.pick(&words);
                let kind = match rng.below(8) {
                    0..=3 => AccessKind::Load,
                    4..=6 => {
                        token += 1;
                        AccessKind::Store { value: token }
                    }
                    _ => AccessKind::Atomic { op: AtomicOp::Add(1) },
                };
                r.op(core, 0, w, kind);
                if i % 9 == 0 {
                    r.step(rng.below(5) + 1);
                }
            }
            r.sb.assert_sc();
        }
    }

    mod l2_replay_order {
        use super::super::super::wb::{MesiWbL2, MesiWbProtocol};
        use crate::msg::{AtomicOp, ReqId, ReqMsg, ReqPayload, RespMsg, RespPayload};
        use crate::protocol::{L2Bank, L2Outbox, Protocol};
        use rcc_common::addr::LineAddr;
        use rcc_common::config::GpuConfig;
        use rcc_common::ids::{CoreId, PartitionId};
        use rcc_common::time::{Cycle, Timestamp};
        use rcc_mem::LineData;

        fn bank() -> MesiWbL2 {
            let cfg = GpuConfig::small();
            MesiWbProtocol::new(&cfg).make_l2(PartitionId(0), &cfg)
        }

        fn getx(src: usize, line: u64) -> ReqMsg {
            ReqMsg {
                src: CoreId(src),
                line: LineAddr(line),
                id: ReqId(0),
                payload: ReqPayload::GetX { now: Timestamp(0) },
            }
        }

        fn atomic(src: usize, line: u64, id: u64) -> ReqMsg {
            ReqMsg {
                src: CoreId(src),
                line: LineAddr(line),
                id: ReqId(id),
                payload: ReqPayload::Atomic {
                    now: Timestamp(0),
                    word: 0,
                    op: AtomicOp::Add(1),
                },
            }
        }

        fn atomic_resp_ids(out: &L2Outbox) -> Vec<u64> {
            out.to_l1
                .iter()
                .filter(|m| matches!(m.payload, RespPayload::AtomicResp { .. }))
                .map(|m| m.id.0)
                .collect()
        }

        /// Regression for the fill-replay inversion: an atomic queued in
        /// the target line's MSHR (older) must be acknowledged before an
        /// atomic deferred while the fill was stalled on a victim recall
        /// (newer), even though both replay from the same completion.
        #[test]
        fn mshr_queued_ops_replay_before_stall_deferred_ops() {
            let cfg = GpuConfig::small();
            let mut b = bank();
            // Partition 0 of 2, 16 sets: lines 32, 64, .., 256 share
            // set 0 with target line 0. Make every way a Modified owner
            // so a fill of line 0 must recall a victim.
            let sets = (cfg.l2.partition.num_sets() * cfg.l2.num_partitions) as u64;
            let ways = cfg.l2.partition.ways as u64;
            let victims: Vec<u64> = (1..=ways).map(|i| i * sets).collect();
            for (i, &v) in victims.iter().enumerate() {
                let mut out = L2Outbox::new();
                b.handle_req(Cycle(0), getx(i % 4, v), &mut out).unwrap();
                assert_eq!(out.dram_fetch, vec![LineAddr(v)]);
                let mut out = L2Outbox::new();
                b.handle_dram(Cycle(0), LineAddr(v), LineData::zeroed(), &mut out);
                assert!(
                    out.to_l1
                        .iter()
                        .any(|m| matches!(m.payload, RespPayload::DataEx { .. })),
                    "owner {i} granted exclusivity for line {v}"
                );
            }

            // Older atomic: misses, waits in the target's MSHR entry.
            let mut out = L2Outbox::new();
            b.handle_req(Cycle(1), atomic(0, 0, 53), &mut out).unwrap();
            assert_eq!(out.dram_fetch, vec![LineAddr(0)]);

            // The fill arrives but every way is a tracked owner: the L2
            // must recall a victim and park the fill.
            let mut out = L2Outbox::new();
            b.handle_dram(Cycle(2), LineAddr(0), LineData::zeroed(), &mut out);
            let recall: Vec<&RespMsg> = out
                .to_l1
                .iter()
                .filter(|m| matches!(m.payload, RespPayload::Recall))
                .collect();
            assert_eq!(recall.len(), 1, "exactly one victim recalled");
            let recalled_line = recall[0].line;
            let owner = recall[0].dst;
            assert!(atomic_resp_ids(&out).is_empty(), "53 must still wait");

            // Newer atomic: arrives while the fill is stalled → deferred.
            let mut out = L2Outbox::new();
            b.handle_req(Cycle(3), atomic(0, 0, 54), &mut out).unwrap();
            assert!(atomic_resp_ids(&out).is_empty(), "54 must defer");
            assert!(out.dram_fetch.is_empty(), "no duplicate fetch");

            // The owner's writeback completes the recall; the fill
            // proceeds and BOTH atomics are served — oldest first.
            let mut out = L2Outbox::new();
            b.handle_req(
                Cycle(4),
                ReqMsg {
                    src: owner,
                    line: recalled_line,
                    id: ReqId(0),
                    payload: ReqPayload::WbData {
                        data: LineData::zeroed(),
                        last_seq: 0,
                    },
                },
                &mut out,
            )
            .unwrap();
            assert_eq!(
                atomic_resp_ids(&out),
                vec![53, 54],
                "arrival order must survive the stalled-fill replay"
            );
            assert_eq!(b.pending(), 0, "no stuck transactions");
        }
    }
}
