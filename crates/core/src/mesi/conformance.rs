//! Conformance tests for the MESI directory against the
//! invalidate-collect-apply discipline the paper's baseline requires.

use super::{MesiL2, MesiProtocol};
use crate::msg::{ReqId, ReqMsg, ReqPayload, RespMsg, RespPayload};
use crate::protocol::{L2Bank, L2Outbox, Protocol};
use rcc_common::addr::LineAddr;
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::LineData;

fn cfg() -> GpuConfig {
    GpuConfig::small()
}

fn bank() -> MesiL2 {
    MesiProtocol::new(&cfg()).make_l2(PartitionId(0), &cfg())
}

fn line() -> LineAddr {
    LineAddr(9)
}

fn gets(src: usize) -> ReqMsg {
    ReqMsg {
        src: CoreId(src),
        line: line(),
        id: ReqId(0),
        payload: ReqPayload::Gets {
            now: Timestamp(0),
            renew_exp: None,
        },
    }
}

fn write(src: usize, id: u64, value: u64) -> ReqMsg {
    ReqMsg {
        src: CoreId(src),
        line: line(),
        id: ReqId(id),
        payload: ReqPayload::Write {
            now: Timestamp(0),
            word: 0,
            value,
        },
    }
}

fn inv_ack(src: usize) -> ReqMsg {
    ReqMsg {
        src: CoreId(src),
        line: line(),
        id: ReqId(0),
        payload: ReqPayload::InvAck,
    }
}

fn make_resident(b: &mut MesiL2, readers: &[usize]) {
    let mut out = L2Outbox::new();
    b.handle_req(Cycle(0), gets(readers[0]), &mut out).unwrap();
    b.handle_dram(Cycle(0), line(), LineData::zeroed(), &mut L2Outbox::new());
    for r in &readers[1..] {
        b.handle_req(Cycle(0), gets(*r), &mut L2Outbox::new())
            .unwrap();
    }
}

fn invs_in(out: &L2Outbox) -> Vec<usize> {
    out.to_l1
        .iter()
        .filter(|m| matches!(m.payload, RespPayload::Inv))
        .map(|m| m.dst.index())
        .collect()
}

#[test]
fn store_sends_inv_to_every_sharer_and_withholds_the_ack() {
    let mut b = bank();
    make_resident(&mut b, &[0, 1, 2]);
    assert_eq!(b.sharer_count(line()), Some(3));
    let mut out = L2Outbox::new();
    b.handle_req(Cycle(10), write(3, 7, 42), &mut out).unwrap();
    let mut invs = invs_in(&out);
    invs.sort_unstable();
    assert_eq!(invs, vec![0, 1, 2]);
    assert!(
        !out.to_l1
            .iter()
            .any(|m| matches!(m.payload, RespPayload::StoreAck { .. })),
        "no ack before the invalidations are collected"
    );
    // Two acks: still waiting. Third: apply + ack.
    for (i, src) in [0usize, 1].iter().enumerate() {
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(20 + i as u64), inv_ack(*src), &mut out)
            .unwrap();
        assert!(out.to_l1.is_empty(), "ack {i} must not release the store");
    }
    let mut out = L2Outbox::new();
    b.handle_req(Cycle(30), inv_ack(2), &mut out).unwrap();
    match &out.to_l1[0].payload {
        RespPayload::StoreAck { ver, .. } => {
            assert_eq!(*ver, Timestamp(30), "ordered at the collect-complete cycle")
        }
        other => panic!("expected StoreAck, got {other:?}"),
    }
    assert_eq!(b.stats().invs_sent, 3);
    assert!(b.stats().store_stall_cycles >= 20);
}

#[test]
fn requests_defer_while_invalidations_are_outstanding() {
    let mut b = bank();
    make_resident(&mut b, &[0]);
    let mut out = L2Outbox::new();
    b.handle_req(Cycle(0), write(1, 7, 42), &mut out).unwrap();
    assert_eq!(invs_in(&out).len(), 1);
    // A GETS for the same line must not be served mid-transaction.
    let mut out = L2Outbox::new();
    b.handle_req(Cycle(1), gets(2), &mut out).unwrap();
    assert!(out.to_l1.is_empty(), "deferred behind the pending write");
    // Completing the inv releases the write, then serves the reader
    // with the new value.
    let mut out = L2Outbox::new();
    b.handle_req(Cycle(2), inv_ack(0), &mut out).unwrap();
    let kinds: Vec<&RespMsg> = out.to_l1.iter().collect();
    assert!(matches!(kinds[0].payload, RespPayload::StoreAck { .. }));
    match &kinds[1].payload {
        RespPayload::Data { data, .. } => {
            assert_eq!(data.word(0), 42, "the deferred reader sees the write")
        }
        other => panic!("expected DATA, got {other:?}"),
    }
}

#[test]
fn store_with_only_stale_sharers_still_collects_acks() {
    // Sharer bits can be stale after silent L1 evictions — the directory
    // must still collect the (spurious) acks before applying.
    let mut b = bank();
    make_resident(&mut b, &[0]);
    let mut out = L2Outbox::new();
    b.handle_req(Cycle(0), write(0, 7, 1), &mut out).unwrap();
    // Writer was the only (self) sharer: the inv goes to core 0 itself.
    assert_eq!(invs_in(&out), vec![0]);
    let mut out = L2Outbox::new();
    b.handle_req(Cycle(1), inv_ack(0), &mut out).unwrap();
    assert!(matches!(out.to_l1[0].payload, RespPayload::StoreAck { .. }));
}

#[test]
fn atomic_follows_the_same_invalidate_discipline() {
    let mut b = bank();
    make_resident(&mut b, &[0, 1]);
    let mut out = L2Outbox::new();
    b.handle_req(
        Cycle(0),
        ReqMsg {
            src: CoreId(2),
            line: line(),
            id: ReqId(9),
            payload: ReqPayload::Atomic {
                now: Timestamp(0),
                word: 0,
                op: crate::msg::AtomicOp::Add(5),
            },
        },
        &mut out,
    )
    .unwrap();
    assert_eq!(invs_in(&out).len(), 2);
    b.handle_req(Cycle(1), inv_ack(0), &mut L2Outbox::new())
        .unwrap();
    let mut out = L2Outbox::new();
    b.handle_req(Cycle(2), inv_ack(1), &mut out).unwrap();
    assert!(matches!(
        out.to_l1[0].payload,
        RespPayload::AtomicResp { value: 0, .. }
    ));
}
