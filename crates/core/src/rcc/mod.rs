//! Relativistic Cache Coherence (Section III of the paper).
//!
//! RCC is a two-stable-state (V/I) protocol in which each core maintains
//! its own logical clock `now`, and the L2 keeps, per block, the logical
//! time of the last write (`ver`) and the expiration of the last read
//! lease (`exp`). A unique global SC order is maintained by three rules
//! (Section III-A):
//!
//! 1. a core reading a block advances `now` to at least the block's `ver`;
//! 2. a core writing a block advances the block's `ver` to at least its
//!    `now` (and its `now` to at least the block's `ver`);
//! 3. a write advances both `now` and the new `ver` *past the expiration
//!    of the last outstanding lease* for the block — so no L1 can hold the
//!    old value at a logical time at which the new value is visible.
//!
//! Because all three rules are clock updates, stores acquire write
//! permission *instantly* — the heart of the paper's store-latency
//! argument. The walkthrough of the paper's Fig. 3 is verified
//! line-by-line in this module's tests.

mod l1;
mod l2;
mod predictor;

pub use l1::{L1State, RccL1, ViewMode};
pub use l2::{L2State, RccL2};
pub use predictor::LeasePredictor;

/// Counts the L1 coherence states of this implementation as (stable,
/// transient), following the paper's convention (an expired-V block is
/// not a distinct state — it behaves exactly like I). Used to cross-check
/// Table V against the code.
pub fn l1_state_inventory() -> (usize, usize) {
    let stable = [L1State::V, L1State::I].len();
    let transient = [L1State::Iv, L1State::Ii, L1State::Vi].len();
    (stable, transient)
}

/// Counts the L2 coherence states of this implementation as (stable,
/// transient). Used to cross-check Table V — and the model checker's
/// visited-state census — against the code.
pub fn l2_state_inventory() -> (usize, usize) {
    let stable = [L2State::V, L2State::I].len();
    let transient = [L2State::Iv, L2State::Iav].len();
    (stable, transient)
}

use crate::kind::ProtocolKind;
use crate::protocol::Protocol;
use rcc_common::config::{GpuConfig, RccParams};
use rcc_common::ids::{CoreId, PartitionId};

/// Factory for RCC controllers, in either consistency mode.
#[derive(Debug, Clone)]
pub struct RccProtocol {
    params: RccParams,
    mode: ViewMode,
    #[cfg(feature = "bug-injection")]
    inject_lease_bug: bool,
}

impl RccProtocol {
    /// RCC-SC: a single logical view per core (sequentially consistent).
    pub fn sequential(cfg: &GpuConfig) -> Self {
        RccProtocol {
            params: cfg.rcc.clone(),
            mode: ViewMode::Sc,
            #[cfg(feature = "bug-injection")]
            inject_lease_bug: false,
        }
    }

    /// RCC-WO: split read/write views joined at fences (Section III-F).
    pub fn weakly_ordered(cfg: &GpuConfig) -> Self {
        RccProtocol {
            params: cfg.rcc.clone(),
            mode: ViewMode::Wo,
            #[cfg(feature = "bug-injection")]
            inject_lease_bug: false,
        }
    }

    /// The view mode of this configuration.
    pub fn mode(&self) -> ViewMode {
        self.mode
    }

    /// Arms the seeded lease-check bug on every L1 this factory builds
    /// (see [`RccL1::inject_lease_bug`]).
    #[cfg(feature = "bug-injection")]
    pub fn with_lease_bug(mut self) -> Self {
        self.inject_lease_bug = true;
        self
    }
}

impl Protocol for RccProtocol {
    type L1 = RccL1;
    type L2 = RccL2;

    fn kind(&self) -> ProtocolKind {
        match self.mode {
            ViewMode::Sc => ProtocolKind::RccSc,
            ViewMode::Wo => ProtocolKind::RccWo,
        }
    }

    fn make_l1(&self, core: CoreId, cfg: &GpuConfig) -> RccL1 {
        #[allow(unused_mut)] // mutated only with the bug-injection feature
        let mut l1 = RccL1::new(core, cfg, self.params.clone(), self.mode);
        #[cfg(feature = "bug-injection")]
        if self.inject_lease_bug {
            l1.inject_lease_bug();
        }
        l1
    }

    fn make_l2(&self, partition: PartitionId, cfg: &GpuConfig) -> RccL2 {
        RccL2::new(partition, cfg, self.params.clone())
    }
}

#[cfg(test)]
mod conformance;
#[cfg(test)]
mod tests;
