//! RCC L2 bank controller (Fig. 5, right table).
//!
//! Stable states are V and I; the transient states are IV (miss being
//! filled from DRAM, with reads and writes merging into the MSHR) and IAV
//! (atomic waiting for a DRAM fill, stalling all other requests to the
//! block). The bank owns the per-partition "memory time" `mnow` that
//! preserves logical ordering across L2 evictions (Section III-D), the
//! per-block lease predictor state, and the write serialization sequence
//! numbers the consistency scoreboard uses to break ties between writes
//! that share a logical version.

use crate::msg::{AtomicOp, ReqId, ReqMsg, ReqPayload, RespMsg, RespPayload};
use crate::protocol::{L2Bank, L2Outbox, L2Stats};
use crate::rcc::predictor::LeasePredictor;
use rcc_chaos::{PerturbPoint, Site};
use rcc_common::addr::LineAddr;
use rcc_common::config::{GpuConfig, RccParams};
use rcc_common::ids::{CoreId, PartitionId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_common::FxHashMap;
use rcc_mem::{LineData, MshrFile, TagArray};
use std::collections::VecDeque;

/// The paper's L2 state names (Fig. 5, right table), derived for
/// inspection: two stable states plus the two transient fill states.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L2State {
    /// Not present, no fill outstanding.
    I,
    /// Resident.
    V,
    /// Miss being filled from DRAM; reads and writes merge in the MSHR.
    Iv,
    /// Atomic waiting for a DRAM fill; all other requests to the block
    /// stall behind it.
    Iav,
}

/// Per-line L2 metadata: version, lease expiration, predicted lease.
#[derive(Debug, Clone, Copy)]
struct L2Meta {
    /// Logical time of the last write (Table II).
    ver: Timestamp,
    /// Expiration of the last outstanding lease (Table II).
    exp: Timestamp,
    /// Predicted lease duration for the next GETS (Section III-E).
    lease: u64,
}

/// An atomic operation waiting for its DRAM fill (IAV state).
#[derive(Debug, Clone, Copy)]
struct PendingAtomic {
    src: CoreId,
    id: ReqId,
    word: usize,
    op: AtomicOp,
    now: Timestamp,
}

/// MSHR entry for a line being filled from DRAM.
#[derive(Debug, Clone, Default)]
struct L2Entry {
    /// Latest `now` of any reading core (Table II, elidable in hardware).
    lastrd: Timestamp,
    has_read: bool,
    /// Latest `now` of any writing core (Table II).
    lastwr: Timestamp,
    has_write: bool,
    /// Cores (and their request ids) waiting for DATA.
    readers: Vec<(CoreId, ReqId)>,
    /// Word writes merged in physical arrival order; later writes to the
    /// same word win, matching the paper's same-version tiebreak by
    /// physical arrival at the L2 (footnote 2).
    merged_writes: Vec<(usize, u64)>,
    /// IAV: the atomic that triggered the fill.
    atomic: Option<PendingAtomic>,
}

impl L2Entry {
    fn is_iav(&self) -> bool {
        self.atomic.is_some()
    }
}

/// The RCC controller for one L2 partition.
#[derive(Debug, Clone)]
pub struct RccL2 {
    partition: PartitionId,
    predictor: LeasePredictor,
    rollover_threshold: u64,
    tags: TagArray<L2Meta>,
    mshrs: MshrFile<L2Entry>,
    /// Requests stalled behind a same-line transient state (IAV, or an
    /// atomic arriving in IV).
    deferred: FxHashMap<LineAddr, VecDeque<ReqMsg>>,
    deferred_count: usize,
    /// Memory time: max(`exp`, `ver`) over all lines evicted to DRAM.
    mnow: Timestamp,
    /// Write serialization counter (ticks on every write/atomic).
    seq: u64,
    /// Largest timestamp minted by this bank, for rollover detection.
    ts_high: Timestamp,
    /// Chaos hook: truncates granted leases (`Site::LeaseTruncate`) and
    /// bumps write/atomic positions (`Site::TsBump`) to create early
    /// expirations and rollover pressure.
    chaos: Option<Box<dyn PerturbPoint>>,
    stats: L2Stats,
}

impl RccL2 {
    /// Creates the controller for `partition`.
    pub fn new(partition: PartitionId, cfg: &GpuConfig, params: RccParams) -> Self {
        RccL2 {
            partition,
            predictor: LeasePredictor::new(&params),
            rollover_threshold: params.rollover_threshold,
            tags: TagArray::with_stride(
                cfg.l2.partition.num_sets(),
                cfg.l2.partition.ways,
                cfg.l2.num_partitions as u64,
            ),
            mshrs: MshrFile::new(cfg.l2.partition.mshrs, cfg.l2.partition.mshr_merge),
            deferred: FxHashMap::default(),
            deferred_count: 0,
            mnow: Timestamp::ZERO,
            seq: 0,
            ts_high: Timestamp::ZERO,
            chaos: None,
            stats: L2Stats::default(),
        }
    }

    /// This bank's partition id.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// The partition's memory time `mnow` (Section III-D).
    pub fn mnow(&self) -> Timestamp {
        self.mnow
    }

    /// Version and lease expiration of a resident line (for tests).
    pub fn line_times(&self, line: LineAddr) -> Option<(Timestamp, Timestamp)> {
        self.tags.probe(line).map(|l| (l.state.ver, l.state.exp))
    }

    /// Recovers the paper's state name for `line` (tests / verification).
    pub fn derived_state(&self, line: LineAddr) -> L2State {
        match self.mshrs.get(line) {
            Some(e) if e.is_iav() => L2State::Iav,
            Some(_) => L2State::Iv,
            None if self.tags.probe(line).is_some() => L2State::V,
            None => L2State::I,
        }
    }

    /// Predicted lease of a resident line (for tests).
    pub fn predicted_lease(&self, line: LineAddr) -> Option<u64> {
        self.tags.probe(line).map(|l| l.state.lease)
    }

    /// Installs a line with the given contents and timestamps, as if it
    /// had been filled and written. Intended for setting up scenarios in
    /// tests and examples (e.g. the paper's Fig. 3 walkthrough).
    pub fn install_line(
        &mut self,
        line: LineAddr,
        data: LineData,
        ver: Timestamp,
        exp: Timestamp,
        lease: u64,
    ) {
        self.ts_high = self.ts_high.join(ver).join(exp);
        let evicted = self
            .tags
            .fill(line, L2Meta { ver, exp, lease }, data, false, |_, _| true)
            .expect("install target set has room");
        if let Some(ev) = evicted {
            // Keep the eviction rule of Section III-D even for
            // test-installed lines.
            self.mnow = self.mnow.join(ev.line.state.exp).join(ev.line.state.ver);
        }
    }

    fn mint(&mut self, t: Timestamp) -> Timestamp {
        self.ts_high = self.ts_high.join(t);
        t
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Chaos: whether to truncate the lease granted by the current
    /// read-service event to a single logical tick. Shrinking a lease is
    /// always sound — `exp` still never decreases (it only gains a
    /// smaller extension), rule 3 still pushes writes past it.
    fn chaos_truncates(&mut self) -> bool {
        match &mut self.chaos {
            Some(c) => c.fires(Site::LeaseTruncate),
            None => false,
        }
    }

    /// Chaos: bump a write/atomic's logical position forward. Applied to
    /// the request's `now` at service entry, so the bump flows through
    /// every timestamp derived from it (`lastwr`, `PendingAtomic::now`,
    /// `meta.ver`) and a later DRAM fill can never recompute a version
    /// below an already-acked one. Bumps only advance logical time —
    /// exactly what rules 2/3 are built to tolerate — while dragging
    /// `ts_high` toward the rollover threshold faster.
    fn chaos_bump(&mut self, now: Timestamp) -> Timestamp {
        match &mut self.chaos {
            Some(c) => now.plus(c.jitter(Site::TsBump)),
            None => now,
        }
    }

    fn defer(&mut self, req: ReqMsg) {
        self.deferred_count += 1;
        self.deferred.entry(req.line).or_default().push_back(req);
    }

    /// Inserts `line` into the tag array, applying the eviction rule of
    /// Section III-D to any displaced victim: `mnow` absorbs its
    /// timestamps and dirty data is written back.
    fn fill_line(
        &mut self,
        line: LineAddr,
        meta: L2Meta,
        data: LineData,
        dirty: bool,
        out: &mut L2Outbox,
    ) {
        let evicted = self
            .tags
            .fill(line, meta, data, dirty, |_, _| true)
            .expect("all resident L2 lines are stable and evictable");
        if let Some(ev) = evicted {
            rcc_common::trace!(
                "{} evict {} ver={} exp={} -> mnow",
                self.partition,
                ev.line.addr,
                ev.line.state.ver,
                ev.line.state.exp
            );
            self.mnow = self.mnow.join(ev.line.state.exp).join(ev.line.state.ver);
            if ev.line.dirty {
                self.stats.writebacks += 1;
                out.dram_writeback.push((ev.line.addr, ev.line.data));
            }
        }
    }

    fn serve_gets_hit(
        &mut self,
        src: CoreId,
        line: LineAddr,
        now: Timestamp,
        renew_exp: Option<Timestamp>,
        out: &mut L2Outbox,
    ) {
        let truncated = self.chaos_truncates();
        let meta = self.tags.access(line).expect("hit requires resident line");
        let lease = if truncated { 1 } else { meta.state.lease };
        // Fig. 5, GETS in V: D.exp = max(D.exp, D.ver + lease, M.now + lease).
        let new_exp = meta
            .state
            .exp
            .join(meta.state.ver.plus(lease))
            .join(now.plus(lease));
        meta.state.exp = new_exp;
        let ver = meta.state.ver;
        // Renewable iff the L1's expired lease postdates the last write —
        // then its stale copy is actually current (Section III-E).
        if renew_exp.is_some_and(|e| e > ver) {
            meta.state.lease = self.predictor.on_renew(lease);
            self.stats.renews_granted += 1;
            out.to_l1.push(RespMsg {
                dst: src,
                line,
                id: ReqId(0),
                payload: RespPayload::Renew { exp: new_exp },
            });
        } else {
            let data = meta.data.clone();
            // The service slot orders this read against same-version
            // writes at this bank (footnote 2's physical-arrival order).
            let seq = self.next_seq();
            out.to_l1.push(RespMsg {
                dst: src,
                line,
                id: ReqId(0),
                payload: RespPayload::Data {
                    data,
                    ver,
                    exp: new_exp,
                    seq,
                },
            });
        }
        self.mint(new_exp);
    }

    #[allow(clippy::too_many_arguments)] // mirrors the WRITE message fields
    fn serve_write_hit(
        &mut self,
        src: CoreId,
        line: LineAddr,
        id: ReqId,
        now: Timestamp,
        word: usize,
        value: u64,
        out: &mut L2Outbox,
    ) {
        let meta = self.tags.access(line).expect("hit requires resident line");
        // Fig. 5, WRITE in V — rules 2 and 3 in one step:
        // D.ver = max(M.now, D.ver, D.exp + 1). This *is* the instant
        // acquisition of write permission: no invalidations, no waiting.
        let new_ver = now.join(meta.state.ver).join(meta.state.exp.succ());
        meta.state.ver = new_ver;
        meta.state.lease = self.predictor.on_write(meta.state.lease);
        meta.data.set_word(word, value);
        meta.dirty = true;
        rcc_common::trace!(
            "{} write {} from {src} ver->{new_ver}",
            self.partition,
            line
        );
        let seq = self.next_seq();
        self.mint(new_ver);
        out.to_l1.push(RespMsg {
            dst: src,
            line,
            id,
            payload: RespPayload::StoreAck { ver: new_ver, seq },
        });
    }

    #[allow(clippy::too_many_arguments)] // mirrors the ATOMIC message fields
    fn serve_atomic_hit(
        &mut self,
        src: CoreId,
        line: LineAddr,
        id: ReqId,
        now: Timestamp,
        word: usize,
        op: AtomicOp,
        out: &mut L2Outbox,
    ) {
        let meta = self.tags.access(line).expect("hit requires resident line");
        let old = meta.data.word(word);
        let new_ver = if op.mutates(old) {
            // Mutating atomics are writes: same version rule as stores.
            let v = now.join(meta.state.ver).join(meta.state.exp.succ());
            meta.state.ver = v;
            meta.state.lease = self.predictor.on_write(meta.state.lease);
            meta.data.set_word(word, op.apply(old));
            meta.dirty = true;
            v
        } else {
            // Non-mutating atomics (failed CAS, atomic reads) serialize at
            // the L2 without bumping the version, so outstanding leases
            // survive. Their position is max(M.now, D.ver); extending
            // D.exp to that point forces any later write past it (rule 3),
            // exactly as a zero-length read lease would.
            let p = now.join(meta.state.ver);
            meta.state.exp = meta.state.exp.join(p);
            p
        };
        let seq = self.next_seq();
        self.mint(new_ver);
        out.to_l1.push(RespMsg {
            dst: src,
            line,
            id,
            payload: RespPayload::AtomicResp {
                value: old,
                ver: new_ver,
                seq,
            },
        });
    }

    fn redispatch_deferred(&mut self, cycle: Cycle, line: LineAddr, out: &mut L2Outbox) {
        let Some(queue) = self.deferred.remove(&line) else {
            return;
        };
        for req in queue {
            self.deferred_count -= 1;
            // Deferred requests target a line that is now resident, so
            // they cannot be rejected for MSHR capacity.
            self.handle_req(cycle, req, out)
                .expect("re-dispatched request cannot miss");
        }
    }
}

impl L2Bank for RccL2 {
    fn handle_req(&mut self, _cycle: Cycle, req: ReqMsg, out: &mut L2Outbox) -> Result<(), ReqMsg> {
        let line = req.line;

        // A line being filled for an atomic (IAV) stalls everything else.
        if self.mshrs.get(line).is_some_and(L2Entry::is_iav) || self.deferred.contains_key(&line) {
            self.defer(req);
            return Ok(());
        }

        match req.payload {
            ReqPayload::Gets { now, renew_exp } => {
                self.stats.gets += 1;
                if self.mshrs.contains(line) {
                    // IV: merge the reader (Fig. 5, GETS in IV).
                    let entry = self.mshrs.get_mut(line).expect("checked");
                    entry.lastrd = entry.lastrd.join(now);
                    entry.has_read = true;
                    entry.readers.push((req.src, req.id));
                } else if self.tags.probe(line).is_some() {
                    self.serve_gets_hit(req.src, line, now, renew_exp, out);
                } else {
                    // I → IV: fetch from DRAM (Fig. 5, GETS in I).
                    if self.mshrs.is_full() {
                        self.stats.gets -= 1;
                        return Err(req);
                    }
                    let entry = L2Entry {
                        lastrd: now,
                        has_read: true,
                        readers: vec![(req.src, req.id)],
                        ..L2Entry::default()
                    };
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::Write { now, word, value } => {
                let now = self.chaos_bump(now);
                self.stats.writes += 1;
                if self.mshrs.contains(line) {
                    // IV: merge the write; ack immediately with
                    // ver = max(lastwr, mnow) — the store does not wait
                    // for DRAM (Section III-D).
                    let entry = self.mshrs.get_mut(line).expect("checked");
                    entry.lastwr = entry.lastwr.join(now);
                    entry.has_write = true;
                    entry.merged_writes.push((word, value));
                    // mnow may equal an evicted lease's expiration, at
                    // which remote copies are still readable — the write
                    // must land strictly past it (rule 3).
                    let ver = entry.lastwr.join(self.mnow.succ());
                    let seq = self.next_seq();
                    self.mint(ver);
                    out.to_l1.push(RespMsg {
                        dst: req.src,
                        line,
                        id: req.id,
                        payload: RespPayload::StoreAck { ver, seq },
                    });
                } else if self.tags.probe(line).is_some() {
                    self.serve_write_hit(req.src, line, req.id, now, word, value, out);
                } else {
                    // I → IV with an immediate ack.
                    if self.mshrs.is_full() {
                        self.stats.writes -= 1;
                        return Err(req);
                    }
                    let entry = L2Entry {
                        lastwr: now,
                        has_write: true,
                        merged_writes: vec![(word, value)],
                        ..L2Entry::default()
                    };
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                    let ver = now.join(self.mnow.succ());
                    let seq = self.next_seq();
                    self.mint(ver);
                    out.to_l1.push(RespMsg {
                        dst: req.src,
                        line,
                        id: req.id,
                        payload: RespPayload::StoreAck { ver, seq },
                    });
                }
            }
            ReqPayload::Atomic { now, word, op } => {
                let now = self.chaos_bump(now);
                self.stats.atomics += 1;
                if self.mshrs.contains(line) {
                    // Fig. 5: ATOMIC in IV stalls.
                    self.stats.atomics -= 1;
                    self.defer(req);
                } else if self.tags.probe(line).is_some() {
                    self.serve_atomic_hit(req.src, line, req.id, now, word, op, out);
                } else {
                    // I → IAV (Fig. 5, ATOMIC in I).
                    if self.mshrs.is_full() {
                        self.stats.atomics -= 1;
                        return Err(req);
                    }
                    let entry = L2Entry {
                        lastwr: now,
                        has_write: true,
                        atomic: Some(PendingAtomic {
                            src: req.src,
                            id: req.id,
                            word,
                            op,
                            now,
                        }),
                        ..L2Entry::default()
                    };
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::InvAck
            | ReqPayload::FlushAck
            | ReqPayload::GetX { .. }
            | ReqPayload::WbData { .. } => {
                // InvAck/FlushAck are handled by the simulator's
                // coordinators; GetX/WbData belong to MESI-WB.
            }
        }
        Ok(())
    }

    fn handle_dram(
        &mut self,
        cycle: Cycle,
        line: LineAddr,
        mut data: LineData,
        out: &mut L2Outbox,
    ) {
        let entry = self
            .mshrs
            .release(line)
            .expect("DRAM fill without an MSHR entry");

        if let Some(at) = entry.atomic {
            // IAV completion (Fig. 5, DATA in IAV).
            let old = data.word(at.word);
            let ver = at.now.join(self.mnow.succ());
            let mutated = at.op.mutates(old);
            if mutated {
                data.set_word(at.word, at.op.apply(old));
            }
            let seq = self.next_seq();
            self.mint(ver);
            out.to_l1.push(RespMsg {
                dst: at.src,
                line,
                id: at.id,
                payload: RespPayload::AtomicResp {
                    value: old,
                    ver,
                    seq,
                },
            });
            let meta = L2Meta {
                ver,
                exp: ver,
                lease: self.predictor.on_write(self.predictor.initial()),
            };
            self.fill_line(line, meta, data, mutated, out);
            self.redispatch_deferred(cycle, line, out);
            return;
        }

        // IV completion (Fig. 5, DATA in IV):
        //   D.exp = D.ver = mnow;
        //   MSHR.haswrite? D.ver = max(MSHR.lastwr, mnow)
        //   MSHR.hasread?  D.exp = max(D.ver + lease, MSHR.lastrd + lease)
        let mut ver = self.mnow;
        if entry.has_write {
            ver = entry.lastwr.join(self.mnow.succ());
            for (word, value) in &entry.merged_writes {
                data.set_word(*word, *value);
            }
        }
        let lease = if entry.has_write {
            self.predictor.on_write(self.predictor.initial())
        } else {
            self.predictor.initial()
        };
        let lease = if self.chaos_truncates() { 1 } else { lease };
        let mut exp = ver;
        if entry.has_read {
            exp = ver.plus(lease).join(entry.lastrd.plus(lease));
        }
        self.mint(ver);
        self.mint(exp);
        for (dst, id) in entry.readers {
            // Served after every merged write's ack slot.
            let seq = self.next_seq();
            out.to_l1.push(RespMsg {
                dst,
                line,
                id,
                payload: RespPayload::Data {
                    data: data.clone(),
                    ver,
                    exp,
                    seq,
                },
            });
        }
        let meta = L2Meta { ver, exp, lease };
        self.fill_line(line, meta, data, entry.has_write, out);
        self.redispatch_deferred(cycle, line, out);
    }

    fn tick(&mut self, _cycle: Cycle, _out: &mut L2Outbox) {}

    fn set_chaos(&mut self, hook: Box<dyn PerturbPoint>) {
        // Deliberately NOT forwarded to `self.mshrs`: deferred requests
        // are re-dispatched under a "cannot be rejected" invariant.
        self.chaos = Some(hook);
    }

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: RCC L2s act only on requests and DRAM fills.
        None
    }

    fn needs_rollover(&self) -> bool {
        self.ts_high.raw() >= self.rollover_threshold
    }

    fn rollover_reset(&mut self) {
        assert!(
            self.mshrs.is_empty() && self.deferred.is_empty(),
            "rollover reset requires a quiesced L2"
        );
        for meta in self.tags.iter_mut() {
            meta.state.ver = Timestamp::ZERO;
            meta.state.exp = Timestamp::ZERO;
        }
        self.mnow = Timestamp::ZERO;
        self.ts_high = Timestamp::ZERO;
    }

    fn pending(&self) -> usize {
        self.mshrs.len() + self.deferred_count
    }

    fn logical_time(&self) -> Option<Timestamp> {
        Some(self.mnow)
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }
}
