//! Per-block lease prediction (Section III-E).
//!
//! > "To find the best lease, the L2 initially predicts the maximum lease
//! > (2048) for every block. When the block is written, the prediction
//! > drops to the minimum (8), and grows (2×) every time a read lease is
//! > successfully renewed. This way the L2 quickly learns to predict
//! > short leases for frequently shared read-write blocks (such as those
//! > containing locks), but long leases for data that is mostly read and
//! > blocks that miss in the L2 (e.g., streaming reads)."

use rcc_common::config::RccParams;

/// Stateless lease-prediction policy; the predicted lease itself is
/// stored per L2 block.
#[derive(Debug, Clone)]
pub struct LeasePredictor {
    min: u64,
    max: u64,
    fixed: Option<u64>,
    enabled: bool,
}

impl LeasePredictor {
    /// Builds the policy from the RCC configuration.
    pub fn new(params: &RccParams) -> Self {
        assert!(params.lease_min > 0, "leases must be positive");
        assert!(params.lease_min <= params.lease_max);
        LeasePredictor {
            min: params.lease_min,
            max: params.lease_max,
            fixed: params.fixed_lease,
            enabled: params.predictor_enabled,
        }
    }

    /// Prediction for a block newly filled from DRAM by a read (streaming
    /// data gets the maximum lease).
    pub fn initial(&self) -> u64 {
        self.fixed.unwrap_or(self.max)
    }

    /// Prediction after a block is written (drop to minimum — frequently
    /// written shared data should hold short leases).
    pub fn on_write(&self, _current: u64) -> u64 {
        match self.fixed {
            Some(f) => f,
            None if self.enabled => self.min,
            None => self.max,
        }
    }

    /// Prediction after a lease is successfully renewed (the expiration
    /// was premature — double the lease).
    pub fn on_renew(&self, current: u64) -> u64 {
        match self.fixed {
            Some(f) => f,
            None if self.enabled => (current * 2).min(self.max),
            None => self.max,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rcc_common::config::RccParams;

    fn params() -> RccParams {
        RccParams::default()
    }

    #[test]
    fn initial_is_max() {
        let p = LeasePredictor::new(&params());
        assert_eq!(p.initial(), 2048);
    }

    #[test]
    fn write_drops_to_min() {
        let p = LeasePredictor::new(&params());
        assert_eq!(p.on_write(2048), 8);
        assert_eq!(p.on_write(64), 8);
    }

    #[test]
    fn renew_doubles_up_to_max() {
        let p = LeasePredictor::new(&params());
        let mut lease = p.on_write(2048);
        let trajectory: Vec<u64> = std::iter::from_fn(|| {
            lease = p.on_renew(lease);
            Some(lease)
        })
        .take(10)
        .collect();
        // Section III-E: "predicted from 8–16–···–1024–2048".
        assert_eq!(
            trajectory,
            vec![16, 32, 64, 128, 256, 512, 1024, 2048, 2048, 2048]
        );
    }

    #[test]
    fn disabled_predictor_pins_max() {
        let mut prm = params();
        prm.predictor_enabled = false;
        let p = LeasePredictor::new(&prm);
        assert_eq!(p.initial(), 2048);
        assert_eq!(p.on_write(2048), 2048);
        assert_eq!(p.on_renew(2048), 2048);
    }

    #[test]
    fn fixed_lease_overrides_everything() {
        let mut prm = params();
        prm.fixed_lease = Some(100);
        let p = LeasePredictor::new(&prm);
        assert_eq!(p.initial(), 100);
        assert_eq!(p.on_write(100), 100);
        assert_eq!(p.on_renew(100), 100);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_lease_rejected() {
        let mut prm = params();
        prm.lease_min = 0;
        let _ = LeasePredictor::new(&prm);
    }
}
