#![allow(clippy::field_reassign_with_default)]
//! RCC protocol tests, including a line-by-line replay of the paper's
//! Fig. 3 walkthrough and property-based SC checking on random traces.

use super::l1::{L1State, RccL1, ViewMode};
use super::l2::RccL2;
use crate::msg::{
    Access, AccessKind, AccessOutcome, AtomicOp, Completion, CompletionKind, RejectReason, ReqId,
    RespMsg, RespPayload,
};
use crate::protocol::{L1Cache, L1Outbox, L2Bank, L2Outbox};
use crate::scoreboard::Scoreboard;
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::{GpuConfig, RccParams};
use rcc_common::ids::{CoreId, PartitionId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::LineData;
use std::collections::{HashMap, VecDeque};

/// What a store/atomic will write, so completions can feed the scoreboard.
#[derive(Debug, Clone, Copy)]
enum PendingValue {
    Store(u64),
    Atomic(AtomicOp),
}

/// A zero-latency rig: N L1s wired to one L2 bank and a backing store.
/// DRAM fills can optionally be held back to exercise transient states.
struct Rig {
    l1s: Vec<RccL1>,
    staged: Vec<L1Outbox>,
    l2: RccL2,
    dram: HashMap<LineAddr, LineData>,
    pending_fetches: VecDeque<LineAddr>,
    auto_dram: bool,
    cycle: Cycle,
    sb: Scoreboard,
    /// FIFO of not-yet-completed store/atomic values per (core, warp,
    /// word); acks for a given key return in issue order.
    pending_vals: HashMap<(usize, WarpId, WordAddr), VecDeque<PendingValue>>,
    completions: Vec<(usize, Completion)>,
}

impl Rig {
    fn with_cfg(cfg: &GpuConfig, cores: usize, mode: ViewMode) -> Self {
        Rig {
            l1s: (0..cores)
                .map(|c| RccL1::new(CoreId(c), cfg, cfg.rcc.clone(), mode))
                .collect(),
            staged: (0..cores).map(|_| L1Outbox::new()).collect(),
            l2: RccL2::new(PartitionId(0), cfg, cfg.rcc.clone()),
            dram: HashMap::new(),
            pending_fetches: VecDeque::new(),
            auto_dram: true,
            cycle: Cycle(0),
            sb: Scoreboard::new(),
            pending_vals: HashMap::new(),
            completions: Vec::new(),
        }
    }

    fn new(cores: usize, params: RccParams, mode: ViewMode) -> Self {
        let mut cfg = GpuConfig::small();
        cfg.rcc = params;
        Rig::with_cfg(&cfg, cores, mode)
    }

    fn sc(cores: usize) -> Self {
        Rig::new(cores, RccParams::default(), ViewMode::Sc)
    }

    /// Seeds DRAM with a value and tells the scoreboard about it (a
    /// synthetic write at position zero).
    fn seed_dram(&mut self, line: LineAddr, word_idx: usize, value: u64) {
        self.dram
            .entry(line)
            .or_insert_with(LineData::zeroed)
            .set_word(word_idx, value);
        self.sb.record(
            CoreId(99),
            &Completion {
                warp: WarpId(0),
                addr: line.word(word_idx),
                kind: CompletionKind::StoreDone,
                ts: Timestamp::ZERO,
                seq: 0,
            },
            Some(value),
        );
    }

    fn record_completion(&mut self, core: usize, c: Completion) {
        let key = (core, c.warp, c.addr);
        let mut pop = || {
            self.pending_vals
                .get_mut(&key)
                .and_then(VecDeque::pop_front)
        };
        let store_value = match c.kind {
            CompletionKind::LoadDone { .. } => None,
            CompletionKind::StoreDone => match pop() {
                Some(PendingValue::Store(v)) => Some(v),
                other => panic!("store completion without pending value: {other:?}"),
            },
            CompletionKind::AtomicDone { old } => match pop() {
                Some(PendingValue::Atomic(op)) => Some(op.apply(old)),
                other => panic!("atomic completion without pending op: {other:?}"),
            },
        };
        self.sb.record(CoreId(core), &c, store_value);
        self.completions.push((core, c));
    }

    /// Moves messages until quiescent (instant network).
    fn pump(&mut self) {
        loop {
            let mut moved = false;
            for core in 0..self.l1s.len() {
                let out = std::mem::take(&mut self.staged[core]);
                for req in out.to_l2 {
                    moved = true;
                    let mut l2out = L2Outbox::new();
                    self.l2
                        .handle_req(self.cycle, req, &mut l2out)
                        .expect("rig never fills L2 MSHRs");
                    self.route_l2out(l2out);
                }
                for c in out.completions {
                    moved = true;
                    self.record_completion(core, c);
                }
            }
            if self.auto_dram {
                while let Some(line) = self.pending_fetches.pop_front() {
                    moved = true;
                    self.fill_one(line);
                }
            }
            if !moved {
                break;
            }
        }
    }

    fn route_l2out(&mut self, out: L2Outbox) {
        for line in out.dram_fetch {
            self.pending_fetches.push_back(line);
        }
        for (line, data) in out.dram_writeback {
            self.dram.insert(line, data);
        }
        for resp in out.to_l1 {
            self.deliver_resp(resp);
        }
        assert!(out.magic_inv.is_empty(), "RCC never uses magic inv");
    }

    fn deliver_resp(&mut self, resp: RespMsg) {
        let core = resp.dst.index();
        let mut out = L1Outbox::new();
        self.l1s[core].handle_resp(self.cycle, resp, &mut out);
        self.staged[core].append(&mut out);
    }

    /// Completes one held-back DRAM fill.
    fn fill_one(&mut self, line: LineAddr) {
        let data = self.dram.get(&line).cloned().unwrap_or_default();
        let mut l2out = L2Outbox::new();
        self.l2.handle_dram(self.cycle, line, data, &mut l2out);
        self.route_l2out(l2out);
    }

    fn issue(&mut self, core: usize, access: Access) -> AccessOutcome {
        let key = (core, access.warp, access.addr);
        match access.kind {
            AccessKind::Store { value } => {
                self.pending_vals
                    .entry(key)
                    .or_default()
                    .push_back(PendingValue::Store(value));
            }
            AccessKind::Atomic { op } => {
                self.pending_vals
                    .entry(key)
                    .or_default()
                    .push_back(PendingValue::Atomic(op));
            }
            AccessKind::Load => {}
        }
        let mut out = L1Outbox::new();
        let outcome = self.l1s[core].access(self.cycle, access, &mut out);
        self.staged[core].append(&mut out);
        match &outcome {
            AccessOutcome::Done(c) => {
                debug_assert!(matches!(access.kind, AccessKind::Load));
                self.sb.record(CoreId(core), c, None);
                self.completions.push((core, *c));
            }
            AccessOutcome::Reject(_) => {
                if !matches!(access.kind, AccessKind::Load) {
                    self.pending_vals.get_mut(&key).and_then(VecDeque::pop_back);
                }
            }
            AccessOutcome::Pending => {}
        }
        outcome
    }

    /// Issues and fully completes one operation, returning its completion.
    fn op(&mut self, core: usize, warp: usize, addr: WordAddr, kind: AccessKind) -> Completion {
        let before = self.completions.len();
        let access = Access {
            warp: WarpId(warp),
            addr,
            kind,
        };
        match self.issue(core, access) {
            AccessOutcome::Done(c) => c,
            AccessOutcome::Pending => {
                self.pump();
                let (c_core, c) = *self
                    .completions
                    .get(before)
                    .expect("operation did not complete");
                assert_eq!(c_core, core);
                assert_eq!(c.addr, addr);
                c
            }
            AccessOutcome::Reject(r) => panic!("unexpected reject: {r:?}"),
        }
    }

    fn load(&mut self, core: usize, addr: WordAddr) -> Completion {
        self.op(core, 0, addr, AccessKind::Load)
    }

    fn store(&mut self, core: usize, addr: WordAddr, value: u64) -> Completion {
        self.op(core, 0, addr, AccessKind::Store { value })
    }

    fn atomic(&mut self, core: usize, addr: WordAddr, op: AtomicOp) -> Completion {
        self.op(core, 0, addr, AccessKind::Atomic { op })
    }

    fn load_value(&mut self, core: usize, addr: WordAddr) -> u64 {
        match self.load(core, addr).kind {
            CompletionKind::LoadDone { value } => value,
            other => panic!("expected load completion, got {other:?}"),
        }
    }
}

fn word(line: u64, idx: usize) -> WordAddr {
    LineAddr(line).word(idx)
}

fn line_data(word_idx: usize, value: u64) -> LineData {
    let mut d = LineData::zeroed();
    d.set_word(word_idx, value);
    d
}

// ---------------------------------------------------------------------
// The paper's Fig. 3 walkthrough, asserted row by row.
// ---------------------------------------------------------------------

#[test]
fn figure3_walkthrough() {
    let mut params = RccParams::default();
    params.fixed_lease = Some(10); // the example uses a fixed lease of 10
    let mut rig = Rig::new(2, params, ViewMode::Sc);

    let a = LineAddr(0);
    let b = LineAddr(1);
    let wa = a.word(0);
    let wb = b.word(0);

    // Initial conditions (first row of the table): C0.now = 20 with A and
    // B expired (exp = 10); C1.now = 0 with valid copies of both; in L2,
    // A.ver = 10 and B was since written by a third core (ver = 30).
    rig.l1s[0].advance_now(Timestamp(20));
    rig.l1s[0].install_line(a, line_data(0, 1), Timestamp(10));
    rig.l1s[0].install_line(b, line_data(0, 3), Timestamp(10));
    rig.l1s[1].install_line(a, line_data(0, 1), Timestamp(10));
    rig.l1s[1].install_line(b, line_data(0, 3), Timestamp(10));
    rig.l2
        .install_line(a, line_data(0, 1), Timestamp(10), Timestamp(10), 10);
    rig.l2
        .install_line(b, line_data(0, 2), Timestamp(30), Timestamp(10), 10);
    // Tell the scoreboard about the pre-installed writes.
    rig.sb.record(
        CoreId(9),
        &Completion {
            warp: WarpId(0),
            addr: wa,
            kind: CompletionKind::StoreDone,
            ts: Timestamp(10),
            seq: 0,
        },
        Some(1),
    );
    rig.sb.record(
        CoreId(9),
        &Completion {
            warp: WarpId(0),
            addr: wb,
            kind: CompletionKind::StoreDone,
            ts: Timestamp(30),
            seq: 0,
        },
        Some(2),
    );

    assert_eq!(rig.l1s[0].derived_state(a), L1State::VExpired);
    assert_eq!(rig.l1s[1].derived_state(a), L1State::V);

    // Row 1 — C0: ST A. Rule 2 advances A.ver to C0.now (= 20); C1 can
    // still read its old copy of A.
    let c = rig.store(0, wa, 100);
    assert_eq!(c.ts, Timestamp(20));
    assert_eq!(rig.l1s[0].now(), Timestamp(20));
    assert_eq!(
        rig.l2.line_times(a),
        Some((Timestamp(20), Timestamp(10))),
        "A.ver = 20, A.exp unchanged"
    );
    assert_eq!(
        rig.l1s[1].derived_state(a),
        L1State::V,
        "C1's lease survives"
    );

    // Row 2 — C0: LD B. The copy expired, and B changed in L2 (ver = 30 >
    // old lease 10), so a full DATA with a new lease to 40 arrives and C0
    // advances past B.ver (rule 1).
    assert_eq!(rig.load_value(0, wb), 2, "observes the third core's write");
    assert_eq!(rig.l1s[0].now(), Timestamp(30));
    assert_eq!(rig.l1s[0].lease_exp(b), Some(Timestamp(40)));
    assert_eq!(rig.l2.line_times(b), Some((Timestamp(30), Timestamp(40))));

    // Row 3 — C1: ST B. Rule 3 pushes the new version past the last
    // outstanding lease for B (40), so B.ver = C1.now = 41.
    let c = rig.store(1, wb, 200);
    assert_eq!(c.ts, Timestamp(41));
    assert_eq!(rig.l1s[1].now(), Timestamp(41));
    assert_eq!(rig.l2.line_times(b), Some((Timestamp(41), Timestamp(40))));

    // Row 4 — C1: LD A. The lease (10) expired relative to now = 41, and
    // A changed (ver = 20 > 10): C1 is forced to pick up C0's value.
    assert_eq!(rig.load_value(1, wa), 100, "SC ordering between the cores");
    assert_eq!(rig.l1s[1].now(), Timestamp(41));
    assert_eq!(rig.l1s[1].lease_exp(a), Some(Timestamp(51)));
    assert_eq!(rig.l2.line_times(a), Some((Timestamp(20), Timestamp(51))));

    // Row 5 — C0: ST B. Advances past the previous write of B (rule 2);
    // the two stores share version 41 (unobserved stores may share a
    // logical version — footnote 2).
    let c = rig.store(0, wb, 300);
    assert_eq!(c.ts, Timestamp(41), "shares C1's version");
    assert_eq!(rig.l1s[0].now(), Timestamp(41));
    assert_eq!(rig.l2.line_times(b), Some((Timestamp(41), Timestamp(40))));

    // Row 6 — C0: ST A. Rule 3: past A's outstanding lease (51) → 52.
    let c = rig.store(0, wa, 400);
    assert_eq!(c.ts, Timestamp(52));
    assert_eq!(rig.l1s[0].now(), Timestamp(52));
    assert_eq!(rig.l2.line_times(a), Some((Timestamp(52), Timestamp(51))));

    // Row 7 — C1: LD A. C1.now = 41 ≤ its lease (51): the load hits and
    // is logically *before* C0's second store — it must still see 100.
    let c = rig.load(1, wa);
    assert_eq!(c.kind, CompletionKind::LoadDone { value: 100 });
    assert_eq!(c.ts, Timestamp(41));
    assert_eq!(rig.l1s[1].now(), Timestamp(41));

    // The overall behaviour is explained by the sequential interleaving
    // given in the paper — the scoreboard agrees.
    rig.sb.assert_sc();
}

// ---------------------------------------------------------------------
// FSM and rule unit tests.
// ---------------------------------------------------------------------

#[test]
fn cold_miss_fills_then_hits() {
    let mut rig = Rig::sc(1);
    let w = word(4, 2);
    rig.seed_dram(LineAddr(4), 2, 55);
    assert_eq!(rig.load_value(0, w), 55);
    assert_eq!(rig.l1s[0].derived_state(LineAddr(4)), L1State::V);
    // Second load is a pure L1 hit.
    let hits_before = rig.l1s[0].stats().load_hits;
    assert_eq!(rig.load_value(0, w), 55);
    assert_eq!(rig.l1s[0].stats().load_hits, hits_before + 1);
    rig.sb.assert_sc();
}

#[test]
fn store_acks_before_dram_fill() {
    // Section III-D: on an L2 miss the store is acknowledged from the
    // MSHR without waiting for the DRAM response.
    let mut rig = Rig::sc(1);
    rig.auto_dram = false;
    let w = word(7, 0);
    let before = rig.completions.len();
    let outcome = rig.issue(
        0,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Store { value: 9 },
        },
    );
    assert_eq!(outcome, AccessOutcome::Pending);
    rig.pump();
    assert_eq!(
        rig.completions.len(),
        before + 1,
        "store completed while the fetch is still outstanding"
    );
    assert_eq!(rig.pending_fetches.len(), 1, "fill still pending");
    assert_eq!(rig.l2.pending(), 1);
    // Release the fill; the line must contain the merged store.
    let line = rig.pending_fetches.pop_front().unwrap();
    rig.fill_one(line);
    rig.pump();
    rig.auto_dram = true;
    assert_eq!(rig.load_value(0, w), 9);
    rig.sb.assert_sc();
}

#[test]
fn write_advances_version_past_outstanding_lease() {
    // Rule 3: the new version must exceed the last outstanding lease.
    let mut rig = Rig::sc(2);
    let w = word(3, 1);
    rig.load(0, w); // grants core 0 a lease
    let lease_exp = rig.l1s[0].lease_exp(LineAddr(3)).unwrap();
    let c = rig.store(1, w, 5);
    assert!(
        c.ts > lease_exp,
        "write version {} must exceed lease {}",
        c.ts,
        lease_exp
    );
    rig.sb.assert_sc();
}

#[test]
fn read_advances_now_to_version() {
    // Rule 1: a core never observes a value "from the future".
    let mut rig = Rig::sc(2);
    let w = word(3, 1);
    let c = rig.store(0, w, 5);
    assert_eq!(rig.l1s[1].now(), Timestamp(0));
    rig.load(1, w);
    assert!(rig.l1s[1].now() >= c.ts);
    rig.sb.assert_sc();
}

#[test]
fn expired_load_renews_without_data_transfer() {
    let mut rig = Rig::sc(1);
    let w = word(5, 0);
    rig.seed_dram(LineAddr(5), 0, 42);
    rig.load(0, w);
    let exp = rig.l1s[0].lease_exp(LineAddr(5)).unwrap();
    // Force logical expiry without any write to the line.
    rig.l1s[0].advance_now(exp.succ());
    assert_eq!(rig.l1s[0].derived_state(LineAddr(5)), L1State::VExpired);
    let lease_before = rig.l2.predicted_lease(LineAddr(5)).unwrap();
    assert_eq!(rig.load_value(0, w), 42);
    assert_eq!(rig.l1s[0].stats().expired_loads, 1);
    assert_eq!(rig.l1s[0].stats().renewed_loads, 1, "served via RENEW");
    assert_eq!(rig.l2.stats().renews_granted, 1);
    // Successful renewal doubles the predicted lease (capped at max).
    assert_eq!(
        rig.l2.predicted_lease(LineAddr(5)).unwrap(),
        (lease_before * 2).min(2048)
    );
    rig.sb.assert_sc();
}

#[test]
fn renew_disabled_sends_full_data() {
    let mut params = RccParams::default();
    params.renew_enabled = false;
    let mut rig = Rig::new(1, params, ViewMode::Sc);
    let w = word(5, 0);
    rig.load(0, w);
    let exp = rig.l1s[0].lease_exp(LineAddr(5)).unwrap();
    rig.l1s[0].advance_now(exp.succ());
    rig.load(0, w);
    assert_eq!(rig.l2.stats().renews_granted, 0);
    assert_eq!(rig.l1s[0].stats().renewed_loads, 0);
    rig.sb.assert_sc();
}

#[test]
fn predictor_drops_lease_on_write() {
    let mut rig = Rig::sc(2);
    let w = word(6, 0);
    rig.load(0, w);
    assert_eq!(rig.l2.predicted_lease(LineAddr(6)), Some(2048));
    rig.store(1, w, 1);
    assert_eq!(
        rig.l2.predicted_lease(LineAddr(6)),
        Some(8),
        "written blocks predict the minimum lease"
    );
}

#[test]
fn expired_data_after_write_is_not_renewed() {
    let mut rig = Rig::sc(2);
    let w = word(5, 0);
    rig.load(0, w);
    let exp = rig.l1s[0].lease_exp(LineAddr(5)).unwrap();
    rig.store(1, w, 7); // version now exceeds the old lease
    rig.l1s[0].advance_now(exp.succ());
    assert_eq!(rig.load_value(0, w), 7, "full data, new value");
    assert_eq!(rig.l2.stats().renews_granted, 0);
    assert_eq!(rig.l1s[0].stats().renewed_loads, 0);
    rig.sb.assert_sc();
}

#[test]
fn vi_block_remains_readable_while_store_outstanding() {
    let mut rig = Rig::sc(1);
    let w = word(2, 0);
    rig.seed_dram(LineAddr(2), 0, 11);
    rig.load(0, w);
    // Issue a store but do not pump: the ack is in flight.
    let outcome = rig.issue(
        0,
        Access {
            warp: WarpId(1),
            addr: w,
            kind: AccessKind::Store { value: 12 },
        },
    );
    assert_eq!(outcome, AccessOutcome::Pending);
    assert_eq!(rig.l1s[0].derived_state(LineAddr(2)), L1State::Vi);
    // Another warp can still read the (old) value — key for hiding
    // hundreds of cycles of L2 round trip (Section III-C).
    let c = rig.issue(
        0,
        Access {
            warp: WarpId(2),
            addr: w,
            kind: AccessKind::Load,
        },
    );
    match c {
        AccessOutcome::Done(c) => assert_eq!(c.kind, CompletionKind::LoadDone { value: 11 }),
        other => panic!("expected VI hit, got {other:?}"),
    }
    // After the ack the block transitions to I (write-no-allocate).
    rig.pump();
    assert_eq!(rig.l1s[0].derived_state(LineAddr(2)), L1State::I);
    rig.sb.assert_sc();
}

#[test]
fn store_to_expired_block_is_ii_not_vi() {
    let mut rig = Rig::sc(1);
    let w = word(2, 0);
    rig.load(0, w);
    let exp = rig.l1s[0].lease_exp(LineAddr(2)).unwrap();
    rig.l1s[0].advance_now(exp.succ());
    let outcome = rig.issue(
        0,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Store { value: 1 },
        },
    );
    assert_eq!(outcome, AccessOutcome::Pending);
    // Expired blocks are treated exactly like I for memory operations.
    assert_eq!(rig.l1s[0].derived_state(LineAddr(2)), L1State::Ii);
    rig.pump();
    rig.sb.assert_sc();
}

#[test]
fn atomic_read_modify_write_round_trip() {
    let mut rig = Rig::sc(2);
    let w = word(9, 3);
    let c = rig.atomic(0, w, AtomicOp::Add(5));
    assert_eq!(c.kind, CompletionKind::AtomicDone { old: 0 });
    let c = rig.atomic(1, w, AtomicOp::Add(3));
    assert_eq!(c.kind, CompletionKind::AtomicDone { old: 5 });
    assert_eq!(rig.load_value(0, w), 8);
    rig.sb.assert_sc();
}

#[test]
fn cas_success_and_failure() {
    let mut rig = Rig::sc(1);
    let w = word(9, 0);
    let c = rig.atomic(0, w, AtomicOp::Cas { expect: 0, new: 7 });
    assert_eq!(c.kind, CompletionKind::AtomicDone { old: 0 });
    let c = rig.atomic(0, w, AtomicOp::Cas { expect: 0, new: 9 });
    assert_eq!(c.kind, CompletionKind::AtomicDone { old: 7 }, "CAS fails");
    assert_eq!(rig.load_value(0, w), 7);
    rig.sb.assert_sc();
}

#[test]
fn non_mutating_atomic_preserves_leases() {
    let mut rig = Rig::sc(2);
    let w = word(9, 0);
    rig.load(0, w);
    let (ver, exp) = rig.l2.line_times(LineAddr(9)).unwrap();
    rig.atomic(1, w, AtomicOp::Read);
    assert_eq!(
        rig.l2.line_times(LineAddr(9)),
        Some((ver, exp)),
        "an atomic read must not invalidate outstanding leases"
    );
    rig.sb.assert_sc();
}

#[test]
fn atomic_miss_goes_iav_and_defers_other_requests() {
    let mut rig = Rig::sc(2);
    rig.auto_dram = false;
    let w = word(8, 0);
    // Core 0 atomic → IAV with a pending fetch.
    let o = rig.issue(
        0,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Atomic {
                op: AtomicOp::Add(4),
            },
        },
    );
    assert_eq!(o, AccessOutcome::Pending);
    rig.pump();
    // Core 1 GETS → deferred behind the IAV.
    let o = rig.issue(
        1,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Load,
        },
    );
    assert_eq!(o, AccessOutcome::Pending);
    rig.pump();
    assert_eq!(rig.completions.len(), 0, "everything stalls behind IAV");
    assert!(rig.l2.pending() >= 2);
    // Fill: the atomic completes, then the deferred load observes it.
    let line = rig.pending_fetches.pop_front().unwrap();
    rig.fill_one(line);
    rig.pump();
    assert_eq!(rig.completions.len(), 2);
    let (_, atomic_c) = rig.completions[0];
    assert_eq!(atomic_c.kind, CompletionKind::AtomicDone { old: 0 });
    let (_, load_c) = rig.completions[1];
    assert_eq!(
        load_c.kind,
        CompletionKind::LoadDone { value: 4 },
        "the deferred load is ordered after the atomic"
    );
    rig.sb.assert_sc();
}

#[test]
fn concurrent_misses_merge_in_l2_mshr() {
    let mut rig = Rig::sc(3);
    rig.auto_dram = false;
    let w = word(10, 0);
    for core in 0..2 {
        rig.issue(
            core,
            Access {
                warp: WarpId(0),
                addr: w,
                kind: AccessKind::Load,
            },
        );
    }
    // A write merges into the same IV entry and acks immediately.
    rig.issue(
        2,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Store { value: 77 },
        },
    );
    rig.pump();
    assert_eq!(
        rig.pending_fetches.len(),
        1,
        "a single DRAM fetch serves all"
    );
    assert_eq!(
        rig.completions.len(),
        1,
        "only the store completed before the fill"
    );
    let line = rig.pending_fetches.pop_front().unwrap();
    rig.fill_one(line);
    rig.pump();
    assert_eq!(rig.completions.len(), 3);
    // Both readers observe the merged write (their now advances to its
    // version, ordering them after it).
    for (_, c) in &rig.completions {
        if let CompletionKind::LoadDone { value } = c.kind {
            assert_eq!(value, 77);
        }
    }
    rig.sb.assert_sc();
}

#[test]
fn l1_mshr_full_rejects() {
    let mut cfg = GpuConfig::small();
    cfg.l1.mshrs = 1;
    let mut rig = Rig::with_cfg(&cfg, 1, ViewMode::Sc);
    rig.auto_dram = false;
    let o = rig.issue(
        0,
        Access {
            warp: WarpId(0),
            addr: word(1, 0),
            kind: AccessKind::Load,
        },
    );
    assert_eq!(o, AccessOutcome::Pending);
    let o = rig.issue(
        0,
        Access {
            warp: WarpId(1),
            addr: word(2, 0),
            kind: AccessKind::Load,
        },
    );
    assert_eq!(o, AccessOutcome::Reject(RejectReason::MshrFull));
    assert_eq!(rig.l1s[0].stats().rejects, 1);
}

#[test]
fn l1_merge_list_full_rejects() {
    let mut cfg = GpuConfig::small();
    cfg.l1.mshr_merge = 2;
    let mut rig = Rig::with_cfg(&cfg, 1, ViewMode::Sc);
    rig.auto_dram = false;
    let w = word(1, 0);
    for warp in 0..2 {
        let o = rig.issue(
            0,
            Access {
                warp: WarpId(warp),
                addr: w,
                kind: AccessKind::Load,
            },
        );
        assert_eq!(o, AccessOutcome::Pending);
    }
    let o = rig.issue(
        0,
        Access {
            warp: WarpId(2),
            addr: w,
            kind: AccessKind::Load,
        },
    );
    assert_eq!(o, AccessOutcome::Reject(RejectReason::MergeFull));
}

#[test]
fn l2_eviction_preserves_logical_order_via_mnow() {
    // Section III-D: a line reloaded after eviction gets ver = exp = mnow,
    // forcing readers/writers past any timestamps the evicted line held.
    let mut cfg = GpuConfig::small();
    cfg.rcc.fixed_lease = Some(1000);
    let mut rig = Rig::with_cfg(&cfg, 1, ViewMode::Sc);
    let sets = cfg.l2.partition.num_sets() as u64 * cfg.l2.num_partitions as u64;
    let ways = cfg.l2.partition.ways as u64;
    // Touch ways+1 lines of L2 set 0 to force an eviction of line 0.
    let first = word(0, 0);
    rig.load(0, first);
    let (_, first_exp) = rig.l2.line_times(LineAddr(0)).unwrap();
    for i in 1..=ways {
        rig.load(0, word(i * sets, 0));
    }
    assert!(rig.l2.line_times(LineAddr(0)).is_none(), "line 0 evicted");
    let mnow_before = rig.l2.mnow();
    assert!(mnow_before >= first_exp, "mnow absorbed the evicted lease");
    // Re-fetch: the refilled line's version must not be earlier than mnow.
    // (Force the L1 copy out of the picture by expiring it.)
    rig.l1s[0].advance_now(mnow_before.succ());
    let c = rig.load(0, first);
    assert!(c.ts >= mnow_before);
    let (ver, _) = rig.l2.line_times(LineAddr(0)).unwrap();
    assert!(ver >= mnow_before, "refetched ver starts at mnow");
    rig.sb.assert_sc();
}

#[test]
fn l2_writeback_of_dirty_lines() {
    let cfg = GpuConfig::small();
    let mut rig = Rig::with_cfg(&cfg, 1, ViewMode::Sc);
    let sets = cfg.l2.partition.num_sets() as u64 * cfg.l2.num_partitions as u64;
    let ways = cfg.l2.partition.ways as u64;
    let w = word(0, 5);
    rig.store(0, w, 123);
    for i in 1..=ways {
        rig.load(0, word(i * sets, 0));
    }
    assert_eq!(rig.l2.stats().writebacks, 1);
    assert_eq!(rig.dram.get(&LineAddr(0)).unwrap().word(5), 123);
    // Reload sees the written-back value.
    rig.l1s[0].advance_now(rig.l2.mnow().succ());
    assert_eq!(rig.load_value(0, w), 123);
    rig.sb.assert_sc();
}

#[test]
fn rollover_flush_resets_clocks_and_preserves_data() {
    let mut params = RccParams::default();
    params.rollover_threshold = 64;
    params.fixed_lease = Some(50);
    let mut rig = Rig::new(2, params, ViewMode::Sc);
    let w = word(1, 0);
    rig.store(0, w, 5);
    rig.load(1, w);
    // Push timestamps over the threshold.
    rig.l1s[0].advance_now(Timestamp(70));
    rig.store(0, w, 6);
    assert!(rig.l2.needs_rollover());
    // Quiesced (all ops completed) → reset L2 and flush L1s.
    assert_eq!(rig.l2.pending(), 0);
    rig.l2.rollover_reset();
    for core in 0..2 {
        rig.deliver_resp(RespMsg {
            dst: CoreId(core),
            line: LineAddr(0),
            id: ReqId(0),
            payload: RespPayload::Flush,
        });
    }
    rig.pump();
    assert!(!rig.l2.needs_rollover());
    for l1 in &rig.l1s {
        assert_eq!(l1.now(), Timestamp(0));
        assert_eq!(l1.pending(), 0);
    }
    // Data survives; the scoreboard is epoch-split across rollovers (the
    // simulator offsets timestamps per epoch), so start a fresh one here.
    rig.sb = Scoreboard::new();
    assert_eq!(rig.load_value(0, w), 6);
    assert_eq!(rig.load_value(1, w), 6);
}

#[test]
fn wo_mode_store_does_not_expire_read_view() {
    // Section III-F: with split views, a store ack advances only the
    // write view, so unrelated cached lines do not expire.
    let mut cfg = GpuConfig::small();
    cfg.rcc.fixed_lease = Some(10);
    let mut wo = Rig::with_cfg(&cfg, 2, ViewMode::Wo);
    let data_w = word(1, 0);
    let other = word(2, 0);
    wo.load(0, other); // lease on an unrelated line
                       // Another core leases data_w, forcing core 0's store version high.
    wo.load(1, data_w);
    wo.store(0, data_w, 9);
    assert!(wo.l1s[0].write_view() > wo.l1s[0].now());
    assert_eq!(
        wo.l1s[0].derived_state(LineAddr(2)),
        L1State::V,
        "read view unchanged → unrelated lease still valid"
    );
    // The same sequence under SC expires the unrelated line.
    let mut sc = Rig::with_cfg(&cfg, 2, ViewMode::Sc);
    sc.load(0, other);
    sc.load(1, data_w);
    sc.store(0, data_w, 9);
    assert_eq!(sc.l1s[0].derived_state(LineAddr(2)), L1State::VExpired);
    // A fence joins the views and the lease expires under WO too.
    wo.l1s[0].fence();
    assert_eq!(wo.l1s[0].derived_state(LineAddr(2)), L1State::VExpired);
}

#[test]
fn livelock_bump_advances_time() {
    let mut params = RccParams::default();
    params.livelock_bump_interval = 10;
    let mut rig = Rig::new(1, params, ViewMode::Sc);
    let mut out = L1Outbox::new();
    for c in 1..=25u64 {
        rig.l1s[0].tick(Cycle(c), &mut out);
    }
    assert_eq!(rig.l1s[0].now(), Timestamp(2), "bumped at cycles 10 and 20");
}

// ---------------------------------------------------------------------
// Randomized SC property.
// ---------------------------------------------------------------------

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(64))]

    /// Any interleaving of loads/stores/atomics from multiple cores over a
    /// small set of words, including delayed DRAM fills, yields an
    /// SC-explainable execution. Each warp obeys the paper's naïve-SC
    /// issuance rule: at most one outstanding global memory operation.
    #[test]
    fn random_traces_are_sequentially_consistent(
        seed in 0u64..1000,
        ops in 40usize..160,
        cores in 2usize..4,
    ) {
        let mut rng = rcc_common::Pcg32::seeded(seed);
        let mut rig = Rig::sc(cores);
        rig.auto_dram = false;
        let words: Vec<WordAddr> =
            (0..6).map(|i| word(i % 3, (i as usize) * 2)).collect();
        let mut token = 1u64;
        // One outstanding op per (core, warp): a warp is busy from issue
        // until its completion shows up.
        let nwarps = 4usize;
        let mut busy = vec![false; cores * nwarps];
        let mut seen = 0usize;
        let note_completions = |rig: &Rig, busy: &mut Vec<bool>, seen: &mut usize| {
            for (core, c) in &rig.completions[*seen..] {
                busy[core * nwarps + c.warp.index()] = false;
            }
            *seen = rig.completions.len();
        };
        for _ in 0..ops {
            let core = rng.below(cores as u64) as usize;
            let warp = rng.below(nwarps as u64) as usize;
            if busy[core * nwarps + warp] {
                // Drain until this warp is free again.
                while busy[core * nwarps + warp] {
                    if let Some(line) = rig.pending_fetches.pop_front() {
                        rig.fill_one(line);
                    }
                    rig.pump();
                    note_completions(&rig, &mut busy, &mut seen);
                }
            }
            let w = *rng.pick(&words);
            let kind = match rng.below(10) {
                0..=4 => AccessKind::Load,
                5..=7 => {
                    token += 1;
                    AccessKind::Store { value: token }
                }
                8 => AccessKind::Atomic { op: AtomicOp::Add(1) },
                _ => AccessKind::Atomic {
                    op: AtomicOp::Cas { expect: 0, new: token + 1000 },
                },
            };
            let outcome = rig.issue(core, Access { warp: WarpId(warp), addr: w, kind });
            if matches!(outcome, AccessOutcome::Pending) {
                busy[core * nwarps + warp] = true;
            }
            note_completions(&rig, &mut busy, &mut seen);
            // Occasionally release a DRAM fill or pump the network.
            if rng.chance(0.4) {
                if let Some(line) = rig.pending_fetches.pop_front() {
                    rig.fill_one(line);
                }
            }
            if rng.chance(0.5) {
                rig.pump();
            }
            note_completions(&rig, &mut busy, &mut seen);
        }
        rig.auto_dram = true;
        rig.pump();
        rig.sb.assert_sc();
    }
}
