//! Conformance tests against Fig. 5 of the paper: every cell of the L1
//! and L2 transition tables is exercised and its actions/next-state are
//! asserted.
//!
//! The tests drive the controllers into each (state, event) combination
//! with a minimal message sequence and then check:
//! * the derived state after the event (`RccL1::derived_state`),
//! * the messages generated (GETS/WRITE/ATOMIC with the right clocks;
//!   DATA/RENEW/ACK with the right `ver`/`exp`),
//! * the timestamp updates prescribed by the cell.

use super::l1::{L1State, RccL1, ViewMode};
use super::l2::RccL2;
use crate::msg::{
    Access, AccessKind, AccessOutcome, AtomicOp, ReqId, ReqMsg, ReqPayload, RespMsg, RespPayload,
};
use crate::protocol::{L1Cache, L1Outbox, L2Bank, L2Outbox};
use rcc_common::addr::LineAddr;
use rcc_common::config::{GpuConfig, RccParams};
use rcc_common::ids::{CoreId, PartitionId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::LineData;

const LEASE: u64 = 10;

fn params() -> RccParams {
    RccParams {
        fixed_lease: Some(LEASE),
        ..RccParams::default()
    }
}

fn l1() -> RccL1 {
    RccL1::new(CoreId(0), &GpuConfig::small(), params(), ViewMode::Sc)
}

fn l2() -> RccL2 {
    RccL2::new(PartitionId(0), &GpuConfig::small(), params())
}

fn line() -> LineAddr {
    LineAddr(4)
}

fn load(l1: &mut RccL1, out: &mut L1Outbox) -> AccessOutcome {
    l1.access(
        Cycle(0),
        Access {
            warp: WarpId(0),
            addr: line().word(0),
            kind: AccessKind::Load,
        },
        out,
    )
}

fn store(l1: &mut RccL1, warp: usize, out: &mut L1Outbox) -> AccessOutcome {
    l1.access(
        Cycle(0),
        Access {
            warp: WarpId(warp),
            addr: line().word(0),
            kind: AccessKind::Store { value: 1 },
        },
        out,
    )
}

fn data_resp(ver: u64, exp: u64) -> RespMsg {
    RespMsg {
        dst: CoreId(0),
        line: line(),
        id: ReqId(0),
        payload: RespPayload::Data {
            data: LineData::zeroed(),
            ver: Timestamp(ver),
            exp: Timestamp(exp),
            seq: 1,
        },
    }
}

fn ack_resp(id: ReqId, ver: u64) -> RespMsg {
    RespMsg {
        dst: CoreId(0),
        line: line(),
        id,
        payload: RespPayload::StoreAck {
            ver: Timestamp(ver),
            seq: 1,
        },
    }
}

fn sent_write_id(out: &L1Outbox) -> ReqId {
    out.to_l2
        .iter()
        .find_map(|m| match m.payload {
            ReqPayload::Write { .. } => Some(m.id),
            _ => None,
        })
        .expect("a WRITE was sent")
}

#[cfg(test)]
mod l1_table {
    use super::*;

    /// I + load → GETS{now, exp=None}, → IV.
    #[test]
    fn i_load_sends_gets_to_iv() {
        let mut c = l1();
        let mut out = L1Outbox::new();
        assert_eq!(c.derived_state(line()), L1State::I);
        assert_eq!(load(&mut c, &mut out), AccessOutcome::Pending);
        assert_eq!(c.derived_state(line()), L1State::Iv);
        match &out.to_l2[0].payload {
            ReqPayload::Gets { now, renew_exp } => {
                assert_eq!(*now, Timestamp(0));
                assert_eq!(*renew_exp, None, "cold miss carries no renew hint");
            }
            other => panic!("expected GETS, got {other:?}"),
        }
    }

    /// I + store → WRITE{now}, → II.
    #[test]
    fn i_store_sends_write_to_ii() {
        let mut c = l1();
        let mut out = L1Outbox::new();
        assert_eq!(store(&mut c, 0, &mut out), AccessOutcome::Pending);
        assert_eq!(c.derived_state(line()), L1State::Ii);
        assert!(matches!(
            out.to_l2[0].payload,
            ReqPayload::Write {
                now: Timestamp(0),
                ..
            }
        ));
    }

    /// I + atomic → ATOMIC{now}, → II.
    #[test]
    fn i_atomic_sends_atomic_to_ii() {
        let mut c = l1();
        let mut out = L1Outbox::new();
        let o = c.access(
            Cycle(0),
            Access {
                warp: WarpId(0),
                addr: line().word(0),
                kind: AccessKind::Atomic {
                    op: AtomicOp::Add(1),
                },
            },
            &mut out,
        );
        assert_eq!(o, AccessOutcome::Pending);
        assert_eq!(c.derived_state(line()), L1State::Ii);
        assert!(matches!(out.to_l2[0].payload, ReqPayload::Atomic { .. }));
    }

    /// V + load → cache hit (no messages).
    #[test]
    fn v_load_hits() {
        let mut c = l1();
        c.install_line(line(), LineData::zeroed(), Timestamp(9));
        let mut out = L1Outbox::new();
        assert!(matches!(load(&mut c, &mut out), AccessOutcome::Done(_)));
        assert!(out.to_l2.is_empty());
        assert_eq!(c.derived_state(line()), L1State::V);
    }

    /// V + store → WRITE, → VI (still readable).
    #[test]
    fn v_store_goes_vi() {
        let mut c = l1();
        c.install_line(line(), LineData::zeroed(), Timestamp(9));
        let mut out = L1Outbox::new();
        store(&mut c, 0, &mut out);
        assert_eq!(c.derived_state(line()), L1State::Vi);
    }

    /// V + expiry → treated as I for memory operations.
    #[test]
    fn v_expiry_treated_as_i() {
        let mut c = l1();
        c.install_line(line(), LineData::zeroed(), Timestamp(5));
        c.advance_now(Timestamp(6));
        assert_eq!(c.derived_state(line()), L1State::VExpired);
        let mut out = L1Outbox::new();
        assert_eq!(load(&mut c, &mut out), AccessOutcome::Pending);
        // Expired-but-resident data produces a renewable GETS.
        assert!(matches!(
            out.to_l2[0].payload,
            ReqPayload::Gets {
                renew_exp: Some(Timestamp(5)),
                ..
            }
        ));
    }

    /// IV + load → merged into the MSHR, no second GETS.
    #[test]
    fn iv_load_merges() {
        let mut c = l1();
        let mut out = L1Outbox::new();
        load(&mut c, &mut out);
        let msgs_before = out.to_l2.len();
        let o = c.access(
            Cycle(0),
            Access {
                warp: WarpId(1),
                addr: line().word(1),
                kind: AccessKind::Load,
            },
            &mut out,
        );
        assert_eq!(o, AccessOutcome::Pending);
        assert_eq!(out.to_l2.len(), msgs_before, "no extra GETS");
        assert_eq!(c.derived_state(line()), L1State::Iv);
    }

    /// IV + store → WRITE, → II.
    #[test]
    fn iv_store_goes_ii() {
        let mut c = l1();
        let mut out = L1Outbox::new();
        load(&mut c, &mut out);
        store(&mut c, 1, &mut out);
        assert_eq!(c.derived_state(line()), L1State::Ii);
    }

    /// IV + DATA → L1.now = max(L1.now, M.ver); D.exp = M.exp; → V.
    #[test]
    fn iv_data_fills_v_and_joins_clock() {
        let mut c = l1();
        let mut out = L1Outbox::new();
        load(&mut c, &mut out);
        let mut out = L1Outbox::new();
        c.handle_resp(Cycle(0), data_resp(7, 17), &mut out);
        assert_eq!(c.derived_state(line()), L1State::V);
        assert_eq!(c.now(), Timestamp(7), "rule 1");
        assert_eq!(c.lease_exp(line()), Some(Timestamp(17)));
        assert_eq!(out.completions.len(), 1);
    }

    /// IV + RENEW → D.exp = M.exp; → V (data already resident).
    #[test]
    fn iv_renew_revalidates() {
        let mut c = l1();
        c.install_line(line(), LineData::zeroed(), Timestamp(3));
        c.advance_now(Timestamp(4));
        let mut out = L1Outbox::new();
        load(&mut c, &mut out); // expired → GETS with renew hint
        let mut out = L1Outbox::new();
        c.handle_resp(
            Cycle(0),
            RespMsg {
                dst: CoreId(0),
                line: line(),
                id: ReqId(0),
                payload: RespPayload::Renew { exp: Timestamp(14) },
            },
            &mut out,
        );
        assert_eq!(c.derived_state(line()), L1State::V);
        assert_eq!(c.lease_exp(line()), Some(Timestamp(14)));
        assert_eq!(c.now(), Timestamp(4), "renew does not advance now");
        assert_eq!(out.completions.len(), 1);
        assert_eq!(c.stats().renewed_loads, 1);
    }

    /// II + DATA (read resp) with writes still pending → VI.
    #[test]
    fn ii_data_with_pending_writes_goes_vi() {
        let mut c = l1();
        let mut out = L1Outbox::new();
        store(&mut c, 0, &mut out); // II
        load(&mut c, &mut out); // GETS sent while in II
        let mut out = L1Outbox::new();
        c.handle_resp(Cycle(0), data_resp(2, 12), &mut out);
        assert_eq!(
            c.derived_state(line()),
            L1State::Vi,
            "MSHR not empty → VI per Fig. 5"
        );
    }

    /// II + ACK with MSHR empty → I (write-no-allocate).
    #[test]
    fn ii_ack_releases_to_i() {
        let mut c = l1();
        let mut out = L1Outbox::new();
        store(&mut c, 0, &mut out);
        let id = sent_write_id(&out);
        let mut out = L1Outbox::new();
        c.handle_resp(Cycle(0), ack_resp(id, 11), &mut out);
        assert_eq!(c.derived_state(line()), L1State::I);
        assert_eq!(c.now(), Timestamp(11), "L1.now = max(L1.now, M.ver)");
        assert_eq!(out.completions.len(), 1);
    }

    /// II + ACK with more writes pending → stays II.
    #[test]
    fn ii_ack_with_more_writes_stays_ii() {
        let mut c = l1();
        let mut out = L1Outbox::new();
        store(&mut c, 0, &mut out);
        store(&mut c, 1, &mut out);
        let id = sent_write_id(&out);
        let mut out = L1Outbox::new();
        c.handle_resp(Cycle(0), ack_resp(id, 11), &mut out);
        assert_eq!(c.derived_state(line()), L1State::Ii);
    }

    /// VI + load → cache hit from the still-valid copy.
    #[test]
    fn vi_load_hits() {
        let mut c = l1();
        c.install_line(line(), LineData::zeroed(), Timestamp(9));
        let mut out = L1Outbox::new();
        store(&mut c, 0, &mut out);
        assert_eq!(c.derived_state(line()), L1State::Vi);
        assert!(matches!(load(&mut c, &mut out), AccessOutcome::Done(_)));
    }

    /// VI + final ACK → I (Fig. 4: VI → I on ST reply).
    #[test]
    fn vi_final_ack_invalidates() {
        let mut c = l1();
        c.install_line(line(), LineData::zeroed(), Timestamp(9));
        let mut out = L1Outbox::new();
        store(&mut c, 0, &mut out);
        let id = sent_write_id(&out);
        let mut out = L1Outbox::new();
        c.handle_resp(Cycle(0), ack_resp(id, 10), &mut out);
        assert_eq!(c.derived_state(line()), L1State::I);
    }

    /// Eviction of a V line is silent (no coherence messages).
    #[test]
    fn v_eviction_is_silent() {
        let cfg = GpuConfig::small(); // L1: 8 sets × 4 ways
        let sets = cfg.l1.num_sets() as u64;
        let mut c = l1();
        let mut out = L1Outbox::new();
        for i in 0..=cfg.l1.ways as u64 {
            c.install_line(LineAddr(4 + i * sets), LineData::zeroed(), Timestamp(9));
        }
        assert!(out.to_l2.is_empty(), "self-invalidation needs no traffic");
        let _ = &mut out;
    }
}

#[cfg(test)]
mod l2_table {
    use super::*;

    fn gets(now: u64, renew: Option<u64>) -> ReqMsg {
        ReqMsg {
            src: CoreId(0),
            line: line(),
            id: ReqId(0),
            payload: ReqPayload::Gets {
                now: Timestamp(now),
                renew_exp: renew.map(Timestamp),
            },
        }
    }

    fn write(now: u64, id: u64) -> ReqMsg {
        ReqMsg {
            src: CoreId(0),
            line: line(),
            id: ReqId(id),
            payload: ReqPayload::Write {
                now: Timestamp(now),
                word: 0,
                value: 5,
            },
        }
    }

    fn atomic(now: u64, id: u64) -> ReqMsg {
        ReqMsg {
            src: CoreId(0),
            line: line(),
            id: ReqId(id),
            payload: ReqPayload::Atomic {
                now: Timestamp(now),
                word: 0,
                op: AtomicOp::Add(1),
            },
        }
    }

    /// GETS in I → DRAM FETCH, lastrd = M.now, → IV.
    #[test]
    fn gets_in_i_fetches() {
        let mut b = l2();
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), gets(3, None), &mut out).unwrap();
        assert_eq!(out.dram_fetch, vec![line()]);
        assert!(out.to_l1.is_empty(), "readers wait for the fill");
        assert_eq!(b.pending(), 1);
    }

    /// GETS in V → D.exp = max(D.exp, D.ver+lease, M.now+lease); DATA.
    #[test]
    fn gets_in_v_extends_lease() {
        let mut b = l2();
        b.install_line(
            line(),
            LineData::zeroed(),
            Timestamp(6),
            Timestamp(8),
            LEASE,
        );
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), gets(20, None), &mut out).unwrap();
        let (ver, exp) = b.line_times(line()).unwrap();
        assert_eq!(ver, Timestamp(6));
        assert_eq!(exp, Timestamp(30), "max(8, 6+10, 20+10)");
        assert!(matches!(
            out.to_l1[0].payload,
            RespPayload::Data {
                ver: Timestamp(6),
                exp: Timestamp(30),
                ..
            }
        ));
    }

    /// GETS in V with M.exp > D.ver → RENEW (no data).
    #[test]
    fn gets_renewable_sends_renew() {
        let mut b = l2();
        b.install_line(
            line(),
            LineData::zeroed(),
            Timestamp(6),
            Timestamp(8),
            LEASE,
        );
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), gets(20, Some(8)), &mut out).unwrap();
        assert!(matches!(
            out.to_l1[0].payload,
            RespPayload::Renew { exp: Timestamp(30) }
        ));
        assert_eq!(b.stats().renews_granted, 1);
    }

    /// GETS in V with M.exp ≤ D.ver → full DATA (data changed).
    #[test]
    fn gets_stale_hint_sends_data() {
        let mut b = l2();
        b.install_line(
            line(),
            LineData::zeroed(),
            Timestamp(6),
            Timestamp(8),
            LEASE,
        );
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), gets(20, Some(5)), &mut out).unwrap();
        assert!(matches!(out.to_l1[0].payload, RespPayload::Data { .. }));
        assert_eq!(b.stats().renews_granted, 0);
    }

    /// WRITE in V → D.ver = max(M.now, D.ver, D.exp+1); ACK{ver}.
    #[test]
    fn write_in_v_rule_2_and_3() {
        let mut b = l2();
        b.install_line(
            line(),
            LineData::zeroed(),
            Timestamp(6),
            Timestamp(8),
            LEASE,
        );
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), write(3, 9), &mut out).unwrap();
        let (ver, _) = b.line_times(line()).unwrap();
        assert_eq!(ver, Timestamp(9), "max(3, 6, 8+1)");
        assert!(matches!(
            out.to_l1[0].payload,
            RespPayload::StoreAck {
                ver: Timestamp(9),
                ..
            }
        ));
    }

    /// WRITE in I → DRAM FETCH + immediate ACK{max(lastwr, mnow+1)}.
    #[test]
    fn write_in_i_acks_before_fill() {
        let mut b = l2();
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), write(3, 9), &mut out).unwrap();
        assert_eq!(out.dram_fetch, vec![line()]);
        assert!(matches!(
            out.to_l1[0].payload,
            RespPayload::StoreAck {
                ver: Timestamp(3),
                ..
            }
        ));
    }

    /// WRITE in IV → merged into the MSHR + immediate ACK.
    #[test]
    fn write_in_iv_merges_and_acks() {
        let mut b = l2();
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), gets(0, None), &mut out).unwrap();
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), write(4, 9), &mut out).unwrap();
        assert!(out.dram_fetch.is_empty(), "no second fetch");
        assert!(matches!(out.to_l1[0].payload, RespPayload::StoreAck { .. }));
        // The fill must apply the merged write and serve the reader.
        let mut out = L2Outbox::new();
        b.handle_dram(Cycle(0), line(), LineData::zeroed(), &mut out);
        match &out.to_l1[0].payload {
            RespPayload::Data { data, ver, .. } => {
                assert_eq!(data.word(0), 5, "merged write visible to the reader");
                assert!(*ver >= Timestamp(4));
            }
            other => panic!("expected DATA, got {other:?}"),
        }
    }

    /// ATOMIC in I → IAV; further requests stall until the fill.
    #[test]
    fn atomic_in_i_goes_iav_and_stalls_others() {
        let mut b = l2();
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), atomic(2, 9), &mut out).unwrap();
        assert_eq!(out.dram_fetch, vec![line()]);
        assert!(out.to_l1.is_empty(), "atomic needs the data first");
        // A GETS during IAV is deferred, not served.
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), gets(0, None), &mut out).unwrap();
        assert!(out.to_l1.is_empty() && out.dram_fetch.is_empty());
        // The fill answers the atomic first, then the deferred GETS.
        let mut out = L2Outbox::new();
        b.handle_dram(Cycle(0), line(), LineData::zeroed(), &mut out);
        assert!(matches!(
            out.to_l1[0].payload,
            RespPayload::AtomicResp { .. }
        ));
        assert!(matches!(out.to_l1[1].payload, RespPayload::Data { .. }));
    }

    /// ATOMIC in V → D.ver advances past the lease; AtomicResp.
    #[test]
    fn atomic_in_v_serializes() {
        let mut b = l2();
        b.install_line(
            line(),
            LineData::zeroed(),
            Timestamp(6),
            Timestamp(8),
            LEASE,
        );
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), atomic(2, 9), &mut out).unwrap();
        let (ver, _) = b.line_times(line()).unwrap();
        assert_eq!(ver, Timestamp(9), "max(2, 6, 8+1)");
        assert!(matches!(
            out.to_l1[0].payload,
            RespPayload::AtomicResp {
                value: 0,
                ver: Timestamp(9),
                ..
            }
        ));
    }

    /// Eviction: mnow = max(mnow, D.exp, D.ver); dirty lines write back.
    #[test]
    fn evict_absorbs_timestamps_into_mnow() {
        let cfg = GpuConfig::small();
        let stride = cfg.l2.num_partitions as u64;
        let sets = cfg.l2.partition.num_sets() as u64 * stride;
        let mut b = l2();
        b.install_line(
            line(),
            LineData::zeroed(),
            Timestamp(6),
            Timestamp(40),
            LEASE,
        );
        // Dirty it, then displace it with conflicting fills.
        let mut out = L2Outbox::new();
        b.handle_req(Cycle(0), write(3, 9), &mut out).unwrap();
        for i in 1..=cfg.l2.partition.ways as u64 {
            b.install_line(
                LineAddr(line().0 + i * sets),
                LineData::zeroed(),
                Timestamp(0),
                Timestamp(0),
                LEASE,
            );
        }
        assert!(b.line_times(line()).is_none(), "evicted");
        assert!(
            b.mnow() >= Timestamp(41),
            "mnow ≥ the write version (exp+1)"
        );
    }
}
