//! RCC L1 cache controller (Fig. 5, left table).
//!
//! Stable states are V and I; the transient states IV, II and VI of the
//! paper are *derived* here from two facts the controller tracks per
//! MSHR entry — whether a GETS is outstanding and whether write acks are
//! pending — combined with whether the block is readable in the tag array:
//!
//! | derived state | GETS outstanding | writes pending | block readable |
//! |---------------|------------------|----------------|----------------|
//! | IV            | yes              | no             | —              |
//! | II            | maybe            | yes            | no             |
//! | VI            | maybe            | yes            | yes            |
//!
//! This encoding makes the state transitions of Fig. 5 fall out of plain
//! data-structure updates, and [`RccL1::derived_state`] recovers the
//! paper's state names for tests and debugging.

use crate::msg::{
    Access, AccessKind, AccessOutcome, Completion, CompletionKind, RejectReason, ReqId, ReqMsg,
    ReqPayload, RespMsg, RespPayload,
};
use crate::protocol::{L1Cache, L1Outbox, L1Stats};
use rcc_chaos::{PerturbPoint, Site};
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::{GpuConfig, RccParams};
use rcc_common::ids::{CoreId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::{LineData, MshrFile, MshrRejection, TagArray};
use std::collections::VecDeque;

/// Whether the core keeps one logical view (SC) or split read/write views
/// joined at fences (WO, Section III-F).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMode {
    /// RCC-SC: a single `now` per core.
    Sc,
    /// RCC-WO: separate read and write views.
    Wo,
}

/// The paper's L1 state names, derived for inspection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum L1State {
    /// Invalid / not present.
    I,
    /// Valid with an unexpired lease.
    V,
    /// Valid in the tag array but the lease has logically expired
    /// (treated as I for memory operations and replacement).
    VExpired,
    /// Load miss outstanding.
    Iv,
    /// Write(s) outstanding, block not readable.
    Ii,
    /// Write(s) outstanding, block still readable by other warps.
    Vi,
}

/// Per-line metadata in the L1 tag array: the lease expiration
/// (write-through L1s need no `ver` — Section III-A) plus the bank
/// service slot of the fill, which orders hits against same-version
/// writes at the bank.
#[derive(Debug, Clone, Copy)]
struct L1Meta {
    exp: Timestamp,
    fill_seq: u64,
}

/// A store or atomic awaiting its ack from the L2.
#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    id: ReqId,
    warp: WarpId,
    addr: WordAddr,
    atomic: bool,
}

/// A load merged into an MSHR entry. `issue_now` is the core's read view
/// when the load was accepted: the load's SC position is
/// `max(issue_now, data.ver)`, which stays within the granted lease even
/// if unrelated store acks advance the core's clock while the data is in
/// flight.
#[derive(Debug, Clone, Copy)]
struct WaitingLoad {
    warp: WarpId,
    addr: WordAddr,
    issue_now: Timestamp,
}

/// MSHR entry: merged loads waiting for data plus writes awaiting acks.
#[derive(Debug, Clone, Default)]
struct L1Entry {
    waiting_loads: Vec<WaitingLoad>,
    pending_writes: VecDeque<PendingWrite>,
    gets_outstanding: bool,
}

/// The RCC L1 controller for one core.
#[derive(Debug, Clone)]
pub struct RccL1 {
    core: CoreId,
    mode: ViewMode,
    params: RccParams,
    /// Read view (`now` in the paper; the only view in SC mode).
    read_now: Timestamp,
    /// Write view (equal to `read_now` in SC mode).
    write_now: Timestamp,
    tags: TagArray<L1Meta>,
    mshrs: MshrFile<L1Entry>,
    next_req: u64,
    stats: L1Stats,
    /// Chaos hook for the canary injection (`Site::CanaryStaleHit`);
    /// a fork of it drives the MSHR squeeze.
    chaos: Option<Box<dyn PerturbPoint>>,
    /// Seeded fault for verification: when set, [`Self::is_readable`]
    /// ignores lease expiry, so loads hit on logically stale copies.
    #[cfg(feature = "bug-injection")]
    lease_bug: bool,
}

impl RccL1 {
    /// Creates the controller for `core` from the machine configuration.
    pub fn new(core: CoreId, cfg: &GpuConfig, params: RccParams, mode: ViewMode) -> Self {
        RccL1 {
            core,
            mode,
            params,
            read_now: Timestamp::ZERO,
            write_now: Timestamp::ZERO,
            tags: TagArray::new(cfg.l1.num_sets(), cfg.l1.ways),
            mshrs: MshrFile::new(cfg.l1.mshrs, cfg.l1.mshr_merge),
            next_req: 1,
            stats: L1Stats::default(),
            chaos: None,
            #[cfg(feature = "bug-injection")]
            lease_bug: false,
        }
    }

    /// Arms the seeded lease-check bug (dormant until called even with
    /// the feature compiled in). The model checker in `rcc-verify` must
    /// find the resulting SC violation.
    #[cfg(feature = "bug-injection")]
    pub fn inject_lease_bug(&mut self) {
        self.lease_bug = true;
    }

    /// The core's current logical read view (`now`).
    pub fn now(&self) -> Timestamp {
        self.read_now
    }

    /// The core's current logical write view (equals [`Self::now`] in SC
    /// mode).
    pub fn write_view(&self) -> Timestamp {
        self.write_now
    }

    /// Advances the logical clock(s) directly — used by tests and by the
    /// livelock-avoidance bump.
    pub fn advance_now(&mut self, to: Timestamp) {
        self.read_now = self.read_now.join(to);
        self.write_now = self.write_now.join(to);
    }

    /// Installs a line with the given data and lease expiration, as if a
    /// DATA response had filled it. Intended for setting up scenarios in
    /// tests and examples (e.g. the paper's Fig. 3 walkthrough).
    pub fn install_line(&mut self, line: LineAddr, data: LineData, exp: Timestamp) {
        self.tags
            .fill(line, L1Meta { exp, fill_seq: 0 }, data, false, |_, _| true)
            .expect("install target set has room");
    }

    /// Recovers the paper's state name for `line` (tests / debugging).
    pub fn derived_state(&self, line: LineAddr) -> L1State {
        let readable = self.is_readable(line);
        match self.mshrs.get(line) {
            Some(e) if !e.pending_writes.is_empty() => {
                if readable {
                    L1State::Vi
                } else {
                    L1State::Ii
                }
            }
            Some(_) => L1State::Iv,
            None => match self.tags.probe(line) {
                Some(l) if self.read_now <= l.state.exp => L1State::V,
                Some(_) => L1State::VExpired,
                None => L1State::I,
            },
        }
    }

    /// The lease expiration currently recorded for `line`, if resident.
    pub fn lease_exp(&self, line: LineAddr) -> Option<Timestamp> {
        self.tags.probe(line).map(|l| l.state.exp)
    }

    fn is_readable(&self, line: LineAddr) -> bool {
        #[cfg(feature = "bug-injection")]
        if self.lease_bug {
            return self.tags.probe(line).is_some();
        }
        self.tags
            .probe(line)
            .is_some_and(|l| self.read_now <= l.state.exp)
    }

    fn advance_read(&mut self, ver: Timestamp) {
        self.read_now = self.read_now.join(ver);
        if self.mode == ViewMode::Sc {
            self.write_now = self.read_now;
        }
    }

    fn advance_write(&mut self, ver: Timestamp) {
        self.write_now = self.write_now.join(ver);
        if self.mode == ViewMode::Sc {
            self.read_now = self.write_now;
        }
    }

    fn hit_completion(&mut self, warp: WarpId, addr: WordAddr) -> Completion {
        let line = self
            .tags
            .access(addr.line())
            .expect("hit path requires resident line");
        Completion {
            warp,
            addr,
            kind: CompletionKind::LoadDone {
                value: line.data.word_at(addr),
            },
            ts: self.read_now,
            // Same-version ties resolve by bank order: this copy knows
            // exactly the writes serviced before its fill.
            seq: line.state.fill_seq,
        }
    }

    /// Sends a GETS for `line` if none is outstanding, carrying the
    /// expired lease's `exp` when the stale data is still resident (the
    /// RENEW hint of Section III-E).
    fn send_gets(&mut self, line: LineAddr, out: &mut L1Outbox) {
        let entry = self.mshrs.get_mut(line).expect("entry exists");
        if entry.gets_outstanding {
            return;
        }
        entry.gets_outstanding = true;
        let renew_exp = if self.params.renew_enabled {
            self.tags.probe(line).map(|l| l.state.exp)
        } else {
            None
        };
        out.to_l2.push(ReqMsg {
            src: self.core,
            line,
            id: ReqId(0),
            payload: ReqPayload::Gets {
                now: self.read_now,
                renew_exp,
            },
        });
    }

    fn start_load(&mut self, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let line = access.addr.line();
        // Canary (deliberately unsound; fires only under the chaos
        // `canary` profile): serve the load from a resident line whose
        // lease has expired, as if a lease extension the L1 never
        // received had been granted. The runtime SC sanitizer must
        // flag the resulting stale read.
        if self.chaos.is_some() && self.tags.probe(line).is_some() && !self.is_readable(line) {
            let fired = match &mut self.chaos {
                Some(c) => c.fires(Site::CanaryStaleHit),
                None => false,
            };
            if fired {
                self.stats.load_hits += 1;
                return AccessOutcome::Done(self.hit_completion(access.warp, access.addr));
            }
        }
        let waiting = WaitingLoad {
            warp: access.warp,
            addr: access.addr,
            issue_now: self.read_now,
        };
        if self.mshrs.contains(line) {
            if self.is_readable(line) {
                // Derived VI: the block is still readable while writes are
                // outstanding — important because round trips to L2 take
                // hundreds of cycles (Section III-C).
                self.stats.load_hits += 1;
                return AccessOutcome::Done(self.hit_completion(access.warp, access.addr));
            }
            if self.tags.probe(line).is_some() {
                // The stale copy is resident but expired: this load also
                // "finds data in V state but expired" (Fig. 6 left).
                self.stats.expired_loads += 1;
            }
            if self
                .mshrs
                .merge(line, |e| e.waiting_loads.push(waiting))
                .is_err()
            {
                self.stats.rejects += 1;
                return AccessOutcome::Reject(RejectReason::MergeFull);
            }
            self.send_gets(line, out);
            return AccessOutcome::Pending;
        }

        match self.tags.probe(line) {
            Some(_) if self.is_readable(line) => {
                self.stats.load_hits += 1;
                AccessOutcome::Done(self.hit_completion(access.warp, access.addr))
            }
            resident => {
                if resident.is_some() {
                    // V-but-expired: the numerator of Fig. 6 (left). The
                    // stale data stays resident so a RENEW can revalidate
                    // it without a data transfer.
                    self.stats.expired_loads += 1;
                }
                let entry = L1Entry {
                    waiting_loads: vec![waiting],
                    ..L1Entry::default()
                };
                if self.mshrs.allocate(line, entry).is_err() {
                    self.stats.rejects += 1;
                    return AccessOutcome::Reject(RejectReason::MshrFull);
                }
                self.send_gets(line, out);
                AccessOutcome::Pending
            }
        }
    }

    fn start_write(&mut self, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let line = access.addr.line();
        // Peek the next id; it is minted only if the MSHR accepts the
        // write. A rejected access must leave nothing behind but
        // counters (the `replay_rejected_access` contract).
        let id = ReqId(self.next_req);
        let atomic = matches!(access.kind, AccessKind::Atomic { .. });
        let pending = PendingWrite {
            id,
            warp: access.warp,
            addr: access.addr,
            atomic,
        };

        let alloc = if self.mshrs.contains(line) {
            self.mshrs
                .merge(line, |e| e.pending_writes.push_back(pending))
        } else {
            let mut entry = L1Entry::default();
            entry.pending_writes.push_back(pending);
            self.mshrs.allocate(line, entry)
        };
        if let Err(e) = alloc {
            self.stats.rejects += 1;
            return AccessOutcome::Reject(match e {
                MshrRejection::Full => RejectReason::MshrFull,
                MshrRejection::MergeListFull => RejectReason::MergeFull,
            });
        }
        self.next_req += 1;

        // Write-through: the request goes straight to the L2 (Fig. 5
        // emits WRITE/ATOMIC from every state). Write permissions need no
        // round trip — the L2 will grant them by advancing logical time.
        let word = access.addr.line_word_index();
        let payload = match access.kind {
            AccessKind::Store { value } => ReqPayload::Write {
                now: self.write_now,
                word,
                value,
            },
            AccessKind::Atomic { op } => ReqPayload::Atomic {
                now: self.write_now,
                word,
                op,
            },
            AccessKind::Load => unreachable!("start_write is for writes"),
        };
        out.to_l2.push(ReqMsg {
            src: self.core,
            line,
            id,
            payload,
        });
        AccessOutcome::Pending
    }

    /// Releases the MSHR entry if nothing remains outstanding; after the
    /// final write ack the block transitions to I (Fig. 4: II/VI → I on
    /// ST/AT reply), modelling write-no-allocate.
    fn maybe_release_after_write(&mut self, line: LineAddr) {
        let entry = self.mshrs.get(line).expect("entry exists");
        if entry.pending_writes.is_empty() && !entry.gets_outstanding {
            debug_assert!(entry.waiting_loads.is_empty());
            self.mshrs.release(line);
            if self.tags.invalidate(line).is_some() {
                self.stats.self_invalidations += 1;
            }
        }
    }

    /// Completes all merged loads against `data`. Each load is positioned
    /// at `max(its issue-time now, ver)` — within its granted lease, and
    /// after every write the data incorporates — with the serving bank
    /// slot `seq` breaking same-version ties.
    /// Completes merged loads covered by the lease (`issue_now ≤ exp`) —
    /// rule 3 guarantees any later write's version exceeds `exp`, so the
    /// data is current at every covered position. Loads that merged past
    /// the lease window are returned for re-requesting.
    #[allow(clippy::too_many_arguments)]
    fn complete_waiting_loads(
        &mut self,
        line: LineAddr,
        data: &LineData,
        ver: Timestamp,
        exp: Timestamp,
        seq: u64,
        out: &mut L1Outbox,
    ) -> usize {
        let entry = self.mshrs.get_mut(line).expect("entry exists");
        let loads = std::mem::take(&mut entry.waiting_loads);
        let mut n = 0;
        let mut refetch = Vec::new();
        for w in loads {
            if w.issue_now > exp {
                refetch.push(w);
                continue;
            }
            n += 1;
            out.completions.push(Completion {
                warp: w.warp,
                addr: w.addr,
                kind: CompletionKind::LoadDone {
                    value: data.word_at(w.addr),
                },
                ts: w.issue_now.join(ver),
                seq,
            });
        }
        if !refetch.is_empty() {
            let entry = self.mshrs.get_mut(line).expect("entry exists");
            entry.waiting_loads = refetch;
            entry.gets_outstanding = true;
            out.to_l2.push(ReqMsg {
                src: self.core,
                line,
                id: ReqId(0),
                payload: ReqPayload::Gets {
                    now: self.read_now,
                    renew_exp: if self.params.renew_enabled {
                        Some(exp)
                    } else {
                        None
                    },
                },
            });
        }
        n
    }

    fn take_pending_write(&mut self, line: LineAddr, id: ReqId) -> PendingWrite {
        let entry = self.mshrs.get_mut(line).expect("entry exists");
        let pos = entry
            .pending_writes
            .iter()
            .position(|w| w.id == id)
            .unwrap_or_else(|| panic!("no pending write {id:?} for {line}"));
        entry.pending_writes.remove(pos).expect("position valid")
    }
}

impl L1Cache for RccL1 {
    fn access(&mut self, _cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let outcome = match access.kind {
            AccessKind::Load => {
                self.stats.loads += 1;
                self.start_load(access, out)
            }
            AccessKind::Store { .. } => {
                self.stats.stores += 1;
                self.start_write(access, out)
            }
            AccessKind::Atomic { .. } => {
                self.stats.atomics += 1;
                self.start_write(access, out)
            }
        };
        if matches!(outcome, AccessOutcome::Reject(_)) {
            // Rejected accesses retry later; count them once when they
            // are finally accepted (`rejects` tracks the retries).
            match access.kind {
                AccessKind::Load => self.stats.loads -= 1,
                AccessKind::Store { .. } => self.stats.stores -= 1,
                AccessKind::Atomic { .. } => self.stats.atomics -= 1,
            }
        }
        outcome
    }

    fn handle_resp(&mut self, _cycle: Cycle, resp: RespMsg, out: &mut L1Outbox) {
        let line = resp.line;
        match resp.payload {
            RespPayload::Data {
                data,
                ver,
                exp,
                seq,
            } => {
                // Rule 1: never observe a value "from the future".
                self.advance_read(ver);
                let entry = self.mshrs.get_mut(line).expect("DATA without entry");
                entry.gets_outstanding = false;
                self.complete_waiting_loads(line, &data, ver, exp, seq, out);
                // Cache the line; lines with MSHR entries are pinned so a
                // pending RENEW always finds its data. If every way is
                // pinned, skip allocation (the loads completed already).
                let mshrs = &self.mshrs;
                let _ = self.tags.fill(
                    line,
                    L1Meta { exp, fill_seq: seq },
                    data,
                    false,
                    |addr, _| !mshrs.contains(addr),
                );
                let entry = self.mshrs.get(line).expect("entry exists");
                if entry.pending_writes.is_empty() && !entry.gets_outstanding {
                    debug_assert!(entry.waiting_loads.is_empty());
                    self.mshrs.release(line);
                }
            }
            RespPayload::Renew { exp } => {
                let entry = self.mshrs.get_mut(line).expect("RENEW without entry");
                entry.gets_outstanding = false;
                let meta = self
                    .tags
                    .probe_mut(line)
                    .expect("RENEW target data must be resident (pinned)");
                meta.state.exp = exp;
                let data = meta.data.clone();
                let fill_seq = meta.state.fill_seq;
                // Renewed data is unchanged since before the lease expired
                // (any write since the fill would have denied the renew),
                // so each load sits at its own issue-time position with
                // the original fill's bank slot.
                let n =
                    self.complete_waiting_loads(line, &data, Timestamp::ZERO, exp, fill_seq, out);
                self.stats.renewed_loads += n as u64;
                let entry = self.mshrs.get(line).expect("entry exists");
                if entry.pending_writes.is_empty() && !entry.gets_outstanding {
                    debug_assert!(entry.waiting_loads.is_empty());
                    self.mshrs.release(line);
                }
            }
            RespPayload::StoreAck { ver, seq } => {
                // Rules 2/3 landed at the L2; the ack tells us the write's
                // version, and the core joins it (Fig. 5: L1.now =
                // max(L1.now, M.ver)).
                self.advance_write(ver);
                let w = self.take_pending_write(line, resp.id);
                debug_assert!(!w.atomic, "store ack for an atomic");
                out.completions.push(Completion {
                    warp: w.warp,
                    addr: w.addr,
                    kind: CompletionKind::StoreDone,
                    ts: ver,
                    seq,
                });
                self.maybe_release_after_write(line);
            }
            RespPayload::AtomicResp { value, ver, seq } => {
                // An atomic both reads and writes: join both views.
                self.advance_read(ver);
                self.advance_write(ver);
                let w = self.take_pending_write(line, resp.id);
                debug_assert!(w.atomic, "atomic resp for a plain store");
                out.completions.push(Completion {
                    warp: w.warp,
                    addr: w.addr,
                    kind: CompletionKind::AtomicDone { old: value },
                    ts: ver,
                    seq,
                });
                self.maybe_release_after_write(line);
            }
            RespPayload::Inv
            | RespPayload::DataEx { .. }
            | RespPayload::Recall
            | RespPayload::WbAck => {
                debug_assert!(false, "RCC never sends these");
            }
            RespPayload::Flush => {
                // Rollover (Section III-D): the system is quiesced before
                // the flush, so no transactions are outstanding.
                assert!(
                    self.mshrs.is_empty(),
                    "rollover flush requires a quiesced L1"
                );
                let dropped = self.tags.drain();
                self.stats.self_invalidations += dropped.len() as u64;
                self.read_now = Timestamp::ZERO;
                self.write_now = Timestamp::ZERO;
                out.to_l2.push(ReqMsg {
                    src: self.core,
                    line,
                    id: ReqId(0),
                    payload: ReqPayload::FlushAck,
                });
            }
        }
    }

    fn tick(&mut self, cycle: Cycle, _out: &mut L1Outbox) {
        // Livelock avoidance (Section III-E): periodically advance logical
        // time so read-only spins eventually observe new versions.
        let interval = self.params.livelock_bump_interval;
        if interval > 0 && cycle.raw() > 0 && cycle.raw().is_multiple_of(interval) {
            self.advance_now(self.read_now.succ());
        }
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // The only spontaneous action is the periodic livelock bump.
        let interval = self.params.livelock_bump_interval;
        if interval == 0 {
            return None;
        }
        Some(Cycle((now.raw() / interval + 1) * interval))
    }

    fn fence(&mut self) {
        // RCC-WO: a full fence joins the read and write views
        // (Section III-F). In SC mode the views are always equal.
        let joined = self.read_now.join(self.write_now);
        self.read_now = joined;
        self.write_now = joined;
    }

    fn set_chaos(&mut self, mut hook: Box<dyn PerturbPoint>) {
        self.mshrs.set_chaos(hook.fork(1));
        self.chaos = Some(hook);
    }

    fn pending(&self) -> usize {
        self.mshrs.len()
    }

    fn replay_rejected_access(&mut self, delta: &L1Stats, times: u64) {
        self.stats.add_scaled(delta, times);
    }

    fn stats(&self) -> &L1Stats {
        &self.stats
    }
}
