//! SC-IDEAL: the limit study of Fig. 1d — sequential consistency with
//! *instantaneous* read and write permissions.
//!
//! Stores complete at the L1 in the same cycle they issue (the
//! write-through still happens, but nothing waits for it), and loads never
//! pay any coherence cost beyond the data transfer itself: cached copies
//! are kept coherent by zero-latency, zero-traffic "magic" updates that
//! refresh remote copies in place the cycle a write applies (an L2
//! eviction still drops its copies, and a fill racing a remote write is
//! poisoned rather than installed stale).
//! This isolates *coherence permission latency* from *data movement
//! latency*: the gap between SC-IDEAL and a real protocol is exactly the
//! overhead RCC attacks. It is a performance idealization, not a real
//! protocol — the consistency scoreboard is not applied to it.

use crate::kind::ProtocolKind;
use crate::msg::{
    Access, AccessKind, AccessOutcome, Completion, CompletionKind, RejectReason, ReqId, ReqMsg,
    ReqPayload, RespMsg, RespPayload,
};
use crate::protocol::{
    L1Cache, L1Outbox, L1Stats, L2Bank, L2Outbox, L2Stats, MagicAction, Protocol,
};
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::{LineData, MshrFile, TagArray};
use std::collections::VecDeque;

/// Factory for the SC-IDEAL controllers.
#[derive(Debug, Clone, Default)]
pub struct IdealProtocol;

impl IdealProtocol {
    /// Creates the SC-IDEAL configuration.
    pub fn new(_cfg: &GpuConfig) -> Self {
        IdealProtocol
    }
}

impl Protocol for IdealProtocol {
    type L1 = IdealL1;
    type L2 = IdealL2;

    fn kind(&self) -> ProtocolKind {
        ProtocolKind::IdealSc
    }

    fn make_l1(&self, core: CoreId, cfg: &GpuConfig) -> IdealL1 {
        IdealL1::new(core, cfg)
    }

    fn make_l2(&self, partition: PartitionId, cfg: &GpuConfig) -> IdealL2 {
        IdealL2::new(partition, cfg)
    }
}

#[derive(Debug, Clone, Default)]
struct IdealEntry {
    waiting_loads: Vec<(WarpId, WordAddr)>,
    pending_atomics: VecDeque<(ReqId, WarpId, WordAddr)>,
    gets_outstanding: bool,
    /// Cycle of the latest magic update that raced the fetch. A fill
    /// whose data was served at the L2 before this point may predate
    /// the remote write, so it completes the merged loads (they order
    /// before that write) but must not be cached; data served after it
    /// is fresh and installs normally.
    poisoned_at: Option<Cycle>,
}

/// SC-IDEAL L1: loads miss only for data, stores are free.
#[derive(Debug, Clone)]
pub struct IdealL1 {
    core: CoreId,
    tags: TagArray<()>,
    mshrs: MshrFile<IdealEntry>,
    next_req: u64,
    stats: L1Stats,
}

impl IdealL1 {
    /// Creates the controller for `core`.
    pub fn new(core: CoreId, cfg: &GpuConfig) -> Self {
        IdealL1 {
            core,
            tags: TagArray::new(cfg.l1.num_sets(), cfg.l1.ways),
            mshrs: MshrFile::new(cfg.l1.mshrs, cfg.l1.mshr_merge),
            next_req: 1,
            stats: L1Stats::default(),
        }
    }

    /// Whether `line` is cached (for tests).
    pub fn is_resident(&self, line: LineAddr) -> bool {
        self.tags.probe(line).is_some()
    }
}

impl L1Cache for IdealL1 {
    fn access(&mut self, cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let line = access.addr.line();
        let ts = Timestamp(cycle.raw());
        match access.kind {
            AccessKind::Load => {
                self.stats.loads += 1;
                if let Some(l) = self.tags.access(line) {
                    self.stats.load_hits += 1;
                    return AccessOutcome::Done(Completion {
                        warp: access.warp,
                        addr: access.addr,
                        kind: CompletionKind::LoadDone {
                            value: l.data.word_at(access.addr),
                        },
                        ts,
                        seq: 0,
                    });
                }
                if self.mshrs.contains(line) {
                    if self
                        .mshrs
                        .merge(line, |e| e.waiting_loads.push((access.warp, access.addr)))
                        .is_err()
                    {
                        self.stats.rejects += 1;
                        self.stats.loads -= 1; // retried later
                        return AccessOutcome::Reject(RejectReason::MergeFull);
                    }
                    // The entry may have been created by an atomic, which
                    // fetches no shareable data — make sure a GETS is out.
                    let entry = self.mshrs.get_mut(line).expect("just merged");
                    if !entry.gets_outstanding {
                        entry.gets_outstanding = true;
                        out.to_l2.push(ReqMsg {
                            src: self.core,
                            line,
                            id: ReqId(0),
                            payload: ReqPayload::Gets {
                                now: ts,
                                renew_exp: None,
                            },
                        });
                    }
                } else {
                    let entry = IdealEntry {
                        waiting_loads: vec![(access.warp, access.addr)],
                        gets_outstanding: true,
                        ..IdealEntry::default()
                    };
                    if self.mshrs.allocate(line, entry).is_err() {
                        self.stats.rejects += 1;
                        self.stats.loads -= 1; // retried later
                        return AccessOutcome::Reject(RejectReason::MshrFull);
                    }
                    out.to_l2.push(ReqMsg {
                        src: self.core,
                        line,
                        id: ReqId(0),
                        payload: ReqPayload::Gets {
                            now: ts,
                            renew_exp: None,
                        },
                    });
                }
                AccessOutcome::Pending
            }
            AccessKind::Store { value } => {
                self.stats.stores += 1;
                // Instant write permission: complete at issue; the
                // write-through proceeds in the background (fire and
                // forget — the L2 sends no ack for ideal stores).
                if let Some(l) = self.tags.probe_mut(line) {
                    l.data.set_word_at(access.addr, value);
                }
                out.to_l2.push(ReqMsg {
                    src: self.core,
                    line,
                    id: ReqId(0),
                    payload: ReqPayload::Write {
                        now: ts,
                        word: access.addr.line_word_index(),
                        value,
                    },
                });
                AccessOutcome::Done(Completion {
                    warp: access.warp,
                    addr: access.addr,
                    kind: CompletionKind::StoreDone,
                    ts,
                    seq: 0,
                })
            }
            AccessKind::Atomic { op } => {
                self.stats.atomics += 1;
                // Atomics still need the round trip for the old value.
                // Peek the next id; minted only if the MSHR accepts
                // (the `replay_rejected_access` contract).
                let id = ReqId(self.next_req);
                let pending = (id, access.warp, access.addr);
                let ok = if self.mshrs.contains(line) {
                    self.mshrs
                        .merge(line, |e| e.pending_atomics.push_back(pending))
                        .is_ok()
                } else {
                    let mut entry = IdealEntry::default();
                    entry.pending_atomics.push_back(pending);
                    self.mshrs.allocate(line, entry).is_ok()
                };
                if !ok {
                    self.stats.rejects += 1;
                    self.stats.atomics -= 1; // retried later
                    return AccessOutcome::Reject(RejectReason::MshrFull);
                }
                self.next_req += 1;
                out.to_l2.push(ReqMsg {
                    src: self.core,
                    line,
                    id,
                    payload: ReqPayload::Atomic {
                        now: ts,
                        word: access.addr.line_word_index(),
                        op,
                    },
                });
                AccessOutcome::Pending
            }
        }
    }

    fn handle_resp(&mut self, _cycle: Cycle, resp: RespMsg, out: &mut L1Outbox) {
        let line = resp.line;
        match resp.payload {
            RespPayload::Data { data, ver, .. } => {
                let entry = self.mshrs.get_mut(line).expect("DATA without entry");
                entry.gets_outstanding = false;
                let loads = std::mem::take(&mut entry.waiting_loads);
                for (warp, addr) in loads {
                    out.completions.push(Completion {
                        warp,
                        addr,
                        kind: CompletionKind::LoadDone {
                            value: data.word_at(addr),
                        },
                        ts: ver,
                        seq: 0,
                    });
                }
                let poisoned = self
                    .mshrs
                    .get(line)
                    .expect("entry")
                    .poisoned_at
                    .is_some_and(|at| ver.0 <= at.raw());
                if !poisoned {
                    let mshrs = &self.mshrs;
                    let _ = self
                        .tags
                        .fill(line, (), data, false, |addr, _| !mshrs.contains(addr));
                }
                if self
                    .mshrs
                    .get(line)
                    .expect("entry")
                    .pending_atomics
                    .is_empty()
                {
                    self.mshrs.release(line);
                }
            }
            RespPayload::AtomicResp { value, ver, seq } => {
                let entry = self.mshrs.get_mut(line).expect("resp without entry");
                let (id, warp, addr) = entry
                    .pending_atomics
                    .pop_front()
                    .expect("atomic resp without pending atomic");
                debug_assert_eq!(id, resp.id);
                out.completions.push(Completion {
                    warp,
                    addr,
                    kind: CompletionKind::AtomicDone { old: value },
                    ts: ver,
                    seq,
                });
                let entry = self.mshrs.get(line).expect("entry");
                if entry.pending_atomics.is_empty()
                    && entry.waiting_loads.is_empty()
                    && !entry.gets_outstanding
                {
                    self.mshrs.release(line);
                }
            }
            RespPayload::Inv
            | RespPayload::StoreAck { .. }
            | RespPayload::Renew { .. }
            | RespPayload::Flush
            | RespPayload::DataEx { .. }
            | RespPayload::Recall
            | RespPayload::WbAck => {
                debug_assert!(false, "ideal protocol never sends these");
            }
        }
    }

    fn magic(&mut self, cycle: Cycle, line: LineAddr, action: MagicAction) {
        match action {
            MagicAction::Invalidate => {
                self.tags.invalidate(line);
                self.stats.self_invalidations += 1;
            }
            MagicAction::Update { word, value } => {
                if let Some(l) = self.tags.probe_mut(line) {
                    l.data.set_word(word, value);
                }
                // A fetch in flight may have been served pre-write data
                // at the L2; its fill would shadow this update. Poison
                // installs of data served up to this cycle.
                if let Some(entry) = self.mshrs.get_mut(line) {
                    entry.poisoned_at = Some(cycle);
                }
            }
        }
    }

    fn tick(&mut self, _cycle: Cycle, _out: &mut L1Outbox) {}

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Magic coherence actions arrive out-of-band; nothing to do.
        None
    }

    fn set_chaos(&mut self, hook: Box<dyn rcc_chaos::PerturbPoint>) {
        // The only SC-IDEAL L1 injection point is transient MSHR
        // exhaustion (its "network" is magic and carries no timing).
        self.mshrs.set_chaos(hook);
    }

    fn pending(&self) -> usize {
        self.mshrs.len()
    }

    fn replay_rejected_access(&mut self, delta: &L1Stats, times: u64) {
        self.stats.add_scaled(delta, times);
    }

    fn stats(&self) -> &L1Stats {
        &self.stats
    }
}

#[derive(Debug, Clone, Default)]
struct IdealL2Entry {
    readers: Vec<(CoreId, ReqId)>,
    merged_writes: Vec<(usize, u64)>,
    pending_atomics: VecDeque<ReqMsg>,
}

/// SC-IDEAL L2: plain shared cache that magically refreshes L1 copies.
#[derive(Debug, Clone)]
pub struct IdealL2 {
    partition: PartitionId,
    tags: TagArray<u64>, // sharer bitmask for magic updates
    mshrs: MshrFile<IdealL2Entry>,
    seq: u64,
    stats: L2Stats,
}

impl IdealL2 {
    /// Creates the controller for `partition`.
    pub fn new(partition: PartitionId, cfg: &GpuConfig) -> Self {
        IdealL2 {
            partition,
            tags: TagArray::with_stride(
                cfg.l2.partition.num_sets(),
                cfg.l2.partition.ways,
                cfg.l2.num_partitions as u64,
            ),
            mshrs: MshrFile::new(cfg.l2.partition.mshrs, cfg.l2.partition.mshr_merge),
            seq: 0,
            stats: L2Stats::default(),
        }
    }

    /// This bank's partition id.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Refreshes every remote copy in place — the zero-cost idealization
    /// of write propagation. Copies stay valid (and stay sharers); real
    /// protocols pay an invalidation or a lease expiry for the same
    /// effect.
    fn magic_update_others(
        &mut self,
        line: LineAddr,
        except: Option<CoreId>,
        word: usize,
        value: u64,
        out: &mut L2Outbox,
    ) {
        if let Some(l) = self.tags.probe_mut(line) {
            let mask = l.state;
            for i in 0..64 {
                if mask & (1 << i) != 0 && Some(CoreId(i)) != except {
                    out.magic_inv
                        .push((CoreId(i), line, MagicAction::Update { word, value }));
                }
            }
        }
    }

    fn fill_line(&mut self, line: LineAddr, data: LineData, dirty: bool, out: &mut L2Outbox) {
        let evicted = self
            .tags
            .fill(line, 0, data, dirty, |_, _| true)
            .expect("ideal L2 lines always evictable");
        if let Some(ev) = evicted {
            // Evicting a shared line magically drops the copies.
            for i in 0..64 {
                if ev.line.state & (1 << i) != 0 {
                    out.magic_inv
                        .push((CoreId(i), ev.line.addr, MagicAction::Invalidate));
                }
            }
            if ev.line.dirty {
                self.stats.writebacks += 1;
                out.dram_writeback.push((ev.line.addr, ev.line.data));
            }
        }
    }
}

impl L2Bank for IdealL2 {
    fn handle_req(&mut self, cycle: Cycle, req: ReqMsg, out: &mut L2Outbox) -> Result<(), ReqMsg> {
        let line = req.line;
        match &req.payload {
            ReqPayload::Gets { .. } => {
                self.stats.gets += 1;
                if self.mshrs.contains(line) {
                    self.mshrs
                        .get_mut(line)
                        .expect("checked")
                        .readers
                        .push((req.src, req.id));
                } else if self.tags.probe(line).is_some() {
                    let l = self.tags.access(line).expect("checked");
                    l.state |= 1 << req.src.index();
                    out.to_l1.push(RespMsg {
                        dst: req.src,
                        line,
                        id: req.id,
                        payload: RespPayload::Data {
                            data: l.data.clone(),
                            ver: Timestamp(cycle.raw()),
                            exp: Timestamp(u64::MAX),
                            seq: 0,
                        },
                    });
                } else {
                    if self.mshrs.is_full() {
                        self.stats.gets -= 1;
                        return Err(req);
                    }
                    let entry = IdealL2Entry {
                        readers: vec![(req.src, req.id)],
                        ..IdealL2Entry::default()
                    };
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::Write { word, value, .. } => {
                self.stats.writes += 1;
                if self.mshrs.contains(line) {
                    self.mshrs
                        .get_mut(line)
                        .expect("checked")
                        .merged_writes
                        .push((*word, *value));
                } else if self.tags.probe(line).is_some() {
                    let l = self.tags.access(line).expect("checked");
                    l.data.set_word(*word, *value);
                    l.dirty = true;
                    self.magic_update_others(line, Some(req.src), *word, *value, out);
                } else {
                    if self.mshrs.is_full() {
                        return Err(req);
                    }
                    let mut entry = IdealL2Entry::default();
                    entry.merged_writes.push((*word, *value));
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::Atomic { word, op, .. } => {
                self.stats.atomics += 1;
                if self.mshrs.contains(line) {
                    self.mshrs
                        .get_mut(line)
                        .expect("checked")
                        .pending_atomics
                        .push_back(req);
                } else if self.tags.probe(line).is_some() {
                    let seq = {
                        self.seq += 1;
                        self.seq
                    };
                    let l = self.tags.access(line).expect("checked");
                    let old = l.data.word(*word);
                    if op.mutates(old) {
                        let new = op.apply(old);
                        l.data.set_word(*word, new);
                        l.dirty = true;
                        self.magic_update_others(line, Some(req.src), *word, new, out);
                    }
                    out.to_l1.push(RespMsg {
                        dst: req.src,
                        line,
                        id: req.id,
                        payload: RespPayload::AtomicResp {
                            value: old,
                            ver: Timestamp(cycle.raw()),
                            seq,
                        },
                    });
                } else {
                    if self.mshrs.is_full() {
                        return Err(req);
                    }
                    let mut entry = IdealL2Entry::default();
                    entry.pending_atomics.push_back(req);
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::InvAck
            | ReqPayload::FlushAck
            | ReqPayload::GetX { .. }
            | ReqPayload::WbData { .. } => {}
        }
        Ok(())
    }

    fn handle_dram(
        &mut self,
        cycle: Cycle,
        line: LineAddr,
        mut data: LineData,
        out: &mut L2Outbox,
    ) {
        let entry = self
            .mshrs
            .release(line)
            .expect("DRAM fill without an MSHR entry");
        let dirty = !entry.merged_writes.is_empty();
        for (word, value) in &entry.merged_writes {
            data.set_word(*word, *value);
        }
        for (dst, id) in &entry.readers {
            out.to_l1.push(RespMsg {
                dst: *dst,
                line,
                id: *id,
                payload: RespPayload::Data {
                    data: data.clone(),
                    ver: Timestamp(cycle.raw()),
                    exp: Timestamp(u64::MAX),
                    seq: 0,
                },
            });
        }
        self.fill_line(line, data, dirty, out);
        if let Some(l) = self.tags.probe_mut(line) {
            for (dst, _) in &entry.readers {
                l.state |= 1 << dst.index();
            }
        }
        // Replay queued atomics against the now-resident line.
        for req in entry.pending_atomics {
            self.handle_req(cycle, req, out)
                .expect("resident line cannot reject");
        }
    }

    fn tick(&mut self, _cycle: Cycle, _out: &mut L2Outbox) {}

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Purely reactive: requests and DRAM fills drive everything.
        None
    }

    fn pending(&self) -> usize {
        self.mshrs.len()
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::AtomicOp;
    use crate::testrig::Rig;
    use rcc_common::addr::{LineAddr, WordAddr};

    fn rig(cores: usize) -> Rig<IdealProtocol> {
        let cfg = GpuConfig::small();
        Rig::new(&IdealProtocol::new(&cfg), &cfg, cores)
    }

    fn word(line: u64, idx: usize) -> WordAddr {
        LineAddr(line).word(idx)
    }

    #[test]
    fn stores_complete_at_issue() {
        let mut r = rig(1);
        let w = word(1, 0);
        let c = r.store(0, w, 5);
        assert_eq!(c.kind, CompletionKind::StoreDone);
        assert_eq!(r.cycle.raw(), 0, "no time passed");
        assert_eq!(r.load_value(0, w), 5);
    }

    #[test]
    fn loads_fetch_then_hit() {
        let mut r = rig(1);
        let w = word(2, 3);
        r.seed_dram(LineAddr(2), 3, 9);
        assert_eq!(r.load_value(0, w), 9);
        let hits = r.l1s[0].stats().load_hits;
        assert_eq!(r.load_value(0, w), 9);
        assert_eq!(r.l1s[0].stats().load_hits, hits + 1);
    }

    #[test]
    fn magic_update_keeps_remote_copies_fresh_for_free() {
        let mut r = rig(2);
        let w = word(3, 0);
        r.load(0, w); // core 0 caches the line
        r.store(1, w, 7); // instant completion + magic update of core 0
        assert!(
            r.l1s[0].is_resident(LineAddr(3)),
            "the copy stays valid — it was refreshed in place"
        );
        let hits = r.l1s[0].stats().load_hits;
        assert_eq!(r.load_value(0, w), 7, "and it already holds the new value");
        assert_eq!(r.l1s[0].stats().load_hits, hits + 1, "zero-cost hit");
    }

    #[test]
    fn magic_update_poisons_in_flight_fetch() {
        // Core 0's fetch is in flight when core 1's store applies: the
        // merged load may complete with pre-write data (it orders before
        // the write), but that data must not be installed over the
        // update.
        let mut r = rig(2);
        let w = word(3, 0);
        let o = r.issue(
            0,
            Access {
                warp: WarpId(0),
                addr: w,
                kind: AccessKind::Load,
            },
        );
        assert_eq!(o, AccessOutcome::Pending);
        r.store(1, w, 7); // applies while core 0's GETS may be outstanding
        let mut budget = 10_000;
        while r.completions.iter().all(|(c, _)| *c != 0) {
            assert!(budget > 0, "merged load never completed");
            budget -= 1;
            r.step(1);
        }
        // Whatever the merged load saw, the next load must observe 7 —
        // either a fresh fetch or an updated copy, never a stale hit.
        // (The scoreboard is not applied: SC-IDEAL's instant stores do
        // not produce the (ts, seq) witness — `supports_sc()` is false.)
        assert_eq!(r.load_value(0, w), 7);
    }

    #[test]
    fn atomics_round_trip_for_the_value() {
        let mut r = rig(2);
        let w = word(4, 0);
        let c = r.atomic(0, w, AtomicOp::Add(2));
        assert_eq!(c.kind, CompletionKind::AtomicDone { old: 0 });
        let c = r.atomic(1, w, AtomicOp::Add(5));
        assert_eq!(c.kind, CompletionKind::AtomicDone { old: 2 });
        assert_eq!(r.load_value(0, w), 7);
    }

    #[test]
    fn own_store_updates_own_cached_copy() {
        let mut r = rig(1);
        let w = word(5, 0);
        r.load(0, w);
        r.store(0, w, 3);
        assert!(
            r.l1s[0].is_resident(LineAddr(5)),
            "copy updated, not dropped"
        );
        assert_eq!(r.load_value(0, w), 3);
    }
}
