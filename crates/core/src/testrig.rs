//! Shared test rig: wires N L1s of any protocol to a single L2 bank with
//! an instant network, a DRAM backing store, and explicit cycle stepping
//! (needed by the physically-timed TC protocols). Completions are fed to
//! a [`Scoreboard`] automatically.

use crate::msg::{
    Access, AccessKind, AccessOutcome, AtomicOp, Completion, CompletionKind, RespMsg,
};
use crate::protocol::{L1Cache, L1Outbox, L2Bank, L2Outbox, Protocol};
use crate::scoreboard::Scoreboard;
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::LineData;
use std::collections::{HashMap, VecDeque};

#[derive(Debug, Clone, Copy)]
enum PendingValue {
    Store(u64),
    Atomic(AtomicOp),
}

/// Protocol-generic single-bank rig.
pub(crate) struct Rig<P: Protocol> {
    pub l1s: Vec<P::L1>,
    staged: Vec<L1Outbox>,
    pub l2: P::L2,
    pub dram: HashMap<LineAddr, LineData>,
    pub pending_fetches: VecDeque<LineAddr>,
    pub auto_dram: bool,
    pub cycle: Cycle,
    pub sb: Scoreboard,
    pending_vals: HashMap<(usize, WarpId, WordAddr), VecDeque<PendingValue>>,
    pub completions: Vec<(usize, Completion)>,
}

impl<P: Protocol> Rig<P> {
    pub fn new(protocol: &P, cfg: &GpuConfig, cores: usize) -> Self {
        Rig {
            l1s: (0..cores)
                .map(|c| protocol.make_l1(CoreId(c), cfg))
                .collect(),
            staged: (0..cores).map(|_| L1Outbox::new()).collect(),
            l2: protocol.make_l2(PartitionId(0), cfg),
            dram: HashMap::new(),
            pending_fetches: VecDeque::new(),
            auto_dram: true,
            cycle: Cycle(0),
            sb: Scoreboard::new(),
            pending_vals: HashMap::new(),
            completions: Vec::new(),
        }
    }

    /// Seeds DRAM and registers the value as a position-zero write.
    pub fn seed_dram(&mut self, line: LineAddr, word_idx: usize, value: u64) {
        self.dram
            .entry(line)
            .or_insert_with(LineData::zeroed)
            .set_word(word_idx, value);
        self.sb.record(
            CoreId(99),
            &Completion {
                warp: WarpId(0),
                addr: line.word(word_idx),
                kind: CompletionKind::StoreDone,
                ts: Timestamp::ZERO,
                seq: 0,
            },
            Some(value),
        );
    }

    fn record_completion(&mut self, core: usize, c: Completion) {
        let key = (core, c.warp, c.addr);
        let mut pop = || {
            self.pending_vals
                .get_mut(&key)
                .and_then(VecDeque::pop_front)
        };
        let store_value = match c.kind {
            CompletionKind::LoadDone { .. } => None,
            CompletionKind::StoreDone => match pop() {
                Some(PendingValue::Store(v)) => Some(v),
                other => panic!("store completion without pending value: {other:?}"),
            },
            CompletionKind::AtomicDone { old } => match pop() {
                Some(PendingValue::Atomic(op)) => Some(op.apply(old)),
                other => panic!("atomic completion without pending op: {other:?}"),
            },
        };
        self.sb.record(CoreId(core), &c, store_value);
        self.completions.push((core, c));
    }

    /// Moves messages until quiescent; does not advance time.
    pub fn pump(&mut self) {
        loop {
            let mut moved = false;
            for core in 0..self.l1s.len() {
                let out = std::mem::take(&mut self.staged[core]);
                for req in out.to_l2 {
                    moved = true;
                    let mut l2out = L2Outbox::new();
                    self.l2
                        .handle_req(self.cycle, req, &mut l2out)
                        .expect("rig never fills L2 MSHRs");
                    self.route_l2out(l2out);
                }
                for c in out.completions {
                    moved = true;
                    self.record_completion(core, c);
                }
            }
            if self.auto_dram {
                while let Some(line) = self.pending_fetches.pop_front() {
                    moved = true;
                    self.fill_one(line);
                }
            }
            if !moved {
                break;
            }
        }
    }

    /// Advances time by `n` cycles, ticking all controllers and pumping.
    pub fn step(&mut self, n: u64) {
        for _ in 0..n {
            self.cycle += 1;
            for core in 0..self.l1s.len() {
                let mut out = L1Outbox::new();
                self.l1s[core].tick(self.cycle, &mut out);
                self.staged[core].append(&mut out);
            }
            let mut l2out = L2Outbox::new();
            self.l2.tick(self.cycle, &mut l2out);
            self.route_l2out(l2out);
            self.pump();
        }
    }

    fn route_l2out(&mut self, out: L2Outbox) {
        for line in out.dram_fetch {
            self.pending_fetches.push_back(line);
        }
        for (line, data) in out.dram_writeback {
            self.dram.insert(line, data);
        }
        for resp in out.to_l1 {
            self.deliver_resp(resp);
        }
        for (core, line, action) in out.magic_inv {
            self.l1s[core.index()].magic(self.cycle, line, action);
        }
    }

    pub fn deliver_resp(&mut self, resp: RespMsg) {
        let core = resp.dst.index();
        let mut out = L1Outbox::new();
        self.l1s[core].handle_resp(self.cycle, resp, &mut out);
        self.staged[core].append(&mut out);
    }

    pub fn fill_one(&mut self, line: LineAddr) {
        let data = self.dram.get(&line).cloned().unwrap_or_default();
        let mut l2out = L2Outbox::new();
        self.l2.handle_dram(self.cycle, line, data, &mut l2out);
        self.route_l2out(l2out);
    }

    pub fn issue(&mut self, core: usize, access: Access) -> AccessOutcome {
        let key = (core, access.warp, access.addr);
        match access.kind {
            AccessKind::Store { value } => self
                .pending_vals
                .entry(key)
                .or_default()
                .push_back(PendingValue::Store(value)),
            AccessKind::Atomic { op } => self
                .pending_vals
                .entry(key)
                .or_default()
                .push_back(PendingValue::Atomic(op)),
            AccessKind::Load => {}
        }
        let mut out = L1Outbox::new();
        let outcome = self.l1s[core].access(self.cycle, access, &mut out);
        self.staged[core].append(&mut out);
        match &outcome {
            AccessOutcome::Done(c) => {
                // Completes at issue (hits; ideal stores) — route through
                // the same bookkeeping as asynchronous completions.
                self.record_completion(core, *c);
            }
            AccessOutcome::Reject(_) => {
                if !matches!(access.kind, AccessKind::Load) {
                    self.pending_vals.get_mut(&key).and_then(VecDeque::pop_back);
                }
            }
            AccessOutcome::Pending => {}
        }
        outcome
    }

    /// Issues and runs until the operation completes (stepping time).
    ///
    /// # Panics
    ///
    /// Panics if the operation does not complete within 100k cycles.
    pub fn op(&mut self, core: usize, warp: usize, addr: WordAddr, kind: AccessKind) -> Completion {
        let before = self.completions.len();
        let access = Access {
            warp: WarpId(warp),
            addr,
            kind,
        };
        match self.issue(core, access) {
            AccessOutcome::Done(c) => {
                // Flush any side-band messages (e.g. an ideal store's
                // fire-and-forget write-through) before returning.
                self.pump();
                c
            }
            AccessOutcome::Pending => {
                self.pump();
                let mut budget = 100_000u64;
                while self.completions.len() == before {
                    assert!(budget > 0, "operation never completed: {access:?}");
                    budget -= 1;
                    self.step(1);
                }
                let (c_core, c) = self.completions[before];
                assert_eq!(c_core, core);
                assert_eq!(c.addr, addr);
                c
            }
            AccessOutcome::Reject(r) => panic!("unexpected reject: {r:?}"),
        }
    }

    pub fn load(&mut self, core: usize, addr: WordAddr) -> Completion {
        self.op(core, 0, addr, AccessKind::Load)
    }

    pub fn store(&mut self, core: usize, addr: WordAddr, value: u64) -> Completion {
        self.op(core, 0, addr, AccessKind::Store { value })
    }

    pub fn atomic(&mut self, core: usize, addr: WordAddr, op: AtomicOp) -> Completion {
        self.op(core, 0, addr, AccessKind::Atomic { op })
    }

    pub fn load_value(&mut self, core: usize, addr: WordAddr) -> u64 {
        match self.load(core, addr).kind {
            CompletionKind::LoadDone { value } => value,
            other => panic!("expected load completion, got {other:?}"),
        }
    }
}
