#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Coherence protocols: **RCC** (the paper's contribution) and the three
//! baselines it is evaluated against (MESI, TC-Strong, TC-Weak), plus the
//! SC-IDEAL limit study used in Fig. 1d.
//!
//! All protocols are *message-level finite state machines* behind the
//! [`protocol::L1Cache`] / [`protocol::L2Bank`] traits: they react to core
//! accesses, network messages and DRAM fills by mutating cache state and
//! emitting messages into outboxes. All *timing* (network latency,
//! bandwidth, queueing, DRAM service) lives in `rcc-sim`, which makes the
//! FSMs directly unit-testable — the walkthrough of the paper's Fig. 3 is
//! literally a test in [`rcc`].
//!
//! | protocol | time base | SC? | stall-free store permissions? |
//! |----------|-----------|-----|-------------------------------|
//! | [`mesi`] | none (invalidations) | yes | no (invalidate sharers) |
//! | [`tc`] TC-Strong | physical | yes | no (wait for lease expiry) |
//! | [`tc`] TC-Weak | physical | no | yes (but fences stall) |
//! | [`rcc`] | **logical** | **yes** | **yes** |
//!
//! # Example
//!
//! ```
//! use rcc_common::GpuConfig;
//! use rcc_core::{rcc::RccProtocol, protocol::Protocol};
//!
//! let cfg = GpuConfig::small();
//! let protocol = RccProtocol::sequential(&cfg);
//! let l1 = protocol.make_l1(rcc_common::CoreId(0), &cfg);
//! # let _ = l1;
//! ```

pub mod census;
pub mod ideal;
pub mod kind;
pub mod mesi;
pub mod msg;
pub mod protocol;
pub mod rcc;
pub mod scoreboard;
pub mod tc;
#[cfg(test)]
pub(crate) mod testrig;

pub use kind::ProtocolKind;
pub use msg::{
    Access, AccessKind, AccessOutcome, AtomicOp, Completion, CompletionKind, RejectReason, ReqId,
    ReqMsg, ReqPayload, RespMsg, RespPayload,
};
pub use protocol::{L1Cache, L1Outbox, L1Stats, L2Bank, L2Outbox, L2Stats, Protocol};
