//! Protocol state/transition census — the data behind Table V of the
//! paper.
//!
//! Coherence protocols are notoriously hard to verify, and verification
//! effort scales with the number of states and transitions; Table V is
//! the paper's complexity argument for RCC. The counts follow the paper's
//! convention (stable + transient states; distinct
//! state × event → action rows in the transition tables). For RCC the
//! stable/transient split is cross-checked against this crate's actual
//! state enumerations by tests.

use crate::kind::ProtocolKind;
use std::fmt;

/// State/transition counts for one protocol (one row group of Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProtocolCensus {
    /// Protocol.
    pub kind: ProtocolKind,
    /// Stable L1 states.
    pub l1_stable: usize,
    /// Transient L1 states.
    pub l1_transient: usize,
    /// L1 transitions.
    pub l1_transitions: usize,
    /// Stable L2 states.
    pub l2_stable: usize,
    /// Transient L2 states.
    pub l2_transient: usize,
    /// L2 transitions.
    pub l2_transitions: usize,
}

impl ProtocolCensus {
    /// Total L1 states (stable + transient).
    pub fn l1_states(&self) -> usize {
        self.l1_stable + self.l1_transient
    }

    /// Total L2 states (stable + transient).
    pub fn l2_states(&self) -> usize {
        self.l2_stable + self.l2_transient
    }

    /// Total transitions across both controllers.
    pub fn total_transitions(&self) -> usize {
        self.l1_transitions + self.l2_transitions
    }

    /// The census for a protocol, per Table V. SC-IDEAL is not a real
    /// protocol and has no census (`None`); RCC-SC and RCC-WO share
    /// hardware and therefore a census.
    pub fn for_kind(kind: ProtocolKind) -> Option<ProtocolCensus> {
        let (l1_stable, l1_transient, l1_tr, l2_stable, l2_transient, l2_tr) = match kind {
            ProtocolKind::Mesi | ProtocolKind::MesiWb => (5, 11, 81, 4, 11, 50),
            ProtocolKind::TcStrong => (2, 3, 27, 4, 4, 23),
            ProtocolKind::TcWeak => (2, 3, 42, 4, 4, 34),
            ProtocolKind::RccSc | ProtocolKind::RccWo => (2, 3, 33, 2, 2, 14),
            ProtocolKind::IdealSc => return None,
        };
        Some(ProtocolCensus {
            kind,
            l1_stable,
            l1_transient,
            l1_transitions: l1_tr,
            l2_stable,
            l2_transient,
            l2_transitions: l2_tr,
        })
    }

    /// The four protocols of Table V, in column order.
    pub fn table_v() -> [ProtocolCensus; 4] {
        [
            ProtocolCensus::for_kind(ProtocolKind::Mesi).expect("in table"),
            ProtocolCensus::for_kind(ProtocolKind::TcStrong).expect("in table"),
            ProtocolCensus::for_kind(ProtocolKind::TcWeak).expect("in table"),
            ProtocolCensus::for_kind(ProtocolKind::RccSc).expect("in table"),
        ]
    }
}

impl fmt::Display for ProtocolCensus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: L1 {} ({}+{}) states / {} transitions, L2 {} ({}+{}) states / {} transitions",
            self.kind,
            self.l1_states(),
            self.l1_stable,
            self.l1_transient,
            self.l1_transitions,
            self.l2_states(),
            self.l2_stable,
            self.l2_transient,
            self.l2_transitions,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_v_row_values() {
        // Table V verbatim.
        let mesi = ProtocolCensus::for_kind(ProtocolKind::Mesi).unwrap();
        assert_eq!((mesi.l1_states(), mesi.l1_transitions), (16, 81));
        assert_eq!((mesi.l2_states(), mesi.l2_transitions), (15, 50));

        let tcs = ProtocolCensus::for_kind(ProtocolKind::TcStrong).unwrap();
        assert_eq!((tcs.l1_states(), tcs.l1_transitions), (5, 27));
        assert_eq!((tcs.l2_states(), tcs.l2_transitions), (8, 23));

        let tcw = ProtocolCensus::for_kind(ProtocolKind::TcWeak).unwrap();
        assert_eq!((tcw.l1_states(), tcw.l1_transitions), (5, 42));
        assert_eq!((tcw.l2_states(), tcw.l2_transitions), (8, 34));

        let rcc = ProtocolCensus::for_kind(ProtocolKind::RccSc).unwrap();
        assert_eq!((rcc.l1_states(), rcc.l1_transitions), (5, 33));
        assert_eq!((rcc.l2_states(), rcc.l2_transitions), (4, 14));
    }

    #[test]
    fn rcc_has_the_fewest_l2_states_and_transitions() {
        let rcc = ProtocolCensus::for_kind(ProtocolKind::RccSc).unwrap();
        for other in [
            ProtocolKind::Mesi,
            ProtocolKind::TcStrong,
            ProtocolKind::TcWeak,
        ] {
            let o = ProtocolCensus::for_kind(other).unwrap();
            assert!(rcc.l2_states() < o.l2_states());
            assert!(rcc.l2_transitions < o.l2_transitions);
            assert!(rcc.total_transitions() < o.total_transitions());
        }
    }

    #[test]
    fn rcc_census_matches_the_implementation() {
        // Stable: V, I. Transient: IV, II, VI (rcc::L1State also exposes
        // VExpired, which Fig. 5 does not count as a separate state — an
        // expired V block behaves exactly like I).
        use crate::rcc::l1_state_inventory;
        let (stable, transient) = l1_state_inventory();
        let census = ProtocolCensus::for_kind(ProtocolKind::RccSc).unwrap();
        assert_eq!(stable, census.l1_stable);
        assert_eq!(transient, census.l1_transient);
    }

    #[test]
    fn ideal_has_no_census() {
        assert!(ProtocolCensus::for_kind(ProtocolKind::IdealSc).is_none());
        assert_eq!(
            ProtocolCensus::for_kind(ProtocolKind::RccWo),
            ProtocolCensus::for_kind(ProtocolKind::RccSc).map(|c| ProtocolCensus {
                kind: ProtocolKind::RccWo,
                ..c
            })
        );
    }

    #[test]
    fn display_is_informative() {
        let s = ProtocolCensus::for_kind(ProtocolKind::RccSc)
            .unwrap()
            .to_string();
        assert!(s.contains("RCC-SC"));
        assert!(s.contains("33"));
        assert!(s.contains("14"));
    }
}
