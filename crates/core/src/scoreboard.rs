//! Sequential-consistency scoreboard.
//!
//! Every protocol in this crate assigns each memory operation a position
//! in a global order: a [`Completion`] carries `ts` (logical time for
//! RCC, physical L2-service time for MESI/TC-Strong) and `seq` (the L2
//! partition's write serialization counter, breaking ties between writes
//! that share a logical version — footnote 2 of the paper). The
//! scoreboard records every completed operation and verifies, post hoc,
//! the invariant that makes these positions a witness of SC:
//!
//! > a load with position `t` observes the value of the write to the same
//! > word with the greatest `(ts, seq)` among writes with `ts ≤ t`
//! > (or the initial value 0 if there is none), and per-warp positions
//! > never decrease (program order is respected).
//!
//! Together with per-core monotonicity of `ts` (which the protocols
//! guarantee by construction), this implies the execution is explainable
//! by a single interleaving — the definition of SC. TC-Weak violates the
//! invariant by design (it gives up write atomicity); tests assert that
//! the scoreboard *does* catch it.

use crate::msg::{Completion, CompletionKind};
use rcc_common::addr::WordAddr;
use rcc_common::ids::{CoreId, WarpId};
use rcc_common::time::Timestamp;
use rcc_common::FxHashMap;
use std::fmt;

/// A recorded write: global position and the value it left in memory.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct WriteRecord {
    ts: Timestamp,
    seq: u64,
    value: u64,
}

/// A recorded read: global position and the value observed.
#[derive(Debug, Clone, Copy)]
struct ReadRecord {
    core: CoreId,
    warp: WarpId,
    ts: Timestamp,
    /// The read observes every write strictly before `(ts, seq)`.
    /// RCC loads carry `u64::MAX` (logical position `t` observes every
    /// write with `ver ≤ t`); MESI/TC loads carry the bank service or
    /// fill sequence; an atomic's read half carries its own write's slot.
    seq: u64,
    value: u64,
}

/// An SC violation found by [`Scoreboard::check`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScViolation {
    /// Core that performed the offending read.
    pub core: CoreId,
    /// Warp that performed it.
    pub warp: WarpId,
    /// Word read.
    pub addr: WordAddr,
    /// Position of the read.
    pub ts: Timestamp,
    /// Value the read observed.
    pub observed: u64,
    /// Value SC requires at that position.
    pub expected: u64,
}

impl fmt::Display for ScViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}/{} read {} at {}: observed {:#x}, SC requires {:#x}",
            self.core, self.warp, self.addr, self.ts, self.observed, self.expected
        )
    }
}

/// Records completed memory operations and checks the SC witness
/// invariant.
#[derive(Debug, Clone, Default)]
pub struct Scoreboard {
    writes: FxHashMap<WordAddr, Vec<WriteRecord>>,
    reads: FxHashMap<WordAddr, Vec<ReadRecord>>,
    /// Last position seen per (core, warp), for program-order checking.
    warp_pos: FxHashMap<(CoreId, WarpId), (Timestamp, u64)>,
    program_order_violations: Vec<(CoreId, WarpId)>,
    /// Detail for each program-order violation: (addr, previous ts, ts).
    po_detail: Vec<(WordAddr, Timestamp, Timestamp)>,
    ops: u64,
}

impl Scoreboard {
    /// Creates an empty scoreboard.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of operations recorded.
    pub fn ops(&self) -> u64 {
        self.ops
    }

    /// Records a completion. `store_value` must be provided for stores
    /// (the value written) and for atomics (the *post-operation* value,
    /// i.e. `op.apply(old)`).
    ///
    /// # Panics
    ///
    /// Panics if a store or mutating atomic is recorded without its value.
    pub fn record(&mut self, core: CoreId, completion: &Completion, store_value: Option<u64>) {
        self.ops += 1;
        let addr = completion.addr;
        let ts = completion.ts;
        match completion.kind {
            CompletionKind::LoadDone { value } => {
                self.reads.entry(addr).or_default().push(ReadRecord {
                    core,
                    warp: completion.warp,
                    ts,
                    seq: completion.seq,
                    value,
                });
                self.note_pos(core, completion.warp, addr, ts, 0);
            }
            CompletionKind::StoreDone => {
                let value = store_value.expect("store completions need their value");
                self.writes.entry(addr).or_default().push(WriteRecord {
                    ts,
                    seq: completion.seq,
                    value,
                });
                self.note_pos(core, completion.warp, addr, ts, completion.seq);
            }
            CompletionKind::AtomicDone { old } => {
                let new = store_value.expect("atomic completions need their new value");
                // The read half observes everything strictly before the
                // atomic's own slot.
                self.reads.entry(addr).or_default().push(ReadRecord {
                    core,
                    warp: completion.warp,
                    ts,
                    seq: completion.seq,
                    value: old,
                });
                if new != old {
                    self.writes.entry(addr).or_default().push(WriteRecord {
                        ts,
                        seq: completion.seq,
                        value: new,
                    });
                }
                self.note_pos(core, completion.warp, addr, ts, completion.seq);
            }
        }
    }

    fn note_pos(&mut self, core: CoreId, warp: WarpId, addr: WordAddr, ts: Timestamp, _seq: u64) {
        let key = (core, warp);
        if let Some(&(prev, _)) = self.warp_pos.get(&key) {
            if ts < prev {
                self.program_order_violations.push(key);
                self.po_detail.push((addr, prev, ts));
            }
        }
        let entry = self.warp_pos.entry(key).or_insert((ts, 0));
        *entry = (entry.0.join(ts), 0);
    }

    /// Details of program-order violations: (addr, previous ts, ts).
    pub fn program_order_detail(&self) -> &[(WordAddr, Timestamp, Timestamp)] {
        &self.po_detail
    }

    /// Dumps the full (ts, seq, value) write history of one word and all
    /// reads of it — a debugging aid for SC violations.
    pub fn dump_word(&self, addr: WordAddr) {
        let mut ws = self.writes.get(&addr).cloned().unwrap_or_default();
        ws.sort_by_key(|w| (w.ts, w.seq));
        eprintln!("writes to {addr}:");
        for w in ws {
            eprintln!("  ts={} seq={} value={:#x}", w.ts, w.seq, w.value);
        }
        if let Some(rs) = self.reads.get(&addr) {
            for r in rs {
                eprintln!(
                    "  read by {}/{} ts={} seq={} value={:#x}",
                    r.core, r.warp, r.ts, r.seq, r.value
                );
            }
        }
    }

    /// Verifies the SC witness invariant over everything recorded.
    ///
    /// Returns all violations (empty = the execution is SC-explainable).
    pub fn check(&self) -> Vec<ScViolation> {
        let mut violations = Vec::new();
        for (&addr, reads) in &self.reads {
            let mut writes = self.writes.get(&addr).cloned().unwrap_or_default();
            writes.sort_by_key(|w| (w.ts, w.seq));
            for read in reads {
                // Latest write at or before the read's position.
                // Strictly before the read's slot: plain loads carry
                // seq = u64::MAX so every write with ts ≤ read.ts counts,
                // while an atomic's read half excludes its own write.
                let expected = writes
                    .iter()
                    .take_while(|w| (w.ts, w.seq) < (read.ts, read.seq))
                    .last()
                    .map_or(0, |w| w.value);
                if read.value != expected {
                    violations.push(ScViolation {
                        core: read.core,
                        warp: read.warp,
                        addr,
                        ts: read.ts,
                        observed: read.value,
                        expected,
                    });
                }
            }
        }
        violations.sort_by_key(|v| (v.addr, v.ts));
        violations
    }

    /// Program-order violations: warps whose completion positions went
    /// backwards (must be empty for every protocol, including TC-Weak).
    pub fn program_order_violations(&self) -> &[(CoreId, WarpId)] {
        &self.program_order_violations
    }

    /// Asserts the execution is SC.
    ///
    /// # Panics
    ///
    /// Panics with a description of the first violations if the recorded
    /// execution is not explainable by a sequentially consistent order.
    pub fn assert_sc(&self) {
        let violations = self.check();
        assert!(
            violations.is_empty(),
            "{} SC violations, first: {}",
            violations.len(),
            violations[0]
        );
        assert!(
            self.program_order_violations.is_empty(),
            "program order violated for {:?}",
            self.program_order_violations
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::msg::Completion;

    fn load(warp: usize, addr: u64, value: u64, ts: u64) -> Completion {
        Completion {
            warp: WarpId(warp),
            addr: WordAddr(addr),
            kind: CompletionKind::LoadDone { value },
            ts: Timestamp(ts),
            // Logical-time style: sees every write with ver ≤ ts.
            seq: u64::MAX,
        }
    }

    fn store(warp: usize, addr: u64, ts: u64, seq: u64) -> Completion {
        Completion {
            warp: WarpId(warp),
            addr: WordAddr(addr),
            kind: CompletionKind::StoreDone,
            ts: Timestamp(ts),
            seq,
        }
    }

    #[test]
    fn initial_value_is_zero() {
        let mut sb = Scoreboard::new();
        sb.record(CoreId(0), &load(0, 1, 0, 5), None);
        sb.assert_sc();
        assert_eq!(sb.ops(), 1);
    }

    #[test]
    fn load_sees_latest_earlier_write() {
        let mut sb = Scoreboard::new();
        sb.record(CoreId(0), &store(0, 1, 10, 1), Some(7));
        sb.record(CoreId(0), &store(0, 1, 20, 2), Some(9));
        sb.record(CoreId(1), &load(0, 1, 7, 15), None); // between the writes
        sb.record(CoreId(1), &load(0, 1, 9, 25), None); // after both
        sb.assert_sc();
    }

    #[test]
    fn stale_read_is_flagged() {
        let mut sb = Scoreboard::new();
        sb.record(CoreId(0), &store(0, 1, 10, 1), Some(7));
        sb.record(CoreId(1), &load(0, 1, 0, 15), None); // should see 7
        let v = sb.check();
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].observed, 0);
        assert_eq!(v[0].expected, 7);
    }

    #[test]
    fn future_read_is_flagged() {
        let mut sb = Scoreboard::new();
        sb.record(CoreId(0), &store(0, 1, 20, 1), Some(7));
        sb.record(CoreId(1), &load(0, 1, 7, 10), None); // write is in its future
        assert_eq!(sb.check().len(), 1);
    }

    #[test]
    fn same_version_writes_tiebreak_by_seq() {
        let mut sb = Scoreboard::new();
        // Two unobserved stores sharing a logical version (footnote 2):
        // physical L2 order (seq) decides.
        sb.record(CoreId(0), &store(0, 1, 10, 1), Some(7));
        sb.record(CoreId(1), &store(0, 1, 10, 2), Some(8));
        sb.record(CoreId(2), &load(0, 1, 8, 10), None);
        sb.assert_sc();
        let mut sb2 = Scoreboard::new();
        sb2.record(CoreId(0), &store(0, 1, 10, 1), Some(7));
        sb2.record(CoreId(1), &store(0, 1, 10, 2), Some(8));
        sb2.record(CoreId(2), &load(0, 1, 7, 10), None); // lost the tiebreak
        assert_eq!(sb2.check().len(), 1);
    }

    #[test]
    fn atomic_reads_strictly_before_its_own_slot() {
        let mut sb = Scoreboard::new();
        sb.record(CoreId(0), &store(0, 1, 10, 1), Some(7));
        // Fetch-and-add at (ts 10, seq 2): old must be 7, new 8.
        let at = Completion {
            warp: WarpId(0),
            addr: WordAddr(1),
            kind: CompletionKind::AtomicDone { old: 7 },
            ts: Timestamp(10),
            seq: 2,
        };
        sb.record(CoreId(1), &at, Some(8));
        sb.record(CoreId(2), &load(0, 1, 8, 11), None);
        sb.assert_sc();
    }

    #[test]
    fn non_mutating_atomic_is_read_only() {
        let mut sb = Scoreboard::new();
        sb.record(CoreId(0), &store(0, 1, 10, 1), Some(7));
        let failed_cas = Completion {
            warp: WarpId(0),
            addr: WordAddr(1),
            kind: CompletionKind::AtomicDone { old: 7 },
            ts: Timestamp(10),
            seq: 2,
        };
        sb.record(CoreId(1), &failed_cas, Some(7)); // apply() returned old
        sb.record(CoreId(2), &load(0, 1, 7, 12), None); // still 7
        sb.assert_sc();
    }

    #[test]
    fn program_order_regression_detected() {
        let mut sb = Scoreboard::new();
        sb.record(CoreId(0), &load(3, 1, 0, 20), None);
        sb.record(CoreId(0), &load(3, 1, 0, 10), None); // went backwards
        assert_eq!(sb.program_order_violations().len(), 1);
    }

    #[test]
    fn different_words_are_independent() {
        let mut sb = Scoreboard::new();
        sb.record(CoreId(0), &store(0, 1, 10, 1), Some(7));
        sb.record(CoreId(1), &load(0, 2, 0, 50), None);
        sb.assert_sc();
    }
}

#[cfg(test)]
mod prop_tests {
    use super::*;
    use crate::msg::{Completion, CompletionKind};
    use proptest::prelude::*;

    proptest! {
        /// No false positives: an execution generated BY construction
        /// from a legal sequential interleaving always passes the check.
        #[test]
        fn legal_interleavings_always_pass(
            ops in prop::collection::vec((0u64..4, 0u64..3, any::<bool>(), 1u64..100), 1..120),
        ) {
            let mut sb = Scoreboard::new();
            // Replay a sequential memory: position = index in sequence.
            let mut memory = std::collections::HashMap::new();
            let mut warp_next = std::collections::HashMap::new();
            for (i, (addr, warp, is_store, value)) in ops.into_iter().enumerate() {
                let addr = WordAddr(addr);
                let ts = Timestamp(i as u64 + 1);
                // Keep per-warp positions monotone by construction.
                let w = WarpId(warp as usize);
                let _ = warp_next.insert(w, ts);
                if is_store {
                    memory.insert(addr, value);
                    sb.record(
                        CoreId(0),
                        &Completion {
                            warp: w,
                            addr,
                            kind: CompletionKind::StoreDone,
                            ts,
                            seq: i as u64 + 1,
                        },
                        Some(value),
                    );
                } else {
                    let observed = *memory.get(&addr).unwrap_or(&0);
                    sb.record(
                        CoreId(0),
                        &Completion {
                            warp: w,
                            addr,
                            kind: CompletionKind::LoadDone { value: observed },
                            ts,
                            seq: u64::MAX,
                        },
                        None,
                    );
                }
            }
            prop_assert!(sb.check().is_empty());
            prop_assert!(sb.program_order_violations().is_empty());
        }

        /// Guaranteed detection: corrupting exactly one load's value in a
        /// legal history is always caught.
        #[test]
        fn corrupted_value_always_caught(
            flip in 0usize..10,
            values in prop::collection::vec(1u64..1000, 11),
        ) {
            let mut sb = Scoreboard::new();
            let addr = WordAddr(0);
            for (i, v) in values.iter().enumerate() {
                sb.record(
                    CoreId(0),
                    &Completion {
                        warp: WarpId(0),
                        addr,
                        kind: CompletionKind::StoreDone,
                        ts: Timestamp(2 * i as u64 + 1),
                        seq: i as u64 + 1,
                    },
                    Some(*v),
                );
                let observed = if i == flip { v.wrapping_add(1) } else { *v };
                sb.record(
                    CoreId(1),
                    &Completion {
                        warp: WarpId(0),
                        addr,
                        kind: CompletionKind::LoadDone { value: observed },
                        ts: Timestamp(2 * i as u64 + 2),
                        seq: u64::MAX,
                    },
                    None,
                );
            }
            prop_assert_eq!(sb.check().len(), 1);
        }
    }
}
