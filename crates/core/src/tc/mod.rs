//! Temporal Coherence baselines: **TC-Strong** and **TC-Weak** (Singh et
//! al., "Cache coherence for GPU architectures", HPCA 2013).
//!
//! Both protocols lease L1 copies for a fixed number of *physical* cycles
//! against a globally synchronized on-chip clock; copies self-invalidate
//! when the clock passes their expiration, so no invalidation traffic is
//! needed. They differ in how stores interact with outstanding leases:
//!
//! * **TC-Strong** stalls each store *at the L2* until every lease for the
//!   line has expired, then applies it and acknowledges. Write atomicity
//!   is preserved, so TCS can support SC — at the price of exactly the
//!   long store latencies the paper's Fig. 1 attributes SC stalls to.
//! * **TC-Weak** applies stores immediately and returns a *global write
//!   completion time* (GWCT = when the last stale copy expires). Fences
//!   stall the warp until its accumulated GWCT has passed. Write atomicity
//!   is relaxed; SC cannot be supported (Table I).
//!
//! ## L2 evictions
//!
//! Singh et al. park evicted-but-unexpired lines in MSHR entries until
//! their leases run out. Like RCC's `mnow`, we instead track the maximum
//! evicted expiration per partition and treat refetched lines as leased
//! until that time — a conservative simplification with the same safety
//! property (no store may apply while any stale copy can still be read).

mod l1;
mod l2;

pub use l1::TcL1;
pub use l2::TcL2;

use crate::kind::ProtocolKind;
use crate::protocol::Protocol;
use rcc_common::config::{GpuConfig, TcParams};
use rcc_common::ids::{CoreId, PartitionId};

/// Store handling discipline: the one difference between TCS and TCW.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StoreDiscipline {
    /// Stall at the L2 until all leases expire (TC-Strong).
    StallUntilExpiry,
    /// Apply eagerly and return the GWCT (TC-Weak).
    EagerWithGwct,
}

/// Factory for TC-Strong / TC-Weak controllers.
#[derive(Debug, Clone)]
pub struct TcProtocol {
    params: TcParams,
    discipline: StoreDiscipline,
}

impl TcProtocol {
    /// TC-Strong (SC-capable baseline).
    pub fn strong(cfg: &GpuConfig) -> Self {
        TcProtocol {
            params: cfg.tc.clone(),
            discipline: StoreDiscipline::StallUntilExpiry,
        }
    }

    /// TC-Weak (best prior non-SC GPU proposal).
    pub fn weak(cfg: &GpuConfig) -> Self {
        TcProtocol {
            params: cfg.tc.clone(),
            discipline: StoreDiscipline::EagerWithGwct,
        }
    }

    /// The store discipline of this configuration.
    pub fn discipline(&self) -> StoreDiscipline {
        self.discipline
    }
}

impl Protocol for TcProtocol {
    type L1 = TcL1;
    type L2 = TcL2;

    fn kind(&self) -> ProtocolKind {
        match self.discipline {
            StoreDiscipline::StallUntilExpiry => ProtocolKind::TcStrong,
            StoreDiscipline::EagerWithGwct => ProtocolKind::TcWeak,
        }
    }

    fn make_l1(&self, core: CoreId, cfg: &GpuConfig) -> TcL1 {
        TcL1::new(core, cfg)
    }

    fn make_l2(&self, partition: PartitionId, cfg: &GpuConfig) -> TcL2 {
        TcL2::new(partition, cfg, self.params.clone(), self.discipline)
    }
}

#[cfg(test)]
mod conformance;
#[cfg(test)]
mod tests;
