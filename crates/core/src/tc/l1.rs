//! TC L1 controller: physically-timed leases, self-invalidation, no
//! invalidation traffic. Shared by TC-Strong and TC-Weak — the store
//! discipline lives entirely in the L2.

use crate::msg::{
    Access, AccessKind, AccessOutcome, Completion, CompletionKind, RejectReason, ReqId, ReqMsg,
    ReqPayload, RespMsg, RespPayload,
};
use crate::protocol::{L1Cache, L1Outbox, L1Stats};
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::{MshrFile, MshrRejection, TagArray};
use std::collections::VecDeque;

/// Per-line metadata: physical lease expiration (exclusive — the copy is
/// readable while `cycle < exp`) and the bank service sequence of the
/// fill, used as the sub-cycle position of hits.
#[derive(Debug, Clone, Copy)]
struct TcMeta {
    exp: Timestamp,
    fill_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct PendingWrite {
    id: ReqId,
    warp: WarpId,
    addr: WordAddr,
    atomic: bool,
}

#[derive(Debug, Clone, Default)]
struct TcEntry {
    /// Merged loads with their issue cycles: a merged load's SC position
    /// is `max(serve time, issue time)` — within the granted lease, so
    /// still before any write the data could have missed.
    waiting_loads: Vec<(WarpId, WordAddr, u64)>,
    pending_writes: VecDeque<PendingWrite>,
    gets_outstanding: bool,
}

/// The TC L1 controller for one core.
#[derive(Debug, Clone)]
pub struct TcL1 {
    core: CoreId,
    tags: TagArray<TcMeta>,
    mshrs: MshrFile<TcEntry>,
    next_req: u64,
    stats: L1Stats,
}

impl TcL1 {
    /// Creates the controller for `core`.
    pub fn new(core: CoreId, cfg: &GpuConfig) -> Self {
        TcL1 {
            core,
            tags: TagArray::new(cfg.l1.num_sets(), cfg.l1.ways),
            mshrs: MshrFile::new(cfg.l1.mshrs, cfg.l1.mshr_merge),
            next_req: 1,
            stats: L1Stats::default(),
        }
    }

    /// Physical lease expiration of a resident line (for tests).
    pub fn lease_exp(&self, line: LineAddr) -> Option<Timestamp> {
        self.tags.probe(line).map(|l| l.state.exp)
    }

    fn is_readable(&self, cycle: Cycle, line: LineAddr) -> bool {
        self.tags
            .probe(line)
            .is_some_and(|l| Timestamp(cycle.raw()) < l.state.exp)
    }

    fn hit_completion(&mut self, cycle: Cycle, warp: WarpId, addr: WordAddr) -> Completion {
        let line = self
            .tags
            .access(addr.line())
            .expect("hit path requires resident line");
        Completion {
            warp,
            addr,
            kind: CompletionKind::LoadDone {
                value: line.data.word_at(addr),
            },
            ts: Timestamp(cycle.raw()),
            // Hits are positioned at their fill's bank slot within the
            // cycle: before any same-cycle write they cannot have seen.
            seq: line.state.fill_seq,
        }
    }

    fn send_gets(&mut self, cycle: Cycle, line: LineAddr, out: &mut L1Outbox) {
        let entry = self.mshrs.get_mut(line).expect("entry exists");
        if entry.gets_outstanding {
            return;
        }
        entry.gets_outstanding = true;
        out.to_l2.push(ReqMsg {
            src: self.core,
            line,
            id: ReqId(0),
            payload: ReqPayload::Gets {
                now: Timestamp(cycle.raw()),
                renew_exp: None,
            },
        });
    }

    fn start_load(&mut self, cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let line = access.addr.line();
        if self.mshrs.contains(line) {
            if self.is_readable(cycle, line) {
                self.stats.load_hits += 1;
                return AccessOutcome::Done(self.hit_completion(cycle, access.warp, access.addr));
            }
            if self
                .mshrs
                .merge(line, |e| {
                    e.waiting_loads
                        .push((access.warp, access.addr, cycle.raw()))
                })
                .is_err()
            {
                self.stats.rejects += 1;
                return AccessOutcome::Reject(RejectReason::MergeFull);
            }
            self.send_gets(cycle, line, out);
            return AccessOutcome::Pending;
        }
        match self.tags.probe(line) {
            Some(l) if Timestamp(cycle.raw()) < l.state.exp => {
                self.stats.load_hits += 1;
                AccessOutcome::Done(self.hit_completion(cycle, access.warp, access.addr))
            }
            resident => {
                if resident.is_some() {
                    // Physically expired copy: self-invalidate (no renew
                    // mechanism in TC — drop the stale data).
                    self.stats.expired_loads += 1;
                    self.stats.self_invalidations += 1;
                    self.tags.invalidate(line);
                }
                let entry = TcEntry {
                    waiting_loads: vec![(access.warp, access.addr, cycle.raw())],
                    ..TcEntry::default()
                };
                if self.mshrs.allocate(line, entry).is_err() {
                    self.stats.rejects += 1;
                    return AccessOutcome::Reject(RejectReason::MshrFull);
                }
                self.send_gets(cycle, line, out);
                AccessOutcome::Pending
            }
        }
    }

    fn start_write(&mut self, cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let line = access.addr.line();
        // Peek the next id; it is minted only if the MSHR accepts the
        // write. A rejected access must leave nothing behind but
        // counters (the `replay_rejected_access` contract).
        let id = ReqId(self.next_req);
        let atomic = matches!(access.kind, AccessKind::Atomic { .. });
        let pending = PendingWrite {
            id,
            warp: access.warp,
            addr: access.addr,
            atomic,
        };
        let alloc = if self.mshrs.contains(line) {
            self.mshrs
                .merge(line, |e| e.pending_writes.push_back(pending))
        } else {
            let mut entry = TcEntry::default();
            entry.pending_writes.push_back(pending);
            self.mshrs.allocate(line, entry)
        };
        if let Err(e) = alloc {
            self.stats.rejects += 1;
            return AccessOutcome::Reject(match e {
                MshrRejection::Full => RejectReason::MshrFull,
                MshrRejection::MergeListFull => RejectReason::MergeFull,
            });
        }
        self.next_req += 1;
        let word = access.addr.line_word_index();
        let now = Timestamp(cycle.raw());
        let payload = match access.kind {
            AccessKind::Store { value } => ReqPayload::Write { now, word, value },
            AccessKind::Atomic { op } => ReqPayload::Atomic { now, word, op },
            AccessKind::Load => unreachable!("start_write is for writes"),
        };
        out.to_l2.push(ReqMsg {
            src: self.core,
            line,
            id,
            payload,
        });
        AccessOutcome::Pending
    }

    fn maybe_release_after_write(&mut self, line: LineAddr) {
        let entry = self.mshrs.get(line).expect("entry exists");
        if entry.pending_writes.is_empty() && !entry.gets_outstanding {
            debug_assert!(entry.waiting_loads.is_empty());
            self.mshrs.release(line);
            if self.tags.invalidate(line).is_some() {
                self.stats.self_invalidations += 1;
            }
        }
    }

    fn take_pending_write(&mut self, line: LineAddr, id: ReqId) -> PendingWrite {
        let entry = self.mshrs.get_mut(line).expect("entry exists");
        let pos = entry
            .pending_writes
            .iter()
            .position(|w| w.id == id)
            .unwrap_or_else(|| panic!("no pending write {id:?} for {line}"));
        entry.pending_writes.remove(pos).expect("position valid")
    }
}

impl L1Cache for TcL1 {
    fn access(&mut self, cycle: Cycle, access: Access, out: &mut L1Outbox) -> AccessOutcome {
        let outcome = match access.kind {
            AccessKind::Load => {
                self.stats.loads += 1;
                self.start_load(cycle, access, out)
            }
            AccessKind::Store { .. } => {
                self.stats.stores += 1;
                self.start_write(cycle, access, out)
            }
            AccessKind::Atomic { .. } => {
                self.stats.atomics += 1;
                self.start_write(cycle, access, out)
            }
        };
        if matches!(outcome, AccessOutcome::Reject(_)) {
            // Rejected accesses retry later; count them once when they
            // are finally accepted (`rejects` tracks the retries).
            match access.kind {
                AccessKind::Load => self.stats.loads -= 1,
                AccessKind::Store { .. } => self.stats.stores -= 1,
                AccessKind::Atomic { .. } => self.stats.atomics -= 1,
            }
        }
        outcome
    }

    fn handle_resp(&mut self, _cycle: Cycle, resp: RespMsg, out: &mut L1Outbox) {
        let line = resp.line;
        match resp.payload {
            RespPayload::Data {
                data,
                ver,
                exp,
                seq,
            } => {
                let entry = self.mshrs.get_mut(line).expect("DATA without entry");
                entry.gets_outstanding = false;
                let loads = std::mem::take(&mut entry.waiting_loads);
                let mut refetch = Vec::new();
                for (warp, addr, issued) in loads {
                    // The lease guarantees no write applies before `exp`,
                    // so the value is current for any position below it.
                    // A load that merged *after* the covered window must
                    // re-request — its data could already be stale.
                    if Timestamp(issued) >= exp {
                        refetch.push((warp, addr, issued));
                        continue;
                    }
                    out.completions.push(Completion {
                        warp,
                        addr,
                        kind: CompletionKind::LoadDone {
                            value: data.word_at(addr),
                        },
                        ts: ver.join(Timestamp(issued)),
                        seq,
                    });
                }
                let mshrs = &self.mshrs;
                let _ = self.tags.fill(
                    line,
                    TcMeta { exp, fill_seq: seq },
                    data,
                    false,
                    |addr, _| !mshrs.contains(addr),
                );
                if refetch.is_empty() {
                    let entry = self.mshrs.get(line).expect("entry exists");
                    if entry.pending_writes.is_empty() {
                        debug_assert!(entry.waiting_loads.is_empty());
                        self.mshrs.release(line);
                    }
                } else {
                    let entry = self.mshrs.get_mut(line).expect("entry exists");
                    entry.waiting_loads = refetch;
                    entry.gets_outstanding = true;
                    out.to_l2.push(ReqMsg {
                        src: self.core,
                        line,
                        id: ReqId(0),
                        payload: ReqPayload::Gets {
                            now: exp, // the fresh grant will exceed this
                            renew_exp: None,
                        },
                    });
                }
            }
            RespPayload::StoreAck { ver, seq } => {
                let w = self.take_pending_write(line, resp.id);
                debug_assert!(!w.atomic);
                out.completions.push(Completion {
                    warp: w.warp,
                    addr: w.addr,
                    kind: CompletionKind::StoreDone,
                    // TCS: the apply time. TCW: the GWCT the LSU's fences
                    // will wait on.
                    ts: ver,
                    seq,
                });
                self.maybe_release_after_write(line);
            }
            RespPayload::AtomicResp { value, ver, seq } => {
                let w = self.take_pending_write(line, resp.id);
                debug_assert!(w.atomic);
                out.completions.push(Completion {
                    warp: w.warp,
                    addr: w.addr,
                    kind: CompletionKind::AtomicDone { old: value },
                    ts: ver,
                    seq,
                });
                self.maybe_release_after_write(line);
            }
            RespPayload::Renew { .. }
            | RespPayload::Inv
            | RespPayload::Flush
            | RespPayload::DataEx { .. }
            | RespPayload::Recall
            | RespPayload::WbAck => {
                debug_assert!(false, "TC never sends these");
            }
        }
    }

    fn tick(&mut self, _cycle: Cycle, _out: &mut L1Outbox) {}

    fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        // Lease expiry is checked lazily on access; no spontaneous work.
        None
    }

    fn set_chaos(&mut self, hook: Box<dyn rcc_chaos::PerturbPoint>) {
        // The only TC L1 injection point is transient MSHR exhaustion.
        self.mshrs.set_chaos(hook);
    }

    fn pending(&self) -> usize {
        self.mshrs.len()
    }

    fn replay_rejected_access(&mut self, delta: &L1Stats, times: u64) {
        self.stats.add_scaled(delta, times);
    }

    fn stats(&self) -> &L1Stats {
        &self.stats
    }
}
