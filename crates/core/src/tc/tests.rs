//! TC-Strong / TC-Weak behaviour tests: lease stalls, GWCT semantics, SC
//! support for TCS, and the write-atomicity violation that makes TCW
//! unable to support SC (Table I).

use super::{StoreDiscipline, TcProtocol};
use crate::msg::{Access, AccessKind, AccessOutcome, AtomicOp, CompletionKind};
use crate::protocol::{L1Cache, L2Bank, Protocol};
use crate::testrig::Rig;
use rcc_common::addr::{LineAddr, WordAddr};
use rcc_common::config::GpuConfig;
use rcc_common::ids::WarpId;

fn cfg_with_lease(lease: u64) -> GpuConfig {
    let mut cfg = GpuConfig::small();
    cfg.tc.lease_cycles = lease;
    cfg
}

fn strong(cores: usize, lease: u64) -> (Rig<TcProtocol>, GpuConfig) {
    let cfg = cfg_with_lease(lease);
    let p = TcProtocol::strong(&cfg);
    (Rig::new(&p, &cfg, cores), cfg)
}

fn weak(cores: usize, lease: u64) -> (Rig<TcProtocol>, GpuConfig) {
    let cfg = cfg_with_lease(lease);
    let p = TcProtocol::weak(&cfg);
    (Rig::new(&p, &cfg, cores), cfg)
}

fn word(line: u64, idx: usize) -> WordAddr {
    LineAddr(line).word(idx)
}

#[test]
fn discipline_selection() {
    let cfg = GpuConfig::small();
    assert_eq!(
        TcProtocol::strong(&cfg).discipline(),
        StoreDiscipline::StallUntilExpiry
    );
    assert_eq!(
        TcProtocol::weak(&cfg).discipline(),
        StoreDiscipline::EagerWithGwct
    );
    assert_eq!(
        TcProtocol::strong(&cfg).kind(),
        crate::ProtocolKind::TcStrong
    );
    assert_eq!(TcProtocol::weak(&cfg).kind(), crate::ProtocolKind::TcWeak);
}

#[test]
fn load_hits_until_physical_expiry() {
    let (mut rig, _) = strong(1, 50);
    let w = word(3, 0);
    rig.seed_dram(LineAddr(3), 0, 7);
    assert_eq!(rig.load_value(0, w), 7);
    let exp = rig.l1s[0].lease_exp(LineAddr(3)).unwrap();
    // Still valid before expiry…
    rig.step(10);
    let hits_before = rig.l1s[0].stats().load_hits;
    assert_eq!(rig.load_value(0, w), 7);
    assert_eq!(rig.l1s[0].stats().load_hits, hits_before + 1);
    // …self-invalidates after.
    rig.step(exp.raw() - rig.cycle.raw() + 1);
    assert_eq!(rig.load_value(0, w), 7);
    assert_eq!(rig.l1s[0].stats().expired_loads, 1);
    assert_eq!(rig.l1s[0].stats().self_invalidations, 1);
    rig.sb.assert_sc();
}

#[test]
fn tcs_store_stalls_until_lease_expires() {
    let (mut rig, _) = strong(2, 100);
    let w = word(2, 0);
    rig.load(0, w); // core 0 leases the line
    let exp = rig.l2.line_exp(LineAddr(2)).unwrap();
    // Core 1 stores: in TC-Strong the L2 parks it until the lease expires.
    let start = rig.cycle;
    let c = rig.store(1, w, 9);
    assert!(
        c.ts >= exp,
        "store applied at {} but the lease ran to {exp}",
        c.ts
    );
    assert!(rig.cycle.raw() >= exp.raw(), "real time had to pass");
    assert_eq!(rig.l2.stats().stalled_stores, 1);
    assert!(rig.l2.stats().store_stall_cycles >= exp.raw() - start.raw());
    rig.sb.assert_sc();
}

#[test]
fn tcs_store_without_sharers_is_fast() {
    let (mut rig, _) = strong(1, 100);
    let w = word(2, 0);
    let before = rig.cycle;
    rig.store(0, w, 9);
    // Only the (instant) fetch round trip; no lease to wait out.
    assert_eq!(rig.l2.stats().stalled_stores, 0);
    assert!(rig.cycle.raw() - before.raw() <= 2);
    rig.sb.assert_sc();
}

#[test]
fn tcw_store_acks_immediately_with_gwct() {
    let (mut rig, _) = weak(2, 100);
    let w = word(2, 0);
    rig.load(0, w); // core 0 leases the line
    let exp = rig.l2.line_exp(LineAddr(2)).unwrap();
    let start = rig.cycle;
    let c = rig.store(1, w, 9);
    assert!(
        rig.cycle.raw() - start.raw() <= 2,
        "TCW must not wait for the lease"
    );
    assert_eq!(
        c.ts, exp,
        "the ack carries the GWCT (last stale copy expiry)"
    );
    assert_eq!(rig.l2.stats().stalled_stores, 0);
}

#[test]
fn tcw_violates_write_atomicity() {
    // Core 0 holds a lease; core 1 writes (eagerly applied); core 2 then
    // loads from the L2 and sees the new value *before* the write's GWCT,
    // while core 0 can still read the old value — no single memory order
    // explains both, which is why TCW cannot support SC (Table I).
    let (mut rig, _) = weak(3, 200);
    let w = word(2, 0);
    rig.load(0, w);
    rig.store(1, w, 9);
    let hit = rig.load(0, w); // stale hit from core 0's lease
    assert_eq!(hit.kind, CompletionKind::LoadDone { value: 0 });
    let fresh = rig.load_value(2, w); // L2 miss for core 2 → current value
    assert_eq!(fresh, 9);
    let violations = rig.sb.check();
    assert!(
        !violations.is_empty(),
        "the scoreboard must flag the early-visible write"
    );
}

#[test]
fn tcs_atomics_wait_for_leases_and_serialize() {
    let (mut rig, _) = strong(2, 60);
    let w = word(4, 1);
    rig.load(0, w);
    let c = rig.atomic(1, w, AtomicOp::Add(5));
    assert_eq!(c.kind, CompletionKind::AtomicDone { old: 0 });
    let c = rig.atomic(0, w, AtomicOp::Add(3));
    assert_eq!(c.kind, CompletionKind::AtomicDone { old: 5 });
    assert_eq!(rig.load_value(1, w), 8);
    rig.sb.assert_sc();
}

#[test]
fn refetched_line_inherits_evicted_lease_bound() {
    // The physical-time analogue of RCC's mnow: after an eviction, a
    // refetched line is treated as leased until max_evicted_exp, so a
    // TCS store to it still waits for the stale copies.
    let (mut rig, cfg) = strong(1, 500);
    let sets = cfg.l2.partition.num_sets() as u64 * cfg.l2.num_partitions as u64;
    let ways = cfg.l2.partition.ways as u64;
    let w = word(0, 0);
    rig.load(0, w);
    let exp = rig.l2.line_exp(LineAddr(0)).unwrap();
    for i in 1..=ways {
        rig.load(0, word(i * sets, 0));
    }
    assert!(rig.l2.line_exp(LineAddr(0)).is_none(), "line evicted");
    // Store to the evicted line: refetch inherits the bound and parks.
    let c = rig.store(0, w, 3);
    assert!(c.ts >= exp, "write held until the evicted lease ran out");
    rig.sb.assert_sc();
}

#[test]
fn reads_merge_while_fetching() {
    let (mut rig, _) = strong(3, 100);
    rig.auto_dram = false;
    let w = word(5, 0);
    rig.seed_dram(LineAddr(5), 0, 4);
    for core in 0..3 {
        let o = rig.issue(
            core,
            Access {
                warp: WarpId(0),
                addr: w,
                kind: AccessKind::Load,
            },
        );
        assert_eq!(o, AccessOutcome::Pending);
        rig.pump();
    }
    assert_eq!(rig.pending_fetches.len(), 1, "one fetch serves all readers");
    let line = rig.pending_fetches.pop_front().unwrap();
    rig.fill_one(line);
    rig.pump();
    assert_eq!(rig.completions.len(), 3);
    for (_, c) in &rig.completions {
        assert_eq!(c.kind, CompletionKind::LoadDone { value: 4 });
    }
    rig.sb.assert_sc();
}

#[test]
fn write_to_missing_line_waits_for_fill() {
    let (mut rig, _) = strong(1, 100);
    rig.auto_dram = false;
    let w = word(6, 2);
    let o = rig.issue(
        0,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Store { value: 11 },
        },
    );
    assert_eq!(o, AccessOutcome::Pending);
    rig.pump();
    assert!(rig.completions.is_empty(), "no ack before the fill in TC");
    let line = rig.pending_fetches.pop_front().unwrap();
    rig.fill_one(line);
    rig.pump();
    assert_eq!(rig.completions.len(), 1);
    rig.auto_dram = true;
    assert_eq!(rig.load_value(0, w), 11);
    rig.sb.assert_sc();
}

#[test]
fn deferred_requests_preserve_order_behind_parked_store() {
    let (mut rig, _) = strong(3, 80);
    let w = word(7, 0);
    rig.load(0, w); // lease
    let base = rig.completions.len();
    // Park a store, then issue a load behind it — the load must defer and
    // observe the store's value (FIFO per line).
    let o = rig.issue(
        1,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Store { value: 5 },
        },
    );
    assert_eq!(o, AccessOutcome::Pending);
    rig.pump();
    let o = rig.issue(
        2,
        Access {
            warp: WarpId(0),
            addr: w,
            kind: AccessKind::Load,
        },
    );
    assert_eq!(o, AccessOutcome::Pending);
    rig.pump();
    assert_eq!(rig.completions.len(), base, "both wait for the lease");
    // Run time forward past the lease: store applies, then the load sees it.
    let exp = rig.l2.line_exp(LineAddr(7)).unwrap();
    rig.step(exp.raw() - rig.cycle.raw() + 2);
    assert_eq!(rig.completions.len(), base + 2);
    let (_, load_c) = rig.completions[base + 1];
    assert_eq!(load_c.kind, CompletionKind::LoadDone { value: 5 });
    rig.sb.assert_sc();
}

proptest::proptest! {
    #![proptest_config(proptest::prelude::ProptestConfig::with_cases(32))]

    /// TC-Strong executions are sequentially consistent under the naïve-SC
    /// issuance rule (one outstanding op per warp).
    #[test]
    fn tcs_random_traces_are_sequentially_consistent(
        seed in 0u64..500,
        ops in 30usize..100,
        cores in 2usize..4,
    ) {
        let (mut rig, _) = strong(cores, 40);
        let mut rng = rcc_common::Pcg32::seeded(seed);
        let words: Vec<WordAddr> =
            (0..6).map(|i| word(i % 3, (i as usize) * 2)).collect();
        let mut token = 1u64;
        for i in 0..ops {
            let core = rng.below(cores as u64) as usize;
            let w = *rng.pick(&words);
            let kind = match rng.below(8) {
                0..=3 => AccessKind::Load,
                4..=6 => {
                    token += 1;
                    AccessKind::Store { value: token }
                }
                _ => AccessKind::Atomic { op: AtomicOp::Add(1) },
            };
            // Sequential completion per op (single warp per core): the
            // rig steps time until each op finishes.
            rig.op(core, 0, w, kind);
            if i % 7 == 0 {
                rig.step(rng.below(30) + 1);
            }
        }
        rig.sb.assert_sc();
    }
}

#[test]
fn lifetime_predictor_grows_on_reads() {
    let (mut rig, cfg) = strong(1, 100);
    let w = word(11, 0);
    rig.load(0, w);
    let exp1 = rig.l2.line_exp(LineAddr(11)).unwrap();
    // Expire and re-read: the second lease must be longer than the first.
    rig.step(exp1.raw() - rig.cycle.raw() + 1);
    let t0 = rig.cycle.raw();
    rig.load(0, w);
    let exp2 = rig.l2.line_exp(LineAddr(11)).unwrap();
    assert!(
        exp2.raw() - t0 > cfg.tc.lease_cycles,
        "lease grew: {} vs initial {}",
        exp2.raw() - t0,
        cfg.tc.lease_cycles
    );
}

#[test]
fn lifetime_predictor_tcs_cuts_hard_on_write_conflict() {
    let (mut rig, cfg) = strong(2, 400);
    let w = word(12, 0);
    rig.load(0, w); // lease out
    rig.store(1, w, 1); // conflicts → waits, and ÷8 for the future
                        // The next lease must be much shorter than the default.
    let t0 = rig.cycle.raw();
    rig.load(0, w);
    let exp = rig.l2.line_exp(LineAddr(12)).unwrap();
    assert!(
        exp.raw() - t0 <= cfg.tc.lease_cycles / 4,
        "post-conflict lease {} should be well under {}",
        exp.raw() - t0,
        cfg.tc.lease_cycles
    );
}

#[test]
fn lifetime_predictor_tcw_trims_gently() {
    let (mut rig_s, cfg) = strong(2, 400);
    let (mut rig_w, _) = weak(2, 400);
    let w = word(12, 0);
    for rig in [&mut rig_s, &mut rig_w] {
        rig.load(0, w);
        rig.store(1, w, 1);
    }
    let t_s = rig_s.cycle.raw();
    rig_s.load(0, w);
    let lease_s = rig_s.l2.line_exp(LineAddr(12)).unwrap().raw() - t_s;
    let t_w = rig_w.cycle.raw();
    rig_w.load(0, w);
    let lease_w = rig_w
        .l2
        .line_exp(LineAddr(12))
        .unwrap()
        .raw()
        .saturating_sub(t_w);
    assert!(
        lease_w > lease_s,
        "TCW ({lease_w}) keeps longer leases than TCS ({lease_s}) after a conflict"
    );
    let _ = cfg;
}
