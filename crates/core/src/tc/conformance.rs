//! Conformance tests for the TC controllers against the protocol rules
//! of Singh et al. (HPCA 2013) as summarized in the paper's Section II
//! and Table I: leases are granted in physical time, TC-Strong stores
//! wait out every lease before applying, TC-Weak stores apply eagerly
//! and return the GWCT.

use super::{StoreDiscipline, TcL1, TcL2, TcProtocol};
use crate::msg::{Access, AccessKind, AccessOutcome, ReqId, ReqMsg, ReqPayload, RespPayload};
use crate::protocol::{L1Cache, L1Outbox, L2Bank, L2Outbox, Protocol};
use rcc_common::addr::LineAddr;
use rcc_common::config::GpuConfig;
use rcc_common::ids::{CoreId, PartitionId, WarpId};
use rcc_common::time::{Cycle, Timestamp};
use rcc_mem::LineData;

fn cfg() -> GpuConfig {
    GpuConfig::small() // tc.lease_cycles = 200
}

fn l1() -> TcL1 {
    TcProtocol::strong(&cfg()).make_l1(CoreId(0), &cfg())
}

fn l2(discipline: StoreDiscipline) -> TcL2 {
    match discipline {
        StoreDiscipline::StallUntilExpiry => {
            TcProtocol::strong(&cfg()).make_l2(PartitionId(0), &cfg())
        }
        StoreDiscipline::EagerWithGwct => TcProtocol::weak(&cfg()).make_l2(PartitionId(0), &cfg()),
    }
}

fn line() -> LineAddr {
    LineAddr(6)
}

fn gets(now: u64) -> ReqMsg {
    ReqMsg {
        src: CoreId(0),
        line: line(),
        id: ReqId(0),
        payload: ReqPayload::Gets {
            now: Timestamp(now),
            renew_exp: None,
        },
    }
}

fn write(now: u64, id: u64) -> ReqMsg {
    ReqMsg {
        src: CoreId(1),
        line: line(),
        id: ReqId(id),
        payload: ReqPayload::Write {
            now: Timestamp(now),
            word: 0,
            value: 9,
        },
    }
}

/// Fills the line into the L2 via a miss + DRAM response.
fn make_resident(bank: &mut TcL2, cycle: u64) -> L2Outbox {
    let mut out = L2Outbox::new();
    bank.handle_req(Cycle(cycle), gets(cycle), &mut out)
        .unwrap();
    assert_eq!(out.dram_fetch.len(), 1);
    let mut fill = L2Outbox::new();
    bank.handle_dram(Cycle(cycle), line(), LineData::zeroed(), &mut fill);
    fill
}

#[test]
fn leases_are_physical_and_grow_from_service_time() {
    let mut bank = l2(StoreDiscipline::StallUntilExpiry);
    make_resident(&mut bank, 0);
    let mut out = L2Outbox::new();
    bank.handle_req(Cycle(1000), gets(1000), &mut out).unwrap();
    match &out.to_l1[0].payload {
        RespPayload::Data { ver, exp, .. } => {
            assert_eq!(*ver, Timestamp(1000), "ver is the service cycle");
            assert!(
                exp.raw() >= 1000 + cfg().tc.lease_cycles,
                "lease runs forward from the service cycle"
            );
        }
        other => panic!("expected DATA, got {other:?}"),
    }
}

#[test]
fn tcs_store_parks_until_every_lease_expires() {
    let mut bank = l2(StoreDiscipline::StallUntilExpiry);
    make_resident(&mut bank, 0);
    let mut out = L2Outbox::new();
    bank.handle_req(Cycle(10), gets(10), &mut out).unwrap();
    let exp = bank.line_exp(line()).unwrap();
    // A store arriving well inside the lease produces no ack…
    let mut out = L2Outbox::new();
    bank.handle_req(Cycle(20), write(20, 5), &mut out).unwrap();
    assert!(out.to_l1.is_empty(), "TCS store must wait");
    assert_eq!(bank.stats().stalled_stores, 1);
    // …until the lease has run out.
    let mut out = L2Outbox::new();
    bank.tick(Cycle(exp.raw() - 1), &mut out);
    assert!(out.to_l1.is_empty(), "still leased");
    let mut out = L2Outbox::new();
    bank.tick(Cycle(exp.raw()), &mut out);
    assert_eq!(out.to_l1.len(), 1, "released at expiry");
    match &out.to_l1[0].payload {
        RespPayload::StoreAck { ver, .. } => assert!(ver.raw() >= exp.raw()),
        other => panic!("expected StoreAck, got {other:?}"),
    }
}

#[test]
fn tcw_store_acks_with_gwct_immediately() {
    let mut bank = l2(StoreDiscipline::EagerWithGwct);
    make_resident(&mut bank, 0);
    let mut out = L2Outbox::new();
    bank.handle_req(Cycle(10), gets(10), &mut out).unwrap();
    let exp = bank.line_exp(line()).unwrap();
    let mut out = L2Outbox::new();
    bank.handle_req(Cycle(20), write(20, 5), &mut out).unwrap();
    assert_eq!(out.to_l1.len(), 1, "TCW never waits");
    match &out.to_l1[0].payload {
        RespPayload::StoreAck { ver, .. } => {
            assert_eq!(*ver, exp, "the ack carries the GWCT — the lease expiry");
        }
        other => panic!("expected StoreAck, got {other:?}"),
    }
    assert_eq!(bank.stats().stalled_stores, 0);
}

#[test]
fn l1_self_invalidates_at_expiry_without_traffic() {
    let mut c = l1();
    let mut bank = l2(StoreDiscipline::StallUntilExpiry);
    // Load through the L1 so it caches with a lease.
    let mut out = L1Outbox::new();
    let o = c.access(
        Cycle(0),
        Access {
            warp: WarpId(0),
            addr: line().word(0),
            kind: AccessKind::Load,
        },
        &mut out,
    );
    assert_eq!(o, AccessOutcome::Pending);
    let mut l2out = L2Outbox::new();
    for req in out.to_l2 {
        bank.handle_req(Cycle(0), req, &mut l2out).unwrap();
    }
    let mut fill = L2Outbox::new();
    bank.handle_dram(Cycle(0), line(), LineData::zeroed(), &mut fill);
    let mut out = L1Outbox::new();
    for resp in fill.to_l1 {
        c.handle_resp(Cycle(0), resp, &mut out);
    }
    let exp = c.lease_exp(line()).unwrap();
    // Within the lease: hit. Past it: self-invalidation, no messages.
    let mut out = L1Outbox::new();
    let o = c.access(
        Cycle(exp.raw() - 1),
        Access {
            warp: WarpId(1),
            addr: line().word(0),
            kind: AccessKind::Load,
        },
        &mut out,
    );
    assert!(matches!(o, AccessOutcome::Done(_)), "still leased");
    let mut out = L1Outbox::new();
    let o = c.access(
        Cycle(exp.raw()),
        Access {
            warp: WarpId(2),
            addr: line().word(0),
            kind: AccessKind::Load,
        },
        &mut out,
    );
    assert_eq!(o, AccessOutcome::Pending, "expired → refetch");
    assert_eq!(c.stats().self_invalidations, 1);
    assert_eq!(
        out.to_l2.len(),
        1,
        "exactly one GETS, no invalidation traffic"
    );
}

#[test]
fn refetched_lines_inherit_the_evicted_lease_bound() {
    // The physical-time analogue of RCC's mnow (module docs of crate::tc).
    let machine = cfg();
    let stride = machine.l2.num_partitions as u64;
    let sets = machine.l2.partition.num_sets() as u64 * stride;
    let mut bank = l2(StoreDiscipline::StallUntilExpiry);
    make_resident(&mut bank, 0);
    let mut out = L2Outbox::new();
    bank.handle_req(Cycle(5), gets(5), &mut out).unwrap();
    let exp = bank.line_exp(line()).unwrap();
    // Displace it.
    for i in 1..=machine.l2.partition.ways as u64 {
        let other = LineAddr(line().0 + i * sets);
        let mut out = L2Outbox::new();
        bank.handle_req(
            Cycle(6),
            ReqMsg {
                src: CoreId(0),
                line: other,
                id: ReqId(0),
                payload: ReqPayload::Gets {
                    now: Timestamp(6),
                    renew_exp: None,
                },
            },
            &mut out,
        )
        .unwrap();
        bank.handle_dram(Cycle(6), other, LineData::zeroed(), &mut L2Outbox::new());
    }
    assert!(bank.line_exp(line()).is_none(), "evicted");
    // Refetch: inherited exp ≥ the evicted lease.
    let fill = make_resident(&mut bank, 7);
    let _ = fill;
    assert!(bank.line_exp(line()).unwrap() >= exp);
}
