//! TC L2 bank: grants fixed physical-time leases and implements the two
//! store disciplines (stall-until-expiry for TC-Strong, eager-with-GWCT
//! for TC-Weak).

use crate::msg::{ReqMsg, ReqPayload, RespMsg, RespPayload};
use crate::protocol::{L2Bank, L2Outbox, L2Stats};
use crate::tc::StoreDiscipline;
use rcc_chaos::{PerturbPoint, Site};
use rcc_common::addr::LineAddr;
use rcc_common::config::{GpuConfig, TcParams};
use rcc_common::ids::PartitionId;
use rcc_common::time::{Cycle, Timestamp};
use rcc_common::FxHashMap;
use rcc_mem::{LineData, MshrFile, TagArray};
use std::collections::{BTreeMap, VecDeque};

/// Per-line metadata: the latest lease expiration granted (a cycle) and
/// the lifetime predictor's current lease for this line.
#[derive(Debug, Clone, Copy)]
struct TcMeta {
    exp: Timestamp,
    lease: u64,
}

/// A store or atomic waiting (TC-Strong) for leases to expire.
#[derive(Debug, Clone)]
struct WaitingWrite {
    req: ReqMsg,
}

#[derive(Debug, Clone, Default)]
struct TcEntry {
    /// All requests that arrived while the line was being fetched, in
    /// arrival order; replayed through the hit paths at fill time so a
    /// reader that arrived after a write observes it.
    queued: VecDeque<ReqMsg>,
}

/// The TC controller for one L2 partition.
#[derive(Debug, Clone)]
pub struct TcL2 {
    partition: PartitionId,
    lease: u64,
    lease_min: u64,
    lease_max: u64,
    discipline: StoreDiscipline,
    tags: TagArray<TcMeta>,
    mshrs: MshrFile<TcEntry>,
    /// TC-Strong: stores waiting for a line's leases to expire, keyed by
    /// release cycle. Requests to such lines defer behind them.
    waiting: BTreeMap<u64, Vec<WaitingWrite>>,
    /// Lines with waiting stores; same-line requests defer here to keep
    /// the per-line order (and to stop new leases from starving the store).
    deferred: FxHashMap<LineAddr, VecDeque<ReqMsg>>,
    blocked_lines: FxHashMap<LineAddr, usize>,
    /// Fills whose every candidate way held a line with parked stores;
    /// retried each tick.
    stalled_fills: Vec<(LineAddr, LineData, VecDeque<ReqMsg>)>,
    deferred_count: usize,
    /// Maximum expiration among evicted lines (the physical-time analogue
    /// of RCC's `mnow`; see module docs in [`crate::tc`]).
    max_evicted_exp: Timestamp,
    seq: u64,
    /// Chaos hook: truncates granted leases (`Site::LeaseTruncate`),
    /// forcing early physical-time expirations.
    chaos: Option<Box<dyn PerturbPoint>>,
    stats: L2Stats,
}

impl TcL2 {
    /// Creates the controller for `partition`.
    pub fn new(
        partition: PartitionId,
        cfg: &GpuConfig,
        params: TcParams,
        discipline: StoreDiscipline,
    ) -> Self {
        TcL2 {
            partition,
            lease: params.lease_cycles,
            lease_min: params.lease_min,
            lease_max: params.lease_max,
            discipline,
            tags: TagArray::with_stride(
                cfg.l2.partition.num_sets(),
                cfg.l2.partition.ways,
                cfg.l2.num_partitions as u64,
            ),
            mshrs: MshrFile::new(cfg.l2.partition.mshrs, cfg.l2.partition.mshr_merge),
            waiting: BTreeMap::new(),
            deferred: FxHashMap::default(),
            blocked_lines: FxHashMap::default(),
            stalled_fills: Vec::new(),
            deferred_count: 0,
            max_evicted_exp: Timestamp::ZERO,
            seq: 0,
            chaos: None,
            stats: L2Stats::default(),
        }
    }

    /// This bank's partition id.
    pub fn partition(&self) -> PartitionId {
        self.partition
    }

    /// Lease expiration of a resident line (for tests).
    pub fn line_exp(&self, line: LineAddr) -> Option<Timestamp> {
        self.tags.probe(line).map(|l| l.state.exp)
    }

    fn next_seq(&mut self) -> u64 {
        self.seq += 1;
        self.seq
    }

    /// Fills `line`, never evicting a line with parked stores.
    ///
    /// Returns false (and leaves nothing changed) when every candidate
    /// way is pinned by a parked store; the caller retries later.
    #[must_use]
    fn fill_line(
        &mut self,
        line: LineAddr,
        meta: TcMeta,
        data: LineData,
        dirty: bool,
        out: &mut L2Outbox,
    ) -> bool {
        let blocked = &self.blocked_lines;
        let evicted = self.tags.fill(line, meta, data, dirty, |addr, _| {
            !blocked.contains_key(&addr)
        });
        match evicted {
            Ok(Some(ev)) => {
                self.max_evicted_exp = self.max_evicted_exp.join(ev.line.state.exp);
                if ev.line.dirty {
                    self.stats.writebacks += 1;
                    out.dram_writeback.push((ev.line.addr, ev.line.data));
                }
                true
            }
            Ok(None) => true,
            Err(()) => false,
        }
    }

    fn serve_gets_hit(&mut self, cycle: Cycle, req: &ReqMsg, out: &mut L2Outbox) {
        let max = self.lease_max;
        let seq = self.next_seq();
        // Chaos: a fired truncation grants a one-cycle lease. Shorter
        // leases are strictly more conservative for TC (smaller stale
        // window, earlier self-invalidation), so this is always sound.
        let truncated = match &mut self.chaos {
            Some(c) => c.fires(Site::LeaseTruncate),
            None => false,
        };
        let meta = self.tags.access(req.line).expect("hit requires residency");
        let granted = if truncated { 1 } else { meta.state.lease };
        let exp = meta.state.exp.join(Timestamp(cycle.raw() + granted));
        meta.state.exp = exp;
        // Lifetime predictor: additive growth per re-read, so read-only
        // data creeps toward long leases while the ÷8 write penalty keeps
        // read-write shared lines (and their TCS stalls / TCW GWCTs)
        // short: AIMD settles near the read/write ratio × step.
        meta.state.lease = (meta.state.lease + 128).min(max);
        out.to_l1.push(RespMsg {
            dst: req.src,
            line: req.line,
            id: req.id,
            payload: RespPayload::Data {
                data: meta.data.clone(),
                ver: Timestamp(cycle.raw()),
                exp,
                seq,
            },
        });
    }

    /// Applies a store/atomic to a resident line and acknowledges it.
    fn apply_write(&mut self, cycle: Cycle, req: &ReqMsg, out: &mut L2Outbox) {
        let gwct = {
            let meta = self.tags.probe(req.line).expect("apply requires residency");
            meta.state.exp.join(Timestamp(cycle.raw()))
        };
        let seq = self.next_seq();
        match &req.payload {
            ReqPayload::Write { word, value, .. } => {
                let meta = self.tags.access(req.line).expect("checked");
                meta.data.set_word(*word, *value);
                meta.dirty = true;
                let ver = match self.discipline {
                    // TCS applies only after expiry: position = now.
                    StoreDiscipline::StallUntilExpiry => Timestamp(cycle.raw()),
                    // TCW acks with the global write completion time.
                    StoreDiscipline::EagerWithGwct => gwct,
                };
                out.to_l1.push(RespMsg {
                    dst: req.src,
                    line: req.line,
                    id: req.id,
                    payload: RespPayload::StoreAck { ver, seq },
                });
            }
            ReqPayload::Atomic { word, op, .. } => {
                let meta = self.tags.access(req.line).expect("checked");
                let old = meta.data.word(*word);
                if op.mutates(old) {
                    meta.data.set_word(*word, op.apply(old));
                    meta.dirty = true;
                }
                let ver = match self.discipline {
                    StoreDiscipline::StallUntilExpiry => Timestamp(cycle.raw()),
                    StoreDiscipline::EagerWithGwct => gwct,
                };
                out.to_l1.push(RespMsg {
                    dst: req.src,
                    line: req.line,
                    id: req.id,
                    payload: RespPayload::AtomicResp {
                        value: old,
                        ver,
                        seq,
                    },
                });
            }
            other => unreachable!("apply_write on {other:?}"),
        }
    }

    /// TC-Strong: park a write until `release` (exclusive lower bound on
    /// the apply cycle), blocking the line.
    fn park_write(&mut self, cycle: Cycle, release: Timestamp, req: ReqMsg) {
        self.stats.stalled_stores += 1;
        self.stats.store_stall_cycles += release.raw().saturating_sub(cycle.raw());
        *self.blocked_lines.entry(req.line).or_insert(0) += 1;
        self.waiting
            .entry(release.raw())
            .or_default()
            .push(WaitingWrite { req });
    }

    fn serve_write_hit(&mut self, cycle: Cycle, req: ReqMsg, out: &mut L2Outbox) {
        let exp = {
            let min = self.lease_min;
            let meta = self
                .tags
                .probe_mut(req.line)
                .expect("hit requires residency");
            if Timestamp(cycle.raw()) < meta.state.exp {
                // Lifetime predictor: a write hit an unexpired lease.
                // TC-Strong must cut hard — every cycle of residual lease
                // is a cycle its stores stall. TC-Weak's stores never
                // wait, so it only trims gently to bound fence GWCTs
                // while keeping read-shared lines cacheable (this is why
                // TCW tolerates false sharing that hurts RCC — e.g. the
                // bfs frontier mask).
                let divisor = match self.discipline {
                    StoreDiscipline::StallUntilExpiry => 8,
                    StoreDiscipline::EagerWithGwct => 2,
                };
                meta.state.lease = (meta.state.lease / divisor).max(min);
            }
            meta.state.exp
        };
        match self.discipline {
            StoreDiscipline::StallUntilExpiry if Timestamp(cycle.raw()) < exp => {
                // Outstanding leases: the store stalls at the L2 until
                // they all expire — the TCS behaviour RCC eliminates.
                self.park_write(cycle, exp, req);
            }
            _ => self.apply_write(cycle, &req, out),
        }
    }

    fn redispatch_deferred(&mut self, cycle: Cycle, line: LineAddr, out: &mut L2Outbox) {
        if self.blocked_lines.contains_key(&line) {
            return;
        }
        let Some(mut queue) = self.deferred.remove(&line) else {
            return;
        };
        while let Some(req) = queue.pop_front() {
            self.deferred_count -= 1;
            self.handle_req(cycle, req, out)
                .expect("re-dispatched request cannot be rejected");
            if self.blocked_lines.contains_key(&line) {
                // The replayed write parked again; keep the rest deferred
                // (handle_req may already have re-created the queue).
                while let Some(rest) = queue.pop_back() {
                    self.deferred.entry(line).or_default().push_front(rest);
                }
                return;
            }
        }
    }
}

impl L2Bank for TcL2 {
    fn handle_req(&mut self, cycle: Cycle, req: ReqMsg, out: &mut L2Outbox) -> Result<(), ReqMsg> {
        let line = req.line;
        // Order behind a parked store or earlier deferred requests.
        if self.blocked_lines.contains_key(&line) || self.deferred.contains_key(&line) {
            self.deferred_count += 1;
            self.deferred.entry(line).or_default().push_back(req);
            return Ok(());
        }
        match &req.payload {
            ReqPayload::Gets { .. } => {
                self.stats.gets += 1;
                if self.mshrs.contains(line) {
                    self.mshrs
                        .get_mut(line)
                        .expect("checked")
                        .queued
                        .push_back(req);
                } else if self.tags.probe(line).is_some() {
                    self.serve_gets_hit(cycle, &req, out);
                } else {
                    if self.mshrs.is_full() {
                        self.stats.gets -= 1;
                        return Err(req);
                    }
                    let mut entry = TcEntry::default();
                    entry.queued.push_back(req);
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::Write { .. } | ReqPayload::Atomic { .. } => {
                if matches!(req.payload, ReqPayload::Write { .. }) {
                    self.stats.writes += 1;
                } else {
                    self.stats.atomics += 1;
                }
                if self.mshrs.contains(line) {
                    self.mshrs
                        .get_mut(line)
                        .expect("checked")
                        .queued
                        .push_back(req);
                } else if self.tags.probe(line).is_some() {
                    self.serve_write_hit(cycle, req, out);
                } else {
                    if self.mshrs.is_full() {
                        return Err(req);
                    }
                    let mut entry = TcEntry::default();
                    entry.queued.push_back(req);
                    self.mshrs
                        .allocate(line, entry)
                        .expect("capacity checked above");
                    self.stats.dram_fetches += 1;
                    out.dram_fetch.push(line);
                }
            }
            ReqPayload::InvAck
            | ReqPayload::FlushAck
            | ReqPayload::GetX { .. }
            | ReqPayload::WbData { .. } => {}
        }
        Ok(())
    }

    fn handle_dram(&mut self, cycle: Cycle, line: LineAddr, data: LineData, out: &mut L2Outbox) {
        let entry = self
            .mshrs
            .release(line)
            .expect("DRAM fill without an MSHR entry");
        self.finish_fill(cycle, line, data, entry.queued, out);
    }

    fn tick(&mut self, cycle: Cycle, out: &mut L2Outbox) {
        if !self.stalled_fills.is_empty() {
            let stalled = std::mem::take(&mut self.stalled_fills);
            for (line, data, queued) in stalled {
                self.finish_fill(cycle, line, data, queued, out);
            }
        }
        // Release parked stores whose leases have expired (cycle > exp).
        let ready: Vec<u64> = self
            .waiting
            .keys()
            .copied()
            .take_while(|&r| r <= cycle.raw())
            .collect();
        for r in ready {
            let writes = self.waiting.remove(&r).expect("key listed");
            for w in writes {
                let line = w.req.line;
                self.apply_write(cycle, &w.req, out);
                match self.blocked_lines.get_mut(&line) {
                    Some(n) if *n > 1 => *n -= 1,
                    _ => {
                        self.blocked_lines.remove(&line);
                    }
                }
                self.redispatch_deferred(cycle, line, out);
            }
        }
    }

    fn set_chaos(&mut self, hook: Box<dyn PerturbPoint>) {
        // Deliberately NOT forwarded to `self.mshrs`: deferred requests
        // are re-dispatched under a "cannot be rejected" invariant.
        self.chaos = Some(hook);
    }

    fn next_event(&self, now: Cycle) -> Option<Cycle> {
        // Stalled fills retry every cycle; parked stores wake when the
        // earliest blocking lease expires (first key of the ordered map).
        if !self.stalled_fills.is_empty() {
            return Some(now + 1);
        }
        self.waiting
            .keys()
            .next()
            .map(|&release| Cycle(release.max(now.raw() + 1)))
    }

    fn pending(&self) -> usize {
        self.mshrs.len()
            + self.deferred_count
            + self.stalled_fills.len()
            + self.waiting.values().map(Vec::len).sum::<usize>()
    }

    fn stats(&self) -> &L2Stats {
        &self.stats
    }
}

impl TcL2 {
    /// Installs a filled line (inheriting the partition-wide evicted
    /// lease bound) and replays the requests queued behind the fetch.
    fn finish_fill(
        &mut self,
        cycle: Cycle,
        line: LineAddr,
        data: LineData,
        queued: VecDeque<ReqMsg>,
        out: &mut L2Outbox,
    ) {
        // A refetched line may still have unexpired copies from before its
        // eviction: conservatively inherit the partition-wide bound.
        let meta = TcMeta {
            exp: self.max_evicted_exp,
            lease: self.lease,
        };
        if !self.fill_line(line, meta, data.clone(), false, out) {
            self.stalled_fills.push((line, data, queued));
            return;
        }
        // Replay everything in arrival order through the hit paths, so a
        // reader that arrived after a write observes it. A TCS write may
        // park against the inherited expiration, deferring the remainder.
        for req in queued {
            if self.blocked_lines.contains_key(&line) {
                self.deferred_count += 1;
                self.deferred.entry(line).or_default().push_back(req);
                continue;
            }
            match &req.payload {
                ReqPayload::Gets { .. } => self.serve_gets_hit(cycle, &req, out),
                _ => self.serve_write_hit(cycle, req, out),
            }
        }
        self.redispatch_deferred(cycle, line, out);
    }
}
